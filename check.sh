#!/usr/bin/env bash
# Repo gate: release build, full test suite, lint-clean at -D warnings.
set -euo pipefail
cd "$(dirname "$0")"
cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
echo "check.sh: all green"
