#!/usr/bin/env bash
# Repo gate: release build, full test suite, lint-clean at -D warnings.
set -euo pipefail
cd "$(dirname "$0")"
cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
# Differential gate: the interpreter/verifier suites plus a network-level
# sweep executing every winning schedule on the SPM abstract machine.
cargo test -q -p flexer-sim -p flexer-sched
./target/release/verify
echo "check.sh: all green"
