#!/usr/bin/env bash
# Repo gate: formatted, release build, full test suite, lint-clean at
# -D warnings, differential verification, pruning benchmark.
set -euo pipefail
cd "$(dirname "$0")"
cargo fmt --all --check
cargo build --release --workspace
cargo test -q
cargo clippy --workspace -- -D warnings
# Differential gate: the interpreter/verifier suites plus a network-level
# sweep executing every winning schedule on the SPM abstract machine.
cargo test -q -p flexer-sim -p flexer-sched
# Recorded proptest failures replayed explicitly: the vendored proptest
# stand-in does not read .proptest-regressions files, so the shrunken
# seeds live in dedicated regression_seed_* tests that must never rot.
cargo test -q --test property_schedules regression_seed
# Trace gate: golden span tree, Chrome schema, thread-count invariance.
cargo test -q --test trace_pipeline
./target/release/verify
# Branch-and-bound gate: pruned and exhaustive searches must agree
# (asserted inside bench_json) while the pruned one is faster. Also
# emits a sample search trace (validated on write) as a CI artifact.
FLEXER_BENCH_ITERS="${FLEXER_BENCH_ITERS:-3}" ./target/release/bench_json --trace-out trace.json
# Solver-seeding gate: on both reference presets the seeded search must
# schedule strictly fewer candidates to completion than the unseeded
# one while returning byte-identical winners layer for layer — both
# hard-asserted inside bench_json --seed, which exits non-zero (and
# prints no "seed gate" lines) on violation.
seed_out="$(FLEXER_BENCH_ITERS="${FLEXER_BENCH_ITERS:-3}" ./target/release/bench_json --seed)"
echo "$seed_out"
if [ "$(grep -c '^seed gate arch' <<<"$seed_out")" -lt 2 ]; then
    echo "check.sh: bench_json --seed did not report both presets" >&2
    exit 1
fi
# Residency gate: the network-level inter-layer residency planner must
# strictly cut total DMA bytes with latency no worse on both reference
# presets, keep the residency-disabled run byte-identical to the plain
# per-layer search, and pass differential verification on every
# residency-on schedule — all hard-asserted inside bench_json
# --residency, which exits non-zero (and prints no "residency gate"
# lines) on violation.
residency_out="$(FLEXER_BENCH_ITERS="${FLEXER_BENCH_ITERS:-3}" ./target/release/bench_json --residency)"
echo "$residency_out"
if [ "$(grep -c '^residency gate arch' <<<"$residency_out")" -lt 2 ]; then
    echo "check.sh: bench_json --residency did not report both presets" >&2
    exit 1
fi
# Workload-diversity gate: every network in the diverse zoo
# (transformer encoder, MobileNet-style depthwise net, branching fire
# net) must schedule, differentially verify, and warm-start from the
# store on a second pass, on Arch1, Arch5 and the heterogeneous
# configuration; the branching net must cleanly decline residency —
# all hard-asserted inside bench_json --zoo, which exits non-zero (and
# prints no "zoo gate" lines) on violation.
zoo_out="$(./target/release/bench_json --zoo)"
echo "$zoo_out"
if [ "$(grep -c '^zoo gate ' <<<"$zoo_out")" -lt 9 ]; then
    echo "check.sh: bench_json --zoo did not report all nine net/arch pairs" >&2
    exit 1
fi
# Anytime gate: an expiring deadline yields a partial result with a
# proven gap instead of a typed deadline error.
cargo test -q -p flexer-serve anytime
cargo test -q --test seeded_search
# Store and serving suites: fingerprint pinning, corruption handling,
# warm-start byte identity, server abuse (saturation, malformed input,
# deadlines, graceful drain).
cargo test -q -p flexer-store -p flexer-serve
# Store gate, run twice against one directory: every invocation proves
# warm hits == layers and byte-identical winners internally; the
# second invocation must additionally warm-start from the first
# *process*'s entries — its very first pass sees zero misses.
rm -rf .flexer-store-ci
./target/release/bench_json --store .flexer-store-ci
warm_out="$(./target/release/bench_json --store .flexer-store-ci)"
echo "$warm_out"
if ! grep -q "^store first pass: .* / 0 misses" <<<"$warm_out"; then
    echo "check.sh: second bench_json --store run was not warm" >&2
    exit 1
fi
# Serving gate: boot the daemon on a loopback port (sharing the warm
# store), round-trip the client, then drain gracefully. flexer-cli
# exits non-zero unless the server answered {"ok":true}.
rm -f .flexer-serve-ci.port
./target/release/flexer-serve --addr 127.0.0.1:0 \
    --port-file .flexer-serve-ci.port --store .flexer-store-ci &
serve_pid=$!
for _ in $(seq 100); do [ -s .flexer-serve-ci.port ] && break; sleep 0.1; done
port="$(cat .flexer-serve-ci.port)"
./target/release/flexer-cli --addr "127.0.0.1:$port" health
./target/release/flexer-cli --addr "127.0.0.1:$port" schedule squeezenet >/dev/null
./target/release/flexer-cli --addr "127.0.0.1:$port" stats
./target/release/flexer-cli --addr "127.0.0.1:$port" shutdown
wait "$serve_pid"
rm -f .flexer-serve-ci.port
rm -rf .flexer-store-ci
# Fleet smoke: a supervised 3-node fleet must route every request to
# its ring owner (asserted via per-node store counters), keep every
# request answerable through failover while one member is down, and
# bring a freshly rejoined member to manifest parity purely through
# anti-entropy — the rejoined node answers its shard warm (hits > 0,
# zero misses) with responses byte-identical to the pre-kill baseline.
rm -rf .fleet-smoke-ci
smoke_out="$(./target/release/flexer-fleet smoke \
    --serve-bin ./target/release/flexer-serve --scratch .fleet-smoke-ci)"
echo "$smoke_out"
if ! grep -q '^fleet smoke: PASS' <<<"$smoke_out"; then
    echo "check.sh: fleet smoke did not pass" >&2
    exit 1
fi
rm -rf .fleet-smoke-ci
# Fleet serving gate: 1-node vs 3-node (same total worker budget) —
# cold responses byte-identical with provenance masked, and after
# anti-entropy the fleet's aggregate warm-hit throughput over one
# connection per node must strictly beat the single node — both
# hard-asserted inside bench_json --fleet, which exits non-zero (and
# prints no "fleet gate" lines) on violation. Emits BENCH_PR10.json.
fleet_out="$(./target/release/bench_json --fleet)"
echo "$fleet_out"
if [ "$(grep -c '^fleet gate ' <<<"$fleet_out")" -lt 2 ]; then
    echo "check.sh: bench_json --fleet did not report both gates" >&2
    exit 1
fi
# Chaos gate: the deterministic harness drives real flexer-serve
# daemons through soak, slow-loris, store-corruption, deadline-skew,
# kill/restart, and sharded-fleet scenarios on three fixed seeds. Zero invariant
# violations allowed; p50/p99 latency SLOs are asserted from the
# deterministic trace layer's logical ticks (no wall-clock flake). A
# failure dumps a replayable artifact under .chaos-artifacts/ naming
# the seed to re-run with.
rm -rf .chaos-artifacts
./target/release/flexer-chaos \
    --seed 101 --seed 202 --seed 303 --duration-short \
    --serve-bin ./target/release/flexer-serve \
    --artifact-dir .chaos-artifacts
echo "check.sh: all green"
