#!/usr/bin/env bash
# Repo gate: formatted, release build, full test suite, lint-clean at
# -D warnings, differential verification, pruning benchmark.
set -euo pipefail
cd "$(dirname "$0")"
cargo fmt --all --check
cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
# Differential gate: the interpreter/verifier suites plus a network-level
# sweep executing every winning schedule on the SPM abstract machine.
cargo test -q -p flexer-sim -p flexer-sched
# Recorded proptest failures replayed explicitly: the vendored proptest
# stand-in does not read .proptest-regressions files, so the shrunken
# seeds live in dedicated regression_seed_* tests that must never rot.
cargo test -q --test property_schedules regression_seed
# Trace gate: golden span tree, Chrome schema, thread-count invariance.
cargo test -q --test trace_pipeline
./target/release/verify
# Branch-and-bound gate: pruned and exhaustive searches must agree
# (asserted inside bench_json) while the pruned one is faster. Also
# emits a sample search trace (validated on write) as a CI artifact.
FLEXER_BENCH_ITERS="${FLEXER_BENCH_ITERS:-3}" ./target/release/bench_json --trace-out trace.json
echo "check.sh: all green"
