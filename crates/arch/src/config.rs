//! Hardware configuration of the multi-NPU accelerator.

use flexer_model::ElementSize;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Error returned for inconsistent [`ArchConfig`] parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchConfigError {
    message: String,
}

impl fmt::Display for ArchConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid architecture configuration: {}", self.message)
    }
}

impl Error for ArchConfigError {}

impl ArchConfigError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

/// The eight hardware configurations of the paper's Table 1.
///
/// |        | cores | on-chip memory | bandwidth |
/// |--------|-------|----------------|-----------|
/// | arch1  | 2     | 256 KiB        | 32 B/cyc  |
/// | arch2  | 2     | 256 KiB        | 64 B/cyc  |
/// | arch3  | 2     | 512 KiB        | 32 B/cyc  |
/// | arch4  | 2     | 512 KiB        | 64 B/cyc  |
/// | arch5  | 4     | 256 KiB        | 32 B/cyc  |
/// | arch6  | 4     | 256 KiB        | 64 B/cyc  |
/// | arch7  | 4     | 512 KiB        | 32 B/cyc  |
/// | arch8  | 4     | 512 KiB        | 64 B/cyc  |
///
/// At the 1 GHz clock of the paper's NPUs, 32 B/cycle equals 32 GB/s.
///
/// # Examples
///
/// ```
/// use flexer_arch::ArchPreset;
///
/// assert_eq!(ArchPreset::all().len(), 8);
/// assert_eq!(ArchPreset::Arch7.to_string(), "arch7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum ArchPreset {
    Arch1,
    Arch2,
    Arch3,
    Arch4,
    Arch5,
    Arch6,
    Arch7,
    Arch8,
}

impl ArchPreset {
    /// All eight presets in Table-1 order.
    #[must_use]
    pub const fn all() -> [ArchPreset; 8] {
        [
            ArchPreset::Arch1,
            ArchPreset::Arch2,
            ArchPreset::Arch3,
            ArchPreset::Arch4,
            ArchPreset::Arch5,
            ArchPreset::Arch6,
            ArchPreset::Arch7,
            ArchPreset::Arch8,
        ]
    }

    /// `(cores, spm KiB, bandwidth bytes/cycle)` of this preset.
    #[must_use]
    pub const fn parameters(self) -> (u32, u64, u64) {
        match self {
            ArchPreset::Arch1 => (2, 256, 32),
            ArchPreset::Arch2 => (2, 256, 64),
            ArchPreset::Arch3 => (2, 512, 32),
            ArchPreset::Arch4 => (2, 512, 64),
            ArchPreset::Arch5 => (4, 256, 32),
            ArchPreset::Arch6 => (4, 256, 64),
            ArchPreset::Arch7 => (4, 512, 32),
            ArchPreset::Arch8 => (4, 512, 64),
        }
    }
}

impl fmt::Display for ArchPreset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = match self {
            ArchPreset::Arch1 => 1,
            ArchPreset::Arch2 => 2,
            ArchPreset::Arch3 => 3,
            ArchPreset::Arch4 => 4,
            ArchPreset::Arch5 => 5,
            ArchPreset::Arch6 => 6,
            ArchPreset::Arch7 => 7,
            ArchPreset::Arch8 => 8,
        };
        write!(f, "arch{n}")
    }
}

impl std::str::FromStr for ArchPreset {
    type Err = ArchConfigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "arch1" => Ok(ArchPreset::Arch1),
            "arch2" => Ok(ArchPreset::Arch2),
            "arch3" => Ok(ArchPreset::Arch3),
            "arch4" => Ok(ArchPreset::Arch4),
            "arch5" => Ok(ArchPreset::Arch5),
            "arch6" => Ok(ArchPreset::Arch6),
            "arch7" => Ok(ArchPreset::Arch7),
            "arch8" => Ok(ArchPreset::Arch8),
            other => Err(ArchConfigError::new(format!("unknown preset {other:?}"))),
        }
    }
}

/// One class of identical cores within a heterogeneous accelerator:
/// `count` cores with a `pe_rows x pe_cols` array, contributing
/// `spm_share_bytes` to the shared global buffer (per Stream-style
/// big.LITTLE NPU designs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CoreClass {
    /// Number of cores of this class.
    pub count: u32,
    /// PE array rows of each core in the class.
    pub pe_rows: u32,
    /// PE array columns of each core in the class.
    pub pe_cols: u32,
    /// Each core's contribution to the shared SPM, in bytes (the
    /// class contributes `count * spm_share_bytes` in total).
    pub spm_share_bytes: u64,
}

impl CoreClass {
    /// Convenience constructor.
    #[must_use]
    pub const fn new(count: u32, pe_rows: u32, pe_cols: u32, spm_share_bytes: u64) -> Self {
        Self {
            count,
            pe_rows,
            pe_cols,
            spm_share_bytes,
        }
    }
}

/// Hardware parameters of a multi-NPU accelerator instance.
///
/// Mirrors the paper's parameterizable architecture (§2.1): the number
/// of NPU cores, the shared on-chip global-buffer size and the DRAM
/// bandwidth are configurable; each core is a `pe_rows x pe_cols`
/// compute array (32x32 in the evaluation, §5).
///
/// A configuration may optionally be *heterogeneous*: built from
/// [`CoreClass`]es with differing PE arrays and SPM shares (see
/// [`ArchConfigBuilder::heterogeneous`]). The scheduler still treats
/// cores as interchangeable units, so the effective parameters are
/// conservative: the core count and SPM are the sums over classes,
/// while the modelled PE array is the *weakest* class's (per-axis
/// minimum) — any schedule valid under the weakest-core latency model
/// is valid on the real mix. The class list is retained for display
/// and cache-key identity.
///
/// # Examples
///
/// ```
/// use flexer_arch::{ArchConfig, ArchPreset};
///
/// let arch = ArchConfig::preset(ArchPreset::Arch3);
/// assert_eq!(arch.cores(), 2);
/// assert_eq!(arch.spm_bytes(), 512 * 1024);
/// assert_eq!(arch.dma_bytes_per_cycle(), 32);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ArchConfig {
    cores: u32,
    spm_bytes: u64,
    dma_bytes_per_cycle: u64,
    pe_rows: u32,
    pe_cols: u32,
    dram_latency_cycles: u64,
    element_size: ElementSize,
    #[serde(default)]
    core_classes: Vec<CoreClass>,
}

impl ArchConfig {
    /// Creates the configuration for one of the paper's Table-1
    /// presets: 32x32 PEs per core, 100-cycle DRAM access latency and
    /// int8 elements.
    #[must_use]
    pub fn preset(preset: ArchPreset) -> Self {
        let (cores, spm_kib, bpc) = preset.parameters();
        ArchConfigBuilder::new(cores, spm_kib * 1024, bpc)
            .build()
            .expect("table-1 presets are valid")
    }

    /// Number of NPU cores sharing the global buffer.
    #[must_use]
    pub const fn cores(&self) -> u32 {
        self.cores
    }

    /// Size of the shared on-chip global buffer in bytes.
    #[must_use]
    pub const fn spm_bytes(&self) -> u64 {
        self.spm_bytes
    }

    /// Off-chip bandwidth in bytes per cycle (equals GB/s at 1 GHz).
    #[must_use]
    pub const fn dma_bytes_per_cycle(&self) -> u64 {
        self.dma_bytes_per_cycle
    }

    /// Rows of each core's PE array.
    #[must_use]
    pub const fn pe_rows(&self) -> u32 {
        self.pe_rows
    }

    /// Columns of each core's PE array.
    #[must_use]
    pub const fn pe_cols(&self) -> u32 {
        self.pe_cols
    }

    /// Fixed DRAM access latency added to every DMA transfer, in cycles.
    #[must_use]
    pub const fn dram_latency_cycles(&self) -> u64 {
        self.dram_latency_cycles
    }

    /// Element width of activations and weights.
    #[must_use]
    pub const fn element_size(&self) -> ElementSize {
        self.element_size
    }

    /// The heterogeneous core classes this configuration was built
    /// from; empty for homogeneous configurations.
    #[must_use]
    pub fn core_classes(&self) -> &[CoreClass] {
        &self.core_classes
    }

    /// Whether the configuration was built from heterogeneous core
    /// classes.
    #[must_use]
    pub fn is_heterogeneous(&self) -> bool {
        !self.core_classes.is_empty()
    }

    /// The `hetero1` reference configuration: a big.LITTLE mix of one
    /// 32x32-PE core with a 160 KiB SPM share and two 16x16-PE cores
    /// with 48 KiB shares — 3 cores, 256 KiB total, 32 B/cycle, like
    /// [`ArchPreset::Arch1`] with an extra pair of little cores.
    #[must_use]
    pub fn hetero1() -> Self {
        ArchConfigBuilder::heterogeneous(
            vec![
                CoreClass::new(1, 32, 32, 160 * 1024),
                CoreClass::new(2, 16, 16, 48 * 1024),
            ],
            32,
        )
        .build()
        .expect("static hetero1 spec is valid")
    }
}

impl fmt::Display for ArchConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_heterogeneous() {
            write!(f, "hetero [")?;
            for (i, c) in self.core_classes.iter().enumerate() {
                if i > 0 {
                    write!(f, " + ")?;
                }
                write!(f, "{}x {}x{} PEs", c.count, c.pe_rows, c.pe_cols)?;
            }
            return write!(
                f,
                "], {} KiB SPM, {} B/cyc DRAM",
                self.spm_bytes / 1024,
                self.dma_bytes_per_cycle
            );
        }
        write!(
            f,
            "{} cores x {}x{} PEs, {} KiB SPM, {} B/cyc DRAM",
            self.cores,
            self.pe_rows,
            self.pe_cols,
            self.spm_bytes / 1024,
            self.dma_bytes_per_cycle
        )
    }
}

/// Builder for custom [`ArchConfig`] instances.
///
/// # Examples
///
/// ```
/// use flexer_arch::ArchConfigBuilder;
///
/// // An 8-core device with a 1 MiB buffer and a wider DRAM link.
/// let arch = ArchConfigBuilder::new(8, 1024 * 1024, 128)
///     .pe_array(16, 16)
///     .dram_latency(80)
///     .build()?;
/// assert_eq!(arch.cores(), 8);
/// # Ok::<(), flexer_arch::ArchConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ArchConfigBuilder {
    config: ArchConfig,
}

impl ArchConfigBuilder {
    /// Starts a configuration from the three Table-1 axes. PE array
    /// defaults to 32x32, DRAM latency to 100 cycles, elements to int8.
    #[must_use]
    pub fn new(cores: u32, spm_bytes: u64, dma_bytes_per_cycle: u64) -> Self {
        Self {
            config: ArchConfig {
                cores,
                spm_bytes,
                dma_bytes_per_cycle,
                pe_rows: 32,
                pe_cols: 32,
                dram_latency_cycles: 100,
                element_size: ElementSize::Int8,
                core_classes: Vec::new(),
            },
        }
    }

    /// Starts a heterogeneous configuration from a list of core
    /// classes. The effective parameters are derived conservatively:
    /// `cores` and `spm_bytes` sum over the classes, the PE array is
    /// the per-axis minimum (weakest core), so the latency model never
    /// underestimates any core. DRAM latency and element size default
    /// as in [`ArchConfigBuilder::new`] and remain settable.
    #[must_use]
    pub fn heterogeneous(classes: Vec<CoreClass>, dma_bytes_per_cycle: u64) -> Self {
        let cores = classes.iter().map(|c| c.count).sum();
        let spm_bytes = classes
            .iter()
            .map(|c| u64::from(c.count) * c.spm_share_bytes)
            .sum();
        let pe_rows = classes.iter().map(|c| c.pe_rows).min().unwrap_or(0);
        let pe_cols = classes.iter().map(|c| c.pe_cols).min().unwrap_or(0);
        let mut b = Self::new(cores, spm_bytes, dma_bytes_per_cycle).pe_array(pe_rows, pe_cols);
        b.config.core_classes = classes;
        b
    }

    /// Sets the per-core PE array extents.
    #[must_use]
    pub fn pe_array(mut self, rows: u32, cols: u32) -> Self {
        self.config.pe_rows = rows;
        self.config.pe_cols = cols;
        self
    }

    /// Sets the fixed DRAM access latency in cycles.
    #[must_use]
    pub fn dram_latency(mut self, cycles: u64) -> Self {
        self.config.dram_latency_cycles = cycles;
        self
    }

    /// Sets the element width.
    #[must_use]
    pub fn element_size(mut self, elem: ElementSize) -> Self {
        self.config.element_size = elem;
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ArchConfigError`] when any structural parameter
    /// (cores, SPM size, bandwidth, PE extents) is zero.
    pub fn build(self) -> Result<ArchConfig, ArchConfigError> {
        let c = &self.config;
        if c.cores == 0 {
            return Err(ArchConfigError::new("core count must be positive"));
        }
        if c.spm_bytes == 0 {
            return Err(ArchConfigError::new("SPM size must be positive"));
        }
        if c.dma_bytes_per_cycle == 0 {
            return Err(ArchConfigError::new("DRAM bandwidth must be positive"));
        }
        if c.pe_rows == 0 || c.pe_cols == 0 {
            return Err(ArchConfigError::new("PE array extents must be positive"));
        }
        for class in &c.core_classes {
            if class.count == 0 || class.pe_rows == 0 || class.pe_cols == 0 {
                return Err(ArchConfigError::new(
                    "core-class counts and PE extents must be positive",
                ));
            }
            if class.spm_share_bytes == 0 {
                return Err(ArchConfigError::new(
                    "core-class SPM shares must be positive",
                ));
            }
        }
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_presets() {
        let expect = [
            (2u32, 256u64, 32u64),
            (2, 256, 64),
            (2, 512, 32),
            (2, 512, 64),
            (4, 256, 32),
            (4, 256, 64),
            (4, 512, 32),
            (4, 512, 64),
        ];
        for (preset, (cores, kib, bpc)) in ArchPreset::all().into_iter().zip(expect) {
            let arch = ArchConfig::preset(preset);
            assert_eq!(arch.cores(), cores, "{preset}");
            assert_eq!(arch.spm_bytes(), kib * 1024, "{preset}");
            assert_eq!(arch.dma_bytes_per_cycle(), bpc, "{preset}");
            assert_eq!(arch.pe_rows(), 32);
            assert_eq!(arch.pe_cols(), 32);
        }
    }

    #[test]
    fn preset_parse_round_trips() {
        for preset in ArchPreset::all() {
            let parsed: ArchPreset = preset.to_string().parse().unwrap();
            assert_eq!(parsed, preset);
        }
        assert!("arch9".parse::<ArchPreset>().is_err());
    }

    #[test]
    fn builder_customization() {
        let arch = ArchConfigBuilder::new(8, 1 << 20, 128)
            .pe_array(16, 64)
            .dram_latency(50)
            .element_size(ElementSize::Fp16)
            .build()
            .unwrap();
        assert_eq!(arch.cores(), 8);
        assert_eq!(arch.pe_rows(), 16);
        assert_eq!(arch.pe_cols(), 64);
        assert_eq!(arch.dram_latency_cycles(), 50);
        assert_eq!(arch.element_size(), ElementSize::Fp16);
    }

    #[test]
    fn builder_rejects_zero_parameters() {
        assert!(ArchConfigBuilder::new(0, 1024, 32).build().is_err());
        assert!(ArchConfigBuilder::new(2, 0, 32).build().is_err());
        assert!(ArchConfigBuilder::new(2, 1024, 0).build().is_err());
        assert!(ArchConfigBuilder::new(2, 1024, 32)
            .pe_array(0, 32)
            .build()
            .is_err());
    }

    #[test]
    fn display_mentions_key_parameters() {
        let s = ArchConfig::preset(ArchPreset::Arch6).to_string();
        assert!(s.contains("4 cores"));
        assert!(s.contains("256 KiB"));
        assert!(s.contains("64 B/cyc"));
    }

    #[test]
    fn hetero1_effective_parameters_are_conservative() {
        let arch = ArchConfig::hetero1();
        assert!(arch.is_heterogeneous());
        assert_eq!(arch.core_classes().len(), 2);
        // Sums: 1 big + 2 little cores, 160 + 2*48 KiB SPM.
        assert_eq!(arch.cores(), 3);
        assert_eq!(arch.spm_bytes(), 256 * 1024);
        // Weakest-core PE array: the 16x16 littles.
        assert_eq!(arch.pe_rows(), 16);
        assert_eq!(arch.pe_cols(), 16);
        assert_eq!(arch.dma_bytes_per_cycle(), 32);
    }

    #[test]
    fn hetero_effective_pe_minimum_is_per_axis() {
        // A 8x64 class mixed with a 64x8 class models as 8x8.
        let arch = ArchConfigBuilder::heterogeneous(
            vec![
                CoreClass::new(1, 8, 64, 1024),
                CoreClass::new(1, 64, 8, 1024),
            ],
            32,
        )
        .build()
        .unwrap();
        assert_eq!((arch.pe_rows(), arch.pe_cols()), (8, 8));
        assert_eq!(arch.cores(), 2);
        assert_eq!(arch.spm_bytes(), 2048);
    }

    #[test]
    fn hetero_differs_from_equivalent_homogeneous_config() {
        let hetero =
            ArchConfigBuilder::heterogeneous(vec![CoreClass::new(2, 32, 32, 128 * 1024)], 32)
                .build()
                .unwrap();
        let homo = ArchConfigBuilder::new(2, 256 * 1024, 32).build().unwrap();
        assert_eq!(hetero.cores(), homo.cores());
        assert_eq!(hetero.spm_bytes(), homo.spm_bytes());
        // Same effective parameters, distinct identity (cache keys
        // never alias across the two).
        assert_ne!(hetero, homo);
    }

    #[test]
    fn hetero_rejects_degenerate_classes() {
        assert!(
            ArchConfigBuilder::heterogeneous(vec![CoreClass::new(0, 32, 32, 1024)], 32)
                .build()
                .is_err()
        );
        assert!(
            ArchConfigBuilder::heterogeneous(vec![CoreClass::new(1, 0, 32, 1024)], 32)
                .build()
                .is_err()
        );
        assert!(
            ArchConfigBuilder::heterogeneous(vec![CoreClass::new(1, 32, 32, 0)], 32)
                .build()
                .is_err()
        );
        assert!(ArchConfigBuilder::heterogeneous(vec![], 32)
            .build()
            .is_err());
    }

    #[test]
    fn hetero_display_lists_classes() {
        let s = ArchConfig::hetero1().to_string();
        assert!(s.contains("hetero"), "{s}");
        assert!(s.contains("1x 32x32 PEs"), "{s}");
        assert!(s.contains("2x 16x16 PEs"), "{s}");
        assert!(s.contains("256 KiB"), "{s}");
    }
}
