//! Energy model for tiled-convolution schedules.
//!
//! The paper motivates tiling and scheduling with "the execution time,
//! the number of data accesses, and the energy efficiency of an
//! execution schedule" (§1) but evaluates time and traffic only. This
//! model closes that gap with the standard accelerator energy
//! breakdown (cf. Eyeriss): per-byte costs for DRAM and on-chip SPM
//! accesses plus a per-MAC compute cost. Off-chip accesses dominate by
//! roughly two orders of magnitude, which is why schedules that reduce
//! transfers reduce energy almost proportionally.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-access energy costs in picojoules.
///
/// Defaults follow the widely used 45 nm estimates popularized by the
/// Eyeriss line of work: DRAM ~200 pJ/byte, large SPM ~6 pJ/byte,
/// int8 MAC ~0.2 pJ. The absolute values matter less than their
/// ratios; construct custom models for other technology points.
///
/// # Examples
///
/// ```
/// use flexer_arch::EnergyModel;
///
/// let m = EnergyModel::default();
/// // Moving a byte off-chip costs ~30x an on-chip access.
/// assert!(m.dram_pj_per_byte() / m.spm_pj_per_byte() > 10.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    dram_pj_per_byte: f64,
    spm_pj_per_byte: f64,
    mac_pj: f64,
}

impl EnergyModel {
    /// Creates a model from explicit per-access costs.
    ///
    /// # Panics
    ///
    /// Panics if any cost is negative or non-finite.
    #[must_use]
    pub fn new(dram_pj_per_byte: f64, spm_pj_per_byte: f64, mac_pj: f64) -> Self {
        for v in [dram_pj_per_byte, spm_pj_per_byte, mac_pj] {
            assert!(
                v.is_finite() && v >= 0.0,
                "energy costs must be non-negative"
            );
        }
        Self {
            dram_pj_per_byte,
            spm_pj_per_byte,
            mac_pj,
        }
    }

    /// Energy per byte moved between DRAM and the on-chip buffer.
    #[must_use]
    pub const fn dram_pj_per_byte(&self) -> f64 {
        self.dram_pj_per_byte
    }

    /// Energy per byte read from or written to the on-chip buffer.
    #[must_use]
    pub const fn spm_pj_per_byte(&self) -> f64 {
        self.spm_pj_per_byte
    }

    /// Energy per multiply-accumulate.
    #[must_use]
    pub const fn mac_pj(&self) -> f64 {
        self.mac_pj
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::new(200.0, 6.0, 0.2)
    }
}

impl fmt::Display for EnergyModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DRAM {} pJ/B, SPM {} pJ/B, MAC {} pJ",
            self.dram_pj_per_byte, self.spm_pj_per_byte, self.mac_pj
        )
    }
}

/// Energy of one schedule, split by component. All values in
/// picojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Off-chip transfer energy (the schedule-dependent part).
    pub dram_pj: f64,
    /// On-chip buffer access energy.
    pub spm_pj: f64,
    /// Compute energy (schedule-independent for a fixed tiling).
    pub compute_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in picojoules.
    #[must_use]
    pub fn total_pj(&self) -> f64 {
        self.dram_pj + self.spm_pj + self.compute_pj
    }

    /// Total energy in microjoules (convenience for printing).
    #[must_use]
    pub fn total_uj(&self) -> f64 {
        self.total_pj() / 1e6
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} uJ (DRAM {:.1}, SPM {:.1}, MAC {:.1})",
            self.total_uj(),
            self.dram_pj / 1e6,
            self.spm_pj / 1e6,
            self.compute_pj / 1e6
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ratios_are_sane() {
        let m = EnergyModel::default();
        assert!(m.dram_pj_per_byte() > m.spm_pj_per_byte());
        assert!(m.spm_pj_per_byte() > m.mac_pj());
    }

    #[test]
    fn breakdown_totals() {
        let b = EnergyBreakdown {
            dram_pj: 1e6,
            spm_pj: 2e6,
            compute_pj: 3e6,
        };
        assert_eq!(b.total_pj(), 6e6);
        assert!((b.total_uj() - 6.0).abs() < 1e-12);
        let s = b.to_string();
        assert!(s.contains("6.0 uJ"), "{s}");
    }

    #[test]
    fn custom_model_round_trips() {
        let m = EnergyModel::new(100.0, 2.0, 0.05);
        assert_eq!(m.dram_pj_per_byte(), 100.0);
        assert_eq!(m.spm_pj_per_byte(), 2.0);
        assert_eq!(m.mac_pj(), 0.05);
        assert!(m.to_string().contains("100"));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_costs_rejected() {
        let _ = EnergyModel::new(-1.0, 1.0, 1.0);
    }
}
