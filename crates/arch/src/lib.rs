//! Parameterizable multi-NPU accelerator model.
//!
//! The paper evaluates Flexer on a multi-NPU accelerator developed by
//! Samsung Research: `n` NPU cores (each a 32x32 PE array at 1 GHz)
//! sharing an on-chip scratchpad ("global buffer") and a DRAM link of
//! configurable bandwidth (paper §2.1, §5 and Table 1). That hardware
//! and its cycle-accurate simulator are proprietary; this crate
//! provides the analytical substitute described in DESIGN.md §2:
//!
//! * [`ArchConfig`] — the hardware parameters, with the eight Table-1
//!   presets available through [`ArchPreset`];
//! * [`PerfModel`] / [`SystolicModel`] — per-operation latency for a
//!   tiled convolution and per-transfer latency for DMA traffic.
//!
//! The paper only requires that "a cycle-accurate performance model
//! must be available to compute the latency of operations for given
//! data (tile) sizes"; the scheduler is agnostic to how those cycle
//! counts are produced.
//!
//! # Examples
//!
//! ```
//! use flexer_arch::{ArchConfig, ArchPreset, ConvTileDims, PerfModel, SystolicModel};
//!
//! let arch = ArchConfig::preset(ArchPreset::Arch5);
//! assert_eq!(arch.cores(), 4);
//! let model = SystolicModel::new(&arch);
//! let tile = ConvTileDims {
//!     out_channels: 64,
//!     in_channels: 32,
//!     out_height: 14,
//!     out_width: 14,
//!     kernel_h: 3,
//!     kernel_w: 3,
//! };
//! assert!(model.conv_cycles(&tile) > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod energy;
mod perf;

pub use config::{ArchConfig, ArchConfigBuilder, ArchConfigError, ArchPreset, CoreClass};
pub use energy::{EnergyBreakdown, EnergyModel};
pub use perf::{ConvTileDims, PerfModel, SystolicModel};
