//! Cycle-level performance model.

use crate::config::ArchConfig;
use serde::{Deserialize, Serialize};

/// Extents of one tiled convolution operation, as consumed by the
/// performance model.
///
/// A tiled convolution produces a `out_channels x out_height x
/// out_width` output tile from an input tile covering `in_channels`
/// channels, applying a `kernel_h x kernel_w` kernel.
///
/// # Examples
///
/// ```
/// let dims = flexer_arch::ConvTileDims {
///     out_channels: 32,
///     in_channels: 64,
///     out_height: 7,
///     out_width: 7,
///     kernel_h: 3,
///     kernel_w: 3,
/// };
/// assert_eq!(dims.macs(), 32 * 64 * 7 * 7 * 9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvTileDims {
    /// Output channels computed by the operation (`tOTc`).
    pub out_channels: u32,
    /// Input channels consumed (`tINc`).
    pub in_channels: u32,
    /// Output tile height (`tOTh`).
    pub out_height: u32,
    /// Output tile width (`tOTw`).
    pub out_width: u32,
    /// Kernel height (`R`).
    pub kernel_h: u32,
    /// Kernel width (`S`).
    pub kernel_w: u32,
}

impl ConvTileDims {
    /// Multiply-accumulate count of the operation.
    #[must_use]
    pub const fn macs(&self) -> u64 {
        self.out_channels as u64
            * self.in_channels as u64
            * self.out_height as u64
            * self.out_width as u64
            * self.kernel_h as u64
            * self.kernel_w as u64
    }
}

/// A cycle-level performance model for tiled convolutions and DMA
/// transfers.
///
/// The paper assumes "a cycle-accurate performance model … to compute
/// the latency of operations for given data (tile) sizes" (§2.1). The
/// scheduler only interacts with this trait; swap in a different
/// implementation to retarget another accelerator.
pub trait PerfModel: Send + Sync {
    /// Latency, in cycles, of one tiled convolution on a single NPU
    /// core.
    fn conv_cycles(&self, dims: &ConvTileDims) -> u64;

    /// Latency, in cycles, of moving `bytes` between DRAM and the
    /// on-chip buffer (either direction).
    fn dma_cycles(&self, bytes: u64) -> u64;

    /// Latency, in cycles, of one tiled *grouped* convolution on a
    /// single NPU core: `groups` independent group slices, each with
    /// the per-group extents in `dims` (`dims.out_channels` /
    /// `dims.in_channels` are `K/G` and `C/G` portions of the tile).
    ///
    /// The default runs the group slices back to back; models that
    /// amortize per-operation overheads may override it.
    fn grouped_conv_cycles(&self, groups: u32, dims: &ConvTileDims) -> u64 {
        u64::from(groups.max(1)).saturating_mul(self.conv_cycles(dims))
    }

    /// Admissible lower bound on the makespan of a set of compute
    /// operations packed onto `cores` identical cores.
    ///
    /// `total_cycles` is the summed latency of every operation,
    /// `max_op_cycles` the longest single operation and
    /// `chain_cycles` the longest dependency chain. Any legal schedule
    /// needs at least `ceil(total / cores)` cycles of aggregate core
    /// time, runs its longest operation without preemption and
    /// serializes its longest chain, so the maximum of the three never
    /// exceeds the true makespan.
    fn packed_compute_cycles(
        &self,
        total_cycles: u64,
        max_op_cycles: u64,
        chain_cycles: u64,
        cores: u32,
    ) -> u64 {
        let cores = u64::from(cores.max(1));
        total_cycles
            .div_ceil(cores)
            .max(max_op_cycles)
            .max(chain_cycles)
    }

    /// Admissible lower bound on the busy time of the single shared
    /// DMA channel for one compulsory transfer per entry of
    /// `transfer_bytes`: transfers never overlap on the channel, so
    /// their individual latencies add up.
    fn serial_dma_cycles(&self, transfer_bytes: &[u64]) -> u64 {
        transfer_bytes
            .iter()
            .fold(0u64, |acc, &b| acc.saturating_add(self.dma_cycles(b)))
    }
}

/// Performance model of a weight-stationary systolic PE array, matching
/// the evaluation hardware's 32x32 array per core (§5).
///
/// Compute: input channels map to PE rows and output channels to PE
/// columns, so one pass over the array computes up to `rows x cols`
/// channel pairs per output element per kernel tap:
///
/// ```text
/// cycles = ceil(tICc/rows) * ceil(tOTc/cols) * tOTh * tOTw * R * S + fill
/// ```
///
/// where `fill = rows + cols` is the pipeline fill/drain overhead per
/// operation. DMA: a fixed DRAM access latency plus `bytes/bandwidth`
/// cycles on the shared link.
///
/// # Examples
///
/// ```
/// use flexer_arch::{ArchConfig, ArchPreset, ConvTileDims, PerfModel, SystolicModel};
///
/// let arch = ArchConfig::preset(ArchPreset::Arch1);
/// let m = SystolicModel::new(&arch);
/// // A perfectly matched 32x32-channel tile needs exactly one array pass
/// // per output element and kernel tap.
/// let dims = ConvTileDims {
///     out_channels: 32,
///     in_channels: 32,
///     out_height: 4,
///     out_width: 4,
///     kernel_h: 3,
///     kernel_w: 3,
/// };
/// assert_eq!(m.conv_cycles(&dims), 4 * 4 * 9 + 64);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystolicModel {
    pe_rows: u32,
    pe_cols: u32,
    dma_bytes_per_cycle: u64,
    dram_latency_cycles: u64,
}

impl SystolicModel {
    /// Creates the model for a hardware configuration.
    #[must_use]
    pub fn new(arch: &ArchConfig) -> Self {
        Self {
            pe_rows: arch.pe_rows(),
            pe_cols: arch.pe_cols(),
            dma_bytes_per_cycle: arch.dma_bytes_per_cycle(),
            dram_latency_cycles: arch.dram_latency_cycles(),
        }
    }

    /// Pipeline fill/drain overhead per operation, in cycles.
    #[must_use]
    pub const fn fill_cycles(&self) -> u64 {
        self.pe_rows as u64 + self.pe_cols as u64
    }
}

impl PerfModel for SystolicModel {
    fn conv_cycles(&self, dims: &ConvTileDims) -> u64 {
        let row_passes = u64::from(dims.in_channels.div_ceil(self.pe_rows));
        let col_passes = u64::from(dims.out_channels.div_ceil(self.pe_cols));
        let spatial = u64::from(dims.out_height) * u64::from(dims.out_width);
        let taps = u64::from(dims.kernel_h) * u64::from(dims.kernel_w);
        row_passes * col_passes * spatial * taps + self.fill_cycles()
    }

    fn dma_cycles(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        self.dram_latency_cycles + bytes.div_ceil(self.dma_bytes_per_cycle)
    }

    /// Group slices stream through the array back to back, paying the
    /// pipeline fill once per operation rather than once per group:
    ///
    /// ```text
    /// cycles = G * ceil(Cpg/rows) * ceil(Kpg/cols) * tOTh * tOTw * R * S + fill
    /// ```
    ///
    /// Each group maps only `C/G x K/G` channel pairs onto the array,
    /// so depthwise tiles (1x1 channel pairs per group) pay one pass
    /// per output element and tap per group.
    fn grouped_conv_cycles(&self, groups: u32, dims: &ConvTileDims) -> u64 {
        let per_group = self.conv_cycles(dims) - self.fill_cycles();
        u64::from(groups.max(1)).saturating_mul(per_group) + self.fill_cycles()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ArchConfigBuilder, ArchPreset};

    fn model() -> SystolicModel {
        SystolicModel::new(&ArchConfig::preset(ArchPreset::Arch1))
    }

    fn dims(k: u32, c: u32, h: u32, w: u32, r: u32, s: u32) -> ConvTileDims {
        ConvTileDims {
            out_channels: k,
            in_channels: c,
            out_height: h,
            out_width: w,
            kernel_h: r,
            kernel_w: s,
        }
    }

    #[test]
    fn perfectly_matched_tile() {
        let m = model();
        assert_eq!(m.conv_cycles(&dims(32, 32, 4, 4, 3, 3)), 16 * 9 + 64);
    }

    #[test]
    fn channel_underutilization_rounds_up() {
        let m = model();
        // 33 input channels need two row passes.
        assert_eq!(m.conv_cycles(&dims(32, 33, 1, 1, 1, 1)), 2 + 64);
        // Tiny tiles still pay a full array pass.
        assert_eq!(m.conv_cycles(&dims(1, 1, 1, 1, 1, 1)), 1 + 64);
    }

    #[test]
    fn cycles_scale_linearly_with_spatial_extent() {
        let m = model();
        let one = m.conv_cycles(&dims(32, 32, 1, 1, 3, 3)) - m.fill_cycles();
        let big = m.conv_cycles(&dims(32, 32, 8, 8, 3, 3)) - m.fill_cycles();
        assert_eq!(big, one * 64);
    }

    #[test]
    fn dma_latency_includes_fixed_cost() {
        let m = model();
        assert_eq!(m.dma_cycles(0), 0);
        assert_eq!(m.dma_cycles(1), 100 + 1);
        assert_eq!(m.dma_cycles(32), 100 + 1);
        assert_eq!(m.dma_cycles(33), 100 + 2);
        assert_eq!(m.dma_cycles(64 * 1024), 100 + 2048);
    }

    #[test]
    fn wider_link_moves_data_faster() {
        let narrow = model();
        let wide = SystolicModel::new(&ArchConfig::preset(ArchPreset::Arch2));
        assert!(wide.dma_cycles(1 << 16) < narrow.dma_cycles(1 << 16));
    }

    #[test]
    fn custom_pe_array_changes_fill() {
        let arch = ArchConfigBuilder::new(2, 1 << 18, 32)
            .pe_array(16, 8)
            .build()
            .unwrap();
        let m = SystolicModel::new(&arch);
        assert_eq!(m.fill_cycles(), 24);
        // 32 input channels on 16 rows -> 2 passes; 32 outputs on 8 cols -> 4.
        assert_eq!(m.conv_cycles(&dims(32, 32, 1, 1, 1, 1)), 8 + 24);
    }

    #[test]
    fn macs_helper() {
        assert_eq!(dims(2, 3, 4, 5, 6, 7).macs(), 2 * 3 * 4 * 5 * 6 * 7);
    }

    #[test]
    fn grouped_cycles_pay_fill_once() {
        let m = model();
        // A depthwise slice: 1x1 channel pair per group, 4x4 spatial,
        // 3x3 taps. 16 groups stream back to back.
        let slice = dims(1, 1, 4, 4, 3, 3);
        let per_group = m.conv_cycles(&slice) - m.fill_cycles();
        assert_eq!(
            m.grouped_conv_cycles(16, &slice),
            16 * per_group + m.fill_cycles()
        );
        // One group degenerates to the dense cost.
        assert_eq!(m.grouped_conv_cycles(1, &slice), m.conv_cycles(&slice));
        assert_eq!(m.grouped_conv_cycles(0, &slice), m.conv_cycles(&slice));
    }

    #[test]
    fn grouped_cycles_beat_serializing_dense_calls() {
        let m = model();
        let slice = dims(4, 4, 2, 2, 3, 3);
        // The override amortizes the fill across groups, so it's
        // cheaper than the default trait implementation's G full ops
        // but never cheaper than the raw MAC passes.
        assert!(m.grouped_conv_cycles(8, &slice) < 8 * m.conv_cycles(&slice));
        assert!(m.grouped_conv_cycles(8, &slice) > 8 * (m.conv_cycles(&slice) - m.fill_cycles()));
    }

    #[test]
    fn packed_compute_bound_takes_the_binding_term() {
        let m = model();
        // Aggregate-work bound: 100 cycles over 4 cores.
        assert_eq!(m.packed_compute_cycles(100, 10, 10, 4), 25);
        // Longest-op bound dominates.
        assert_eq!(m.packed_compute_cycles(100, 60, 10, 4), 60);
        // Chain bound dominates.
        assert_eq!(m.packed_compute_cycles(100, 10, 90, 4), 90);
        // Rounds up and tolerates a zero core count.
        assert_eq!(m.packed_compute_cycles(101, 0, 0, 4), 26);
        assert_eq!(m.packed_compute_cycles(7, 0, 0, 0), 7);
    }

    #[test]
    fn serial_dma_bound_sums_per_transfer_latencies() {
        let m = model();
        // Each transfer pays the fixed DRAM latency; zero-byte entries
        // cost nothing.
        assert_eq!(m.serial_dma_cycles(&[32, 32, 0]), m.dma_cycles(32) * 2);
        assert_eq!(m.serial_dma_cycles(&[]), 0);
    }
}
