//! Property-based tests of the performance model: cycle counts must be
//! monotone and consistent so the schedulers' comparisons are
//! meaningful.

use flexer_arch::{
    ArchConfig, ArchConfigBuilder, ArchPreset, ConvTileDims, PerfModel, SystolicModel,
};
use proptest::prelude::*;

fn dims_strategy() -> impl Strategy<Value = ConvTileDims> {
    (1u32..256, 1u32..256, 1u32..32, 1u32..32, 1u32..8, 1u32..8).prop_map(|(k, c, h, w, r, s)| {
        ConvTileDims {
            out_channels: k,
            in_channels: c,
            out_height: h,
            out_width: w,
            kernel_h: r,
            kernel_w: s,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// More work never takes fewer cycles (growing any dimension).
    #[test]
    fn conv_cycles_are_monotone(dims in dims_strategy()) {
        let model = SystolicModel::new(&ArchConfig::preset(ArchPreset::Arch1));
        let base = model.conv_cycles(&dims);
        prop_assert!(base > 0);
        let grow = [
            ConvTileDims { out_channels: dims.out_channels + 1, ..dims },
            ConvTileDims { in_channels: dims.in_channels + 1, ..dims },
            ConvTileDims { out_height: dims.out_height + 1, ..dims },
            ConvTileDims { out_width: dims.out_width + 1, ..dims },
            ConvTileDims { kernel_h: dims.kernel_h + 1, ..dims },
            ConvTileDims { kernel_w: dims.kernel_w + 1, ..dims },
        ];
        for g in grow {
            prop_assert!(model.conv_cycles(&g) >= base, "{g:?} vs {dims:?}");
        }
    }

    /// Cycles never beat the ideal MAC throughput of the array.
    #[test]
    fn conv_cycles_respect_the_roofline(dims in dims_strategy()) {
        let arch = ArchConfig::preset(ArchPreset::Arch1);
        let model = SystolicModel::new(&arch);
        let peak = u64::from(arch.pe_rows()) * u64::from(arch.pe_cols());
        let ideal = dims.macs().div_ceil(peak);
        prop_assert!(model.conv_cycles(&dims) >= ideal);
    }

    /// DMA latency is monotone in bytes and superadditive in splits
    /// (splitting a transfer pays the fixed DRAM latency twice).
    #[test]
    fn dma_cycles_are_monotone_and_superadditive(a in 1u64..1_000_000, b in 1u64..1_000_000) {
        let model = SystolicModel::new(&ArchConfig::preset(ArchPreset::Arch1));
        prop_assert!(model.dma_cycles(a + b) >= model.dma_cycles(a));
        prop_assert!(model.dma_cycles(a) + model.dma_cycles(b) >= model.dma_cycles(a + b));
    }

    /// Doubling the bandwidth never slows a transfer and converges to
    /// half the streaming time for large transfers.
    #[test]
    fn wider_links_are_faster(bytes in 1u64..4_000_000) {
        let narrow = SystolicModel::new(&ArchConfig::preset(ArchPreset::Arch1));
        let wide = SystolicModel::new(&ArchConfig::preset(ArchPreset::Arch2));
        prop_assert!(wide.dma_cycles(bytes) <= narrow.dma_cycles(bytes));
    }

    /// A wider PE array never increases compute cycles beyond the fill
    /// overhead.
    #[test]
    fn bigger_arrays_do_not_slow_compute(dims in dims_strategy()) {
        let small = ArchConfigBuilder::new(2, 1 << 18, 32)
            .pe_array(16, 16)
            .build()
            .unwrap();
        let big = ArchConfigBuilder::new(2, 1 << 18, 32)
            .pe_array(32, 32)
            .build()
            .unwrap();
        let ms = SystolicModel::new(&small);
        let mb = SystolicModel::new(&big);
        let fill_delta = mb.fill_cycles().saturating_sub(ms.fill_cycles());
        prop_assert!(mb.conv_cycles(&dims) <= ms.conv_cycles(&dims) + fill_delta);
    }
}
