//! Benchmarks of data-flow-graph construction across DFG sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flexer_arch::{ArchConfig, ArchPreset, SystolicModel};
use flexer_model::ConvLayer;
use flexer_tiling::{Dataflow, Dfg, TilingFactors};
use std::hint::black_box;

fn bench_dfg_build(c: &mut Criterion) {
    let arch = ArchConfig::preset(ArchPreset::Arch5);
    let model = SystolicModel::new(&arch);
    let layer = ConvLayer::new("b", 256, 56, 56, 256).unwrap();
    let mut group = c.benchmark_group("dfg_build");
    for (tag, k, ch, h, w) in [
        ("64_ops", 4u32, 4u32, 2u32, 2u32),
        ("512_ops", 8, 8, 4, 2),
        ("4096_ops", 16, 16, 4, 4),
    ] {
        let factors = TilingFactors::normalized(&layer, k, ch, h, w);
        group.bench_with_input(BenchmarkId::from_parameter(tag), &factors, |b, &f| {
            b.iter(|| Dfg::build(black_box(&layer), f, Dataflow::Csk, &model, &arch).unwrap())
        });
    }
    group.finish();
}

fn bench_tiling_enumeration(c: &mut Criterion) {
    let arch = ArchConfig::preset(ArchPreset::Arch5);
    let layer = ConvLayer::new("e", 512, 28, 28, 512).unwrap();
    c.bench_function("enumerate_tilings_default", |b| {
        b.iter(|| {
            flexer_tiling::enumerate_tilings(
                black_box(&layer),
                &arch,
                &flexer_tiling::TilingOptions::default(),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets =  bench_dfg_build, bench_tiling_enumeration
}
criterion_main!(benches);
