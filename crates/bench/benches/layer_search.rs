//! Benchmarks of the Algorithm-1 layer search (quick budget) and the
//! memoized replay path the paper suggests in §3.

use criterion::{criterion_group, criterion_main, Criterion};
use flexer_arch::{ArchConfig, ArchPreset};
use flexer_model::ConvLayer;
use flexer_sched::{search_layer, search_layer_cached, MemoCache, SearchOptions};
use std::hint::black_box;

fn bench_search(c: &mut Criterion) {
    let arch = ArchConfig::preset(ArchPreset::Arch5);
    let layer = ConvLayer::new("q", 96, 28, 28, 96).unwrap();
    let mut opts = SearchOptions::quick();
    opts.threads = 1;

    c.bench_function("search_layer_quick", |b| {
        b.iter(|| search_layer(black_box(&layer), &arch, &opts).unwrap())
    });

    // Memoized replay: a cache warmed once turns the search into a
    // single GetSchedule run.
    let cache = MemoCache::new();
    search_layer_cached(&layer, &arch, &opts, &cache).unwrap();
    c.bench_function("search_layer_memo_replay", |b| {
        b.iter(|| search_layer_cached(black_box(&layer), &arch, &opts, &cache).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets =  bench_search
}
criterion_main!(benches);
