//! Benchmarks of one full `GetSchedule` run: the out-of-order list
//! scheduler versus the static loop-order baseline on the same DFG.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flexer_arch::{ArchConfig, ArchPreset, SystolicModel};
use flexer_model::ConvLayer;
use flexer_sched::{OooScheduler, StaticScheduler};
use flexer_tiling::{Dataflow, Dfg, TilingFactors};
use std::hint::black_box;

fn bench_schedulers(c: &mut Criterion) {
    let arch = ArchConfig::preset(ArchPreset::Arch5);
    let model = SystolicModel::new(&arch);
    let layer = ConvLayer::new("s", 256, 28, 28, 256).unwrap();

    let mut group = c.benchmark_group("get_schedule");
    for (tag, k, ch, h, w) in [("128_ops", 8u32, 4u32, 2u32, 2u32), ("512_ops", 8, 8, 4, 2)] {
        let factors = TilingFactors::normalized(&layer, k, ch, h, w);
        let dfg = Dfg::build(&layer, factors, Dataflow::Csk, &model, &arch).unwrap();
        group.bench_with_input(BenchmarkId::new("ooo", tag), &dfg, |b, d| {
            b.iter(|| {
                OooScheduler::new(black_box(d), &arch, &model)
                    .schedule()
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("static", tag), &dfg, |b, d| {
            b.iter(|| {
                StaticScheduler::new(black_box(d), &arch, &model)
                    .schedule()
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets =  bench_schedulers
}
criterion_main!(benches);
