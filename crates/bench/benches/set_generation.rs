//! Benchmarks of operation-set generation with and without the §4.2
//! dataflow-map pruning — the ablation behind the paper's runtime
//! discussion (100 ready ops x 4 cores = 3.9M raw combinations).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flexer_arch::{ArchConfig, ArchPreset, SystolicModel};
use flexer_model::ConvLayer;
use flexer_sched::{generate_sets, ComboOptions};
use flexer_spm::SpmMemory;
use flexer_tiling::{Dataflow, Dfg, OpId, TilingFactors};
use std::hint::black_box;

fn bench_generation(c: &mut Criterion) {
    let arch = ArchConfig::preset(ArchPreset::Arch5);
    let model = SystolicModel::new(&arch);
    let layer = ConvLayer::new("g", 128, 32, 32, 128).unwrap();
    let factors = TilingFactors::normalized(&layer, 8, 1, 4, 4);
    let dfg = Dfg::build(&layer, factors, Dataflow::Csk, &model, &arch).unwrap();
    let spm = SpmMemory::new(arch.spm_bytes());
    let ready: Vec<OpId> = dfg.initial_ready().collect();
    assert!(ready.len() >= 64);

    let mut group = c.benchmark_group("generate_sets_4wide");
    for (tag, prune) in [("pruned", true), ("unpruned", false)] {
        let opts = ComboOptions {
            width_cap: 16,
            max_combos: 4096,
            max_sets: usize::MAX,
            prune,
        };
        group.bench_with_input(BenchmarkId::from_parameter(tag), &opts, |b, o| {
            b.iter(|| generate_sets(black_box(&dfg), &spm, &ready[..64], 4, o))
        });
    }
    group.finish();

    // How much the pruning actually collapses: report once.
    let pruned = generate_sets(
        &dfg,
        &spm,
        &ready[..64],
        4,
        &ComboOptions {
            width_cap: 16,
            max_combos: 4096,
            max_sets: usize::MAX,
            prune: true,
        },
    );
    eprintln!(
        "note: pruning kept {} distinct classes of 1820 combinations",
        pruned.len()
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets =  bench_generation
}
criterion_main!(benches);
