//! Micro-benchmarks of the scratchpad allocator and the three
//! spill-victim policies (Algorithm 2 vs Table 2's MemPolicy1/2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flexer_spm::{FirstFitSpill, FlexerSpill, SmallestFirstSpill, SpillPolicy, SpmMemory};
use flexer_tiling::TileId;
use std::hint::black_box;

fn tile(n: u32) -> TileId {
    TileId::Output { k: n, s: 0 }
}

/// A deterministic alloc-heavy workload: sized to force spilling on
/// most allocations, with mixed remain-use counts.
fn churn(policy: &dyn SpillPolicy, allocations: u32) -> u64 {
    let mut spm = SpmMemory::new(64 * 1024);
    let mut total = 0;
    for i in 0..allocations {
        // Irregular sizes between 3 and 19 KiB keep the map fragmented.
        let size = 3072 + u64::from(i % 17) * 1024;
        let uses = i % 5;
        let outcome = spm
            .allocate(tile(i), size, uses, policy)
            .expect("workload always fits");
        total += outcome.evictions.len() as u64;
        if i % 3 == 0 {
            spm.set_dirty(tile(i), true);
        }
    }
    total
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("spm_spill_policy");
    for (name, policy) in [
        ("flexer_alg2", &FlexerSpill as &dyn SpillPolicy),
        ("first_fit", &FirstFitSpill),
        ("smallest_first", &SmallestFirstSpill),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, p| {
            b.iter(|| churn(black_box(*p), black_box(256)))
        });
    }
    group.finish();
}

fn bench_compaction(c: &mut Criterion) {
    c.bench_function("spm_compact_fragmented", |b| {
        b.iter_batched(
            || {
                let mut spm = SpmMemory::new(64 * 1024);
                for i in 0..16u32 {
                    spm.allocate(tile(i), 4096, 1, &FlexerSpill).unwrap();
                }
                for i in (0..16u32).step_by(2) {
                    spm.evict(tile(i));
                }
                spm
            },
            |mut spm| black_box(spm.compact()),
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets =  bench_policies, bench_compaction
}
criterion_main!(benches);
