//! Benchmarks of the tracing layer: the disabled instrumentation path
//! (what every untraced search pays), enabled recording, and the full
//! layer search with tracing off versus on.

use criterion::{criterion_group, criterion_main, Criterion};
use flexer_arch::{ArchConfig, ArchPreset};
use flexer_model::ConvLayer;
use flexer_sched::{search_layer, search_layer_traced, SearchOptions};
use flexer_trace::{Lane, TraceConfig, TraceDetail, Tracer};
use std::hint::black_box;

fn bench_lane(c: &mut Criterion) {
    // The disabled path: one branch on a bool per call. This is the
    // entire per-event price instrumentation adds to untraced runs.
    c.bench_function("trace_disabled_span_pair", |b| {
        let mut lane = Lane::off();
        b.iter(|| {
            let guard = lane.enter(black_box("span"));
            lane.attr("k", 1u64);
            lane.exit(guard);
            black_box(&lane);
        })
    });

    c.bench_function("trace_enabled_span_pair", |b| {
        let tracer = Tracer::new(TraceConfig::default());
        b.iter(|| {
            let mut lane = tracer.lane(0, "bench");
            let guard = lane.enter(black_box("span"));
            lane.attr("k", 1u64);
            lane.exit(guard);
            black_box(lane.len())
        })
    });
}

fn bench_search(c: &mut Criterion) {
    let arch = ArchConfig::preset(ArchPreset::Arch1);
    let layer = ConvLayer::new("q", 32, 14, 14, 32).unwrap();
    let mut opts = SearchOptions::quick();
    opts.threads = 1;

    c.bench_function("search_untraced", |b| {
        b.iter(|| search_layer(black_box(&layer), &arch, &opts).unwrap())
    });

    let mut traced = opts.clone();
    traced.trace.detail = TraceDetail::Memory;
    c.bench_function("search_traced_memory_detail", |b| {
        b.iter(|| {
            let (r, trace) = search_layer_traced(black_box(&layer), &arch, &traced);
            black_box(trace.summary().events);
            r.unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_lane, bench_search
}
criterion_main!(benches);
