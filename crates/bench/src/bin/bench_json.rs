//! Machine-readable micro-benchmarks.
//!
//! Two suites, one JSON file each:
//!
//! * `BENCH_PR1.json` — the Algorithm-1 layer search under the default
//!   transactional SPM planning versus the clone-per-candidate
//!   baseline. Rows: `{bench, arch, median_ns, evaluated}`.
//! * `BENCH_PR3.json` — the branch-and-bound network search versus the
//!   exhaustive baseline, on both reference presets. Rows:
//!   `{bench, arch, median_ns, evaluated, candidates_pruned,
//!   early_exits}`.
//!
//! * `BENCH_PR4.json` — the tracing layer's cost: the same layer
//!   search untraced, traced at `Search` detail and traced at `Memory`
//!   detail, plus the measured per-event cost of *disabled*
//!   instrumentation and the derived disabled-path overhead
//!   percentage. Rows: `{bench, arch, median_ns, evaluated}` plus one
//!   `{bench: "trace_disabled_overhead", ...}` summary row.
//!
//! Output paths default to the names above in the current directory;
//! override with `FLEXER_BENCH_OUT` / `FLEXER_BENCH_OUT_PR3` /
//! `FLEXER_BENCH_OUT_PR4`. `FLEXER_BENCH_ITERS` sets the sample count
//! (default 7, median reported).
//!
//! Pass `--trace-out <path>` to also run a traced network search
//! (SqueezeNet head, arch1, single-threaded for a byte-stable trace)
//! and write its Chrome trace-event JSON to `<path>` — load it in
//! `chrome://tracing` or Perfetto.
//!
//! Pass `--store <dir>` to run the *store* suite instead (the other
//! suites are skipped): the same network is scheduled twice through
//! [`Flexer::with_store`] by two independent driver instances sharing
//! `<dir>`, proving the warm pass answers every layer from the
//! persistent cache, skips the search, and returns byte-identical
//! results. Writes `BENCH_PR5.json` (override with
//! `FLEXER_BENCH_OUT_PR5`). Point two consecutive invocations at the
//! same directory and even the "first" pass of the second run is warm
//! — that cross-process warm start is what CI asserts.
//!
//! Pass `--seed` to run the *solver-seeding* suite instead: the same
//! scaled-SqueezeNet network searched with and without
//! [`SearchOptions::seed`] (analytical incumbent seeding) on both
//! reference presets, plus the solver-only backend
//! (`flexer::sched::solve_layer`). Hard-asserts that the seeded and
//! unseeded winners are byte-identical layer for layer and that
//! seeding strictly reduces the number of candidates scheduled to
//! completion. Rows: `{bench, arch, median_ns, evaluated,
//! candidates_bounded, candidates_pruned, early_exits, full_evals,
//! seeded_cutoffs, gap_ppm}`. Writes `BENCH_PR6.json` (override with
//! `FLEXER_BENCH_OUT_PR6`).
//!
//! Pass `--residency` to run the *inter-layer residency* suite
//! instead: the network-level residency planner versus the plain
//! per-layer DRAM round-trip on both reference presets, every
//! residency-on schedule differentially verified. Hard-asserts that
//! DMA bytes strictly drop with latency no worse and that the
//! residency-disabled reference stays byte-identical to the plain
//! search. Rows: `{bench, arch, median_ns, dma_bytes, latency_cycles,
//! resident_edges, spilled_edges, dma_bytes_saved}`. Writes
//! `BENCH_PR8.json` (override with `FLEXER_BENCH_OUT_PR8`).
//!
//! Pass `--zoo` to run the *workload diversity* suite instead: every
//! network in the diverse zoo (transformer encoder, MobileNet-style
//! depthwise net, branching fire net) scheduled with differential
//! verification on Arch1, Arch5 and the heterogeneous configuration,
//! then warm-started from the store by a fresh driver. Hard-asserts
//! every layer of the second pass is a store hit with byte-identical
//! winners, and that the branching net cleanly declines residency.
//! Rows: `{bench, net, arch, cold_ns, warm_ns, layers,
//! latency_cycles, dma_bytes}`. Writes `BENCH_PR9.json` (override
//! with `FLEXER_BENCH_OUT_PR9`).
//!
//! Pass `--fleet` to run the *fleet serving* suite instead: a
//! standalone `flexer-serve` node versus a 3-node consistent-hash
//! fleet (same total worker budget). Hard-asserts cold responses are
//! byte-identical once provenance is masked and that, after an
//! anti-entropy pass replicates every entry fleet-wide, the fleet's
//! aggregate warm-hit throughput (one connection per node) strictly
//! beats the single node. Rows: `{bench, nodes, requests, total_ns,
//! rps}` plus one identity row. Writes `BENCH_PR10.json` (override
//! with `FLEXER_BENCH_OUT_PR10`).

use flexer::prelude::*;
use flexer::trace::Lane;
use std::time::Instant;

struct Row {
    bench: &'static str,
    arch: String,
    median_ns: u128,
    evaluated: usize,
}

fn median_ns(samples: &mut [u128]) -> u128 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn time_search(
    layer: &ConvLayer,
    arch: &ArchConfig,
    opts: &SearchOptions,
    iters: usize,
) -> (u128, usize) {
    // Warm-up run, then `iters` timed samples.
    let warm = flexer::sched::search_layer(layer, arch, opts).expect("benchmark layer schedules");
    let evaluated = warm.evaluated;
    let mut samples: Vec<u128> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            let r =
                flexer::sched::search_layer(layer, arch, opts).expect("benchmark layer schedules");
            assert_eq!(r.evaluated, evaluated);
            t.elapsed().as_nanos()
        })
        .collect();
    (median_ns(&mut samples), evaluated)
}

/// One row of the PR 3 suite: a timed network search plus the pruning
/// counters summed over its layers.
struct PruneRow {
    bench: &'static str,
    arch: String,
    median_ns: u128,
    evaluated: usize,
    candidates_pruned: u64,
    early_exits: u64,
}

fn time_network_search(
    net: &Network,
    arch: &ArchConfig,
    opts: &SearchOptions,
    iters: usize,
) -> (u128, Vec<flexer::sched::LayerSearchResult>) {
    // Warm-up run, then `iters` timed samples.
    let warm =
        flexer::sched::search_network(net.layers(), arch, opts).expect("benchmark net schedules");
    let mut samples: Vec<u128> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            let r = flexer::sched::search_network(net.layers(), arch, opts)
                .expect("benchmark net schedules");
            let ns = t.elapsed().as_nanos();
            assert_eq!(r.len(), warm.len());
            ns
        })
        .collect();
    (median_ns(&mut samples), warm)
}

/// Benchmarks the branch-and-bound network search against the
/// exhaustive baseline and writes `BENCH_PR3.json`. Returns the rows
/// for the console summary.
fn bench_search_prune(iters: usize) -> Vec<PruneRow> {
    let net = scale_spatial(&networks::by_name("squeezenet").expect("known net"), 4);
    let mut rows = Vec::new();
    for preset in [ArchPreset::Arch1, ArchPreset::Arch5] {
        let arch = ArchConfig::preset(preset);
        let mut pruned_opts = SearchOptions::quick();
        pruned_opts.threads = 1;
        pruned_opts.prune = true;
        let mut full_opts = pruned_opts.clone();
        full_opts.prune = false;

        let (pruned_ns, pruned) = time_network_search(&net, &arch, &pruned_opts, iters);
        let (full_ns, full) = time_network_search(&net, &arch, &full_opts, iters);

        // Exactness check: identical winners, candidate for candidate.
        for (p, f) in pruned.iter().zip(full.iter()) {
            assert_eq!(p.factors, f.factors, "{}: tiling differs", p.layer);
            assert_eq!(p.dataflow, f.dataflow, "{}: dataflow differs", p.layer);
            assert!(
                (p.score - f.score).abs() < 1e-9,
                "{}: score differs",
                p.layer
            );
        }

        let mut stats = SearchStats::default();
        let mut evaluated = 0;
        for r in &pruned {
            stats.merge(&r.stats);
            evaluated += r.evaluated;
        }
        let full_evaluated: usize = full.iter().map(|r| r.evaluated).sum();
        rows.push(PruneRow {
            bench: "search_prune",
            arch: preset.to_string(),
            median_ns: pruned_ns,
            evaluated,
            candidates_pruned: stats.candidates_pruned,
            early_exits: stats.early_exits,
        });
        rows.push(PruneRow {
            bench: "search_exhaustive",
            arch: preset.to_string(),
            median_ns: full_ns,
            evaluated: full_evaluated,
            candidates_pruned: 0,
            early_exits: 0,
        });
    }
    rows
}

/// One row of the PR 6 suite: solver-seeded search vs unseeded, plus
/// the solver-only backend vs the exact search.
struct SeedRow {
    bench: &'static str,
    arch: String,
    median_ns: u128,
    evaluated: usize,
    candidates_bounded: u64,
    candidates_pruned: u64,
    early_exits: u64,
    full_evals: u64,
    seeded_cutoffs: u64,
    gap_ppm: u64,
}

/// Scheduler runs that went to completion: everything evaluated minus
/// what the bound gate skipped and what the cutoff aborted mid-run.
fn full_evals(results: &[flexer::sched::LayerSearchResult]) -> u64 {
    results
        .iter()
        .map(|r| r.evaluated as u64 - r.stats.candidates_pruned - r.stats.early_exits)
        .sum()
}

/// The PR 6 suite: analytical incumbent seeding and the solver-only
/// backend, both presets. Writes `BENCH_PR6.json` (override with
/// `FLEXER_BENCH_OUT_PR6`).
fn bench_seed(iters: usize) {
    let out6 =
        std::env::var("FLEXER_BENCH_OUT_PR6").unwrap_or_else(|_| "BENCH_PR6.json".to_owned());
    let net = scale_spatial(&networks::by_name("squeezenet").expect("known net"), 4);
    let mut rows = Vec::new();
    for preset in [ArchPreset::Arch1, ArchPreset::Arch5] {
        let arch = ArchConfig::preset(preset);
        let mut plain_opts = SearchOptions::quick();
        plain_opts.threads = 1;
        let mut seeded_opts = plain_opts.clone();
        seeded_opts.seed.enabled = true;

        let (plain_ns, plain) = time_network_search(&net, &arch, &plain_opts, iters);
        let (seeded_ns, seeded) = time_network_search(&net, &arch, &seeded_opts, iters);

        // Seeding is winner-neutral: identical winners, layer for layer.
        for (s, p) in seeded.iter().zip(plain.iter()) {
            assert_eq!(s.factors, p.factors, "{}: tiling differs", s.layer);
            assert_eq!(s.dataflow, p.dataflow, "{}: dataflow differs", s.layer);
            assert_eq!(s.schedule, p.schedule, "{}: schedule differs", s.layer);
            assert!(
                (s.score - p.score).abs() < 1e-9,
                "{}: score differs",
                s.layer
            );
        }
        assert!(
            full_evals(&seeded) < full_evals(&plain),
            "{preset}: seeding must strictly reduce full scheduler runs \
             ({} vs {})",
            full_evals(&seeded),
            full_evals(&plain),
        );

        // Solver-only backend vs the exact search, summed over layers.
        let t = Instant::now();
        let solved: Vec<_> = net
            .layers()
            .iter()
            .map(|l| flexer::sched::solve_layer(l, &arch, &seeded_opts).expect("solver schedules"))
            .collect();
        let solve_ns = t.elapsed().as_nanos();
        for (s, p) in solved.iter().zip(plain.iter()) {
            assert!(
                s.score >= p.score - 1e-9,
                "{}: the solver cannot beat the proven optimum",
                s.layer
            );
        }

        for (bench, ns, results) in [
            ("search_seeded", seeded_ns, &seeded),
            ("search_unseeded", plain_ns, &plain),
            ("solve_only", solve_ns, &solved),
        ] {
            let mut stats = SearchStats::default();
            let mut evaluated = 0;
            for r in results.iter() {
                stats.merge(&r.stats);
                evaluated += r.evaluated;
            }
            rows.push(SeedRow {
                bench,
                arch: preset.to_string(),
                median_ns: ns,
                evaluated,
                candidates_bounded: stats.candidates_bounded,
                candidates_pruned: stats.candidates_pruned,
                early_exits: stats.early_exits,
                full_evals: full_evals(results),
                seeded_cutoffs: stats.seeded_cutoffs,
                gap_ppm: stats.seed_gap_ppm,
            });
        }
    }
    let mut json = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"bench\": \"{}\", \"arch\": \"{}\", \"median_ns\": {}, \"evaluated\": {}, \
             \"candidates_bounded\": {}, \"candidates_pruned\": {}, \"early_exits\": {}, \
             \"full_evals\": {}, \"seeded_cutoffs\": {}, \"gap_ppm\": {}}}{}\n",
            r.bench,
            r.arch,
            r.median_ns,
            r.evaluated,
            r.candidates_bounded,
            r.candidates_pruned,
            r.early_exits,
            r.full_evals,
            r.seeded_cutoffs,
            r.gap_ppm,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("]\n");
    std::fs::write(&out6, &json).expect("write benchmark output");
    println!("wrote {out6}");
    for triple in rows.chunks(3) {
        let [s, p, o] = triple else {
            unreachable!("rows come in seeded/unseeded/solver triples")
        };
        println!(
            "seed gate {}: seeded {} ns / {} full runs vs unseeded {} ns / {} full runs \
             ({} seed cutoffs); solver-only {} ns, {} full runs, gap {} ppm",
            s.arch,
            s.median_ns,
            s.full_evals,
            p.median_ns,
            p.full_evals,
            s.seeded_cutoffs,
            o.median_ns,
            o.full_evals,
            o.gap_ppm,
        );
    }
}

/// The PR 8 suite: the network-level inter-layer residency planner
/// versus the plain per-layer DRAM round-trip, on both reference
/// presets, with every residency-on schedule differentially verified.
/// Hard-asserts, per architecture: total DMA (DRAM) bytes strictly
/// drop, end-to-end latency is no worse, the residency-disabled
/// reference run is byte-identical to the plain network search, and
/// the plan's cross-layer protocol replays cleanly against the
/// residency ledger. Writes `BENCH_PR8.json` (override with
/// `FLEXER_BENCH_OUT_PR8`).
fn bench_residency(iters: usize) {
    let out8 =
        std::env::var("FLEXER_BENCH_OUT_PR8").unwrap_or_else(|_| "BENCH_PR8.json".to_owned());
    let net = scale_spatial(&networks::by_name("squeezenet").expect("known net"), 4);
    let mut rows = Vec::new();
    for preset in [ArchPreset::Arch1, ArchPreset::Arch5] {
        let mut opts = SearchOptions::quick();
        opts.threads = 1;
        // Every residency-on winner must survive the SPM abstract
        // machine and the resident-counter differential check.
        opts.validate = true;
        let driver = Flexer::new(ArchConfig::preset(preset)).with_options(opts);

        let warm = driver
            .schedule_network_resident(&net)
            .expect("benchmark net schedules");
        let mut samples: Vec<u128> = (0..iters)
            .map(|_| {
                let t = Instant::now();
                let r = driver
                    .schedule_network_resident(&net)
                    .expect("benchmark net schedules");
                let ns = t.elapsed().as_nanos();
                assert_eq!(
                    r.result.total_transfer_bytes(),
                    warm.result.total_transfer_bytes()
                );
                ns
            })
            .collect();
        let resident_ns = median_ns(&mut samples);

        // Gate 1: the residency-disabled reference is byte-identical to
        // the plain per-layer network search. Timed under the same
        // warm-cache regime as the resident loop above.
        let plain = driver.schedule_network(&net).expect("plain net schedules");
        let mut samples: Vec<u128> = (0..iters)
            .map(|_| {
                let t = Instant::now();
                let r = driver.schedule_network(&net).expect("plain net schedules");
                let ns = t.elapsed().as_nanos();
                assert_eq!(r.total_transfer_bytes(), plain.total_transfer_bytes());
                ns
            })
            .collect();
        let plain_ns = median_ns(&mut samples);
        for (a, b) in plain.layers().iter().zip(warm.baseline.layers()) {
            assert_eq!(
                a.schedule, b.schedule,
                "{preset}: residency-off run diverged at {}",
                a.layer
            );
        }
        // Gate 2: DMA bytes strictly drop; latency is no worse.
        let (dram_off, dram_on) = (
            plain.total_transfer_bytes(),
            warm.result.total_transfer_bytes(),
        );
        assert!(
            dram_on < dram_off,
            "{preset}: residency must strictly cut DMA bytes ({dram_on} vs {dram_off})"
        );
        assert!(
            warm.result.total_latency() <= plain.total_latency(),
            "{preset}: residency must not cost latency ({} vs {})",
            warm.result.total_latency(),
            plain.total_latency()
        );
        assert!(warm.result.verified(), "{preset}: resident run unverified");
        // Gate 3: the cross-layer protocol replays within the SPM.
        let peak = flexer::replay_ledger(driver.arch().spm_bytes(), &warm.plan.ledger_ops())
            .expect("residency plan violates the ledger");
        assert_eq!(peak, warm.plan.peak_reserved());

        for (bench, ns, dma, latency) in [
            (
                "network_resident",
                resident_ns,
                dram_on,
                warm.result.total_latency(),
            ),
            ("network_dram", plain_ns, dram_off, plain.total_latency()),
        ] {
            rows.push((
                bench,
                preset.to_string(),
                ns,
                dma,
                latency,
                warm.plan.resident_edges(),
                warm.plan.spilled_edges(),
                warm.dma_bytes_saved(),
            ));
        }
        println!(
            "residency gate {preset}: {} resident edges, {} spilled, DMA {} -> {} B \
             (saved {}), latency {} -> {} cycles",
            warm.plan.resident_edges(),
            warm.plan.spilled_edges(),
            dram_off,
            dram_on,
            warm.dma_bytes_saved(),
            plain.total_latency(),
            warm.result.total_latency(),
        );
    }
    let mut json = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"bench\": \"{}\", \"arch\": \"{}\", \"median_ns\": {}, \"dma_bytes\": {}, \
             \"latency_cycles\": {}, \"resident_edges\": {}, \"spilled_edges\": {}, \
             \"dma_bytes_saved\": {}}}{}\n",
            r.0,
            r.1,
            r.2,
            r.3,
            r.4,
            r.5,
            r.6,
            r.7,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("]\n");
    std::fs::write(&out8, &json).expect("write benchmark output");
    println!("wrote {out8}");
}

/// The PR 9 suite: workload diversity. Every network in the diverse
/// zoo — a transformer encoder (matmul layers), a MobileNet-style net
/// (depthwise + pointwise), and a branching fire net — is scheduled
/// with differential verification on, on Arch1, Arch5 and the
/// heterogeneous configuration; then a fresh driver re-schedules the
/// same network over the shared store, hard-asserting that the new
/// operator kinds warm-start: every layer answered from the store,
/// zero searches, masked-byte-identical winners. The branching net is
/// additionally run through the residency planner, which must cleanly
/// decline (no resident edges, byte-identical results). Writes
/// `BENCH_PR9.json` (override with `FLEXER_BENCH_OUT_PR9`).
fn bench_zoo() {
    let out9 =
        std::env::var("FLEXER_BENCH_OUT_PR9").unwrap_or_else(|_| "BENCH_PR9.json".to_owned());
    let archs: Vec<(&str, ArchConfig)> = vec![
        ("arch1", ArchConfig::preset(ArchPreset::Arch1)),
        ("arch5", ArchConfig::preset(ArchPreset::Arch5)),
        ("hetero1", ArchConfig::hetero1()),
    ];
    let mut rows = Vec::new();
    for net in networks::diverse() {
        for (arch_name, arch) in &archs {
            let dir = std::env::temp_dir().join(format!(
                "flexer-zoo-{}-{}-{}",
                net.name(),
                arch_name,
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let driver = |dir: &std::path::Path| {
                let mut opts = SearchOptions::quick();
                opts.validate = true; // differential verification on every winner
                Flexer::new(arch.clone())
                    .with_options(opts)
                    .with_store(dir)
                    .expect("open zoo store")
            };

            let t = Instant::now();
            let cold = driver(&dir)
                .schedule_network(&net)
                .expect("zoo net schedules");
            let cold_ns = t.elapsed().as_nanos();
            assert!(
                cold.verified(),
                "{} on {arch_name}: cold run unverified",
                net.name()
            );

            // A fresh driver (empty memo, as a new process) must answer
            // every layer — including repeated shapes — from the store.
            let t = Instant::now();
            let warm = driver(&dir)
                .schedule_network(&net)
                .expect("zoo net schedules");
            let warm_ns = t.elapsed().as_nanos();
            let layers = net.layers().len() as u64;
            let stats = warm.total_stats();
            assert_eq!(
                stats.store_hits,
                layers,
                "{} on {arch_name}: warm pass must answer every layer from the store",
                net.name()
            );
            assert_eq!(
                stats.store_misses,
                0,
                "{} on {arch_name}: warm pass must not search",
                net.name()
            );
            for (a, b) in cold.layers().iter().zip(warm.layers()) {
                assert_eq!(
                    masked_bytes(a),
                    masked_bytes(b),
                    "{}: warm result must be byte-identical to the cold pass",
                    a.layer
                );
            }

            // The branching topology must cleanly decline residency.
            if !net.is_chain() {
                let r = driver(&dir)
                    .schedule_network_resident(&net)
                    .expect("resident run schedules");
                assert_eq!(
                    r.plan.resident_edges(),
                    0,
                    "{}: a branching net must decline residency",
                    net.name()
                );
                assert_eq!(r.plan.peak_reserved(), 0);
                for (a, b) in r.result.layers().iter().zip(warm.layers()) {
                    assert_eq!(
                        a.schedule, b.schedule,
                        "{}: declined residency must stay byte-identical",
                        a.layer
                    );
                }
            }

            println!(
                "zoo gate {} on {arch_name}: {layers} layers, cold {cold_ns} ns, warm {warm_ns} ns \
                 ({} store hits), latency {} cycles, DMA {} B",
                net.name(),
                stats.store_hits,
                cold.total_latency(),
                cold.total_transfer_bytes(),
            );
            rows.push((
                net.name().to_string(),
                (*arch_name).to_string(),
                cold_ns,
                warm_ns,
                layers,
                cold.total_latency(),
                cold.total_transfer_bytes(),
            ));
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    let mut json = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"bench\": \"zoo\", \"net\": \"{}\", \"arch\": \"{}\", \"cold_ns\": {}, \
             \"warm_ns\": {}, \"layers\": {}, \"latency_cycles\": {}, \"dma_bytes\": {}}}{}\n",
            r.0,
            r.1,
            r.2,
            r.3,
            r.4,
            r.5,
            r.6,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("]\n");
    std::fs::write(&out9, &json).expect("write benchmark output");
    println!("wrote {out9}");
}

/// Times a traced layer search; returns the median, the evaluated
/// count, and the first run's trace (for event counting).
fn time_traced_search(
    layer: &ConvLayer,
    arch: &ArchConfig,
    opts: &SearchOptions,
    iters: usize,
) -> (u128, usize, Trace) {
    let (warm, trace) = flexer::sched::search_layer_traced(layer, arch, opts);
    let evaluated = warm.expect("benchmark layer schedules").evaluated;
    let mut samples: Vec<u128> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            let (r, _) = flexer::sched::search_layer_traced(layer, arch, opts);
            assert_eq!(r.expect("benchmark layer schedules").evaluated, evaluated);
            t.elapsed().as_nanos()
        })
        .collect();
    (median_ns(&mut samples), evaluated, trace)
}

/// Measures the per-call cost of a disabled span enter/exit pair —
/// the price every instrumentation site pays on the untraced path.
fn disabled_span_pair_ns() -> f64 {
    let mut lane = Lane::off();
    const CALLS: u32 = 4_000_000;
    let t = Instant::now();
    for i in 0..CALLS {
        let guard = lane.enter("bench");
        lane.attr("i", u64::from(i));
        lane.exit(guard);
        std::hint::black_box(&lane);
    }
    t.elapsed().as_nanos() as f64 / f64::from(CALLS)
}

/// Runs a traced single-threaded network search and writes its Chrome
/// trace-event JSON to `path`.
fn write_trace_artifact(path: &str) {
    let scaled = scale_spatial(&networks::by_name("squeezenet").expect("known net"), 4);
    let head = Network::new("squeezenet-head", scaled.layers()[..4].to_vec())
        .expect("valid network slice");
    let mut opts = SearchOptions::quick();
    opts.threads = 1; // byte-stable trace
    opts.trace.detail = TraceDetail::Steps;
    let (result, trace) = flexer::sched::search_network_traced(
        head.layers(),
        &ArchConfig::preset(ArchPreset::Arch1),
        &opts,
    );
    result.expect("trace artifact network schedules");
    trace.check().expect("recorded trace is well-formed");
    // The same logical-tick percentiles the chaos harness gates on,
    // computed here from the producer side so check.sh can pin the
    // SLO numbers without a server in the loop.
    let slo = flexer::trace::stats::LatencySummary::of_trace(&trace, "layer");
    assert!(slo.count > 0, "trace artifact recorded no layer spans");
    println!("trace slo: layer spans {slo} ticks");
    std::fs::write(path, flexer::trace::chrome::to_chrome_json(&trace)).expect("write trace");
    println!("wrote {path} ({})", trace.summary());
}

/// One pass of the store suite: a fresh driver (empty memo cache, as a
/// new process would start) scheduling `net` against the shared store.
struct StorePass {
    ns: u128,
    hits: u64,
    misses: u64,
    results: Vec<flexer::sched::LayerSearchResult>,
}

fn store_pass(dir: &str, net: &Network) -> StorePass {
    let driver = Flexer::new(ArchConfig::preset(ArchPreset::Arch1))
        .with_options(SearchOptions::quick())
        .with_store(dir)
        .expect("open schedule store");
    let t = Instant::now();
    let result = driver
        .schedule_network(net)
        .expect("benchmark net schedules");
    let ns = t.elapsed().as_nanos();
    let stats = result.total_stats();
    StorePass {
        ns,
        hits: stats.store_hits,
        misses: stats.store_misses,
        results: result.layers().to_vec(),
    }
}

/// The wire encoding with the search-effort fields masked: cold and
/// warm passes must agree on every *winner* byte (schedule, tiling,
/// dataflow, score). Effort legitimately differs on networks with
/// repeated layer shapes — a cold run replays duplicates from the
/// in-memory memo (tiny stats), a warm run serves every duplicate the
/// persisted leader's full-search stats. Strict whole-result byte
/// identity on distinct shapes is pinned by `tests/store_warmstart.rs`.
fn masked_bytes(r: &flexer::sched::LayerSearchResult) -> Vec<u8> {
    let mut r = r.clone();
    r.stats = SearchStats::default();
    r.evaluated = 0;
    flexer::sched::wire::encode_layer_result(&r)
}

/// The PR 5 suite: warm-start through the persistent schedule store.
fn bench_store(dir: &str) {
    let out5 =
        std::env::var("FLEXER_BENCH_OUT_PR5").unwrap_or_else(|_| "BENCH_PR5.json".to_owned());
    let net = scale_spatial(&networks::by_name("squeezenet").expect("known net"), 4);
    let layers = net.layers().len() as u64;

    let first = store_pass(dir, &net);
    let second = store_pass(dir, &net);

    assert_eq!(
        second.hits, layers,
        "warm pass must answer every layer from the store"
    );
    assert_eq!(second.misses, 0, "warm pass must not search");
    for (a, b) in first.results.iter().zip(second.results.iter()) {
        assert_eq!(
            masked_bytes(a),
            masked_bytes(b),
            "{}: warm result must be byte-identical to the first pass",
            a.layer
        );
    }
    if first.misses > 0 {
        assert!(
            second.ns < first.ns,
            "warm pass ({} ns) must beat the cold search ({} ns)",
            second.ns,
            first.ns
        );
    }

    let json = format!(
        "[\n  {{\"bench\": \"network_store_first\", \"arch\": \"arch1\", \"median_ns\": {}, \
         \"layers\": {layers}, \"store_hits\": {}, \"store_misses\": {}}},\n  \
         {{\"bench\": \"network_store_warm\", \"arch\": \"arch1\", \"median_ns\": {}, \
         \"layers\": {layers}, \"store_hits\": {}, \"store_misses\": {}}}\n]\n",
        first.ns, first.hits, first.misses, second.ns, second.hits, second.misses
    );
    std::fs::write(&out5, &json).expect("write benchmark output");
    println!("wrote {out5}");
    println!(
        "store first pass: {} ns, {} hits / {} misses over {layers} layers",
        first.ns, first.hits, first.misses
    );
    println!(
        "store warm pass: {} ns ({:.2}x vs first), {} hits / {} misses",
        second.ns,
        first.ns as f64 / second.ns as f64,
        second.hits,
        second.misses
    );
}

/// The PR 10 suite: fleet serving. A standalone node and a 3-node
/// consistent-hash fleet answer the same cold requests byte-identically
/// (provenance masked), then — after an anti-entropy pass replicates
/// every entry fleet-wide — the fleet's aggregate warm-hit throughput
/// over one connection per node must strictly beat the single node over
/// its one connection. Writes `BENCH_PR10.json` (override with
/// `FLEXER_BENCH_OUT_PR10`).
fn bench_fleet() {
    use flexer_fleet::{replica_parity, route_fingerprint, sync_pass, Router};
    use flexer_serve::client::Client;
    use flexer_serve::{mask_provenance, parse_request, request_shutdown, Server, ServerConfig};

    let out10 =
        std::env::var("FLEXER_BENCH_OUT_PR10").unwrap_or_else(|_| "BENCH_PR10.json".to_owned());
    let scratch = std::env::temp_dir().join(format!("flexer-bench-fleet-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("bench scratch dir");

    let boot = |store: std::path::PathBuf, workers: usize, name: &str| {
        let server = Server::bind(ServerConfig {
            store_dir: Some(store),
            workers,
            queue: 32,
            node_name: Some(name.to_owned()),
            ..ServerConfig::default()
        })
        .expect("bind bench server");
        let addr = server.local_addr();
        (
            addr,
            std::thread::spawn(move || server.run().expect("bench server run")),
        )
    };

    // Same worker budget on both sides (4 total): the fleet's edge must
    // come from sharding across nodes, not from extra threads.
    let (solo_addr, solo_join) = boot(scratch.join("solo-store"), 4, "solo");
    let mut fleet_joins = Vec::new();
    let mut members: Vec<String> = Vec::new();
    for i in 0..3usize {
        let (addr, join) = boot(scratch.join(format!("n{i}-store")), 1, &format!("n{i}"));
        members.push(addr.to_string());
        fleet_joins.push((addr, join));
    }
    let router = Router::new(&members).retries(1);

    let line_of = |c: u32| {
        format!(
            r#"{{"id":"b{c}","op":"schedule","layers":[{{"in_channels":{c},"height":14,"width":14,"out_channels":{c}}}]}}"#
        )
    };

    // Six single-layer shapes spanning at least two ring owners, picked
    // deterministically by scanning channel widths.
    let mut shapes: Vec<u32> = Vec::new();
    let mut owners: Vec<String> = Vec::new();
    for c in (4..=128u32).step_by(2) {
        let req = parse_request(&line_of(c)).expect("bench request parses");
        let fp = route_fingerprint(&req).expect("schedule requests are keyed");
        let owner = router.ring().owner(fp).expect("non-empty ring").to_owned();
        if shapes.len() < 6 {
            shapes.push(c);
            owners.push(owner);
        } else if owners.iter().all(|o| *o == owners[0]) && owner != owners[0] {
            shapes[5] = c;
            owners[5] = owner;
        } else {
            break;
        }
    }
    let distinct = {
        let mut d = owners.clone();
        d.sort();
        d.dedup();
        d.len()
    };
    assert!(distinct >= 2, "bench shapes must span at least two shards");

    // Cold pass: the routed fleet and the standalone node must agree on
    // every response byte once provenance is masked.
    for &c in &shapes {
        let line = line_of(c);
        let solo = flexer_serve::client::roundtrip(solo_addr, &line).expect("solo cold request");
        let routed = router.dispatch(&line).expect("routed cold request");
        assert_eq!(routed.failovers, 0, "all members alive, no failover");
        assert_eq!(
            mask_provenance(&solo),
            mask_provenance(&routed.response),
            "cold response for {c} channels diverged between 1-node and 3-node"
        );
    }
    println!(
        "fleet gate cold: {} shapes across {distinct} shards byte-identical to 1-node",
        shapes.len()
    );

    // Replicate every entry fleet-wide so any member serves any shape
    // warm, then verify parity before timing.
    let report = sync_pass(&router, 3).expect("anti-entropy pass");
    assert!(report.unreachable.is_empty(), "all members reachable");
    assert!(replica_parity(&router, 3).expect("parity check").is_empty());

    const WARM_REQUESTS: usize = 120;
    const SAMPLES: usize = 3;
    let lines: Vec<String> = (0..WARM_REQUESTS)
        .map(|i| line_of(shapes[i % shapes.len()]))
        .collect();

    // Best of SAMPLES to shave scheduler noise; each sample opens fresh
    // connections and replays all WARM_REQUESTS store hits.
    let mut solo_ns = u128::MAX;
    for _ in 0..SAMPLES {
        let mut client = Client::connect(solo_addr).expect("solo warm connect");
        client.roundtrip(&lines[0]).expect("solo warmup");
        let t = Instant::now();
        for line in &lines {
            client.roundtrip(line).expect("solo warm request");
        }
        solo_ns = solo_ns.min(t.elapsed().as_nanos());
    }

    let mut fleet_ns = u128::MAX;
    for _ in 0..SAMPLES {
        let mut clients: Vec<Client> = members
            .iter()
            .map(|m| Client::connect(m.as_str()).expect("fleet warm connect"))
            .collect();
        for client in &mut clients {
            client.roundtrip(&lines[0]).expect("fleet warmup");
        }
        let t = Instant::now();
        std::thread::scope(|scope| {
            for (i, mut client) in clients.into_iter().enumerate() {
                let lines = &lines;
                scope.spawn(move || {
                    for line in lines.iter().skip(i).step_by(3) {
                        client.roundtrip(line).expect("fleet warm request");
                    }
                });
            }
        });
        fleet_ns = fleet_ns.min(t.elapsed().as_nanos());
    }

    let rps = |ns: u128| WARM_REQUESTS as f64 / (ns as f64 / 1e9);
    let (solo_rps, fleet_rps) = (rps(solo_ns), rps(fleet_ns));
    println!(
        "fleet gate warm: 1-node {solo_rps:.0} req/s, 3-node {fleet_rps:.0} req/s \
         ({:.2}x aggregate)",
        fleet_rps / solo_rps
    );
    assert!(
        fleet_rps > solo_rps,
        "3-node aggregate warm throughput ({fleet_rps:.0} req/s) must strictly beat \
         1-node ({solo_rps:.0} req/s)"
    );

    let json = format!(
        "[\n  {{\"bench\": \"fleet_cold_identity\", \"nodes\": 3, \"shapes\": {}, \
         \"shards\": {distinct}, \"identical\": true}},\n  \
         {{\"bench\": \"fleet_warm_single\", \"nodes\": 1, \"requests\": {WARM_REQUESTS}, \
         \"total_ns\": {solo_ns}, \"rps\": {solo_rps:.1}}},\n  \
         {{\"bench\": \"fleet_warm_fleet\", \"nodes\": 3, \"requests\": {WARM_REQUESTS}, \
         \"total_ns\": {fleet_ns}, \"rps\": {fleet_rps:.1}}}\n]\n",
        shapes.len()
    );
    std::fs::write(&out10, &json).expect("write benchmark output");
    println!("wrote {out10}");

    request_shutdown(solo_addr).expect("solo shutdown");
    solo_join.join().expect("solo join");
    for (addr, join) in fleet_joins {
        request_shutdown(addr).expect("fleet shutdown");
        join.join().expect("fleet join");
    }
    let _ = std::fs::remove_dir_all(&scratch);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut trace_out: Option<String> = None;
    let mut store_dir: Option<String> = None;
    let mut seed_only = false;
    let mut residency_only = false;
    let mut zoo_only = false;
    let mut fleet_only = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace-out" => {
                trace_out = Some(args.next().expect("--trace-out needs a path"));
            }
            "--store" => {
                store_dir = Some(args.next().expect("--store needs a directory"));
            }
            "--seed" => {
                seed_only = true;
            }
            "--residency" => {
                residency_only = true;
            }
            "--zoo" => {
                zoo_only = true;
            }
            "--fleet" => {
                fleet_only = true;
            }
            other => {
                eprintln!(
                    "unknown argument {other:?}; supported: --trace-out <path>, \
                     --store <dir>, --seed, --residency, --zoo, --fleet"
                );
                std::process::exit(2);
            }
        }
    }
    if let Some(dir) = store_dir {
        bench_store(&dir);
        return;
    }
    if fleet_only {
        bench_fleet();
        return;
    }
    let iters: usize = std::env::var("FLEXER_BENCH_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    if seed_only {
        bench_seed(iters);
        return;
    }
    if residency_only {
        bench_residency(iters);
        return;
    }
    if zoo_only {
        bench_zoo();
        return;
    }
    let out_path =
        std::env::var("FLEXER_BENCH_OUT").unwrap_or_else(|_| "BENCH_PR1.json".to_owned());

    let preset = ArchPreset::Arch5;
    let arch = ArchConfig::preset(preset);
    let layer = ConvLayer::new("bench", 64, 28, 28, 64).expect("valid layer");

    // The full default search on one thread: the per-candidate work is
    // what's under test, so no parallelism noise.
    let tx_opts = SearchOptions {
        threads: 1,
        ..SearchOptions::default()
    };
    let mut clone_opts = tx_opts.clone();
    clone_opts.eval_mode = EvalMode::CloneBaseline;

    let (tx_ns, tx_eval) = time_search(&layer, &arch, &tx_opts, iters);
    let (clone_ns, clone_eval) = time_search(&layer, &arch, &clone_opts, iters);
    assert_eq!(tx_eval, clone_eval, "both modes search the same space");

    let rows = [
        Row {
            bench: "layer_search",
            arch: preset.to_string(),
            median_ns: tx_ns,
            evaluated: tx_eval,
        },
        Row {
            bench: "layer_search_clone_baseline",
            arch: preset.to_string(),
            median_ns: clone_ns,
            evaluated: clone_eval,
        },
    ];

    let mut json = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"bench\": \"{}\", \"arch\": \"{}\", \"median_ns\": {}, \"evaluated\": {}}}{}\n",
            r.bench,
            r.arch,
            r.median_ns,
            r.evaluated,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("]\n");
    std::fs::write(&out_path, &json).expect("write benchmark output");

    let ratio = clone_ns as f64 / tx_ns as f64;
    println!("wrote {out_path}");
    println!("layer_search (transactional): {tx_ns} ns median, {tx_eval} pairs");
    println!("layer_search (clone baseline): {clone_ns} ns median");
    println!("speedup over clone-per-candidate: {ratio:.2}x");

    // --- PR 3: branch-and-bound network search vs exhaustive ---
    let out3 =
        std::env::var("FLEXER_BENCH_OUT_PR3").unwrap_or_else(|_| "BENCH_PR3.json".to_owned());
    let prune_rows = bench_search_prune(iters);
    let mut json = String::from("[\n");
    for (i, r) in prune_rows.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"bench\": \"{}\", \"arch\": \"{}\", \"median_ns\": {}, \"evaluated\": {}, \
             \"candidates_pruned\": {}, \"early_exits\": {}}}{}\n",
            r.bench,
            r.arch,
            r.median_ns,
            r.evaluated,
            r.candidates_pruned,
            r.early_exits,
            if i + 1 < prune_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("]\n");
    std::fs::write(&out3, &json).expect("write benchmark output");
    println!("wrote {out3}");
    for pair in prune_rows.chunks(2) {
        let [p, f] = pair else {
            unreachable!("rows come in pruned/exhaustive pairs")
        };
        println!(
            "search_prune {}: {} ns vs exhaustive {} ns ({:.2}x), {} skipped, {} cut mid-run",
            p.arch,
            p.median_ns,
            f.median_ns,
            f.median_ns as f64 / p.median_ns as f64,
            p.candidates_pruned,
            p.early_exits
        );
    }

    // --- PR 4: tracing overhead ---
    let out4 =
        std::env::var("FLEXER_BENCH_OUT_PR4").unwrap_or_else(|_| "BENCH_PR4.json".to_owned());
    let mut search_detail = tx_opts.clone();
    search_detail.trace.detail = TraceDetail::Search;
    let (traced_ns, traced_eval, _) = time_traced_search(&layer, &arch, &search_detail, iters);
    let mut memory_detail = tx_opts.clone();
    memory_detail.trace.detail = TraceDetail::Memory;
    let (memory_ns, _, memory_trace) = time_traced_search(&layer, &arch, &memory_detail, iters);
    let pair_ns = disabled_span_pair_ns();
    // The untraced path pays one disabled branch per would-be event;
    // bound that price by the full enter+attr+exit pair cost times the
    // deepest detail level's event count.
    let events = memory_trace.summary().events;
    let disabled_pct = events as f64 * pair_ns / tx_ns as f64 * 100.0;
    let json = format!(
        "[\n  {{\"bench\": \"layer_search_untraced\", \"arch\": \"{preset}\", \
         \"median_ns\": {tx_ns}, \"evaluated\": {tx_eval}}},\n  \
         {{\"bench\": \"layer_search_traced_search\", \"arch\": \"{preset}\", \
         \"median_ns\": {traced_ns}, \"evaluated\": {traced_eval}}},\n  \
         {{\"bench\": \"layer_search_traced_memory\", \"arch\": \"{preset}\", \
         \"median_ns\": {memory_ns}, \"evaluated\": {traced_eval}}},\n  \
         {{\"bench\": \"trace_disabled_overhead\", \"arch\": \"{preset}\", \
         \"span_pair_ns\": {pair_ns:.3}, \"events_at_memory_detail\": {events}, \
         \"overhead_pct\": {disabled_pct:.4}}}\n]\n"
    );
    std::fs::write(&out4, &json).expect("write benchmark output");
    println!("wrote {out4}");
    println!(
        "tracing: untraced {tx_ns} ns, Search detail {traced_ns} ns ({:.2}x), \
         Memory detail {memory_ns} ns ({:.2}x)",
        traced_ns as f64 / tx_ns as f64,
        memory_ns as f64 / tx_ns as f64,
    );
    println!(
        "disabled instrumentation: {pair_ns:.2} ns per span pair, \
         {events} events at Memory detail -> {disabled_pct:.4}% of the untraced search"
    );

    if let Some(path) = trace_out {
        write_trace_artifact(&path);
    }
}
