//! Machine-readable micro-benchmark: times the Algorithm-1 layer
//! search under the default transactional SPM planning and under the
//! clone-per-candidate baseline, in the same process, and writes the
//! medians to `BENCH_PR1.json`.
//!
//! Schema: a JSON array of `{bench, arch, median_ns, evaluated}`
//! objects. Output path defaults to `BENCH_PR1.json` in the current
//! directory; override with `FLEXER_BENCH_OUT`. `FLEXER_BENCH_ITERS`
//! sets the sample count (default 7, median reported).

use flexer::prelude::*;
use std::time::Instant;

struct Row {
    bench: &'static str,
    arch: String,
    median_ns: u128,
    evaluated: usize,
}

fn median_ns(samples: &mut [u128]) -> u128 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn time_search(layer: &ConvLayer, arch: &ArchConfig, opts: &SearchOptions, iters: usize) -> (u128, usize) {
    // Warm-up run, then `iters` timed samples.
    let warm = flexer::sched::search_layer(layer, arch, opts).expect("benchmark layer schedules");
    let evaluated = warm.evaluated;
    let mut samples: Vec<u128> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            let r = flexer::sched::search_layer(layer, arch, opts).expect("benchmark layer schedules");
            assert_eq!(r.evaluated, evaluated);
            t.elapsed().as_nanos()
        })
        .collect();
    (median_ns(&mut samples), evaluated)
}

fn main() {
    let iters: usize = std::env::var("FLEXER_BENCH_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let out_path =
        std::env::var("FLEXER_BENCH_OUT").unwrap_or_else(|_| "BENCH_PR1.json".to_owned());

    let preset = ArchPreset::Arch5;
    let arch = ArchConfig::preset(preset);
    let layer = ConvLayer::new("bench", 64, 28, 28, 64).expect("valid layer");

    // The full default search on one thread: the per-candidate work is
    // what's under test, so no parallelism noise.
    let tx_opts = SearchOptions {
        threads: 1,
        ..SearchOptions::default()
    };
    let mut clone_opts = tx_opts.clone();
    clone_opts.eval_mode = EvalMode::CloneBaseline;

    let (tx_ns, tx_eval) = time_search(&layer, &arch, &tx_opts, iters);
    let (clone_ns, clone_eval) = time_search(&layer, &arch, &clone_opts, iters);
    assert_eq!(tx_eval, clone_eval, "both modes search the same space");

    let rows = [
        Row {
            bench: "layer_search",
            arch: preset.to_string(),
            median_ns: tx_ns,
            evaluated: tx_eval,
        },
        Row {
            bench: "layer_search_clone_baseline",
            arch: preset.to_string(),
            median_ns: clone_ns,
            evaluated: clone_eval,
        },
    ];

    let mut json = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"bench\": \"{}\", \"arch\": \"{}\", \"median_ns\": {}, \"evaluated\": {}}}{}\n",
            r.bench,
            r.arch,
            r.median_ns,
            r.evaluated,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("]\n");
    std::fs::write(&out_path, &json).expect("write benchmark output");

    let ratio = clone_ns as f64 / tx_ns as f64;
    println!("wrote {out_path}");
    println!("layer_search (transactional): {tx_ns} ns median, {tx_eval} pairs");
    println!("layer_search (clone baseline): {clone_ns} ns median");
    println!("speedup over clone-per-candidate: {ratio:.2}x");
}
