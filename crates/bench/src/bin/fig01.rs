//! Regenerates the paper's Figure 1 (tiling/dataflow scatter).
use flexer_bench::{Budget, ExperimentContext};
fn main() {
    let ctx = ExperimentContext::from_env(1, Budget::Quick);
    flexer_bench::experiments::fig01(&ctx);
}
