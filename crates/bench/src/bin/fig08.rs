//! Regenerates the paper's Figure 8 (end-to-end speedups).
use flexer_bench::{Budget, ExperimentContext};
fn main() {
    let ctx = ExperimentContext::from_env(1, Budget::Quick);
    flexer_bench::experiments::fig08(&ctx);
}
