//! Regenerates the paper's Figure 9 (per-layer analysis on arch5).
use flexer_bench::{Budget, ExperimentContext};
fn main() {
    let ctx = ExperimentContext::from_env(1, Budget::Quick);
    flexer_bench::experiments::fig09(&ctx);
}
