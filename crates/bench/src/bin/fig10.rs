//! Regenerates the paper's Figure 10 (traffic by data type).
use flexer_bench::{Budget, ExperimentContext};
fn main() {
    let ctx = ExperimentContext::from_env(1, Budget::Quick);
    flexer_bench::experiments::fig10(&ctx);
}
