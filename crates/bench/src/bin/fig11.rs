//! Regenerates the paper's Figure 11 (spatial reuse between NPUs).
use flexer_bench::{Budget, ExperimentContext};
fn main() {
    let ctx = ExperimentContext::from_env(1, Budget::Quick);
    flexer_bench::experiments::fig11(&ctx);
}
