//! Regenerates the paper's Figure 12 (policy ablation).
use flexer_bench::{Budget, ExperimentContext};
fn main() {
    let ctx = ExperimentContext::from_env(4, Budget::Quick);
    flexer_bench::experiments::fig12(&ctx);
}
