//! Runs every experiment of the harness in sequence (Table 1,
//! Figures 1, 8, 9, 10, 11, 12 and the verification sweep).
use flexer_bench::{experiments, Budget, ExperimentContext};
fn main() {
    let t = std::time::Instant::now();
    experiments::table1();
    println!();
    experiments::fig01(&ExperimentContext::from_env(1, Budget::Quick));
    println!();
    experiments::fig08(&ExperimentContext::from_env(1, Budget::Quick));
    println!();
    experiments::fig09(&ExperimentContext::from_env(1, Budget::Quick));
    println!();
    experiments::fig10(&ExperimentContext::from_env(1, Budget::Quick));
    println!();
    experiments::fig11(&ExperimentContext::from_env(1, Budget::Quick));
    println!();
    experiments::fig12(&ExperimentContext::from_env(4, Budget::Quick));
    println!();
    experiments::search_prune(&ExperimentContext::from_env(1, Budget::Quick));
    println!();
    experiments::verify(&ExperimentContext::from_env(1, Budget::Quick));
    println!(
        "\n# all experiments completed in {:.1}s",
        t.elapsed().as_secs_f64()
    );
}
