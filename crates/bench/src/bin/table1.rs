//! Regenerates the paper's Table 1.
fn main() {
    flexer_bench::experiments::table1();
}
