//! Differentially verifies every winning schedule of the evaluation
//! networks on the SPM abstract machine.
use flexer_bench::{Budget, ExperimentContext};
fn main() {
    let ctx = ExperimentContext::from_env(1, Budget::Quick);
    flexer_bench::experiments::verify(&ctx);
}
