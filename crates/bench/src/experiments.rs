//! One function per table/figure of the paper's evaluation.

use crate::{geomean, ExperimentContext};
use flexer::prelude::*;
use flexer::sched::sweep_tilings;

/// **Table 1** — the eight hardware configurations.
pub fn table1() {
    println!("# Table 1 — hardware configurations used in the evaluation");
    println!(
        "{:<8} {:>8} {:>22} {:>18}",
        "arch", "cores", "on-chip memory (KiB)", "bandwidth (B/cyc)"
    );
    for preset in ArchPreset::all() {
        let (cores, kib, bpc) = preset.parameters();
        println!(
            "{:<8} {:>8} {:>22} {:>18}",
            preset.to_string(),
            cores,
            kib,
            bpc
        );
    }
}

/// **Figure 1** — latency vs off-chip traffic of *every* viable
/// `(tiling, dataflow)` pair on a two-NPU system, for one layer each
/// from ResNet-50 and VGG-16: the OoO scatter versus the best fixed
/// loop order.
///
/// # Panics
///
/// Panics if a search fails on the chosen layers (they are known-good).
pub fn fig01(ctx: &ExperimentContext) {
    ctx.print_header("Figure 1", "latency/traffic scatter, OoO vs best static");
    let vgg = ctx.network("vgg16");
    let resnet = ctx.network("resnet50");
    let cases = [
        (
            "resnet50/conv3_1_1",
            resnet.layer_by_name("conv3_1_1").unwrap(),
        ),
        ("vgg16/conv4_2", vgg.layer_by_name("conv4_2").unwrap()),
    ];
    let arch = ArchConfig::preset(ArchPreset::Arch1);
    for (name, layer) in cases {
        println!("\n## {name} on arch1 ({arch})");
        println!(
            "{:<16} {:<6} {:>12} {:>14} {:>12} {:>14}",
            "tiling", "order", "ooo_cycles", "ooo_bytes", "static_cyc", "static_bytes"
        );
        let (ooo, st) = sweep_tilings(layer, &arch, &ctx.options).expect("sweep succeeds");
        for (o, s) in ooo.iter().zip(&st) {
            println!(
                "{:<16} {:<6} {:>12} {:>14} {:>12} {:>14}",
                o.factors.to_string(),
                format!("{:?}", o.dataflow),
                o.latency,
                o.transfer_bytes,
                s.latency,
                s.transfer_bytes
            );
        }
        let best = |pts: &[flexer::sched::SchedulePoint]| {
            pts.iter()
                .min_by(|a, b| a.score.total_cmp(&b.score))
                .copied()
                .expect("non-empty sweep")
        };
        let (bo, bs) = (best(&ooo), best(&st));
        println!(
            "best OoO   : {} cycles, {} bytes  [{} / {:?}]",
            bo.latency, bo.transfer_bytes, bo.factors, bo.dataflow
        );
        println!(
            "best static: {} cycles, {} bytes  [{} / {:?}]",
            bs.latency, bs.transfer_bytes, bs.factors, bs.dataflow
        );
        println!(
            "-> OoO vs best fixed order: {:.2}x faster, {:.2}x less traffic",
            bs.latency as f64 / bo.latency as f64,
            bs.transfer_bytes as f64 / bo.transfer_bytes as f64
        );
    }
}

/// **Figure 8** — end-to-end speedup and data-transfer reduction of
/// Flexer over the best static loop-order schedule, for all four
/// networks on all eight architectures.
///
/// # Panics
///
/// Panics if a network fails to schedule on a preset (all are viable).
pub fn fig08(ctx: &ExperimentContext) {
    ctx.print_header(
        "Figure 8",
        "end-to-end speedup / transfer reduction, 4 networks x 8 archs",
    );
    println!(
        "\n{:<12} {:<7} {:>9} {:>10} {:>14} {:>14}",
        "network", "arch", "speedup", "xfer_red", "flexer_cycles", "static_cycles"
    );
    let mut speedups = Vec::new();
    let mut reductions = Vec::new();
    for net in ctx.networks() {
        for preset in ArchPreset::all() {
            let driver = ctx.driver(preset);
            let cmp = driver.compare_network(&net).expect("network schedules");
            println!(
                "{:<12} {:<7} {:>9.3} {:>10.3} {:>14} {:>14}",
                net.name(),
                preset.to_string(),
                cmp.speedup(),
                cmp.transfer_reduction(),
                cmp.flexer().total_latency(),
                cmp.baseline().total_latency()
            );
            speedups.push(cmp.speedup());
            reductions.push(cmp.transfer_reduction());
        }
    }
    println!(
        "\ngeomean speedup {:.3}, max {:.3}; geomean transfer reduction {:.3}, max {:.3}",
        geomean(&speedups),
        speedups.iter().copied().fold(f64::MIN, f64::max),
        geomean(&reductions),
        reductions.iter().copied().fold(f64::MIN, f64::max)
    );
}

/// **Figure 9** — (a) layer-by-layer comparison for VGG-16 on arch5;
/// (b) schedules for conv3_1/conv3_2 when the metric weights transfer
/// reductions higher; (c) end-to-end effect of the minimal-transfer
/// policy.
///
/// # Panics
///
/// Panics if VGG-16 fails to schedule on arch5.
pub fn fig09(ctx: &ExperimentContext) {
    ctx.print_header("Figure 9", "per-layer analysis, VGG16 on arch5");
    let net = ctx.network("vgg16");
    let driver = ctx.driver(ArchPreset::Arch5);

    // (a) Layer by layer under the default metric.
    let cmp = driver.compare_network(&net).expect("vgg16 schedules");
    println!("\n## (a) per-layer, default metric (latency x transfer)");
    println!("{:<10} {:>9} {:>10}", "layer", "speedup", "xfer_red");
    for lc in cmp.per_layer() {
        println!(
            "{:<10} {:>9.3} {:>10.3}",
            lc.layer,
            lc.speedup(),
            lc.transfer_reduction()
        );
    }
    let best_speedup = cmp
        .per_layer()
        .map(|l| l.speedup())
        .fold(f64::MIN, f64::max);
    let best_red = cmp
        .per_layer()
        .map(|l| l.transfer_reduction())
        .fold(f64::MIN, f64::max);
    println!("max layer speedup {best_speedup:.3}; max layer transfer reduction {best_red:.3}");

    // (b) conv3_1 / conv3_2 with transfers weighted higher.
    println!("\n## (b) conv3_1/conv3_2 with transfer-weighted metric (weight 8)");
    let weighted = Flexer::new(ArchConfig::preset(ArchPreset::Arch5)).with_options(SearchOptions {
        metric: Metric::TransferWeighted { weight: 8.0 },
        ..ctx.options.clone()
    });
    println!(
        "{:<10} {:>18} {:>9} {:>10}",
        "layer", "metric", "speedup", "xfer_red"
    );
    for name in ["conv3_1", "conv3_2"] {
        let layer = net.layer_by_name(name).unwrap();
        let base = driver.baseline_layer(layer).expect("baseline schedules");
        for (metric_name, d) in [("default", &driver), ("transfer-weighted", &weighted)] {
            let ooo = d.schedule_layer(layer).expect("layer schedules");
            println!(
                "{:<10} {:>18} {:>9.3} {:>10.3}",
                name,
                metric_name,
                base.schedule.latency() as f64 / ooo.schedule.latency() as f64,
                base.schedule.transfer_bytes() as f64 / ooo.schedule.transfer_bytes() as f64
            );
        }
    }

    // (c) End-to-end with the pure minimal-transfer metric.
    println!("\n## (c) end-to-end: default vs minimal-data-transfer policy");
    let min_transfer =
        Flexer::new(ArchConfig::preset(ArchPreset::Arch5)).with_options(SearchOptions {
            metric: Metric::Transfer,
            ..ctx.options.clone()
        });
    let cmp_min = min_transfer.compare_network(&net).expect("vgg16 schedules");
    println!("{:<22} {:>9} {:>10}", "policy", "speedup", "xfer_red");
    println!(
        "{:<22} {:>9.3} {:>10.3}",
        "default",
        cmp.speedup(),
        cmp.transfer_reduction()
    );
    println!(
        "{:<22} {:>9.3} {:>10.3}",
        "min-transfer",
        cmp_min.speedup(),
        cmp_min.transfer_reduction()
    );
}

/// **Figure 10** — per-data-type off-chip traffic and reload counts
/// for VGG-16 conv4_2 and ResNet-50 conv3_1_1 on arch6, comparing the
/// infinite-buffer reference, Flexer and the best static order.
///
/// # Panics
///
/// Panics if the layers fail to schedule on arch6.
pub fn fig10(ctx: &ExperimentContext) {
    ctx.print_header("Figure 10", "traffic by data type + reload counts, arch6");
    let arch = ArchConfig::preset(ArchPreset::Arch6);
    let model = SystolicModel::new(&arch);
    let vgg = ctx.network("vgg16");
    let resnet = ctx.network("resnet50");
    let cases = [
        ("vgg16/conv4_2", vgg.layer_by_name("conv4_2").unwrap()),
        (
            "resnet50/conv3_1_1",
            resnet.layer_by_name("conv3_1_1").unwrap(),
        ),
    ];
    let driver = ctx.driver(ArchPreset::Arch6);
    for (name, layer) in cases {
        println!("\n## {name}");
        println!(
            "{:<9} {:>10} {:>10} {:>10} {:>10} {:>11} | {:>21}",
            "schedule", "IN B", "WT B", "PS B", "OT B", "total B", "max loads IN/WT/OT"
        );
        let ooo = driver.schedule_layer(layer).expect("layer schedules");
        let st = driver.baseline_layer(layer).expect("baseline schedules");
        let dfg = Dfg::build(layer, ooo.factors, ooo.dataflow, &model, &arch)
            .expect("winning tiling builds");
        let reference = onchip_reference_traffic(&dfg);
        let row = |tag: &str, t: &flexer::sim::TrafficStats| {
            println!(
                "{:<9} {:>10} {:>10} {:>10} {:>10} {:>11} | {:>6} {:>6} {:>6}",
                tag,
                t.class_bytes(TrafficClass::Input),
                t.class_bytes(TrafficClass::Weight),
                t.class_bytes(TrafficClass::Psum),
                t.class_bytes(TrafficClass::Output),
                t.total_bytes(),
                t.max_loads(TileKind::Input),
                t.max_loads(TileKind::Weight),
                t.max_loads(TileKind::Output),
            );
        };
        row("on-chip", &reference);
        row("flexer", ooo.schedule.traffic());
        row("static", st.schedule.traffic());
        for kind in TileKind::all() {
            let f = ooo.schedule.traffic().has_reload_variation(kind);
            let s = st.schedule.traffic().has_reload_variation(kind);
            println!("reload variation {kind}: flexer={f} static={s}");
        }
    }
}

/// **Figure 11** — spatial (inter-NPU) data reuse: which tile types
/// are shared between cores within one layer, for the stationary loop
/// orders versus Flexer.
///
/// # Panics
///
/// Panics if the layer fails to schedule.
pub fn fig11(ctx: &ExperimentContext) {
    ctx.print_header("Figure 11", "spatial data reuse between NPUs");
    let vgg = ctx.network("vgg16");
    let resnet = ctx.network("resnet50");
    let cases = [
        ("vgg16/conv3_1", vgg.layer_by_name("conv3_1").unwrap()),
        ("vgg16/conv4_2", vgg.layer_by_name("conv4_2").unwrap()),
        (
            "resnet50/conv3_1_1",
            resnet.layer_by_name("conv3_1_1").unwrap(),
        ),
    ];
    let report = |tag: &str, s: &flexer::sim::Schedule| {
        let sr = s.spatial_reuse();
        println!(
            "{:<28} {:>10} {:>10} {:>10} {:>12}",
            tag,
            sr.events(TileKind::Input),
            sr.events(TileKind::Weight),
            sr.events(TileKind::Output),
            sr.kinds_shared()
        );
    };
    for (name, layer) in cases {
        println!("\n## {name} on arch6");
        println!(
            "{:<28} {:>10} {:>10} {:>10} {:>12}",
            "schedule", "IN shares", "WT shares", "OT shares", "kinds shared"
        );
        // The best static schedule of each stationarity class shares at
        // most its stationary type between NPUs.
        for (tag, dataflows) in [
            ("static IN-stationary", vec![Dataflow::Csk, Dataflow::Sck]),
            ("static WT-stationary", vec![Dataflow::Kcs, Dataflow::Cks]),
            ("static OT-stationary", vec![Dataflow::Ksc, Dataflow::Skc]),
        ] {
            let opts = SearchOptions {
                dataflows,
                ..ctx.options.clone()
            };
            let st = flexer::sched::search_layer_static(
                layer,
                &ArchConfig::preset(ArchPreset::Arch6),
                &opts,
            )
            .expect("static search succeeds");
            report(tag, &st.schedule);
        }
        let driver = ctx.driver(ArchPreset::Arch6);
        let ooo = driver.schedule_layer(layer).expect("layer schedules");
        report("flexer (OoO)", &ooo.schedule);
    }
    println!(
        "\nEach loop order is locked to one sharing pattern per layer (its stationary \
         type, plus mechanical sharing where the unrolled innermost loop wraps); the OoO \
         schedules pick a different pattern per layer and mix several types within one \
         layer when that is what the buffer state rewards."
    );
}

/// **Figure 12** — priority-function and memory-policy ablation: the
/// `latency x transfer` metric of each Table-2 variant normalized to
/// Flexer's defaults (lower is better).
///
/// Policy differences only manifest under on-chip memory pressure, so
/// the experiment runs the networks' most pressured layers at *full*
/// spatial size (the context's scale applies to nothing here) across
/// the 256-KiB four-core configurations.
///
/// # Panics
///
/// Panics if a layer fails to schedule.
pub fn fig12(ctx: &ExperimentContext) {
    println!("# Figure 12 — reproduces priority / memory-policy ablation (Table 2)");
    println!(
        "# full-size pressured layers, budget={} (FLEXER_BUDGET; FLEXER_SCALE not used here)",
        ctx.budget_name
    );
    let variants: [(&str, PriorityPolicy, SpillPolicyChoice); 5] = [
        (
            "default",
            PriorityPolicy::FlexerDefault,
            SpillPolicyChoice::Flexer,
        ),
        (
            "priority1",
            PriorityPolicy::MinTransfer,
            SpillPolicyChoice::Flexer,
        ),
        (
            "priority2",
            PriorityPolicy::MinSpill,
            SpillPolicyChoice::Flexer,
        ),
        (
            "mempolicy1",
            PriorityPolicy::FlexerDefault,
            SpillPolicyChoice::FirstFit,
        ),
        (
            "mempolicy2",
            PriorityPolicy::FlexerDefault,
            SpillPolicyChoice::SmallestFirst,
        ),
    ];
    // Full-size layers with real buffer pressure, one batch per
    // network the paper plots.
    let vgg = networks::vgg16();
    let resnet = networks::resnet50();
    let squeeze = networks::squeezenet();
    let yolo = networks::yolov2();
    let cases: [(&str, &str, &Network); 8] = [
        ("vgg16", "conv3_2", &vgg),
        ("vgg16", "conv4_2", &vgg),
        ("resnet50", "conv3_1_1", &resnet),
        ("resnet50", "conv2_1_1", &resnet),
        ("squeezenet", "fire5_expand3x3", &squeeze),
        ("squeezenet", "conv10", &squeeze),
        ("yolov2", "conv9", &yolo),
        ("yolov2", "conv15", &yolo),
    ];
    println!(
        "\n{:<12} {:<16} {:<7} {:>9} {:>10} {:>10} {:>11} {:>11}",
        "network", "layer", "arch", "default", "priority1", "priority2", "mempolicy1", "mempolicy2"
    );
    let mut per_variant: Vec<Vec<f64>> = vec![Vec::new(); variants.len()];
    for (net_name, layer_name, net) in cases {
        let layer = net.layer_by_name(layer_name).expect("layer exists");
        for preset in [ArchPreset::Arch5, ArchPreset::Arch6] {
            let mut scores = Vec::new();
            for (_, priority, spill) in &variants {
                let driver = Flexer::new(ArchConfig::preset(preset)).with_options(SearchOptions {
                    priority: *priority,
                    spill: *spill,
                    ..ctx.options.clone()
                });
                let r = driver.schedule_layer(layer).expect("layer schedules");
                scores.push(r.schedule.latency() as f64 * r.schedule.transfer_bytes() as f64);
            }
            let base = scores[0];
            print!(
                "{:<12} {:<16} {:<7}",
                net_name,
                layer_name,
                preset.to_string()
            );
            for (i, s) in scores.iter().enumerate() {
                print!(" {:>9.3}", s / base);
                per_variant[i].push(s / base);
            }
            println!();
        }
    }
    print!("\ngeomean                                   ");
    for v in &per_variant {
        print!(" {:>9.3}", geomean(v));
    }
    println!("\n(lower is better; >1 means the ablated variant is worse than Flexer's default)");
}

/// **Verification sweep** — differentially verifies the winning
/// schedules of all four evaluation networks on two presets (the
/// smallest and the mid-size machine): every winner is re-run, lowered
/// to a command program, executed on the SPM abstract machine and
/// cross-checked against its analytical schedule, for both the
/// out-of-order scheduler and the static baseline.
///
/// # Panics
///
/// Panics when any winning schedule fails verification — that is the
/// point: a scheduler bug aborts the run instead of skewing a figure.
pub fn verify(ctx: &ExperimentContext) {
    ctx.print_header(
        "Verification",
        "differential schedule verification, 4 networks x 2 archs x 2 schedulers",
    );
    println!(
        "\n{:<12} {:<7} {:>7} {:>14} {:>14} {:>12}",
        "network", "arch", "layers", "ooo_verified", "stat_verified", "verify_ms"
    );
    for net in ctx.networks() {
        for preset in [ArchPreset::Arch1, ArchPreset::Arch5] {
            let driver = ctx.driver(preset);
            let cmp = driver
                .verify_network(&net)
                .unwrap_or_else(|e| panic!("{}/{preset}: {e}", net.name()));
            assert!(cmp.flexer().verified() && cmp.baseline().verified());
            let verify_nanos =
                cmp.flexer().total_stats().verify_nanos + cmp.baseline().total_stats().verify_nanos;
            println!(
                "{:<12} {:<7} {:>7} {:>14} {:>14} {:>12.2}",
                net.name(),
                preset.to_string(),
                net.layers().len(),
                cmp.flexer().total_stats().schedules_verified,
                cmp.baseline().total_stats().schedules_verified,
                verify_nanos as f64 / 1e6
            );
        }
    }
    println!("\nall winning schedules passed differential verification");
}

/// **Search pruning** — the exact branch-and-bound search (admissible
/// per-candidate lower bounds, a shared per-layer incumbent and the
/// mid-run cutoff) against the exhaustive baseline, on the smallest
/// and the mid-size preset. Both runs are serial so the wall-clock
/// ratio isolates the pruning itself.
///
/// # Panics
///
/// Panics if a search fails or a pruned winner differs from the
/// exhaustive one — exactness is the contract (DESIGN.md §10).
pub fn search_prune(ctx: &ExperimentContext) {
    ctx.print_header(
        "Search pruning",
        "branch-and-bound vs exhaustive search, identical winners",
    );
    let net = ctx.network("squeezenet");
    println!(
        "\n{:<7} {:>10} {:>12} {:>8} {:>9} {:>9} {:>9}",
        "arch", "pruned_ms", "exhaust_ms", "speedup", "bounded", "skipped", "cut"
    );
    for preset in [ArchPreset::Arch1, ArchPreset::Arch5] {
        let arch = ArchConfig::preset(preset);
        let mut pruned_opts = ctx.options.clone();
        pruned_opts.threads = 1;
        pruned_opts.prune = true;
        let mut full_opts = pruned_opts.clone();
        full_opts.prune = false;

        let t = std::time::Instant::now();
        let pruned = flexer::sched::search_network(net.layers(), &arch, &pruned_opts)
            .expect("pruned search succeeds");
        let pruned_ms = t.elapsed().as_secs_f64() * 1e3;
        let t = std::time::Instant::now();
        let full = flexer::sched::search_network(net.layers(), &arch, &full_opts)
            .expect("exhaustive search succeeds");
        let full_ms = t.elapsed().as_secs_f64() * 1e3;

        for (p, f) in pruned.iter().zip(full.iter()) {
            assert_eq!(p.factors, f.factors, "{}: tiling differs", p.layer);
            assert_eq!(p.dataflow, f.dataflow, "{}: dataflow differs", p.layer);
            assert!(
                (p.score - f.score).abs() < 1e-9,
                "{}: score differs",
                p.layer
            );
        }

        let mut stats = SearchStats::default();
        for r in &pruned {
            stats.merge(&r.stats);
        }
        println!(
            "{:<7} {:>10.1} {:>12.1} {:>8.2} {:>9} {:>9} {:>9}",
            preset.to_string(),
            pruned_ms,
            full_ms,
            full_ms / pruned_ms,
            stats.candidates_bounded,
            stats.candidates_pruned,
            stats.early_exits
        );
    }
    println!("\nall pruned winners matched the exhaustive search");
}
