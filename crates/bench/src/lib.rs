//! Experiment harness regenerating every table and figure of the
//! Flexer paper's evaluation (§5).
//!
//! Each `fig*`/`table*` binary in `src/bin/` is a thin wrapper around
//! one function of [`experiments`]; `run_all` executes the full set.
//! Absolute cycle counts come from this reproduction's analytical
//! performance model, not the authors' proprietary simulator — the
//! *shape* of the results (who wins, by roughly what factor, where
//! crossovers fall) is what the harness reproduces (DESIGN.md §2).
//!
//! # Knobs
//!
//! Every experiment reads two environment variables:
//!
//! * `FLEXER_SCALE` — spatial down-scaling divisor applied to the
//!   networks (default per experiment, typically 2-4). `1` runs the
//!   full-size networks; expect hours, like the paper's 20-hour
//!   searches.
//! * `FLEXER_BUDGET` — `quick`, `default` or `wide` search budgets.
//!
//! # Examples
//!
//! ```
//! use flexer_bench::ExperimentContext;
//!
//! let ctx = ExperimentContext::new(4, flexer_bench::Budget::Quick);
//! assert_eq!(ctx.scale, 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

use flexer::prelude::*;

/// Search-budget presets for the experiment harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Budget {
    /// Reduced tiling/combination budgets: seconds per network.
    Quick,
    /// The library defaults: minutes per network.
    Default,
    /// Unbounded tiling enumeration: paper-scale, hours per network.
    Wide,
}

impl Budget {
    /// The search options this budget expands to.
    #[must_use]
    pub fn options(self) -> SearchOptions {
        match self {
            Budget::Quick => SearchOptions::quick(),
            Budget::Default => SearchOptions::default(),
            Budget::Wide => {
                let mut opts = SearchOptions::default();
                opts.tiling.max_tilings = 0;
                opts.tiling.max_ops = 4096;
                opts
            }
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "quick" => Some(Budget::Quick),
            "default" => Some(Budget::Default),
            "wide" => Some(Budget::Wide),
            _ => None,
        }
    }
}

/// Shared configuration of one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentContext {
    /// Spatial down-scaling divisor applied to the networks.
    pub scale: u32,
    /// Search options used by every search.
    pub options: SearchOptions,
    /// Human-readable budget name (for the output header).
    pub budget_name: &'static str,
}

impl ExperimentContext {
    /// Creates a context with an explicit scale and budget.
    #[must_use]
    pub fn new(scale: u32, budget: Budget) -> Self {
        Self {
            scale: scale.max(1),
            options: budget.options(),
            budget_name: match budget {
                Budget::Quick => "quick",
                Budget::Default => "default",
                Budget::Wide => "wide",
            },
        }
    }

    /// Reads `FLEXER_SCALE` / `FLEXER_BUDGET` from the environment,
    /// falling back to the experiment's defaults.
    #[must_use]
    pub fn from_env(default_scale: u32, default_budget: Budget) -> Self {
        let scale = std::env::var("FLEXER_SCALE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(default_scale);
        let budget = std::env::var("FLEXER_BUDGET")
            .ok()
            .and_then(|s| Budget::parse(&s))
            .unwrap_or(default_budget);
        Self::new(scale, budget)
    }

    /// The four paper evaluation networks at this context's scale.
    ///
    /// The zoo ([`networks::all`]) has since grown diversity networks
    /// (transformer, MobileNet-style, fire); the evaluation context
    /// deliberately stays pinned to the paper's four dense CNNs.
    #[must_use]
    pub fn networks(&self) -> Vec<Network> {
        ["vgg16", "resnet50", "squeezenet", "yolov2"]
            .iter()
            .map(|name| {
                let net = networks::by_name(name).expect("paper evaluation network exists");
                scale_spatial(&net, self.scale)
            })
            .collect()
    }

    /// One evaluation network at this context's scale.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not one of the four evaluation networks.
    #[must_use]
    pub fn network(&self, name: &str) -> Network {
        let net = networks::by_name(name).unwrap_or_else(|| panic!("unknown network {name:?}"));
        scale_spatial(&net, self.scale)
    }

    /// A driver for `preset` with this context's options.
    #[must_use]
    pub fn driver(&self, preset: ArchPreset) -> Flexer {
        Flexer::new(ArchConfig::preset(preset)).with_options(self.options.clone())
    }

    /// Prints the standard experiment header.
    pub fn print_header(&self, experiment: &str, paper_ref: &str) {
        println!("# {experiment} — reproduces {paper_ref}");
        println!(
            "# scale=1/{} budget={} (override with FLEXER_SCALE / FLEXER_BUDGET)",
            self.scale, self.budget_name
        );
    }
}

/// Geometric mean of a non-empty slice of positive values.
///
/// # Examples
///
/// ```
/// assert!((flexer_bench::geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_parsing() {
        assert_eq!(Budget::parse("quick"), Some(Budget::Quick));
        assert_eq!(Budget::parse("default"), Some(Budget::Default));
        assert_eq!(Budget::parse("wide"), Some(Budget::Wide));
        assert_eq!(Budget::parse("bogus"), None);
    }

    #[test]
    fn context_scales_networks() {
        let ctx = ExperimentContext::new(4, Budget::Quick);
        let vgg = ctx.network("vgg16");
        assert_eq!(vgg.layers()[0].in_height(), 56);
        assert_eq!(ctx.networks().len(), 4);
    }

    #[test]
    fn wide_budget_lifts_tiling_caps() {
        let opts = Budget::Wide.options();
        assert_eq!(opts.tiling.max_tilings, 0);
    }

    #[test]
    fn geomean_properties() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
        assert!(geomean(&[]).is_nan());
    }
}
