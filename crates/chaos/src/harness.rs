//! Harness plumbing: configuration, server lifecycle, invariant
//! bookkeeping, and the replayable failure artifact.

use crate::rng::SplitMix64;
use crate::scenarios;
use flexer_serve::{Server, ServerConfig};
use flexer_trace::json::{parse, Json};
use flexer_trace::LatencySummary;
use std::io::{self, Write};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Wall-clock liveness allowance for operations that must *finish*
/// (a response arriving, a server draining). Generous on purpose: it
/// guards against hangs, never asserts performance — all performance
/// assertions are logical-tick SLOs.
pub(crate) const LIVENESS: Duration = Duration::from_secs(120);

static BOOT_ID: AtomicU32 = AtomicU32::new(0);

/// Latency SLO thresholds in logical trace ticks over `layer` spans.
///
/// Under [`flexer_trace::ClockMode::Logical`] a `layer` span's
/// duration counts the events its search recorded — a deterministic
/// measure of search effort for a given layer shape and option set,
/// byte-stable across runs and machines. At the summary trace detail
/// the soak's shape pool measures ~19 ticks per `layer` span today
/// (per-candidate events live in their own lanes); the thresholds
/// below hold ~5–13× headroom so routine counter additions pass while
/// an effort explosion inside the layer span — phases re-running,
/// per-candidate work leaking into the summary lane — trips the gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloThresholds {
    /// Ceiling for the median `layer` span duration, in ticks.
    pub layer_p50: u64,
    /// Ceiling for the 99th-percentile `layer` span duration.
    pub layer_p99: u64,
}

impl Default for SloThresholds {
    fn default() -> Self {
        Self {
            layer_p50: 100,
            layer_p99: 250,
        }
    }
}

/// How much load a run generates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// CI-sized: the full scenario matrix in well under a minute.
    Short,
    /// A heavier local soak (~5× the ops).
    Long,
}

impl Profile {
    /// Scales a short-profile op count.
    #[must_use]
    pub fn scale(self, short: usize) -> usize {
        match self {
            Self::Short => short,
            Self::Long => short * 5,
        }
    }
}

/// One chaos scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Many concurrent connections mixing every op type.
    Soak,
    /// Slow-loris, byte-dribble, and oversized-line abuse.
    Slowloris,
    /// Live `.fxs` corruption/truncation under a scheduling load.
    Corrupt,
    /// Zero, tiny, and absurd `deadline_ms` skew in both modes.
    Deadline,
    /// Kill/drain/restart cycles with warm-store reattach.
    Restart,
    /// Three-member sharded fleet: routed soak with a mid-soak shard
    /// kill, failover under a shed-load budget, and anti-entropy back
    /// to manifest equality after the shard rejoins empty.
    Fleet,
}

impl Scenario {
    /// Every scenario, in run order. New scenarios append — each forks
    /// the root seed stream in order, so insertion anywhere else would
    /// re-shuffle every later scenario's schedule of abuse.
    #[must_use]
    pub fn all() -> Vec<Self> {
        vec![
            Self::Soak,
            Self::Slowloris,
            Self::Corrupt,
            Self::Deadline,
            Self::Restart,
            Self::Fleet,
        ]
    }

    /// The scenario's CLI name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Soak => "soak",
            Self::Slowloris => "slowloris",
            Self::Corrupt => "corrupt",
            Self::Deadline => "deadline",
            Self::Restart => "restart",
            Self::Fleet => "fleet",
        }
    }

    /// Parses a CLI name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        Self::all().into_iter().find(|s| s.name() == name)
    }
}

/// A full harness configuration; [`ChaosConfig::new`] gives the CI
/// defaults for a seed.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// The run's seed: same seed, same schedule of abuse.
    pub seed: u64,
    /// Load sizing.
    pub profile: Profile,
    /// Where scratch store directories are created (a per-run
    /// subdirectory is always used). Defaults to the system temp dir.
    pub scratch_dir: PathBuf,
    /// Where failure artifacts are written.
    pub artifact_dir: PathBuf,
    /// Path to a `flexer-serve` binary. When set, scenarios that want
    /// a hard kill spawn and kill real daemon processes; otherwise
    /// servers run in-process and "kill" degrades to graceful drain.
    pub serve_bin: Option<PathBuf>,
    /// Which scenarios to run.
    pub scenarios: Vec<Scenario>,
    /// Latency SLO thresholds asserted over the soak's traced spans.
    pub slo: SloThresholds,
    /// Concurrent soak client connections. The default (6) is
    /// CI-sized; `--connections` raises it, and the opt-in
    /// `--connection-storm` profile drives thousands of concurrent
    /// clients against one daemon.
    pub connections: usize,
}

/// The connection count `--connection-storm` selects: a
/// thousands-of-connections soak, opt-in only (never part of the
/// default CI gate).
pub const STORM_CONNECTIONS: usize = 2048;

impl ChaosConfig {
    /// The default configuration for one seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            profile: Profile::Short,
            scratch_dir: std::env::temp_dir(),
            artifact_dir: std::env::temp_dir(),
            serve_bin: None,
            scenarios: Scenario::all(),
            slo: SloThresholds::default(),
            connections: 6,
        }
    }
}

/// One invariant violation: which scenario, and what went wrong.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The scenario that caught it.
    pub scenario: &'static str,
    /// What was violated, with enough context to investigate.
    pub detail: String,
}

/// The outcome of one harness run.
#[derive(Debug)]
pub struct ChaosReport {
    /// The seed the run (and any replay) uses.
    pub seed: u64,
    /// Requests the harness issued and validated.
    pub ops: u64,
    /// Every invariant violation caught.
    pub violations: Vec<Violation>,
    /// Logical-tick latency summary over the traced `layer` spans.
    pub layer_latency: LatencySummary,
    /// The failure artifact, when violations were dumped.
    pub artifact: Option<PathBuf>,
}

impl ChaosReport {
    /// `true` when the run caught nothing.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// What a scenario hands back to the harness.
#[derive(Debug, Default)]
pub(crate) struct ScenarioOutcome {
    pub ops: u64,
    pub violations: Vec<Violation>,
    /// Rendered span trees captured from traced responses.
    pub span_trees: Vec<String>,
}

impl ScenarioOutcome {
    pub(crate) fn violate(&mut self, scenario: &'static str, detail: impl Into<String>) {
        self.violations.push(Violation {
            scenario,
            detail: detail.into(),
        });
    }
}

/// Runs the configured scenarios and returns the report, writing a
/// replayable artifact when anything was caught.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosReport {
    let scratch = cfg
        .scratch_dir
        .join(format!("flexer-chaos-{}-{}", std::process::id(), cfg.seed));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("chaos scratch dir");

    let mut root = SplitMix64::new(cfg.seed);
    let mut ops = 0;
    let mut violations = Vec::new();
    let mut span_trees = Vec::new();

    for scenario in &cfg.scenarios {
        // Each scenario forks the root stream so adding a scenario (or
        // skipping one via --scenario) never re-shuffles the others.
        let rng = root.fork();
        let outcome = match scenario {
            Scenario::Soak => scenarios::soak(cfg, &scratch, rng),
            Scenario::Slowloris => scenarios::slowloris(cfg, &scratch, rng),
            Scenario::Corrupt => scenarios::corrupt(cfg, &scratch, rng),
            Scenario::Deadline => scenarios::deadline(cfg, &scratch, rng),
            Scenario::Restart => scenarios::restart(cfg, &scratch, rng),
            Scenario::Fleet => scenarios::fleet(cfg, &scratch, rng),
        };
        ops += outcome.ops;
        violations.extend(outcome.violations);
        span_trees.extend(outcome.span_trees);
    }

    // The latency SLO gate: logical-tick percentiles over every traced
    // `layer` span the run produced.
    let durations: Vec<u64> = span_trees
        .iter()
        .flat_map(|t| {
            flexer_trace::stats::parse_rendered_tree(t)
                .into_iter()
                .filter(|s| s.name == "layer")
                .map(|s| s.dur)
        })
        .collect();
    let layer_latency = LatencySummary::of(&durations);
    if cfg.scenarios.contains(&Scenario::Soak) {
        if layer_latency.count == 0 {
            violations.push(Violation {
                scenario: "slo",
                detail: "no traced layer spans were captured; the SLO gate has no data".into(),
            });
        } else {
            if layer_latency.p50 > cfg.slo.layer_p50 {
                violations.push(Violation {
                    scenario: "slo",
                    detail: format!(
                        "layer span p50 {} ticks exceeds SLO {}",
                        layer_latency.p50, cfg.slo.layer_p50
                    ),
                });
            }
            if layer_latency.p99 > cfg.slo.layer_p99 {
                violations.push(Violation {
                    scenario: "slo",
                    detail: format!(
                        "layer span p99 {} ticks exceeds SLO {}",
                        layer_latency.p99, cfg.slo.layer_p99
                    ),
                });
            }
        }
    }

    let artifact = if violations.is_empty() {
        None
    } else {
        Some(write_artifact(cfg, &violations, &span_trees))
    };
    let _ = std::fs::remove_dir_all(&scratch);

    ChaosReport {
        seed: cfg.seed,
        ops,
        violations,
        layer_latency,
        artifact,
    }
}

/// Dumps the replayable failure artifact and returns its path.
fn write_artifact(cfg: &ChaosConfig, violations: &[Violation], span_trees: &[String]) -> PathBuf {
    let _ = std::fs::create_dir_all(&cfg.artifact_dir);
    let path = cfg
        .artifact_dir
        .join(format!("chaos-seed-{}.log", cfg.seed));
    let mut out = String::new();
    out.push_str(&format!(
        "flexer-chaos failure artifact\nseed: {}\nreplay: flexer-chaos --seed {}{}{}\n\n",
        cfg.seed,
        cfg.seed,
        match cfg.profile {
            Profile::Short => " --duration-short",
            Profile::Long => " --duration-long",
        },
        if cfg.connections == 6 {
            String::new()
        } else {
            format!(" --connections {}", cfg.connections)
        },
    ));
    out.push_str(&format!("violations ({}):\n", violations.len()));
    for v in violations {
        out.push_str(&format!("  [{}] {}\n", v.scenario, v.detail));
    }
    out.push_str(&format!(
        "\ncaptured span trees ({} total, first 3 shown):\n",
        span_trees.len()
    ));
    for tree in span_trees.iter().take(3) {
        out.push_str(tree);
        out.push('\n');
    }
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("warning: cannot write artifact {}: {e}", path.display());
    }
    path
}

// ---------------------------------------------------------------------
// Server lifecycle

/// A running scheduling server the harness is abusing: in-process, or
/// a spawned `flexer-serve` child when the config names a binary.
pub(crate) enum ServerHandle {
    InProcess {
        addr: SocketAddr,
        done: mpsc::Receiver<io::Result<()>>,
    },
    Child {
        addr: SocketAddr,
        child: Child,
    },
}

impl ServerHandle {
    pub(crate) fn addr(&self) -> SocketAddr {
        match self {
            Self::InProcess { addr, .. } | Self::Child { addr, .. } => *addr,
        }
    }

    /// Whether [`ServerHandle::kill`] is a real hard kill.
    pub(crate) fn can_hard_kill(&self) -> bool {
        matches!(self, Self::Child { .. })
    }

    /// Gracefully drains the server and waits for it to come down.
    /// Returns an error description when it did not drain in time —
    /// that is an invariant violation, not a panic.
    pub(crate) fn drain(self) -> Result<(), String> {
        let addr = self.addr();
        let reply = flexer_serve::client::roundtrip(addr, r#"{"op":"shutdown"}"#)
            .map_err(|e| format!("shutdown request failed: {e}"))?;
        if !reply.contains(r#""ok":true"#) {
            return Err(format!("shutdown not acknowledged: {reply}"));
        }
        self.wait_down()
    }

    /// Hard-kills a child server; for an in-process server (no process
    /// to kill) degrades to a graceful drain.
    pub(crate) fn kill(self) -> Result<(), String> {
        match self {
            Self::Child { mut child, .. } => {
                child.kill().map_err(|e| format!("kill failed: {e}"))?;
                child.wait().map_err(|e| format!("wait failed: {e}"))?;
                Ok(())
            }
            in_process @ Self::InProcess { .. } => in_process.drain(),
        }
    }

    /// Waits for an already-draining server to exit.
    fn wait_down(self) -> Result<(), String> {
        match self {
            Self::InProcess { done, .. } => match done.recv_timeout(LIVENESS) {
                Ok(Ok(())) => Ok(()),
                Ok(Err(e)) => Err(format!("server run() failed: {e}")),
                Err(_) => Err("server did not drain within the liveness bound".into()),
            },
            Self::Child { mut child, .. } => {
                let deadline = Instant::now() + LIVENESS;
                loop {
                    match child.try_wait() {
                        Ok(Some(status)) if status.success() => return Ok(()),
                        Ok(Some(status)) => return Err(format!("daemon exited {status}")),
                        Ok(None) if Instant::now() < deadline => {
                            std::thread::sleep(Duration::from_millis(20));
                        }
                        Ok(None) => {
                            let _ = child.kill();
                            return Err("daemon did not drain within the liveness bound".into());
                        }
                        Err(e) => return Err(format!("wait failed: {e}")),
                    }
                }
            }
        }
    }
}

/// Boots a server for a scenario: a spawned `flexer-serve` child when
/// the config names a binary, in-process otherwise. `addr` pins the
/// bind address (the fleet scenario restarts a killed member on its
/// recorded `host:port` so the ring stays stable); `None` picks any
/// free port.
pub(crate) fn boot(
    cfg: &ChaosConfig,
    scratch: &Path,
    store_dir: Option<&Path>,
    workers: usize,
    queue: usize,
    addr: Option<SocketAddr>,
) -> Result<ServerHandle, String> {
    match &cfg.serve_bin {
        Some(bin) => boot_child(bin, scratch, store_dir, workers, queue, addr),
        None => boot_in_process(store_dir, workers, queue, addr),
    }
}

fn boot_in_process(
    store_dir: Option<&Path>,
    workers: usize,
    queue: usize,
    addr: Option<SocketAddr>,
) -> Result<ServerHandle, String> {
    let server = Server::bind(ServerConfig {
        workers,
        queue,
        store_dir: store_dir.map(Path::to_path_buf),
        addr: addr.map_or_else(|| "127.0.0.1:0".into(), |a| a.to_string()),
        ..ServerConfig::default()
    })
    .map_err(|e| format!("bind failed: {e}"))?;
    let addr = server.local_addr();
    let (tx, done) = mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(server.run());
    });
    Ok(ServerHandle::InProcess { addr, done })
}

fn boot_child(
    bin: &Path,
    scratch: &Path,
    store_dir: Option<&Path>,
    workers: usize,
    queue: usize,
    addr: Option<SocketAddr>,
) -> Result<ServerHandle, String> {
    let port_file = scratch.join(format!("port-{}", BOOT_ID.fetch_add(1, Ordering::Relaxed)));
    let _ = std::fs::remove_file(&port_file);
    let mut cmd = Command::new(bin);
    cmd.arg("--addr")
        .arg(addr.map_or_else(|| "127.0.0.1:0".into(), |a| a.to_string()))
        .arg("--port-file")
        .arg(&port_file)
        .arg("--workers")
        .arg(workers.to_string())
        .arg("--queue")
        .arg(queue.to_string())
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if let Some(dir) = store_dir {
        cmd.arg("--store").arg(dir);
    }
    let mut child = cmd
        .spawn()
        .map_err(|e| format!("cannot spawn {}: {e}", bin.display()))?;

    let deadline = Instant::now() + LIVENESS;
    let port: u16 = loop {
        if let Ok(text) = std::fs::read_to_string(&port_file) {
            if let Ok(port) = text.trim().parse() {
                break port;
            }
        }
        if let Ok(Some(status)) = child.try_wait() {
            return Err(format!("daemon exited during boot: {status}"));
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            return Err("daemon never wrote its port file".into());
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    let addr = format!("127.0.0.1:{port}")
        .parse()
        .map_err(|e| format!("bad port: {e}"))?;
    Ok(ServerHandle::Child { addr, child })
}

// ---------------------------------------------------------------------
// Response validation

/// Error codes the protocol defines; anything else on the wire is an
/// invariant violation.
pub(crate) const KNOWN_ERRORS: [&str; 7] = [
    "parse",
    "bad_request",
    "overloaded",
    "deadline",
    "sched",
    "shutting_down",
    "internal",
];

/// A validated response: parsed JSON plus the typed error code when
/// `ok` was false.
pub(crate) struct Checked {
    pub json: Json,
    pub error: Option<String>,
}

/// Validates the protocol frame of one response line: parseable JSON,
/// a boolean `ok`, a known error code when `ok:false`, and an echoed
/// id matching `expect_id` when one was sent.
pub(crate) fn check_response(line: &str, expect_id: Option<&str>) -> Result<Checked, String> {
    let json = parse(line).map_err(|e| format!("unparseable response {line:?}: {e:?}"))?;
    let ok = json
        .get("ok")
        .and_then(Json::as_bool)
        .ok_or_else(|| format!("response missing boolean ok: {line}"))?;
    let error = if ok {
        None
    } else {
        let code = json
            .get("error")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("error response without code: {line}"))?;
        if !KNOWN_ERRORS.contains(&code) {
            return Err(format!("unknown error code {code:?}: {line}"));
        }
        Some(code.to_string())
    };
    if let Some(want) = expect_id {
        // Error paths that fail before parsing (parse/oversized) may
        // legitimately drop the id; a *successful* response must echo
        // it, and a present id must never be someone else's.
        match json.get("id").and_then(Json::as_str) {
            Some(got) if got != want => {
                return Err(format!(
                    "response id {got:?} is not ours ({want:?}): {line}"
                ));
            }
            None if ok => return Err(format!("ok response dropped id {want:?}: {line}")),
            _ => {}
        }
    }
    Ok(Checked { json, error })
}

/// A response with store-provenance stripped: per-layer
/// `"store":"hit"|"miss"` markers removed and `store_hits` /
/// `store_misses` totals zeroed. Two answers for the same request must
/// be byte-identical under this mask whether they were computed or
/// warm-started.
pub(crate) fn mask_provenance(line: &str) -> String {
    flexer_serve::mask_provenance(line)
}

/// Writes `line` + newline to a raw stream (scenario clients that
/// bypass [`flexer_serve::client::Client`] for byte-level control).
pub(crate) fn send_raw(stream: &mut std::net::TcpStream, line: &str) -> io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}
