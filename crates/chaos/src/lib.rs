//! Deterministic chaos/load harness for `flexer-serve`.
//!
//! The harness drives a *real* scheduling server over TCP — in-process
//! by default, a spawned `flexer-serve` binary when one is supplied —
//! through five scenarios: a many-connection soak, slow-loris and
//! byte-dribble abuse, live store-corruption injection, deadline skew,
//! and kill/drain/restart cycles with warm-store reattach.
//!
//! Two properties make it a CI gate rather than a flake generator:
//!
//! - **Determinism.** All load shapes, fault choices, and op mixes are
//!   pure functions of one [`rng::SplitMix64`] seed. A failure report
//!   names the seed; re-running with it replays the same schedule of
//!   abuse. No assertion reads the wall clock.
//! - **Trace-based SLOs.** Latency percentiles are computed from the
//!   deterministic trace layer's logical-tick span durations
//!   ([`flexer_trace::stats`]) carried in traced responses — a
//!   statement about search effort, byte-stable across runs, immune to
//!   machine load.
//!
//! Every invariant violation dumps a replayable artifact (seed,
//! violation list, captured span trees) under the configured artifact
//! directory. See [`harness::run_chaos`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod rng;
pub mod scenarios;

pub use harness::{
    run_chaos, ChaosConfig, ChaosReport, Profile, Scenario, SloThresholds, Violation,
    STORM_CONNECTIONS,
};
pub use rng::SplitMix64;
