//! `flexer-chaos` — deterministic chaos/load harness for
//! `flexer-serve`.
//!
//! ```text
//! flexer-chaos [--seed N]... [--duration-short|--duration-long]
//!              [--connections N | --connection-storm]
//!              [--artifact-dir DIR] [--scratch-dir DIR]
//!              [--serve-bin PATH] [--scenario NAME]...
//! ```
//!
//! Runs every scenario (or the named subset) once per `--seed` and
//! exits non-zero when any run caught an invariant violation. Failure
//! runs dump a replayable artifact (`chaos-seed-N.log`) naming the
//! seed to re-run with.
//!
//! `--connections N` sets the soak scenario's concurrent client count
//! (default 6, CI-sized). `--connection-storm` is the opt-in
//! thousands-of-connections profile — shorthand for `--connections
//! 2048` — and is deliberately not part of the default CI gate.

use flexer_chaos::{run_chaos, ChaosConfig, Profile, Scenario, STORM_CONNECTIONS};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut seeds: Vec<u64> = Vec::new();
    let mut template = ChaosConfig::new(0);
    let mut scenarios: Vec<Scenario> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => match args.next().map(|v| v.parse::<u64>()) {
                Some(Ok(seed)) => seeds.push(seed),
                _ => return usage("--seed needs an unsigned integer"),
            },
            "--duration-short" => template.profile = Profile::Short,
            "--duration-long" => template.profile = Profile::Long,
            "--connections" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => template.connections = n,
                _ => return usage("--connections needs a positive integer"),
            },
            "--connection-storm" => template.connections = STORM_CONNECTIONS,
            "--artifact-dir" => match args.next() {
                Some(dir) => template.artifact_dir = PathBuf::from(dir),
                None => return usage("--artifact-dir needs a path"),
            },
            "--scratch-dir" => match args.next() {
                Some(dir) => template.scratch_dir = PathBuf::from(dir),
                None => return usage("--scratch-dir needs a path"),
            },
            "--serve-bin" => match args.next() {
                Some(bin) => template.serve_bin = Some(PathBuf::from(bin)),
                None => return usage("--serve-bin needs a path"),
            },
            "--scenario" => match args.next().as_deref().and_then(Scenario::from_name) {
                Some(scenario) => scenarios.push(scenario),
                None => {
                    let names: Vec<&str> = Scenario::all().iter().map(|s| s.name()).collect();
                    return usage(&format!("--scenario needs one of {}", names.join(", ")));
                }
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    if seeds.is_empty() {
        seeds.push(1);
    }
    if !scenarios.is_empty() {
        template.scenarios = scenarios;
    }
    if let Some(bin) = &template.serve_bin {
        if !bin.exists() {
            eprintln!("error: --serve-bin {} does not exist", bin.display());
            return ExitCode::FAILURE;
        }
    }

    let mut failed = false;
    for seed in seeds {
        let cfg = ChaosConfig {
            seed,
            ..template.clone()
        };
        let report = run_chaos(&cfg);
        println!(
            "seed {:>6}: {} ops, {} violation(s), layer spans {}",
            report.seed,
            report.ops,
            report.violations.len(),
            report.layer_latency,
        );
        for v in &report.violations {
            println!("  [{}] {}", v.scenario, v.detail);
        }
        if let Some(artifact) = &report.artifact {
            println!("  artifact: {}", artifact.display());
            println!("  replay:   flexer-chaos --seed {}", report.seed);
        }
        failed |= !report.clean();
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(problem: &str) -> ExitCode {
    if !problem.is_empty() {
        eprintln!("error: {problem}");
    }
    eprintln!(
        "usage: flexer-chaos [--seed N]... [--duration-short|--duration-long] \
         [--connections N | --connection-storm] [--artifact-dir DIR] [--scratch-dir DIR] \
         [--serve-bin PATH] [--scenario NAME]..."
    );
    if problem.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
