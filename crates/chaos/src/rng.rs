//! The harness's one randomness source: SplitMix64.
//!
//! Everything the harness "randomly" does — op mixes, fault choices,
//! dribble pacing, kill-vs-drain coin flips — flows from one seed
//! through this generator, so one `--seed` value replays one exact
//! schedule of abuse. SplitMix64 is chosen for its trivially portable
//! arithmetic (no platform-dependent behavior to drift) and cheap
//! [`SplitMix64::fork`], which gives each client thread its own
//! deterministic stream regardless of thread interleaving.

/// A seeded SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A value in `0..n` (`0` when `n == 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        self.next_u64() % n
    }

    /// `true` with probability `percent`/100.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }

    /// A uniformly chosen element of `items`.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// A child generator whose stream is a pure function of this
    /// generator's state — one per worker thread keeps per-thread
    /// determinism independent of scheduling order.
    pub fn fork(&mut self) -> Self {
        Self::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_first_value() {
        // SplitMix64(0) reference value — pins the arithmetic so the
        // "same seed replays the same run" promise survives refactors.
        assert_eq!(SplitMix64::new(0).next_u64(), 0xe220_a839_7b1d_cdaf);
    }

    #[test]
    fn forks_are_deterministic_and_distinct() {
        let mut root = SplitMix64::new(7);
        let mut a = root.fork();
        let mut b = root.fork();
        let mut root2 = SplitMix64::new(7);
        let mut a2 = root2.fork();
        let mut b2 = root2.fork();
        assert_eq!(a.next_u64(), a2.next_u64());
        assert_eq!(b.next_u64(), b2.next_u64());
        assert_ne!(SplitMix64::new(7).fork().next_u64(), {
            let mut r = SplitMix64::new(7);
            r.fork();
            r.fork().next_u64()
        });
    }

    #[test]
    fn below_and_pick_stay_in_range() {
        let mut r = SplitMix64::new(1);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
        assert_eq!(r.below(0), 0);
        let items = [1, 2, 3];
        for _ in 0..100 {
            assert!(items.contains(r.pick(&items)));
        }
    }
}
