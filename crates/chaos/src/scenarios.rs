//! The five chaos scenarios.
//!
//! Each scenario boots its own server (in-process, or a spawned
//! `flexer-serve` child when the config names a binary), drives it
//! with seeded load or faults, validates every response frame, and
//! hands violations back to the harness. Scenarios never panic on a
//! server misbehaviour — misbehaviour is the *product* here, reported
//! as [`Violation`](crate::harness::Violation)s so one run can catch
//! several bugs.

use crate::harness::{
    boot, check_response, mask_provenance, send_raw, ChaosConfig, Profile, ScenarioOutcome,
    ServerHandle, LIVENESS,
};
use crate::rng::SplitMix64;
use flexer_serve::client::Client;
use flexer_serve::MAX_LINE_BYTES;
use flexer_trace::json::Json;
use std::io::{BufRead, BufReader};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The layer-shape pool every scenario draws from. Small shapes keep a
/// single search in the low milliseconds so CI-profile runs stay well
/// under a minute, while still exercising the full search pipeline.
const SHAPES: [(u32, u32, u32, u32); 3] = [(16, 14, 14, 16), (32, 14, 14, 32), (16, 7, 7, 32)];

/// Soak connection counts above this run in *storm* mode: each
/// connection sheds its op budget to 2 and connection-level transport
/// failures count as shed load rather than violations (the kernel
/// accept queue is smaller than the client herd by design there).
const STORM_TOLERANCE_THRESHOLD: usize = 64;

/// A fourth shape used only as concurrent "hammer" traffic in the
/// corruption scenario, so corrupting a [`SHAPES`] entry always hits a
/// memo-cold fingerprint in the fresh server.
const HAMMER_SHAPE: (u32, u32, u32, u32) = (8, 14, 14, 8);

fn layers_json((c_in, h, w, c_out): (u32, u32, u32, u32)) -> String {
    format!(r#"[{{"in_channels":{c_in},"height":{h},"width":{w},"out_channels":{c_out}}}]"#)
}

fn schedule_line(id: &str, shape: (u32, u32, u32, u32), extra: &str) -> String {
    format!(
        r#"{{"op":"schedule","id":"{id}","layers":{}{extra}}}"#,
        layers_json(shape)
    )
}

/// A schedule request over the whole [`SHAPES`] pool as one network —
/// the multi-layer case where a deadline can expire *between* layers.
fn multi_layer_line(id: &str, extra: &str) -> String {
    let rows: Vec<String> = SHAPES
        .iter()
        .map(|&(c_in, h, w, c_out)| {
            format!(r#"{{"in_channels":{c_in},"height":{h},"width":{w},"out_channels":{c_out}}}"#)
        })
        .collect();
    format!(
        r#"{{"op":"schedule","id":"{id}","layers":[{}]{extra}}}"#,
        rows.join(",")
    )
}

/// One validated request/response roundtrip over a fresh connection.
/// Counts the op, reports transport failures and disallowed error
/// codes as violations, and returns the parsed response when the frame
/// was sound.
fn checked_rt(
    addr: SocketAddr,
    line: &str,
    id: Option<&str>,
    allowed_errors: &[&str],
    scenario: &'static str,
    out: &mut ScenarioOutcome,
) -> Option<Json> {
    out.ops += 1;
    let reply = match rt(addr, line) {
        Ok(reply) => reply,
        Err(e) => {
            out.violate(scenario, format!("transport failure for {line}: {e}"));
            return None;
        }
    };
    match check_response(&reply, id) {
        Ok(checked) => {
            if let Some(code) = &checked.error {
                if !allowed_errors.contains(&code.as_str()) {
                    out.violate(
                        scenario,
                        format!("unexpected error {code:?} for {line}: {reply}"),
                    );
                    return None;
                }
            }
            Some(checked.json)
        }
        Err(detail) => {
            out.violate(scenario, detail);
            None
        }
    }
}

/// A raw roundtrip with the liveness read timeout applied — a server
/// that swallows a request without answering shows up as a timeout
/// violation instead of hanging the harness.
fn rt(addr: SocketAddr, line: &str) -> Result<String, String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    client
        .set_read_timeout(Some(LIVENESS))
        .map_err(|e| format!("set timeout: {e}"))?;
    client.roundtrip(line).map_err(|e| format!("{e}"))
}

fn boot_or_bail(
    cfg: &ChaosConfig,
    scratch: &Path,
    store: Option<&Path>,
    workers: usize,
    queue: usize,
    scenario: &'static str,
    out: &mut ScenarioOutcome,
) -> Option<ServerHandle> {
    match boot(cfg, scratch, store, workers, queue, None) {
        Ok(server) => Some(server),
        Err(e) => {
            out.violate(scenario, format!("server boot failed: {e}"));
            None
        }
    }
}

fn drain_or_violate(server: ServerHandle, scenario: &'static str, out: &mut ScenarioOutcome) {
    if let Err(e) = server.drain() {
        out.violate(scenario, format!("graceful drain failed: {e}"));
    }
}

// ---------------------------------------------------------------------
// Soak

/// Sustained many-connection load mixing every op type. Invariants:
/// every response is a sound frame with our id; the only tolerated
/// error is `overloaded` (plus `deadline` on deadline-carrying ops);
/// traced responses carry a span tree; the server drains cleanly after
/// the storm.
pub(crate) fn soak(cfg: &ChaosConfig, scratch: &Path, mut rng: SplitMix64) -> ScenarioOutcome {
    let mut out = ScenarioOutcome::default();
    let store = scratch.join("soak-store");
    let Some(server) = boot_or_bail(cfg, scratch, Some(&store), 8, 64, "soak", &mut out) else {
        return out;
    };
    let addr = server.addr();
    let threads = cfg.connections.max(1);
    // Storm-sized runs (--connections past the CI scale, up to the
    // thousands-of-connections profile) shed per-connection ops so
    // total load grows with the client count, not quadratically, and
    // tolerate connection-level failures: with more concurrent clients
    // than the kernel accept queue holds, refused connections are shed
    // load, not protocol violations.
    let storm = threads > STORM_TOLERANCE_THRESHOLD;
    let ops_per_thread = if storm { 2 } else { cfg.profile.scale(10) };
    let trees = Arc::new(Mutex::new(Vec::new()));

    let mut thread_outs: Vec<ScenarioOutcome> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let mut rng = rng.fork();
            let trees = Arc::clone(&trees);
            handles.push(scope.spawn(move || {
                let mut out = ScenarioOutcome::default();
                for i in 0..ops_per_thread {
                    let id = format!("s{t}-{i}");
                    soak_op(addr, &id, &mut rng, &trees, &mut out);
                }
                out
            }));
        }
        for handle in handles {
            match handle.join() {
                Ok(thread_out) => thread_outs.push(thread_out),
                Err(_) => {
                    let mut panicked = ScenarioOutcome::default();
                    panicked.violate("soak", "a soak client thread panicked");
                    thread_outs.push(panicked);
                }
            }
        }
    });
    for mut thread_out in thread_outs {
        out.ops += thread_out.ops;
        if storm {
            thread_out
                .violations
                .retain(|v| !v.detail.starts_with("transport failure"));
        }
        out.violations.extend(thread_out.violations);
    }
    out.span_trees = std::mem::take(&mut *trees.lock().expect("trees mutex"));

    drain_or_violate(server, "soak", &mut out);
    out
}

fn soak_op(
    addr: SocketAddr,
    id: &str,
    rng: &mut SplitMix64,
    trees: &Mutex<Vec<String>>,
    out: &mut ScenarioOutcome,
) {
    let roll = rng.below(100);
    if roll < 15 {
        checked_rt(
            addr,
            &format!(r#"{{"op":"health","id":"{id}"}}"#),
            Some(id),
            &["overloaded"],
            "soak",
            out,
        );
    } else if roll < 25 {
        checked_rt(
            addr,
            &format!(r#"{{"op":"stats","id":"{id}"}}"#),
            Some(id),
            &["overloaded"],
            "soak",
            out,
        );
    } else if roll < 55 {
        let shape = *rng.pick(&SHAPES);
        checked_rt(
            addr,
            &schedule_line(id, shape, ""),
            Some(id),
            &["overloaded"],
            "soak",
            out,
        );
    } else if roll < 65 {
        let shape = *rng.pick(&SHAPES);
        let line = format!(
            r#"{{"op":"verify","id":"{id}","layers":{}}}"#,
            layers_json(shape)
        );
        checked_rt(addr, &line, Some(id), &["overloaded"], "soak", out);
    } else if roll < 80 {
        let shape = *rng.pick(&SHAPES);
        let deadline = 1 + rng.below(50);
        let line = schedule_line(
            id,
            shape,
            &format!(r#","mode":"anytime","deadline_ms":{deadline}"#),
        );
        // Anytime never errors on a deadline — it answers partial.
        if let Some(json) = checked_rt(addr, &line, Some(id), &["overloaded"], "soak", out) {
            check_anytime_rows(&json, "soak", out);
        }
    } else {
        let shape = *rng.pick(&SHAPES);
        let line = schedule_line(id, shape, r#","trace":true"#);
        if let Some(json) = checked_rt(addr, &line, Some(id), &["overloaded"], "soak", out) {
            // A tolerated "overloaded" answer carries no trace; only an
            // ok:true response owes us a span tree.
            if json.get("ok").and_then(Json::as_bool) == Some(true) {
                match json.get("span_tree").and_then(Json::as_str) {
                    Some(tree) if tree.contains("layer") => {
                        trees.lock().expect("trees mutex").push(tree.to_string());
                    }
                    _ => out.violate("soak", format!("traced response without a span tree: {id}")),
                }
            }
        }
    }
}

/// Asserts the anytime row invariants on an `ok:true` response: a
/// non-empty `layers` array; `partial:true` at the top only when some
/// row is partial; every partial row carries a proven gap ≥ 1.
fn check_anytime_rows(json: &Json, scenario: &'static str, out: &mut ScenarioOutcome) {
    if json.get("ok").and_then(Json::as_bool) != Some(true) {
        return;
    }
    let Some(rows) = json.get("layers").and_then(Json::as_array) else {
        out.violate(scenario, "anytime response without a layers array");
        return;
    };
    if rows.is_empty() {
        out.violate(scenario, "anytime response with an empty layers array");
        return;
    }
    let any_partial = rows
        .iter()
        .any(|row| row.get("partial").and_then(Json::as_bool) == Some(true));
    if json.get("partial").and_then(Json::as_bool) == Some(true) && !any_partial {
        out.violate(
            scenario,
            "partial:true response without any partial layer row",
        );
    }
    for row in rows {
        if row.get("partial").and_then(Json::as_bool) == Some(true) {
            match row.get("gap").and_then(Json::as_num) {
                Some(gap) if gap >= 1.0 => {}
                other => out.violate(
                    scenario,
                    format!("partial row with missing or impossible gap: {other:?}"),
                ),
            }
        }
        if row.get("latency").and_then(Json::as_num).is_none() {
            out.violate(scenario, "layer row without a latency");
        }
    }
}

// ---------------------------------------------------------------------
// Slow-loris

/// Byte-dribble abuse against the line reader. Invariants: a slowly
/// dribbled valid request still succeeds; an oversized line draws a
/// typed `parse` error, not a hang or a cut connection without an
/// answer; a client dribbling garbage forever cannot stall graceful
/// shutdown past the drain bounds.
pub(crate) fn slowloris(cfg: &ChaosConfig, scratch: &Path, mut rng: SplitMix64) -> ScenarioOutcome {
    let mut out = ScenarioOutcome::default();
    let Some(server) = boot_or_bail(cfg, scratch, None, 2, 8, "slowloris", &mut out) else {
        return out;
    };
    let addr = server.addr();

    // Case 1: a valid request dribbled a few bytes at a time must be
    // answered despite arriving across many read-poll windows.
    out.ops += 1;
    match dribble_request(addr, r#"{"op":"health","id":"slow-1"}"#, &mut rng) {
        Ok(reply) => {
            if let Err(detail) = check_response(&reply, Some("slow-1")) {
                out.violate("slowloris", detail);
            } else if !reply.contains(r#""ok":true"#) {
                out.violate(
                    "slowloris",
                    format!("dribbled health request was refused: {reply}"),
                );
            }
        }
        Err(e) => out.violate("slowloris", format!("dribbled request got no answer: {e}")),
    }

    // Case 2: an oversized line draws a typed parse error.
    out.ops += 1;
    match oversized_line(addr) {
        Ok(reply) => match check_response(&reply, None) {
            Ok(checked) if checked.error.as_deref() == Some("parse") => {}
            Ok(_) => out.violate(
                "slowloris",
                format!("oversized line not answered with a parse error: {reply}"),
            ),
            Err(detail) => out.violate("slowloris", detail),
        },
        Err(e) => out.violate("slowloris", format!("oversized line got no answer: {e}")),
    }

    // Case 3: a client dribbling garbage forever must not stall the
    // graceful drain — the regression this harness exists to keep dead.
    out.ops += 1;
    let stop = Arc::new(AtomicBool::new(false));
    let dribbler = {
        let stop = Arc::clone(&stop);
        let pace = Duration::from_millis(1 + rng.below(5));
        std::thread::spawn(move || {
            let Ok(mut stream) = TcpStream::connect(addr) else {
                return;
            };
            for _ in 0..2000 {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                use std::io::Write;
                if stream.write_all(b"{").is_err() {
                    break;
                }
                std::thread::sleep(pace);
            }
        })
    };
    std::thread::sleep(Duration::from_millis(50));
    if let Err(e) = server.drain() {
        out.violate(
            "slowloris",
            format!("a dribbling client stalled graceful shutdown: {e}"),
        );
    }
    stop.store(true, Ordering::Relaxed);
    let _ = dribbler.join();
    out
}

/// Sends `line` in seeded 1–3 byte chunks with seeded pauses, then
/// reads one reply line.
fn dribble_request(addr: SocketAddr, line: &str, rng: &mut SplitMix64) -> Result<String, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(LIVENESS))
        .map_err(|e| format!("set timeout: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    let bytes = line.as_bytes();
    let mut sent = 0;
    while sent < bytes.len() {
        let chunk = (1 + rng.below(3) as usize).min(bytes.len() - sent);
        use std::io::Write;
        writer
            .write_all(&bytes[sent..sent + chunk])
            .map_err(|e| format!("write: {e}"))?;
        writer.flush().map_err(|e| format!("flush: {e}"))?;
        sent += chunk;
        std::thread::sleep(Duration::from_millis(rng.below(8)));
    }
    use std::io::Write;
    writer.write_all(b"\n").map_err(|e| format!("write: {e}"))?;
    writer.flush().map_err(|e| format!("flush: {e}"))?;
    let mut reply = String::new();
    BufReader::new(stream)
        .read_line(&mut reply)
        .map_err(|e| format!("read: {e}"))?;
    Ok(reply.trim_end().to_string())
}

/// Sends a line just over `MAX_LINE_BYTES` and reads the reply.
fn oversized_line(addr: SocketAddr) -> Result<String, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(LIVENESS))
        .map_err(|e| format!("set timeout: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    let oversized = "x".repeat(MAX_LINE_BYTES + 16);
    send_raw(&mut writer, &oversized).map_err(|e| format!("write: {e}"))?;
    let mut reply = String::new();
    BufReader::new(stream)
        .read_line(&mut reply)
        .map_err(|e| format!("read: {e}"))?;
    Ok(reply.trim_end().to_string())
}

// ---------------------------------------------------------------------
// Corruption

/// Live `.fxs` corruption under concurrent load. Round 0 populates the
/// store cold and records reference answers; every later round boots a
/// *fresh* server (a fresh server has a cold memo, so corrupted
/// entries are actually re-read), corrupts a seeded subset of entries
/// while hammer traffic is in flight, and asserts the re-requested
/// answers are byte-identical to the references modulo provenance,
/// that the store's corruption counter saw the damage, and that no
/// quarantine litter survives the drain.
pub(crate) fn corrupt(cfg: &ChaosConfig, scratch: &Path, mut rng: SplitMix64) -> ScenarioOutcome {
    let mut out = ScenarioOutcome::default();
    let store = scratch.join("corrupt-store");

    // Round 0: populate cold, record references.
    let Some(server) = boot_or_bail(cfg, scratch, Some(&store), 4, 16, "corrupt", &mut out) else {
        return out;
    };
    let addr = server.addr();
    checked_rt(
        addr,
        &schedule_line("c-hammer", HAMMER_SHAPE, ""),
        Some("c-hammer"),
        &[],
        "corrupt",
        &mut out,
    );
    let mut refs = Vec::new();
    for (n, shape) in SHAPES.iter().enumerate() {
        let id = format!("c{n}");
        out.ops += 1;
        match rt(addr, &schedule_line(&id, *shape, "")) {
            Ok(reply) => refs.push(mask_provenance(&reply)),
            Err(e) => {
                out.violate("corrupt", format!("cold request {id} failed: {e}"));
                drain_or_violate(server, "corrupt", &mut out);
                return out;
            }
        }
    }
    drain_or_violate(server, "corrupt", &mut out);

    let rounds = match cfg.profile {
        Profile::Short => 2,
        Profile::Long => 4,
    };
    for round in 0..rounds {
        corruption_round(cfg, scratch, &store, &refs, round, &mut rng, &mut out);
    }

    // No quarantine or tmp litter may survive the final drain.
    for name in store_files(&store, "") {
        if name.starts_with(".tmp-") {
            out.violate(
                "corrupt",
                format!("quarantine/tmp litter survived the run: {name}"),
            );
        }
    }
    out
}

fn corruption_round(
    cfg: &ChaosConfig,
    scratch: &Path,
    store: &Path,
    refs: &[String],
    round: usize,
    rng: &mut SplitMix64,
    out: &mut ScenarioOutcome,
) {
    let Some(server) = boot_or_bail(cfg, scratch, Some(store), 4, 16, "corrupt", out) else {
        return;
    };
    let addr = server.addr();

    // Hammer traffic keeps requests in flight while entries are mutated.
    let hammer = std::thread::spawn(move || {
        for i in 0..5 {
            let id = format!("ch-{i}");
            let _ = rt(addr, &schedule_line(&id, HAMMER_SHAPE, ""));
        }
    });

    // Corrupt a seeded subset — at least two entries, so at least one
    // belongs to a shape the fresh server has not yet memoised and the
    // damage is guaranteed to be *read*, not skipped.
    let entries = store_files(store, "fxs");
    let mut victims: Vec<&String> = entries.iter().filter(|_| rng.chance(50)).collect();
    if victims.len() < 2 {
        victims = entries.iter().take(2).collect();
    }
    let victim_count = victims.len();
    for name in victims {
        let path = store.join(name);
        if let Err(e) = corrupt_file(&path, rng) {
            out.violate("corrupt", format!("cannot corrupt {name}: {e}"));
        }
    }

    // Re-request every reference shape: answers must be identical
    // modulo provenance, whatever mix of hit/detect/re-search happened.
    for (n, shape) in SHAPES.iter().enumerate() {
        let id = format!("c{n}");
        out.ops += 1;
        match rt(addr, &schedule_line(&id, *shape, "")) {
            Ok(reply) => {
                if mask_provenance(&reply) != refs[n] {
                    out.violate(
                        "corrupt",
                        format!(
                            "round {round}: answer for {id} changed after corruption of \
                             {victim_count} entries: {reply}"
                        ),
                    );
                }
            }
            Err(e) => out.violate(
                "corrupt",
                format!("round {round}: request {id} failed: {e}"),
            ),
        }
    }

    // The store must have *noticed*: at least one corrupt detection.
    if let Some(json) = checked_rt(addr, r#"{"op":"stats"}"#, None, &[], "corrupt", out) {
        let corrupt_seen = json
            .get("store")
            .and_then(|s| s.get("corrupt"))
            .and_then(Json::as_num)
            .unwrap_or(0.0);
        if corrupt_seen < 1.0 {
            out.violate(
                "corrupt",
                format!(
                    "round {round}: {victim_count} entries corrupted but the store's \
                     corrupt counter stayed at {corrupt_seen}"
                ),
            );
        }
    }

    let _ = hammer.join();
    drain_or_violate(server, "corrupt", out);
}

/// Sorted file names in `dir` (all files when `ext` is empty,
/// otherwise only `.{ext}` files). Sorted so the seeded victim choice
/// is independent of directory iteration order.
fn store_files(dir: &Path, ext: &str) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(Result::ok)
                .filter(|e| {
                    ext.is_empty() || e.path().extension().and_then(|x| x.to_str()) == Some(ext)
                })
                .filter_map(|e| e.file_name().into_string().ok())
                .collect()
        })
        .unwrap_or_default();
    names.sort();
    names
}

/// One seeded mutation: bit flip, truncation, magic garbage, or a full
/// zero fill.
fn corrupt_file(path: &Path, rng: &mut SplitMix64) -> std::io::Result<()> {
    let mut bytes = std::fs::read(path)?;
    if bytes.is_empty() {
        return std::fs::write(path, b"x");
    }
    match rng.below(4) {
        0 => {
            let at = rng.below(bytes.len() as u64) as usize;
            bytes[at] ^= 1 << rng.below(8);
        }
        1 => {
            let keep = rng.below(bytes.len() as u64) as usize;
            bytes.truncate(keep);
        }
        2 => {
            for b in bytes.iter_mut().take(8) {
                *b = 0xFF;
            }
        }
        _ => bytes.fill(0),
    }
    std::fs::write(path, bytes)
}

// ---------------------------------------------------------------------
// Deadline skew

/// Zero, tiny, and absurd `deadline_ms` values in both modes.
/// Invariants: exact mode with `deadline_ms:0` always draws the typed
/// `deadline` error; century-plus deadlines are unbounded, not
/// worker-killing; anytime mode always answers `ok:true` with sound
/// partial rows; small nonzero deadlines in exact mode answer either
/// the result or the typed `deadline` error — nothing else.
pub(crate) fn deadline(cfg: &ChaosConfig, scratch: &Path, mut rng: SplitMix64) -> ScenarioOutcome {
    let mut out = ScenarioOutcome::default();
    let Some(server) = boot_or_bail(cfg, scratch, None, 2, 8, "deadline", &mut out) else {
        return out;
    };
    let addr = server.addr();
    const SKEWS: [u64; 8] = [0, 1, 2, 5, 10, 50, 1 << 62, u64::MAX];

    let ops = cfg.profile.scale(12);
    for i in 0..ops {
        let id = format!("d{i}");
        let skew = *rng.pick(&SKEWS);
        let anytime = rng.chance(50);
        let mode = if anytime { r#","mode":"anytime""# } else { "" };
        let extra = format!(r#"{mode},"deadline_ms":{skew}"#);
        // Every third op schedules the whole pool as one network, so
        // small deadlines also expire *between* layers, not just
        // before the first one.
        let line = if i % 3 == 2 {
            multi_layer_line(&id, &extra)
        } else {
            schedule_line(&id, *rng.pick(&SHAPES), &extra)
        };
        let allowed: &[&str] = if anytime { &[] } else { &["deadline"] };
        let Some(json) = checked_rt(addr, &line, Some(&id), allowed, "deadline", &mut out) else {
            continue;
        };
        let ok = json.get("ok").and_then(Json::as_bool) == Some(true);
        if anytime {
            if !ok {
                out.violate(
                    "deadline",
                    format!("anytime request {id} errored: skew {skew}"),
                );
            }
            check_anytime_rows(&json, "deadline", &mut out);
        } else if skew == 0 && ok {
            out.violate(
                "deadline",
                format!("exact request {id} with deadline_ms:0 was answered instead of expired"),
            );
        } else if skew >= (1 << 62) && !ok {
            out.violate(
                "deadline",
                format!("exact request {id} with a century-plus deadline ({skew}) was refused"),
            );
        }
    }

    drain_or_violate(server, "deadline", &mut out);
    out
}

// ---------------------------------------------------------------------
// Restart

/// Kill/drain/restart cycles against one shared store directory.
/// Invariants: every cycle's answers are byte-identical to cycle 0's
/// modulo provenance (warm reattach after a graceful drain *and* after
/// a hard kill — killed mid-request, the store must never serve a torn
/// entry); warm cycles actually hit the store; the final drain is
/// clean.
pub(crate) fn restart(cfg: &ChaosConfig, scratch: &Path, mut rng: SplitMix64) -> ScenarioOutcome {
    let mut out = ScenarioOutcome::default();
    let store = scratch.join("restart-store");
    let cycles = match cfg.profile {
        Profile::Short => 3,
        Profile::Long => 5,
    };
    let mut refs: Vec<String> = Vec::new();

    for cycle in 0..cycles {
        let Some(server) = boot_or_bail(cfg, scratch, Some(&store), 2, 8, "restart", &mut out)
        else {
            return out;
        };
        let addr = server.addr();

        for (n, shape) in SHAPES.iter().enumerate() {
            let id = format!("r{n}");
            out.ops += 1;
            match rt(addr, &schedule_line(&id, *shape, "")) {
                Ok(reply) => {
                    let masked = mask_provenance(&reply);
                    if cycle == 0 {
                        refs.push(masked);
                    } else if masked != refs[n] {
                        out.violate(
                            "restart",
                            format!("cycle {cycle}: warm answer for {id} drifted: {reply}"),
                        );
                    }
                }
                Err(e) => out.violate(
                    "restart",
                    format!("cycle {cycle}: request {id} failed: {e}"),
                ),
            }
        }

        // Warm cycles must actually reattach the store, not re-search.
        if cycle > 0 {
            if let Some(json) =
                checked_rt(addr, r#"{"op":"stats"}"#, None, &[], "restart", &mut out)
            {
                let hits = json
                    .get("store")
                    .and_then(|s| s.get("hits"))
                    .and_then(Json::as_num)
                    .unwrap_or(0.0);
                if hits < 1.0 {
                    out.violate(
                        "restart",
                        format!("cycle {cycle}: warm restart served zero store hits"),
                    );
                }
            }
        }

        // End the cycle: seeded hard kill (sometimes mid-request) when
        // a real daemon is available, graceful drain otherwise and on
        // the last cycle.
        let hard_kill = server.can_hard_kill() && cycle + 1 < cycles && rng.chance(60);
        if hard_kill {
            let doomed = if rng.chance(50) {
                Some(std::thread::spawn(move || {
                    // A long request for the kill to land in the middle
                    // of; the severed connection error is expected.
                    let _ = rt(
                        addr,
                        r#"{"op":"schedule","network":"squeezenet","id":"doomed"}"#,
                    );
                }))
            } else {
                None
            };
            if doomed.is_some() {
                std::thread::sleep(Duration::from_millis(80 + rng.below(120)));
            }
            if let Err(e) = server.kill() {
                out.violate("restart", format!("cycle {cycle}: hard kill failed: {e}"));
            }
            if let Some(doomed) = doomed {
                let _ = doomed.join();
            }
        } else {
            drain_or_violate(server, "restart", &mut out);
        }
    }
    out
}

// ---------------------------------------------------------------------
// Fleet

/// The fleet scenario's shape pool — the base pool plus three extras so
/// the router's placements spread across shards.
const FLEET_SHAPES: [(u32, u32, u32, u32); 6] = [
    SHAPES[0],
    SHAPES[1],
    SHAPES[2],
    HAMMER_SHAPE,
    (24, 14, 14, 24),
    (12, 7, 7, 24),
];

/// Members in the chaos fleet.
const FLEET_MEMBERS: usize = 3;
/// Full replication so manifest *equality* (not just parity) is the
/// post-rejoin assertion.
const FLEET_REPLICAS: usize = 3;

/// A three-member sharded fleet under routed load. Invariants: cold
/// answers through the router match themselves replayed anywhere
/// (modulo provenance); with one shard hard-killed mid-soak the
/// failover error rate stays within the 20% shed-load budget and no
/// answered request ever drifts; after the killed shard rejoins with a
/// *wiped* store, one anti-entropy pass restores manifest equality
/// across all members and the rejoined shard answers its whole request
/// set from store hits alone — zero searches.
pub(crate) fn fleet(cfg: &ChaosConfig, scratch: &Path, mut rng: SplitMix64) -> ScenarioOutcome {
    use flexer_fleet::{fetch_manifest, replica_parity, sync_pass, Router};

    let mut out = ScenarioOutcome::default();
    let teardown = |handles: Vec<Option<ServerHandle>>, out: &mut ScenarioOutcome| {
        for handle in handles.into_iter().flatten() {
            if let Err(e) = handle.drain() {
                out.violate("fleet", format!("member drain failed: {e}"));
            }
        }
    };

    // Boot the members.
    let mut handles: Vec<Option<ServerHandle>> = Vec::with_capacity(FLEET_MEMBERS);
    let mut stores: Vec<std::path::PathBuf> = Vec::with_capacity(FLEET_MEMBERS);
    for i in 0..FLEET_MEMBERS {
        let store = scratch.join(format!("fleet-n{i}-store"));
        match boot(cfg, scratch, Some(&store), 2, 16, None) {
            Ok(handle) => {
                handles.push(Some(handle));
                stores.push(store);
            }
            Err(e) => {
                out.violate("fleet", format!("member {i} boot failed: {e}"));
                teardown(handles, &mut out);
                return out;
            }
        }
    }
    let addrs: Vec<SocketAddr> = handles
        .iter()
        .map(|h| h.as_ref().expect("just booted").addr())
        .collect();
    let members: Vec<String> = addrs.iter().map(ToString::to_string).collect();
    let router = Router::new(&members)
        .retries(1)
        .backoff(Duration::from_millis(10));

    // Cold references through the router. The id is a function of the
    // shape so later replays of the same shape mask to identical bytes.
    let mut refs: Vec<String> = Vec::with_capacity(FLEET_SHAPES.len());
    for (n, shape) in FLEET_SHAPES.iter().enumerate() {
        out.ops += 1;
        match router.dispatch(&schedule_line(&format!("f{n}"), *shape, "")) {
            Ok(routed) => refs.push(mask_provenance(&routed.response)),
            Err(e) => {
                out.violate("fleet", format!("cold request f{n} failed: {e}"));
                teardown(handles, &mut out);
                return out;
            }
        }
    }

    // Replicate everywhere, verify parity before injecting any fault.
    match sync_pass(&router, FLEET_REPLICAS) {
        Ok(_) => match replica_parity(&router, FLEET_REPLICAS) {
            Ok(v) if v.is_empty() => {}
            Ok(v) => out.violate(
                "fleet",
                format!("pre-fault parity violated: {}", v.join("; ")),
            ),
            Err(e) => out.violate("fleet", format!("pre-fault parity check failed: {e}")),
        },
        Err(e) => out.violate("fleet", format!("pre-fault sync failed: {e}")),
    }

    // Routed soak with a seeded mid-soak shard kill.
    let total = cfg.profile.scale(30);
    let kill_at = total / 3;
    let victim = rng.below(FLEET_MEMBERS as u64) as usize;
    let mut post_kill_ops = 0u64;
    let mut post_kill_failures = 0u64;
    for i in 0..total {
        if i == kill_at {
            if let Some(handle) = handles[victim].take() {
                if let Err(e) = handle.kill() {
                    out.violate(
                        "fleet",
                        format!("mid-soak kill of member {victim} failed: {e}"),
                    );
                }
            }
        }
        let n = rng.below(FLEET_SHAPES.len() as u64) as usize;
        let down = i >= kill_at;
        out.ops += 1;
        match router.dispatch(&schedule_line(&format!("f{n}"), FLEET_SHAPES[n], "")) {
            Ok(routed) => {
                if mask_provenance(&routed.response) != refs[n] {
                    out.violate(
                        "fleet",
                        format!("soak op {i} (shape {n}): masked answer drifted from reference"),
                    );
                }
            }
            Err(e) => {
                if down {
                    post_kill_failures += 1;
                } else {
                    out.violate(
                        "fleet",
                        format!("soak op {i} failed with all members up: {e}"),
                    );
                }
            }
        }
        if down {
            post_kill_ops += 1;
        }
    }
    // The failover budget: transport failures after the kill are shed
    // load, bounded at 20% of post-kill traffic. Answer *drift* is
    // never budgeted — it is always a violation above.
    if post_kill_failures * 5 > post_kill_ops {
        out.violate(
            "fleet",
            format!(
                "failover error rate {post_kill_failures}/{post_kill_ops} exceeds \
                 the 20% shed-load budget"
            ),
        );
    }

    // Rejoin the victim on its recorded address with a wiped store.
    let _ = std::fs::remove_dir_all(&stores[victim]);
    let mut attempt = 0u64;
    handles[victim] = loop {
        match boot(
            cfg,
            scratch,
            Some(&stores[victim]),
            2,
            16,
            Some(addrs[victim]),
        ) {
            Ok(handle) => break Some(handle),
            Err(e) if attempt >= 5 => {
                out.violate(
                    "fleet",
                    format!(
                        "rejoin on {} failed after rebind retries: {e}",
                        addrs[victim]
                    ),
                );
                teardown(handles, &mut out);
                return out;
            }
            // Re-binding a just-freed port can race the kernel.
            Err(_) => {
                attempt += 1;
                std::thread::sleep(Duration::from_millis(100 * attempt));
            }
        }
    };

    // One anti-entropy pass must restore manifest equality.
    if let Err(e) = sync_pass(&router, FLEET_REPLICAS) {
        out.violate("fleet", format!("post-rejoin sync failed: {e}"));
    }
    let mut manifests = Vec::new();
    for member in &members {
        match fetch_manifest(member) {
            Ok(rows) => manifests.push(rows),
            Err(e) => out.violate("fleet", format!("manifest fetch failed: {e}")),
        }
    }
    if manifests.len() == members.len() {
        if manifests[0].is_empty() {
            out.violate("fleet", "fleet manifests are empty after the run");
        }
        for (i, manifest) in manifests.iter().enumerate().skip(1) {
            if manifest != &manifests[0] {
                out.violate(
                    "fleet",
                    format!(
                        "manifest inequality after rejoin: member 0 holds {} entries, \
                         member {i} holds {}",
                        manifests[0].len(),
                        manifest.len()
                    ),
                );
            }
        }
    }

    // The rejoined shard must answer the whole set from replicated
    // entries: store hits only, zero misses, reference-identical bytes.
    for (n, shape) in FLEET_SHAPES.iter().enumerate() {
        out.ops += 1;
        match rt(addrs[victim], &schedule_line(&format!("f{n}"), *shape, "")) {
            Ok(reply) => {
                if mask_provenance(&reply) != refs[n] {
                    out.violate(
                        "fleet",
                        format!("rejoined member's answer for shape {n} drifted"),
                    );
                }
            }
            Err(e) => out.violate("fleet", format!("rejoined member refused shape {n}: {e}")),
        }
    }
    if let Some(json) = checked_rt(
        addrs[victim],
        r#"{"op":"stats"}"#,
        None,
        &[],
        "fleet",
        &mut out,
    ) {
        let counter = |key: &str| {
            json.get("store")
                .and_then(|s| s.get(key))
                .and_then(Json::as_num)
                .unwrap_or(0.0)
        };
        if counter("hits") < FLEET_SHAPES.len() as f64 {
            out.violate(
                "fleet",
                format!(
                    "rejoined member served {} store hits for {} requests — replication \
                     did not warm it",
                    counter("hits"),
                    FLEET_SHAPES.len()
                ),
            );
        }
        if counter("misses") > 0.0 {
            out.violate(
                "fleet",
                format!(
                    "rejoined member took {} store misses — it re-searched instead of \
                     serving replicated entries",
                    counter("misses")
                ),
            );
        }
    }

    teardown(handles, &mut out);
    out
}
