//! Fast in-process smoke for the chaos harness: the full scenario
//! matrix on one seed must come back clean, and the op schedule must
//! be a pure function of the seed.

use flexer_chaos::{run_chaos, ChaosConfig, Profile, Scenario};
use std::path::PathBuf;

fn smoke_config(seed: u64, tag: &str) -> ChaosConfig {
    let scratch = std::env::temp_dir().join(format!("chaos-smoke-{tag}-{}", std::process::id()));
    ChaosConfig {
        seed,
        profile: Profile::Short,
        scratch_dir: scratch.clone(),
        artifact_dir: scratch,
        serve_bin: None,
        scenarios: Scenario::all(),
        slo: Default::default(),
        connections: 6,
    }
}

#[test]
fn full_matrix_is_clean_and_deterministic() {
    let first = run_chaos(&smoke_config(0xC0FFEE, "a"));
    assert!(
        first.clean(),
        "chaos run caught violations: {:#?}",
        first.violations
    );
    assert!(first.ops > 50, "suspiciously few ops: {}", first.ops);
    assert!(
        first.layer_latency.count > 0,
        "no traced layer spans reached the SLO gate"
    );
    assert!(first.artifact.is_none(), "clean run wrote an artifact");

    // Same seed, same schedule of abuse: the op count and the traced
    // span population must replay exactly.
    let second = run_chaos(&smoke_config(0xC0FFEE, "b"));
    assert!(
        second.clean(),
        "replay violations: {:#?}",
        second.violations
    );
    assert_eq!(first.ops, second.ops, "op schedule is not seed-determined");
    assert_eq!(
        first.layer_latency, second.layer_latency,
        "traced span population is not seed-determined"
    );
}

#[test]
fn raised_connection_count_soaks_clean() {
    // The --connections knob: a soak with many more concurrent clients
    // than the default 6 (past the storm threshold, so per-connection
    // ops shed) must still come back violation-free, and its replay
    // line must name the non-default count.
    let mut cfg = smoke_config(7, "conns");
    cfg.scenarios = vec![Scenario::Soak];
    cfg.connections = 80;
    let report = run_chaos(&cfg);
    assert!(report.clean(), "violations: {:#?}", report.violations);
    assert!(
        report.ops >= 80 * 2,
        "each connection must run its shed op budget: {}",
        report.ops
    );
    // A forced violation under the same config records the knob in the
    // replay artifact.
    cfg.slo = flexer_chaos::SloThresholds {
        layer_p50: 0,
        layer_p99: 0,
    };
    let report = run_chaos(&cfg);
    let artifact: PathBuf = report.artifact.expect("violating run dumps an artifact");
    let text = std::fs::read_to_string(&artifact).expect("artifact readable");
    assert!(
        text.contains("--connections 80"),
        "artifact lacks the connection count: {text}"
    );
    let _ = std::fs::remove_file(&artifact);
    let _ = std::fs::remove_dir_all(cfg.scratch_dir);
}

#[test]
fn scenario_names_round_trip() {
    for scenario in Scenario::all() {
        assert_eq!(Scenario::from_name(scenario.name()), Some(scenario));
    }
    assert_eq!(Scenario::from_name("nope"), None);
}

#[test]
fn failure_artifacts_name_the_seed() {
    // An impossible SLO forces a violation; the artifact must exist
    // and carry the replay seed.
    let mut cfg = smoke_config(42, "slo");
    cfg.scenarios = vec![Scenario::Soak];
    cfg.slo = flexer_chaos::SloThresholds {
        layer_p50: 0,
        layer_p99: 0,
    };
    let report = run_chaos(&cfg);
    assert!(!report.clean(), "impossible SLO did not trip the gate");
    let artifact: PathBuf = report
        .artifact
        .expect("violating run must dump an artifact");
    let text = std::fs::read_to_string(&artifact).expect("artifact readable");
    assert!(
        text.contains("--seed 42"),
        "artifact lacks replay seed: {text}"
    );
    assert!(
        text.contains("[slo]"),
        "artifact lacks the violation: {text}"
    );
    let _ = std::fs::remove_file(&artifact);
    let _ = std::fs::remove_dir_all(cfg.scratch_dir);
}
