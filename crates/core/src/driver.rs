//! The high-level Flexer driver.

use crate::report::{NetworkComparison, NetworkResult};
use crate::residency::{replay_ledger, EdgeDecision, ResidencyPlan, ResidentNetworkResult};
use flexer_arch::{ArchConfig, ArchConfigBuilder};
use flexer_model::{ConvLayer, Network};
use flexer_sched::{
    search_layer_cached, search_layer_deadline, search_layer_static_cached,
    search_layer_static_deadline, search_network_cached, search_network_static_cached,
    search_network_traced_cached, verify_layer_result, LayerSearchResult, MemoCache, SchedError,
    SchedulerKind, SearchOptions,
};
use flexer_store::{fingerprint, Lookup, ScheduleStore};
use flexer_tiling::Residency;
use flexer_trace::Trace;
use std::fmt;
use std::io;
use std::path::Path;
use std::time::Instant;

/// A network search together with the trace it recorded — the return
/// value of [`Flexer::trace_network`].
///
/// The trace is present even when the search failed: a failing search
/// is exactly when the recorded spans (which candidate was cut, which
/// layer errored and why) are most useful.
#[derive(Debug)]
pub struct TracedNetwork {
    /// The search outcome, as [`Flexer::schedule_network`] would have
    /// returned it.
    pub result: Result<NetworkResult, SchedError>,
    /// The recorded trace. Deterministic (byte-identical across runs)
    /// under the default logical clock when
    /// [`SearchOptions::threads`] is 1, or at any thread count with
    /// [`SearchOptions::prune`] disabled.
    pub trace: Trace,
}

impl TracedNetwork {
    /// The trace in Chrome trace-event JSON, loadable into
    /// `chrome://tracing` or Perfetto.
    #[must_use]
    pub fn chrome_json(&self) -> String {
        flexer_trace::chrome::to_chrome_json(&self.trace)
    }

    /// The trace as an indented plain-text span tree.
    #[must_use]
    pub fn span_tree(&self) -> String {
        flexer_trace::text::render_tree(&self.trace)
    }

    /// The network report with a trailing `trace:` summary line.
    #[must_use]
    pub fn report(&self) -> String {
        let head = match &self.result {
            Ok(r) => r.to_string(),
            Err(e) => format!("search failed: {e}"),
        };
        format!("{head}\n  trace: {}", self.trace.summary())
    }
}

/// The end-to-end schedule generator: Algorithm-1 searches per layer,
/// with a built-in memoization cache so repeated layer shapes (e.g.
/// ResNet-50's bottleneck blocks) search only once, plus the baseline
/// generator and comparison helpers the evaluation section needs.
///
/// # Examples
///
/// ```
/// use flexer::prelude::*;
///
/// let arch = ArchConfig::preset(ArchPreset::Arch1);
/// let driver = Flexer::new(arch).with_options(SearchOptions::quick());
///
/// let layer = ConvLayer::new("c", 32, 14, 14, 32)?;
/// let result = driver.schedule_layer(&layer)?;
/// assert!(result.schedule.latency() > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Flexer {
    arch: ArchConfig,
    options: SearchOptions,
    cache: MemoCache,
    store: Option<ScheduleStore>,
}

impl Flexer {
    /// Creates a driver for `arch` with default search options.
    #[must_use]
    pub fn new(arch: ArchConfig) -> Self {
        Self {
            arch,
            options: SearchOptions::default(),
            cache: MemoCache::new(),
            store: None,
        }
    }

    /// Replaces the search options. Clears the memo cache, since
    /// cached winners are option-specific. A configured persistent
    /// store stays attached: its entries are content-addressed by the
    /// options, so entries for the old options simply stop matching.
    #[must_use]
    pub fn with_options(mut self, options: SearchOptions) -> Self {
        self.options = options;
        self.cache = MemoCache::new();
        self
    }

    /// Attaches a persistent [`ScheduleStore`] rooted at `path`
    /// (created if absent), so layer searches warm-start across
    /// processes: every search first consults the store by content
    /// address, and every freshly searched winner is persisted.
    ///
    /// A store hit returns the persisted winner byte-for-byte (modulo
    /// the store hit/miss counters in its stats) without re-searching;
    /// under [`SearchOptions::validate`] the hit is still re-verified
    /// against the SPM abstract machine before being trusted. Corrupt
    /// entries are deleted and transparently re-searched.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the store directory cannot be
    /// created or opened.
    pub fn with_store(mut self, path: impl AsRef<Path>) -> io::Result<Self> {
        self.store = Some(ScheduleStore::open(path)?);
        Ok(self)
    }

    /// [`Flexer::with_store`] with an explicit eviction capacity in
    /// bytes (`0` disables eviction).
    ///
    /// # Errors
    ///
    /// As [`Flexer::with_store`].
    pub fn with_store_capacity(
        mut self,
        path: impl AsRef<Path>,
        capacity_bytes: u64,
    ) -> io::Result<Self> {
        self.store = Some(ScheduleStore::with_capacity(path, capacity_bytes)?);
        Ok(self)
    }

    /// The attached persistent store, if any.
    #[must_use]
    pub fn store(&self) -> Option<&ScheduleStore> {
        self.store.as_ref()
    }

    /// The target architecture.
    #[must_use]
    pub fn arch(&self) -> &ArchConfig {
        &self.arch
    }

    /// Dispatches a whole-network search to the chosen scheduler on an
    /// explicit target architecture (the residency planner schedules
    /// layers on reduced-SPM variants of [`Flexer::arch`]; the memo
    /// cache keys on the architecture, so sharing it stays sound).
    fn search_many_on(
        &self,
        arch: &ArchConfig,
        layers: &[ConvLayer],
        options: &SearchOptions,
        kind: SchedulerKind,
    ) -> Result<Vec<LayerSearchResult>, SchedError> {
        match kind {
            SchedulerKind::Ooo => search_network_cached(layers, arch, options, &self.cache),
            SchedulerKind::Static => {
                search_network_static_cached(layers, arch, options, &self.cache)
            }
        }
    }

    /// Searches `layers`, warm-starting from the persistent store when
    /// one is attached: hits skip the search entirely (re-verified
    /// first when `options.validate` demands it), misses search as
    /// usual and persist their winner. Results keep network order.
    fn search_stored(
        &self,
        layers: &[ConvLayer],
        options: &SearchOptions,
        kind: SchedulerKind,
    ) -> Result<Vec<LayerSearchResult>, SchedError> {
        self.search_stored_on(&self.arch, layers, options, kind)
    }

    /// [`Flexer::search_stored`] on an explicit architecture. The store
    /// fingerprint covers the architecture, so entries searched on a
    /// reduced-SPM variant never collide with full-SPM entries.
    fn search_stored_on(
        &self,
        arch: &ArchConfig,
        layers: &[ConvLayer],
        options: &SearchOptions,
        kind: SchedulerKind,
    ) -> Result<Vec<LayerSearchResult>, SchedError> {
        let Some(store) = &self.store else {
            return self.search_many_on(arch, layers, options, kind);
        };
        let mut slots: Vec<Option<LayerSearchResult>> = (0..layers.len()).map(|_| None).collect();
        let mut misses = Vec::new();
        for (i, layer) in layers.iter().enumerate() {
            let fp = fingerprint(layer, arch, options, kind);
            match store.get(fp) {
                Lookup::Hit(mut hit) => {
                    // The address ignores layer names; restore the
                    // requested one.
                    hit.layer = layer.name().to_string();
                    hit.stats.store_hits = 1;
                    if options.validate {
                        verify_layer_result(layer, arch, options, kind, &mut hit)?;
                    }
                    slots[i] = Some(*hit);
                }
                Lookup::Miss | Lookup::Corrupt(_) => misses.push((i, fp, layer.clone())),
            }
        }
        if !misses.is_empty() {
            let missed: Vec<ConvLayer> = misses.iter().map(|(_, _, l)| l.clone()).collect();
            let searched = self.search_many_on(arch, &missed, options, kind)?;
            for ((i, fp, _), mut result) in misses.into_iter().zip(searched) {
                result.stats.store_misses = 1;
                // Persisting is best-effort: a full disk must not fail
                // the search that just succeeded. Only exact winners
                // are durable — an anytime result is deadline-specific
                // and must never masquerade as the proven optimum on a
                // later, unhurried run.
                if result.is_exact() {
                    let _ = store.put(fp, &result);
                }
                slots[i] = Some(result);
            }
        }
        Ok(slots.into_iter().map(|s| s.expect("slot filled")).collect())
    }

    /// The active search options.
    #[must_use]
    pub fn options(&self) -> &SearchOptions {
        &self.options
    }

    /// Number of memoized layer-shape winners accumulated so far.
    #[must_use]
    pub fn cached_shapes(&self) -> usize {
        self.cache.len()
    }

    /// Finds the best out-of-order schedule for one layer
    /// (Algorithm 1).
    ///
    /// # Errors
    ///
    /// Returns [`SchedError`] when no tiling of the layer fits the
    /// architecture or scheduling fails.
    pub fn schedule_layer(&self, layer: &ConvLayer) -> Result<LayerSearchResult, SchedError> {
        if self.store.is_some() {
            let mut v = self.search_stored(
                std::slice::from_ref(layer),
                &self.options,
                SchedulerKind::Ooo,
            )?;
            return Ok(v.pop().expect("one layer in, one result out"));
        }
        search_layer_cached(layer, &self.arch, &self.options, &self.cache)
    }

    /// [`Flexer::schedule_layer`] under an *anytime* deadline: the
    /// out-of-order search runs until `deadline` (forever when `None`)
    /// and then returns the best schedule found so far instead of
    /// failing, tagged [`flexer_sched::SearchOutcome::Anytime`] with a
    /// proven optimality gap. The first candidate always runs even
    /// under an already-expired deadline, so the result is always a
    /// real, verifiable schedule.
    ///
    /// Deadline-cut results are deliberately *not* read from or
    /// written to the persistent store or the memo cache — both keep
    /// only proven optima, and an anytime result depends on wall-clock
    /// luck, not just the search key.
    ///
    /// # Errors
    ///
    /// As [`Flexer::schedule_layer`].
    pub fn schedule_layer_anytime(
        &self,
        layer: &ConvLayer,
        deadline: Option<Instant>,
    ) -> Result<LayerSearchResult, SchedError> {
        search_layer_deadline(layer, &self.arch, &self.options, deadline)
    }

    /// [`Flexer::baseline_layer`] under an *anytime* deadline: the
    /// static loop-order search runs until `deadline` (forever when
    /// `None`) and then returns the best baseline schedule found so
    /// far, tagged [`flexer_sched::SearchOutcome::Anytime`] with a
    /// proven optimality gap — the static counterpart of
    /// [`Flexer::schedule_layer_anytime`], so deadline experiments can
    /// compare like with like.
    ///
    /// Deadline-cut results bypass the store and the memo cache for
    /// the same reason the out-of-order path's do.
    ///
    /// # Errors
    ///
    /// As [`Flexer::baseline_layer`].
    pub fn baseline_layer_anytime(
        &self,
        layer: &ConvLayer,
        deadline: Option<Instant>,
    ) -> Result<LayerSearchResult, SchedError> {
        search_layer_static_deadline(layer, &self.arch, &self.options, deadline)
    }

    /// Finds the best static loop-order schedule for one layer — the
    /// paper's baseline.
    ///
    /// # Errors
    ///
    /// As [`Flexer::schedule_layer`].
    pub fn baseline_layer(&self, layer: &ConvLayer) -> Result<LayerSearchResult, SchedError> {
        if self.store.is_some() {
            let mut v = self.search_stored(
                std::slice::from_ref(layer),
                &self.options,
                SchedulerKind::Static,
            )?;
            return Ok(v.pop().expect("one layer in, one result out"));
        }
        search_layer_static_cached(layer, &self.arch, &self.options, &self.cache)
    }

    /// Schedules every layer of `network` with the out-of-order
    /// scheduler.
    ///
    /// All layers feed one shared work queue of `(layer, tiling,
    /// dataflow)` triples, so worker threads never serialize on layer
    /// boundaries; repeated layer shapes search once and replay.
    ///
    /// # Errors
    ///
    /// Returns the first per-layer error encountered.
    pub fn schedule_network(&self, network: &Network) -> Result<NetworkResult, SchedError> {
        let layers = self.search_stored(network.layers(), &self.options, SchedulerKind::Ooo)?;
        Ok(NetworkResult::new(network.name(), layers))
    }

    /// The architecture with `reserved` bytes of SPM set aside for
    /// residency regions, or `None` when too little SPM would remain
    /// for a working set.
    fn reduced_arch(&self, reserved: u64) -> Option<ArchConfig> {
        let spm = self.arch.spm_bytes().checked_sub(reserved)?;
        ArchConfigBuilder::new(self.arch.cores(), spm, self.arch.dma_bytes_per_cycle())
            .pe_array(self.arch.pe_rows(), self.arch.pe_cols())
            .dram_latency(self.arch.dram_latency_cycles())
            .element_size(self.arch.element_size())
            .build()
            .ok()
    }

    /// Searches one layer under explicit residency flags with
    /// `reserved` bytes of SPM carved out for residency regions.
    /// `None` when the reduced architecture is infeasible or no tiling
    /// fits it — the planner treats both as "this edge cannot be made
    /// resident", not as errors.
    fn search_one_resident(
        &self,
        layer: &ConvLayer,
        residency: Residency,
        reserved: u64,
    ) -> Option<LayerSearchResult> {
        let arch = self.reduced_arch(reserved)?;
        let mut options = self.options.clone();
        options.residency = residency;
        self.search_stored_on(
            &arch,
            std::slice::from_ref(layer),
            &options,
            SchedulerKind::Ooo,
        )
        .ok()
        .and_then(|mut v| v.pop())
    }

    /// Schedules `network` under a network-level inter-layer residency
    /// plan: a pass over the layer chain decides per producer→consumer
    /// edge whether the producer's output tensor stays resident in SPM
    /// (its store becomes an on-chip scatter, the consumer's input
    /// loads become on-chip gathers, and a residency region is reserved
    /// against the SPM budget) or round-trips through DRAM as in
    /// [`Flexer::schedule_network`].
    ///
    /// The plan is greedy left to right with accept/revert: an edge
    /// becomes resident only when re-searching both endpoint layers on
    /// their reduced-SPM architectures *strictly* lowers their combined
    /// DRAM traffic without raising their combined latency. A residency
    /// region is capped at half the SPM; when a layer's incoming and
    /// outgoing regions together exceed that cap, the cheaper-to-reload
    /// (smaller) tensor is spilled back to the DRAM path. With
    /// residency disabled edge-by-edge (no eligible edges, e.g. a
    /// single-layer network), the result is byte-identical to
    /// [`Flexer::schedule_network`].
    ///
    /// The finished plan is replayed against the cross-layer
    /// [`flexer_sim::ResidencyLedger`] — reserve at the producer,
    /// consume at the consumer, budget never exceeded, nothing leaked.
    ///
    /// # Errors
    ///
    /// As [`Flexer::schedule_network`] (the residency-off reference run
    /// must succeed; per-edge residency searches that fail merely
    /// reject their edge).
    ///
    /// # Panics
    ///
    /// Panics if the constructed plan violates the residency ledger —
    /// an internal planner bug, not an input condition: the accept
    /// rules guarantee every region fits and is consumed exactly once.
    pub fn schedule_network_resident(
        &self,
        network: &Network,
    ) -> Result<ResidentNetworkResult, SchedError> {
        let layers = network.layers();
        let n = layers.len();
        let elem = self.arch.element_size();
        let cap = self.arch.spm_bytes() / 2;

        // The all-DRAM reference: what schedule_network returns. Every
        // accepted edge must strictly beat it byte-wise and never lose
        // to it cycle-wise, so the final totals dominate by
        // construction.
        let mut options = self.options.clone();
        options.residency = Residency::default();
        let baseline = self.search_stored(layers, &options, SchedulerKind::Ooo)?;

        // Residency planning walks producer -> consumer pairs in index
        // order, which is only meaningful on a chain: in a branching
        // topology adjacent indices need not be connected at all, and a
        // producer's output may have several consumers, so a private
        // SPM hand-off region is unsound. Cleanly decline: baseline
        // results, an all-DRAM plan, zero reservations — byte-identical
        // to [`Flexer::schedule_network`].
        if !network.is_chain() {
            let decline_edges: Vec<EdgeDecision> = network
                .edges()
                .into_iter()
                .map(|e| EdgeDecision {
                    producer: layers[e.from as usize].name().to_string(),
                    consumer: layers[e.to as usize].name().to_string(),
                    bytes: layers[e.from as usize].output_bytes(elem),
                    resident: false,
                    spilled: false,
                })
                .collect();
            let plan = ResidencyPlan::new(decline_edges, vec![Residency::default(); n], 0);
            let ledger_peak = replay_ledger(self.arch.spm_bytes(), &plan.ledger_ops())
                .expect("all-DRAM plan trivially satisfies the ledger");
            debug_assert_eq!(ledger_peak, 0);
            return Ok(ResidentNetworkResult {
                result: NetworkResult::new(network.name(), baseline.clone()),
                baseline: NetworkResult::new(network.name(), baseline),
                plan,
            });
        }

        let mut current = baseline.clone();
        let mut residencies = vec![Residency::default(); n];
        let mut edges: Vec<EdgeDecision> = Vec::new();
        // Bytes reserved at layer i for its incoming / outgoing region.
        let mut in_region = vec![0u64; n];
        let mut out_region = vec![0u64; n];

        for i in 0..n.saturating_sub(1) {
            let (producer, consumer) = (&layers[i], &layers[i + 1]);
            let mut edge = EdgeDecision {
                producer: producer.name().to_string(),
                consumer: consumer.name().to_string(),
                bytes: producer.output_bytes(elem),
                resident: false,
                spilled: false,
            };
            // Eligibility: the tensor must actually chain (the consumer
            // reads exactly what the producer wrote) and its region
            // must leave the layer at least half the SPM to work in.
            if producer.output_shape() != consumer.input_shape()
                || edge.bytes == 0
                || edge.bytes > cap
            {
                edges.push(edge);
                continue;
            }
            // Pressure at the shared layer i: its incoming region and
            // this outgoing region are live at the same time. Spill the
            // cheapest-to-reload (smaller) tensor.
            if in_region[i] > 0 && in_region[i].saturating_add(edge.bytes) > cap {
                if edge.bytes <= in_region[i] {
                    edge.spilled = true;
                    edges.push(edge);
                    continue;
                }
                // The incoming tensor is cheaper to reload: spill it
                // and roll layers i-1 and i back to the DRAM path for
                // that edge before trying this one.
                let prev = edges.last_mut().expect("edge i-1 exists");
                prev.resident = false;
                prev.spilled = true;
                residencies[i - 1].output_resident = false;
                residencies[i].input_resident = false;
                out_region[i - 1] = 0;
                in_region[i] = 0;
                current[i - 1] = if residencies[i - 1].any() {
                    // Replays the memoized winner the earlier accept of
                    // edge i-2 produced under exactly these flags.
                    self.search_one_resident(&layers[i - 1], residencies[i - 1], in_region[i - 1])
                        .expect("revert re-search replays a memoized winner")
                } else {
                    baseline[i - 1].clone()
                };
                current[i] = baseline[i].clone();
            }
            // Tentative accept: re-search both endpoints with the edge
            // resident on their reduced-SPM architectures.
            let p_res = Residency {
                input_resident: residencies[i].input_resident,
                output_resident: true,
            };
            let c_res = Residency {
                input_resident: true,
                output_resident: false,
            };
            let tentative = self
                .search_one_resident(producer, p_res, in_region[i] + edge.bytes)
                .zip(self.search_one_resident(consumer, c_res, edge.bytes));
            if let Some((new_p, new_c)) = tentative {
                let cur_bytes =
                    current[i].schedule.transfer_bytes() + current[i + 1].schedule.transfer_bytes();
                let new_bytes = new_p.schedule.transfer_bytes() + new_c.schedule.transfer_bytes();
                let cur_lat = current[i].schedule.latency() + current[i + 1].schedule.latency();
                let new_lat = new_p.schedule.latency() + new_c.schedule.latency();
                if new_bytes < cur_bytes && new_lat <= cur_lat {
                    edge.resident = true;
                    residencies[i].output_resident = true;
                    residencies[i + 1].input_resident = true;
                    out_region[i] = edge.bytes;
                    in_region[i + 1] = edge.bytes;
                    current[i] = new_p;
                    current[i + 1] = new_c;
                }
            }
            edges.push(edge);
        }

        let peak = (0..n)
            .map(|i| in_region[i] + out_region[i])
            .max()
            .unwrap_or(0);
        let plan = ResidencyPlan::new(edges, residencies, peak);
        let ledger_peak = replay_ledger(self.arch.spm_bytes(), &plan.ledger_ops())
            .expect("residency plan violates the SPM ledger");
        debug_assert_eq!(ledger_peak, plan.peak_reserved());

        Ok(ResidentNetworkResult {
            result: NetworkResult::new(network.name(), current),
            baseline: NetworkResult::new(network.name(), baseline),
            plan,
        })
    }

    /// [`Flexer::schedule_network`] with trace recording: runs the
    /// same out-of-order search while recording spans and counters
    /// under [`SearchOptions::trace`] (clock and detail), and returns
    /// the outcome together with the drained [`Trace`].
    ///
    /// # Examples
    ///
    /// ```
    /// use flexer::prelude::*;
    ///
    /// let arch = ArchConfig::preset(ArchPreset::Arch1);
    /// let mut opts = SearchOptions::quick();
    /// opts.threads = 1; // byte-stable trace
    /// let driver = Flexer::new(arch).with_options(opts);
    ///
    /// let net = Network::new("n", vec![ConvLayer::new("c", 16, 14, 14, 16)?])?;
    /// let traced = driver.trace_network(&net);
    /// assert!(traced.result.is_ok());
    /// assert!(!traced.trace.is_empty());
    /// assert!(traced.report().contains("trace:"));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn trace_network(&self, network: &Network) -> TracedNetwork {
        let (layers, trace) =
            search_network_traced_cached(network.layers(), &self.arch, &self.options, &self.cache);
        TracedNetwork {
            result: layers.map(|l| NetworkResult::new(network.name(), l)),
            trace,
        }
    }

    /// Schedules every layer of `network` with the static baseline,
    /// over the same shared work queue as [`Flexer::schedule_network`].
    ///
    /// # Errors
    ///
    /// Returns the first per-layer error encountered.
    pub fn baseline_network(&self, network: &Network) -> Result<NetworkResult, SchedError> {
        let layers = self.search_stored(network.layers(), &self.options, SchedulerKind::Static)?;
        Ok(NetworkResult::new(network.name(), layers))
    }

    /// Schedules one layer with both schedulers and compares.
    ///
    /// # Errors
    ///
    /// As [`Flexer::schedule_layer`].
    pub fn compare_layer(&self, layer: &ConvLayer) -> Result<NetworkComparison, SchedError> {
        let flexer = NetworkResult::new(layer.name(), vec![self.schedule_layer(layer)?]);
        let baseline = NetworkResult::new(layer.name(), vec![self.baseline_layer(layer)?]);
        Ok(NetworkComparison::new(flexer, baseline))
    }

    /// Schedules a whole network with both schedulers and compares —
    /// the Figure-8 experiment for one (network, architecture) pair.
    ///
    /// # Errors
    ///
    /// As [`Flexer::schedule_network`].
    pub fn compare_network(&self, network: &Network) -> Result<NetworkComparison, SchedError> {
        let flexer = self.schedule_network(network)?;
        let baseline = self.baseline_network(network)?;
        Ok(NetworkComparison::new(flexer, baseline))
    }

    /// Schedules `network` with both schedulers under forced
    /// differential verification: every winning schedule is re-run,
    /// lowered to a command program, executed on the `flexer-sim` SPM
    /// abstract machine and cross-checked against its analytical
    /// schedule, regardless of [`SearchOptions::validate`].
    ///
    /// Returns the verified comparison; a scheduler bug surfaces as
    /// [`SchedError::IllegalSchedule`] instead of a wrong number in a
    /// results table.
    ///
    /// # Errors
    ///
    /// As [`Flexer::schedule_network`], plus
    /// [`SchedError::IllegalSchedule`] on any verification failure.
    pub fn verify_network(&self, network: &Network) -> Result<NetworkComparison, SchedError> {
        let mut options = self.options.clone();
        options.validate = true;
        let flexer = NetworkResult::new(
            network.name(),
            self.search_stored(network.layers(), &options, SchedulerKind::Ooo)?,
        );
        let baseline = NetworkResult::new(
            network.name(),
            self.search_stored(network.layers(), &options, SchedulerKind::Static)?,
        );
        Ok(NetworkComparison::new(flexer, baseline))
    }
}

impl fmt::Display for Flexer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Flexer on {}", self.arch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexer_arch::ArchPreset;
    use flexer_model::{networks, scale_spatial, Network};

    fn driver() -> Flexer {
        Flexer::new(ArchConfig::preset(ArchPreset::Arch1)).with_options(SearchOptions::quick())
    }

    fn tiny_net() -> Network {
        Network::new(
            "tiny",
            vec![
                ConvLayer::new("c1", 16, 14, 14, 32).unwrap(),
                ConvLayer::new("c2", 32, 14, 14, 32).unwrap(),
                ConvLayer::new("c3", 32, 14, 14, 32).unwrap(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn network_scheduling_aggregates_layers() {
        let d = driver();
        let net = tiny_net();
        let r = d.schedule_network(&net).unwrap();
        assert_eq!(r.layers().len(), 3);
        let sum: u64 = r.layers().iter().map(|l| l.schedule.latency()).sum();
        assert_eq!(r.total_latency(), sum);
        assert!(r.layer("c2").is_some());
        assert!(r.layer("nope").is_none());
    }

    #[test]
    fn memo_cache_kicks_in_for_repeated_shapes() {
        let d = driver();
        let net = tiny_net();
        let r = d.schedule_network(&net).unwrap();
        // c2 and c3 share a shape: the second search is a memo replay.
        assert_eq!(r.layers()[2].evaluated, 1);
        assert!(r.layers()[1].evaluated > 1);
        assert!(d.cached_shapes() >= 2);
    }

    #[test]
    fn network_stats_are_aggregated_and_reported() {
        let d = driver();
        let net = tiny_net();
        let r = d.schedule_network(&net).unwrap();
        let total = r.total_stats();
        assert!(total.steps > 0);
        assert!(total.sets_evaluated > 0);
        assert!(total.rollback_bytes > 0, "transactional mode is default");
        let line = r.to_string();
        assert!(line.contains("steps"), "{line}");
        assert!(line.contains("rollback"), "{line}");
        let table = d.compare_network(&net).unwrap().render_table();
        assert!(table.contains("search effort"), "{table}");
        assert!(
            !table.contains("seeding (flexer)"),
            "seed line without seeding: {table}"
        );
    }

    #[test]
    fn seeded_search_reports_its_seed_line() {
        let mut opts = SearchOptions::quick();
        opts.seed.enabled = true;
        let d = Flexer::new(ArchConfig::preset(ArchPreset::Arch1)).with_options(opts);
        let table = d.compare_network(&tiny_net()).unwrap().render_table();
        assert!(table.contains("seeding (flexer)"), "{table}");
        assert!(table.contains("ppm"), "{table}");
    }

    #[test]
    fn comparison_is_well_formed() {
        let d = driver();
        let net = tiny_net();
        let cmp = d.compare_network(&net).unwrap();
        assert!(cmp.speedup() > 0.0);
        assert!(cmp.transfer_reduction() > 0.0);
        assert_eq!(cmp.per_layer().count(), 3);
        for lc in cmp.per_layer() {
            assert!(lc.flexer_latency > 0);
            assert!(lc.baseline_latency > 0);
        }
    }

    #[test]
    fn scaled_real_network_schedules() {
        let d = driver();
        // Heavily scaled SqueezeNet slice: first four layers.
        let scaled = scale_spatial(&networks::squeezenet(), 8);
        let slice = Network::new("squeeze-slice", scaled.layers()[..4].to_vec()).unwrap();
        let r = d.schedule_network(&slice).unwrap();
        assert!(r.total_latency() > 0);
        assert!(r.total_transfer_bytes() > 0);
    }

    #[test]
    fn verify_network_verifies_both_schedulers() {
        let d = driver();
        let net = tiny_net();
        let cmp = d.verify_network(&net).unwrap();
        assert!(cmp.flexer().verified());
        assert!(cmp.baseline().verified());
        for r in cmp.flexer().layers().iter().chain(cmp.baseline().layers()) {
            assert!(r.stats.schedules_verified > 0, "{} not verified", r.layer);
        }
        let table = cmp.render_table();
        assert!(table.contains("legality"), "{table}");
        // A plain comparison does not claim verification.
        let plain = d.compare_network(&net).unwrap();
        assert!(!plain.flexer().verified());
        assert!(!plain.render_table().contains("legality"));
    }

    #[test]
    fn traced_network_records_and_reports() {
        let mut opts = SearchOptions::quick();
        opts.threads = 1;
        let d = Flexer::new(ArchConfig::preset(ArchPreset::Arch1)).with_options(opts);
        let net = tiny_net();
        let traced = d.trace_network(&net);
        let result = traced.result.as_ref().unwrap();
        assert_eq!(result.layers().len(), 3);
        traced.trace.check().unwrap();
        assert!(!traced.trace.is_empty());
        let report = traced.report();
        assert!(report.contains("trace:"), "{report}");
        assert!(report.contains("spans"), "{report}");
        // Both exports render without panicking and agree on content.
        assert!(traced.chrome_json().contains("\"traceEvents\""));
        assert!(traced.span_tree().contains("search"));
        // The traced search fills the same memo cache.
        assert!(d.cached_shapes() >= 2);
    }

    #[test]
    fn with_options_resets_cache() {
        let d = driver();
        let layer = ConvLayer::new("c", 16, 14, 14, 16).unwrap();
        let _ = d.schedule_layer(&layer).unwrap();
        assert!(d.cached_shapes() > 0);
        let d = d.with_options(SearchOptions::quick());
        assert_eq!(d.cached_shapes(), 0);
    }

    #[test]
    fn display_shows_arch() {
        assert!(driver().to_string().contains("2 cores"));
    }

    #[test]
    fn anytime_layer_beats_an_expired_deadline() {
        let d = driver();
        let layer = ConvLayer::new("c", 32, 14, 14, 32).unwrap();
        let past = Instant::now() - std::time::Duration::from_secs(1);
        let r = d.schedule_layer_anytime(&layer, Some(past)).unwrap();
        assert!(!r.is_exact());
        let gap = r.gap().unwrap();
        assert!(gap >= 1.0 && gap.is_finite(), "gap {gap}");
        assert!(r.schedule.latency() > 0);
        // A generous deadline degenerates to the exact search.
        let exact = d.schedule_layer(&layer).unwrap();
        assert!(exact.is_exact());
        let generous = d
            .schedule_layer_anytime(
                &layer,
                Some(Instant::now() + std::time::Duration::from_secs(3600)),
            )
            .unwrap();
        assert!(generous.is_exact());
        assert_eq!(generous.schedule, exact.schedule);
    }

    #[test]
    fn anytime_static_baseline_beats_an_expired_deadline() {
        let d = driver();
        let layer = ConvLayer::new("c", 32, 14, 14, 32).unwrap();
        let past = Instant::now() - std::time::Duration::from_secs(1);
        let r = d.baseline_layer_anytime(&layer, Some(past)).unwrap();
        assert!(!r.is_exact());
        let gap = r.gap().unwrap();
        assert!(gap >= 1.0 && gap.is_finite(), "gap {gap}");
        assert!(r.schedule.latency() > 0);
        // A generous deadline degenerates to the exact static search.
        let generous = d
            .baseline_layer_anytime(
                &layer,
                Some(Instant::now() + std::time::Duration::from_secs(3600)),
            )
            .unwrap();
        assert!(generous.is_exact());
        let exact = d.baseline_layer(&layer).unwrap();
        assert_eq!(generous.schedule, exact.schedule);
    }

    #[test]
    fn resident_network_cuts_dram_traffic_on_the_chain() {
        let d = driver();
        let net = tiny_net();
        let r = d.schedule_network_resident(&net).unwrap();
        assert!(
            r.plan.resident_edges() >= 1,
            "no edge of the chain went resident: {:?}",
            r.plan
        );
        assert!(
            r.result.total_transfer_bytes() < r.baseline.total_transfer_bytes(),
            "resident {} B !< baseline {} B",
            r.result.total_transfer_bytes(),
            r.baseline.total_transfer_bytes()
        );
        assert!(r.result.total_latency() <= r.baseline.total_latency());
        assert_eq!(
            r.dma_bytes_saved(),
            r.baseline.total_transfer_bytes() - r.result.total_transfer_bytes()
        );
        assert!(r.latency_delta() <= 0);
        assert!(r.summary().contains("resident edges"), "{}", r.summary());
        // The per-layer winners actually exercised the resident paths
        // the plan promised, edge by edge.
        for (i, edge) in r.plan.edges().iter().enumerate() {
            if edge.resident {
                assert!(
                    r.result.layers()[i].schedule.resident_out_bytes() > 0,
                    "{} promised a resident output",
                    edge.producer
                );
                assert!(
                    r.result.layers()[i + 1].schedule.resident_in_bytes() > 0,
                    "{} promised a resident input",
                    edge.consumer
                );
            }
        }
        // The plan replays cleanly against the ledger at SPM budget.
        let peak =
            crate::residency::replay_ledger(d.arch().spm_bytes(), &r.plan.ledger_ops()).unwrap();
        assert_eq!(peak, r.plan.peak_reserved());
        assert!(peak <= d.arch().spm_bytes());
    }

    #[test]
    fn resident_network_verifies_under_validate() {
        let mut opts = SearchOptions::quick();
        opts.validate = true;
        let d = Flexer::new(ArchConfig::preset(ArchPreset::Arch1)).with_options(opts);
        let r = d.schedule_network_resident(&tiny_net()).unwrap();
        assert!(r.plan.resident_edges() >= 1);
        assert!(
            r.result.verified(),
            "every residency-on schedule must pass differential verification"
        );
        assert!(r.baseline.verified());
    }

    #[test]
    fn single_layer_network_has_an_empty_plan() {
        let d = driver();
        let net = Network::new("one", vec![ConvLayer::new("c", 16, 14, 14, 16).unwrap()]).unwrap();
        let r = d.schedule_network_resident(&net).unwrap();
        assert!(r.plan.edges().is_empty());
        assert_eq!(r.plan.resident_edges(), 0);
        assert_eq!(r.plan.peak_reserved(), 0);
        assert_eq!(r.dma_bytes_saved(), 0);
        let plain = d.schedule_network(&net).unwrap();
        assert_eq!(
            r.result.layers()[0].schedule,
            plain.layers()[0].schedule,
            "with no resident edges the result is the plain network run"
        );
    }

    #[test]
    fn branching_network_declines_residency_byte_identically() {
        // Regression: the residency planner walks adjacent indices as
        // producer -> consumer pairs, which is meaningless on a
        // branching topology (adjacent layers need not be connected,
        // and one output may feed several consumers). A non-chain
        // network must cleanly decline: no resident edges, no ledger
        // reservations, results byte-identical to the plain run.
        let mk = |name: &str, in_c: u32| ConvLayer::new(name, in_c, 8, 8, 8).unwrap();
        let net = Network::with_topology(
            "branchy",
            vec![mk("stem", 8), mk("a", 8), mk("b", 8), mk("join", 16)],
            vec![
                flexer_model::NetEdge::new(0, 1),
                flexer_model::NetEdge::new(0, 2),
                flexer_model::NetEdge::new(1, 3),
                flexer_model::NetEdge::new(2, 3),
            ],
        )
        .unwrap();
        assert!(!net.is_chain());
        let d = driver();
        let r = d.schedule_network_resident(&net).unwrap();
        assert_eq!(r.plan.resident_edges(), 0);
        assert_eq!(r.plan.peak_reserved(), 0);
        assert_eq!(r.dma_bytes_saved(), 0);
        // One declined decision per actual topology edge.
        assert_eq!(r.plan.edges().len(), 4);
        for edge in r.plan.edges() {
            assert!(!edge.resident && !edge.spilled, "{edge:?}");
        }
        // No ledger activity leaks from the declined plan.
        let peak =
            crate::residency::replay_ledger(d.arch().spm_bytes(), &r.plan.ledger_ops()).unwrap();
        assert_eq!(peak, 0);
        // Byte-identical to the residency-off run, layer by layer.
        let plain = d.schedule_network(&net).unwrap();
        for (res, base) in r.result.layers().iter().zip(plain.layers()) {
            assert_eq!(res.schedule, base.schedule, "{}", res.layer);
        }
    }

    #[test]
    fn resident_network_reuses_the_store_across_runs() {
        let dir = std::env::temp_dir().join(format!(
            "flexer-resident-store-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let d = driver().with_store(&dir).unwrap();
        let net = tiny_net();
        let first = d.schedule_network_resident(&net).unwrap();
        assert!(d.store().unwrap().len().unwrap() > 0);
        // A fresh driver (cold memo cache) over the same store replays
        // the same plan and the same totals from disk.
        let d2 = Flexer::new(ArchConfig::preset(ArchPreset::Arch1))
            .with_options(SearchOptions::quick())
            .with_store(&dir)
            .unwrap();
        let second = d2.schedule_network_resident(&net).unwrap();
        assert_eq!(first.plan.resident_edges(), second.plan.resident_edges());
        assert_eq!(
            first.result.total_transfer_bytes(),
            second.result.total_transfer_bytes()
        );
        assert_eq!(first.result.total_latency(), second.result.total_latency());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn anytime_results_stay_out_of_the_store() {
        let dir = std::env::temp_dir().join(format!(
            "flexer-anytime-store-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let d = driver().with_store(&dir).unwrap();
        let layer = ConvLayer::new("c", 32, 14, 14, 32).unwrap();
        let past = Instant::now() - std::time::Duration::from_secs(1);
        let partial = d.schedule_layer_anytime(&layer, Some(past)).unwrap();
        assert!(!partial.is_exact());
        assert_eq!(
            d.store().unwrap().len().unwrap(),
            0,
            "anytime result persisted"
        );
        // The exact search persists as usual.
        let exact = d.schedule_layer(&layer).unwrap();
        assert!(exact.is_exact());
        assert_eq!(d.store().unwrap().len().unwrap(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
