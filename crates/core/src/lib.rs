//! **Flexer** — out-of-order tile scheduling for multi-NPU
//! accelerators.
//!
//! A from-scratch reproduction of *"Flexer: Out-of-Order Scheduling
//! for Multi-NPUs"* (Min, Kwon, Egger — CGO 2023). Flexer schedules
//! the tiled operations of a DNN layer onto multiple NPU cores sharing
//! an on-chip buffer, like a list instruction scheduler treating each
//! NPU as a functional unit: every step it picks the set of ready
//! operations that maximizes data reuse in the shared buffer,
//! inserting loads and spills on the fly. Against the best *static
//! loop-order* schedule it reduces latency and off-chip traffic by
//! exploiting irregular reuse patterns no fixed loop order can
//! express.
//!
//! This facade crate re-exports the subsystem crates and adds the
//! high-level [`Flexer`] driver plus network-level reports.
//!
//! # Quickstart
//!
//! ```
//! use flexer::prelude::*;
//!
//! // A small custom layer on the paper's arch1 (2 cores, 256 KiB).
//! let layer = ConvLayer::new("demo", 32, 14, 14, 32)?;
//! let arch = ArchConfig::preset(ArchPreset::Arch1);
//!
//! let driver = Flexer::new(arch).with_options(SearchOptions::quick());
//! let result = driver.schedule_layer(&layer)?;
//! println!(
//!     "best schedule: {} cycles, {} bytes ({} / {})",
//!     result.schedule.latency(),
//!     result.schedule.transfer_bytes(),
//!     result.factors,
//!     result.dataflow,
//! );
//!
//! // Compare with the best static loop-order baseline.
//! let comparison = driver.compare_layer(&layer)?;
//! assert!(comparison.speedup() > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`flexer_model`] | Conv-layer specs, VGG16 / ResNet50 / SqueezeNet / YOLOv2 |
//! | [`flexer_arch`] | Hardware configs (Table 1), performance model |
//! | [`flexer_tiling`] | Tilings, dataflows, data-flow graphs |
//! | [`flexer_spm`] | Shared-buffer model, Algorithm-2 spill heuristics |
//! | [`flexer_sim`] | Timelines, schedule records, traffic stats, validation |
//! | [`flexer_sched`] | OoO scheduler, static baseline, Algorithm-1 search |
//! | [`flexer_trace`] | Deterministic tracing: spans, counters, Chrome export |
//! | [`flexer_store`] | Persistent content-addressed schedule cache |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod driver;
mod report;
mod residency;

pub use driver::{Flexer, TracedNetwork};
pub use report::{LayerComparison, NetworkComparison, NetworkResult};
pub use residency::{replay_ledger, EdgeDecision, LedgerOp, ResidencyPlan, ResidentNetworkResult};

pub use flexer_arch as arch;
pub use flexer_model as model;
pub use flexer_sched as sched;
pub use flexer_sim as sim;
pub use flexer_solve as solve;
pub use flexer_spm as spm;
pub use flexer_store as store;
pub use flexer_tiling as tiling;
pub use flexer_trace as trace;

/// The most commonly used items, re-exported for `use flexer::prelude::*`.
pub mod prelude {
    pub use crate::driver::{Flexer, TracedNetwork};
    pub use crate::report::{LayerComparison, NetworkComparison, NetworkResult};
    pub use crate::residency::{
        replay_ledger, EdgeDecision, LedgerOp, ResidencyPlan, ResidentNetworkResult,
    };
    pub use flexer_arch::{
        ArchConfig, ArchConfigBuilder, ArchPreset, EnergyBreakdown, EnergyModel, PerfModel,
        SystolicModel,
    };
    pub use flexer_model::{networks, scale_spatial, ConvLayer, ConvLayerBuilder, Network};
    pub use flexer_sched::{
        EvalMode, Metric, PriorityPolicy, SearchOptions, SearchOutcome, SearchStats, SeedOptions,
        SpillPolicyChoice, TraceOptions,
    };
    pub use flexer_sim::{
        onchip_reference_traffic, schedule_energy, schedule_trace, validate_schedule, TrafficClass,
    };
    pub use flexer_store::{Lookup, ScheduleStore, StoreCounters};
    pub use flexer_tiling::{Dataflow, Dfg, TileKind, TilingFactors, TilingOptions};
    pub use flexer_trace::{ClockMode, Trace, TraceDetail};
}
