//! Network-level results and baseline comparisons.

use flexer_sched::{LayerSearchResult, SearchStats};
use flexer_sim::TrafficClass;
use std::fmt;

/// The scheduling result of a whole network: one search result per
/// layer, scheduled independently (the paper schedules layer by
/// layer; end-to-end numbers aggregate over layers, §5).
#[derive(Debug, Clone)]
pub struct NetworkResult {
    network: String,
    layers: Vec<LayerSearchResult>,
}

impl NetworkResult {
    /// Assembles a result from per-layer searches in network order —
    /// how the driver and the serving layer build every report.
    #[must_use]
    pub fn new(network: impl Into<String>, layers: Vec<LayerSearchResult>) -> Self {
        Self {
            network: network.into(),
            layers,
        }
    }

    /// The network's name.
    #[must_use]
    pub fn network(&self) -> &str {
        &self.network
    }

    /// Per-layer results in network order.
    #[must_use]
    pub fn layers(&self) -> &[LayerSearchResult] {
        &self.layers
    }

    /// The result for one layer.
    #[must_use]
    pub fn layer(&self, name: &str) -> Option<&LayerSearchResult> {
        self.layers.iter().find(|l| l.layer == name)
    }

    /// End-to-end inference latency: the sum of the per-layer
    /// latencies (layers execute back to back).
    #[must_use]
    pub fn total_latency(&self) -> u64 {
        self.layers.iter().map(|l| l.schedule.latency()).sum()
    }

    /// Total transferred bytes over all layers.
    #[must_use]
    pub fn total_transfer_bytes(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.schedule.transfer_bytes())
            .sum()
    }

    /// Total transferred bytes of one traffic class over all layers.
    #[must_use]
    pub fn class_transfer_bytes(&self, class: TrafficClass) -> u64 {
        self.layers
            .iter()
            .map(|l| l.schedule.traffic().class_bytes(class))
            .sum()
    }

    /// Total `(tiling, dataflow)` pairs evaluated by the searches.
    #[must_use]
    pub fn total_evaluated(&self) -> usize {
        self.layers.iter().map(|l| l.evaluated).sum()
    }

    /// Search-effort counters summed over every layer's search:
    /// scheduler steps, candidate sets generated/pruned/evaluated,
    /// rollback traffic, evictions, compactions and per-phase time.
    #[must_use]
    pub fn total_stats(&self) -> SearchStats {
        let mut total = SearchStats::default();
        for l in &self.layers {
            total.merge(&l.stats);
        }
        total
    }

    /// Whether every layer's winning schedule passed differential
    /// verification (searched with `SearchOptions::validate` or via
    /// `Flexer::verify_network`). `false` for an empty result or when
    /// any layer was not verified.
    #[must_use]
    pub fn verified(&self) -> bool {
        !self.layers.is_empty() && self.layers.iter().all(|l| l.stats.schedules_verified > 0)
    }
}

impl fmt::Display for NetworkResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} layers, {} cycles, {} B transferred | search: {}",
            self.network,
            self.layers.len(),
            self.total_latency(),
            self.total_transfer_bytes(),
            self.total_stats()
        )
    }
}

/// Flexer versus the best static loop-order schedule for one layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerComparison<'a> {
    /// Layer name.
    pub layer: &'a str,
    /// Flexer's latency in cycles.
    pub flexer_latency: u64,
    /// Baseline latency in cycles.
    pub baseline_latency: u64,
    /// Flexer's transferred bytes.
    pub flexer_transfer: u64,
    /// Baseline transferred bytes.
    pub baseline_transfer: u64,
}

impl LayerComparison<'_> {
    /// `baseline latency / flexer latency` (higher is better for
    /// Flexer; the paper's Figures 8/9 y-axis).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        ratio(self.baseline_latency, self.flexer_latency)
    }

    /// `baseline transfer / flexer transfer` (the paper's data
    /// transfer reduction).
    #[must_use]
    pub fn transfer_reduction(&self) -> f64 {
        ratio(self.baseline_transfer, self.flexer_transfer)
    }
}

/// Flexer versus the baseline for a whole network.
#[derive(Debug, Clone)]
pub struct NetworkComparison {
    flexer: NetworkResult,
    baseline: NetworkResult,
}

impl NetworkComparison {
    /// Pairs an out-of-order result with its static baseline. Both
    /// sides must cover the same network, layer for layer.
    #[must_use]
    pub fn new(flexer: NetworkResult, baseline: NetworkResult) -> Self {
        debug_assert_eq!(flexer.network(), baseline.network());
        debug_assert_eq!(flexer.layers().len(), baseline.layers().len());
        Self { flexer, baseline }
    }

    /// Flexer's network result.
    #[must_use]
    pub fn flexer(&self) -> &NetworkResult {
        &self.flexer
    }

    /// The baseline's network result.
    #[must_use]
    pub fn baseline(&self) -> &NetworkResult {
        &self.baseline
    }

    /// End-to-end speedup of Flexer over the baseline (Figure 8 top).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        ratio(self.baseline.total_latency(), self.flexer.total_latency())
    }

    /// End-to-end data-transfer reduction (Figure 8 bottom).
    #[must_use]
    pub fn transfer_reduction(&self) -> f64 {
        ratio(
            self.baseline.total_transfer_bytes(),
            self.flexer.total_transfer_bytes(),
        )
    }

    /// Per-layer comparisons in network order (Figure 9 (a)).
    pub fn per_layer(&self) -> impl Iterator<Item = LayerComparison<'_>> + '_ {
        self.flexer
            .layers()
            .iter()
            .zip(self.baseline.layers())
            .map(|(f, b)| {
                debug_assert_eq!(f.layer, b.layer);
                LayerComparison {
                    layer: &f.layer,
                    flexer_latency: f.schedule.latency(),
                    baseline_latency: b.schedule.latency(),
                    flexer_transfer: f.schedule.transfer_bytes(),
                    baseline_transfer: b.schedule.transfer_bytes(),
                }
            })
    }
}

impl NetworkComparison {
    /// Renders a per-layer comparison table followed by the end-to-end
    /// summary, ready to print.
    ///
    /// # Examples
    ///
    /// ```
    /// use flexer::prelude::*;
    ///
    /// let net = Network::new("n", vec![ConvLayer::new("c1", 16, 14, 14, 16)?])?;
    /// let driver = Flexer::new(ArchConfig::preset(ArchPreset::Arch1))
    ///     .with_options(SearchOptions::quick());
    /// let table = driver.compare_network(&net)?.render_table();
    /// assert!(table.contains("c1"));
    /// assert!(table.contains("end-to-end"));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    #[must_use]
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<16} {:>12} {:>12} {:>8} {:>12} {:>12} {:>9}",
            "layer", "flexer cyc", "static cyc", "speedup", "flexer B", "static B", "xfer red"
        );
        for lc in self.per_layer() {
            let _ = writeln!(
                out,
                "{:<16} {:>12} {:>12} {:>8.3} {:>12} {:>12} {:>9.3}",
                lc.layer,
                lc.flexer_latency,
                lc.baseline_latency,
                lc.speedup(),
                lc.flexer_transfer,
                lc.baseline_transfer,
                lc.transfer_reduction()
            );
        }
        let _ = writeln!(
            out,
            "{:<16} {:>12} {:>12} {:>8.3} {:>12} {:>12} {:>9.3}",
            "end-to-end",
            self.flexer.total_latency(),
            self.baseline.total_latency(),
            self.speedup(),
            self.flexer.total_transfer_bytes(),
            self.baseline.total_transfer_bytes(),
            self.transfer_reduction()
        );
        let stats = self.flexer.total_stats();
        let _ = writeln!(out, "search effort (flexer): {}", stats);
        if stats.candidates_bounded > 0 {
            let _ = writeln!(
                out,
                "pruning (flexer): {} candidates bounded, {} skipped by bound, {} cut mid-run",
                stats.candidates_bounded, stats.candidates_pruned, stats.early_exits
            );
        }
        if stats.seeded_cutoffs > 0 || stats.seed_gap_ppm > 0 {
            let _ = writeln!(
                out,
                "seeding (flexer): {} candidates cut by the solver seed, summed seed gap {} ppm",
                stats.seeded_cutoffs, stats.seed_gap_ppm
            );
        }
        if self.flexer.verified() && self.baseline.verified() {
            let _ = writeln!(
                out,
                "legality: every schedule passed differential verification"
            );
        }
        out
    }
}

impl fmt::Display for NetworkComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: speedup {:.2}x, transfer reduction {:.2}x",
            self.flexer.network(),
            self.speedup(),
            self.transfer_reduction()
        )
    }
}

fn ratio(numerator: u64, denominator: u64) -> f64 {
    if denominator == 0 {
        if numerator == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        numerator as f64 / denominator as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_handles_zero_denominators() {
        assert_eq!(ratio(0, 0), 1.0);
        assert_eq!(ratio(5, 0), f64::INFINITY);
        assert_eq!(ratio(10, 4), 2.5);
    }

    #[test]
    fn layer_comparison_ratios() {
        let c = LayerComparison {
            layer: "l",
            flexer_latency: 50,
            baseline_latency: 100,
            flexer_transfer: 80,
            baseline_transfer: 100,
        };
        assert_eq!(c.speedup(), 2.0);
        assert_eq!(c.transfer_reduction(), 1.25);
    }
}
