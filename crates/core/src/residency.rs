//! The network-level inter-layer SPM residency planner.
//!
//! The per-layer searches treat every layer as an island: each layer's
//! input tensor is loaded from DRAM and its output tensor is stored
//! back, even when the very next layer immediately reloads those same
//! bytes. The planner walks the network's layer chain and decides, per
//! producer→consumer edge, whether the producer's output tensor stays
//! *resident* in the shared SPM — reserving a residency region against
//! the SPM budget and turning the consumer's compulsory input loads
//! into on-chip gathers — or round-trips through DRAM as before.
//!
//! The plan is conservative by construction:
//!
//! * a residency region never exceeds half the SPM, so a layer keeps at
//!   least half the buffer for its own working set even when both its
//!   incoming and outgoing regions are live;
//! * under pressure (incoming and outgoing regions together over the
//!   cap at a shared layer) the *cheapest-to-reload* tensor — the one
//!   with fewer bytes — is spilled back to the DRAM path;
//! * an edge is accepted only if re-scheduling both endpoint layers on
//!   their reduced-SPM architectures *strictly* lowers their combined
//!   DRAM traffic without raising their combined latency; otherwise the
//!   edge is reverted and the layers keep their all-DRAM schedules.
//!
//! The finished plan replays against [`flexer_sim::ResidencyLedger`],
//! the cross-layer protocol checker: every resident tensor is reserved
//! exactly once, consumed exactly once by its consumer, and the budget
//! is never exceeded.

use flexer_sim::{LedgerError, ResidencyLedger};
use flexer_tiling::Residency;

use crate::report::NetworkResult;

/// The planner's decision for one producer→consumer edge of the layer
/// chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeDecision {
    /// Producing layer's name.
    pub producer: String,
    /// Consuming layer's name.
    pub consumer: String,
    /// Size of the tensor carried over the edge (the producer's output
    /// tensor), in bytes.
    pub bytes: u64,
    /// The tensor stays resident in SPM across the layer boundary.
    pub resident: bool,
    /// The tensor was a residency candidate but was spilled back to
    /// the DRAM path under SPM pressure (cheapest-to-reload policy).
    pub spilled: bool,
}

impl EdgeDecision {
    /// Whether the edge was even eligible for residency (shape-chained
    /// and within the per-region cap). Reverted edges — tried but not
    /// profitable — count as eligible.
    #[must_use]
    pub fn eligible(&self) -> bool {
        self.resident || self.spilled
    }
}

/// One event of the cross-layer residency protocol, replayable against
/// [`ResidencyLedger`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LedgerOp {
    /// A producer reserves its output tensor's residency region before
    /// it starts scattering into it.
    Reserve {
        /// Tensor name (the producing layer's name).
        tensor: String,
        /// Region size in bytes.
        bytes: u64,
        /// Number of consumers that will read the tensor.
        consumers: u32,
    },
    /// A consumer retires and releases one reference; the region is
    /// freed when the last consumer retires.
    Consume {
        /// Tensor name.
        tensor: String,
    },
    /// The region is evicted under pressure before all consumers read
    /// it; any later consume is a use-after-free.
    Spill {
        /// Tensor name.
        tensor: String,
    },
}

/// Replays a sequence of residency events against a fresh
/// [`ResidencyLedger`] with the given byte `budget` and checks that no
/// region leaks at the end.
///
/// Returns the peak number of reserved bytes observed.
///
/// # Errors
///
/// Returns the first [`LedgerError`] the protocol check raises:
/// use-after-free of a spilled region, double-free past the last
/// consumer, budget overflow, or a leaked (never-freed) region.
pub fn replay_ledger(budget: u64, ops: &[LedgerOp]) -> Result<u64, LedgerError> {
    let mut ledger = ResidencyLedger::new(budget);
    for op in ops {
        match op {
            LedgerOp::Reserve {
                tensor,
                bytes,
                consumers,
            } => ledger.reserve(tensor, *bytes, *consumers)?,
            LedgerOp::Consume { tensor } => ledger.consume(tensor)?,
            LedgerOp::Spill { tensor } => ledger.spill(tensor)?,
        }
    }
    ledger.finish()?;
    Ok(ledger.peak())
}

/// The network-level residency plan: one decision per chain edge plus
/// the per-layer [`Residency`] flags the per-layer searches ran under.
#[derive(Debug, Clone, Default)]
pub struct ResidencyPlan {
    edges: Vec<EdgeDecision>,
    residencies: Vec<Residency>,
    peak_reserved: u64,
}

impl ResidencyPlan {
    pub(crate) fn new(
        edges: Vec<EdgeDecision>,
        residencies: Vec<Residency>,
        peak_reserved: u64,
    ) -> Self {
        Self {
            edges,
            residencies,
            peak_reserved,
        }
    }

    /// Per-edge decisions in network order (`layers.len() - 1` of
    /// them).
    #[must_use]
    pub fn edges(&self) -> &[EdgeDecision] {
        &self.edges
    }

    /// Per-layer residency flags in network order.
    #[must_use]
    pub fn residencies(&self) -> &[Residency] {
        &self.residencies
    }

    /// Number of edges whose tensor stays resident in SPM.
    #[must_use]
    pub fn resident_edges(&self) -> usize {
        self.edges.iter().filter(|e| e.resident).count()
    }

    /// Number of residency candidates spilled back to DRAM under
    /// pressure.
    #[must_use]
    pub fn spilled_edges(&self) -> usize {
        self.edges.iter().filter(|e| e.spilled).count()
    }

    /// Total bytes carried across layer boundaries without touching
    /// DRAM.
    #[must_use]
    pub fn resident_bytes(&self) -> u64 {
        self.edges
            .iter()
            .filter(|e| e.resident)
            .map(|e| e.bytes)
            .sum()
    }

    /// Peak bytes reserved for residency regions at any layer (at most
    /// two regions — incoming and outgoing — are live at once).
    #[must_use]
    pub fn peak_reserved(&self) -> u64 {
        self.peak_reserved
    }

    /// The plan's residency protocol as a replayable event sequence:
    /// for each layer in network order, its outgoing region is reserved
    /// before the layer runs and its incoming region is consumed after
    /// the layer retires — so at most `incoming + outgoing` bytes are
    /// live during any one layer.
    #[must_use]
    pub fn ledger_ops(&self) -> Vec<LedgerOp> {
        let mut ops = Vec::new();
        for i in 0..self.residencies.len() {
            if let Some(edge) = self.edges.get(i) {
                if edge.resident {
                    ops.push(LedgerOp::Reserve {
                        tensor: edge.producer.clone(),
                        bytes: edge.bytes,
                        consumers: 1,
                    });
                }
            }
            if i > 0 {
                if let Some(edge) = self.edges.get(i - 1) {
                    if edge.resident {
                        ops.push(LedgerOp::Consume {
                            tensor: edge.producer.clone(),
                        });
                    }
                }
            }
        }
        ops
    }
}

/// A network scheduled under an inter-layer residency plan, together
/// with the all-DRAM reference run the planner had to strictly beat.
#[derive(Debug, Clone)]
pub struct ResidentNetworkResult {
    /// The resident run: per-layer winners searched under the plan's
    /// residency flags on their reduced-SPM architectures.
    pub result: NetworkResult,
    /// The residency-off reference run (byte-identical to what
    /// [`crate::Flexer::schedule_network`] returns).
    pub baseline: NetworkResult,
    /// The plan itself.
    pub plan: ResidencyPlan,
}

impl ResidentNetworkResult {
    /// DRAM bytes the plan saved versus the all-DRAM reference.
    #[must_use]
    pub fn dma_bytes_saved(&self) -> u64 {
        self.baseline
            .total_transfer_bytes()
            .saturating_sub(self.result.total_transfer_bytes())
    }

    /// Latency delta in cycles (`resident - baseline`; never positive
    /// by the planner's accept rule).
    #[must_use]
    pub fn latency_delta(&self) -> i64 {
        self.result.total_latency() as i64 - self.baseline.total_latency() as i64
    }

    /// One-line summary: resident edges, spills, bytes saved.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "residency: {} resident edges, {} spilled, {} B kept on-chip, {} B DRAM saved, latency {:+} cycles",
            self.plan.resident_edges(),
            self.plan.spilled_edges(),
            self.plan.resident_bytes(),
            self.dma_bytes_saved(),
            self.latency_delta(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(producer: &str, consumer: &str, bytes: u64, resident: bool) -> EdgeDecision {
        EdgeDecision {
            producer: producer.into(),
            consumer: consumer.into(),
            bytes,
            resident,
            spilled: false,
        }
    }

    fn chain_plan() -> ResidencyPlan {
        // c1 -> c2 resident, c2 -> c3 resident.
        let a = Residency {
            output_resident: true,
            ..Residency::default()
        };
        let b = Residency {
            input_resident: true,
            output_resident: true,
        };
        let c = Residency {
            input_resident: true,
            ..Residency::default()
        };
        ResidencyPlan::new(
            vec![edge("c1", "c2", 100, true), edge("c2", "c3", 200, true)],
            vec![a, b, c],
            300,
        )
    }

    #[test]
    fn ledger_ops_interleave_reserves_and_consumes() {
        let ops = chain_plan().ledger_ops();
        assert_eq!(
            ops,
            vec![
                LedgerOp::Reserve {
                    tensor: "c1".into(),
                    bytes: 100,
                    consumers: 1
                },
                LedgerOp::Reserve {
                    tensor: "c2".into(),
                    bytes: 200,
                    consumers: 1
                },
                LedgerOp::Consume {
                    tensor: "c1".into()
                },
                LedgerOp::Consume {
                    tensor: "c2".into()
                },
            ]
        );
    }

    #[test]
    fn plan_replay_is_clean_and_reports_peak() {
        let plan = chain_plan();
        let peak = replay_ledger(1024, &plan.ledger_ops()).unwrap();
        assert_eq!(peak, 300, "both regions live during c2");
        assert_eq!(plan.resident_edges(), 2);
        assert_eq!(plan.spilled_edges(), 0);
        assert_eq!(plan.resident_bytes(), 300);
    }

    #[test]
    fn replay_rejects_budget_overflow() {
        let err = replay_ledger(299, &chain_plan().ledger_ops()).unwrap_err();
        assert!(matches!(err, LedgerError::BudgetOverflow { .. }), "{err:?}");
    }

    #[test]
    fn replay_rejects_use_after_free_of_a_spilled_region() {
        let ops = vec![
            LedgerOp::Reserve {
                tensor: "t".into(),
                bytes: 8,
                consumers: 1,
            },
            LedgerOp::Spill { tensor: "t".into() },
            LedgerOp::Consume { tensor: "t".into() },
        ];
        let err = replay_ledger(64, &ops).unwrap_err();
        assert!(matches!(err, LedgerError::UseAfterFree { .. }), "{err:?}");
    }

    #[test]
    fn replay_rejects_double_free_past_the_last_consumer() {
        let ops = vec![
            LedgerOp::Reserve {
                tensor: "t".into(),
                bytes: 8,
                consumers: 1,
            },
            LedgerOp::Consume { tensor: "t".into() },
            LedgerOp::Consume { tensor: "t".into() },
        ];
        let err = replay_ledger(64, &ops).unwrap_err();
        assert!(matches!(err, LedgerError::DoubleFree { .. }), "{err:?}");
    }

    #[test]
    fn replay_rejects_leaked_regions() {
        let ops = vec![LedgerOp::Reserve {
            tensor: "t".into(),
            bytes: 8,
            consumers: 1,
        }];
        let err = replay_ledger(64, &ops).unwrap_err();
        assert!(matches!(err, LedgerError::Leaked { .. }), "{err:?}");
    }
}
