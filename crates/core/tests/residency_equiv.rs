//! Inter-layer residency equivalence and protocol mutation tests.
//!
//! Two guarantees gate the residency planner:
//!
//! 1. **Off means off** — the planner's residency-disabled reference
//!    run is byte-identical to plain per-layer scheduling on every
//!    golden network and on randomly generated chains (the planner is
//!    an overlay, never a perturbation).
//! 2. **The cross-layer protocol is enforced** — mutating a real
//!    plan's ledger event stream (dropping a free, duplicating a free,
//!    shrinking the budget, spilling before the consumer) is caught by
//!    the [`ResidencyLedger`] replay, not silently accepted.

use flexer::prelude::*;
use flexer::{replay_ledger, LedgerOp};
use flexer_model::{networks, scale_spatial};
use flexer_sim::LedgerError;
use proptest::prelude::*;

fn slices() -> Vec<Network> {
    networks::all()
        .iter()
        .map(|net| {
            let scaled = scale_spatial(net, 16);
            let n = scaled.layers().len().min(3);
            Network::new(scaled.name(), scaled.layers()[..n].to_vec()).unwrap()
        })
        .collect()
}

#[test]
fn residency_off_reference_is_byte_identical_on_golden_nets() {
    for preset in [ArchPreset::Arch1, ArchPreset::Arch5] {
        let driver = Flexer::new(ArchConfig::preset(preset)).with_options(SearchOptions::quick());
        for net in slices() {
            let plain = driver
                .schedule_network(&net)
                .unwrap_or_else(|e| panic!("{preset:?}/{}: {e}", net.name()));
            let resident = driver
                .schedule_network_resident(&net)
                .unwrap_or_else(|e| panic!("{preset:?}/{}: {e}", net.name()));
            for (a, b) in plain.layers().iter().zip(resident.baseline.layers()) {
                assert_eq!(
                    a.schedule,
                    b.schedule,
                    "{preset:?}/{}/{}: residency-off run diverged",
                    net.name(),
                    a.layer
                );
                assert_eq!(a.factors, b.factors);
                assert_eq!(a.dataflow, b.dataflow);
            }
            // And the resident run itself never regresses the totals.
            assert!(
                resident.result.total_transfer_bytes() <= plain.total_transfer_bytes(),
                "{preset:?}/{}",
                net.name()
            );
            assert!(
                resident.result.total_latency() <= plain.total_latency(),
                "{preset:?}/{}",
                net.name()
            );
        }
    }
}

/// A random chain: consecutive layers agree on channels, so every edge
/// is shape-chained and residency-eligible (modulo SPM pressure).
fn chain_strategy() -> impl Strategy<Value = Network> {
    (
        proptest::collection::vec(prop_oneof![Just(8u32), Just(16), Just(32)], 3..=5),
        prop_oneof![Just(7u32), Just(14)],
    )
        .prop_map(|(channels, hw)| {
            let layers: Vec<ConvLayer> = channels
                .windows(2)
                .enumerate()
                .map(|(i, w)| ConvLayer::new(format!("c{i}"), w[0], hw, hw, w[1]).unwrap())
                .collect();
            Network::new("chain", layers).unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn random_chains_keep_the_planner_invariants(net in chain_strategy()) {
        let driver =
            Flexer::new(ArchConfig::preset(ArchPreset::Arch1)).with_options(SearchOptions::quick());
        let plain = driver.schedule_network(&net).unwrap();
        let resident = driver.schedule_network_resident(&net).unwrap();
        // Off means off: the reference run is the plain run, byte for
        // byte.
        for (a, b) in plain.layers().iter().zip(resident.baseline.layers()) {
            prop_assert_eq!(&a.schedule, &b.schedule, "{}", &a.layer);
        }
        // The resident run dominates the reference: never more DRAM
        // bytes, never more cycles — and strictly fewer bytes when any
        // edge went resident.
        prop_assert!(
            resident.result.total_transfer_bytes() <= plain.total_transfer_bytes()
        );
        prop_assert!(resident.result.total_latency() <= plain.total_latency());
        if resident.plan.resident_edges() > 0 {
            prop_assert!(
                resident.result.total_transfer_bytes() < plain.total_transfer_bytes()
            );
        } else {
            prop_assert_eq!(
                resident.result.total_transfer_bytes(),
                plain.total_transfer_bytes()
            );
        }
        // The plan's protocol replays cleanly within the SPM budget.
        let peak =
            replay_ledger(driver.arch().spm_bytes(), &resident.plan.ledger_ops()).unwrap();
        prop_assert_eq!(peak, resident.plan.peak_reserved());
        prop_assert!(peak <= driver.arch().spm_bytes());
        // Promised residency shows up in the per-layer counters.
        for (i, edge) in resident.plan.edges().iter().enumerate() {
            if edge.resident {
                prop_assert!(resident.result.layers()[i].schedule.resident_out_bytes() > 0);
                prop_assert!(resident.result.layers()[i + 1].schedule.resident_in_bytes() > 0);
            }
        }
    }
}

/// A real plan from the tiny chain, as the mutation substrate.
fn real_plan_ops() -> (u64, Vec<LedgerOp>) {
    let driver =
        Flexer::new(ArchConfig::preset(ArchPreset::Arch1)).with_options(SearchOptions::quick());
    let net = Network::new(
        "tiny",
        vec![
            ConvLayer::new("c1", 16, 14, 14, 32).unwrap(),
            ConvLayer::new("c2", 32, 14, 14, 32).unwrap(),
            ConvLayer::new("c3", 32, 14, 14, 32).unwrap(),
        ],
    )
    .unwrap();
    let r = driver.schedule_network_resident(&net).unwrap();
    assert!(r.plan.resident_edges() > 0, "mutation substrate is empty");
    (driver.arch().spm_bytes(), r.plan.ledger_ops())
}

#[test]
fn mutated_plan_dropping_a_free_leaks() {
    let (budget, mut ops) = real_plan_ops();
    let last_consume = ops
        .iter()
        .rposition(|op| matches!(op, LedgerOp::Consume { .. }))
        .unwrap();
    ops.remove(last_consume);
    let err = replay_ledger(budget, &ops).unwrap_err();
    assert!(matches!(err, LedgerError::Leaked { .. }), "{err}");
}

#[test]
fn mutated_plan_duplicating_a_free_double_frees() {
    let (budget, mut ops) = real_plan_ops();
    let last_consume = ops
        .iter()
        .rposition(|op| matches!(op, LedgerOp::Consume { .. }))
        .unwrap();
    let dup = ops[last_consume].clone();
    ops.push(dup);
    let err = replay_ledger(budget, &ops).unwrap_err();
    assert!(matches!(err, LedgerError::DoubleFree { .. }), "{err}");
}

#[test]
fn mutated_plan_over_a_shrunk_budget_overflows() {
    let (_, ops) = real_plan_ops();
    let biggest = ops
        .iter()
        .filter_map(|op| match op {
            LedgerOp::Reserve { bytes, .. } => Some(*bytes),
            _ => None,
        })
        .max()
        .unwrap();
    let err = replay_ledger(biggest - 1, &ops).unwrap_err();
    assert!(matches!(err, LedgerError::BudgetOverflow { .. }), "{err}");
}

#[test]
fn mutated_plan_spilling_before_the_consumer_is_use_after_free() {
    let (budget, mut ops) = real_plan_ops();
    // Spill the first reserved tensor right after its reservation; its
    // consumer's later retirement becomes a use-after-free.
    let LedgerOp::Reserve { tensor, .. } = ops[0].clone() else {
        panic!("plans start with a reservation");
    };
    ops.insert(1, LedgerOp::Spill { tensor });
    let err = replay_ledger(budget, &ops).unwrap_err();
    assert!(matches!(err, LedgerError::UseAfterFree { .. }), "{err}");
}
