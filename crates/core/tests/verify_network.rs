//! Golden network-level verification: the winning schedules of every
//! evaluation network, on two architecture presets, pass differential
//! verification for both schedulers.
//!
//! Networks are spatially scaled down and truncated so the test runs
//! in debug builds; the `verify` binary in `flexer-bench` runs the
//! full-size sweep in release mode.

use flexer::prelude::*;
use flexer_model::{networks, scale_spatial};

fn slices() -> Vec<Network> {
    networks::all()
        .iter()
        .map(|net| {
            let scaled = scale_spatial(net, 16);
            let n = scaled.layers().len().min(3);
            Network::new(scaled.name(), scaled.layers()[..n].to_vec()).unwrap()
        })
        .collect()
}

#[test]
fn every_network_verifies_on_both_presets() {
    for preset in [ArchPreset::Arch1, ArchPreset::Arch5] {
        let driver = Flexer::new(ArchConfig::preset(preset)).with_options(SearchOptions::quick());
        for net in slices() {
            let cmp = driver
                .verify_network(&net)
                .unwrap_or_else(|e| panic!("{preset:?}/{}: {e}", net.name()));
            assert!(cmp.flexer().verified(), "{preset:?}/{} ooo", net.name());
            assert!(
                cmp.baseline().verified(),
                "{preset:?}/{} static",
                net.name()
            );
            assert!(cmp.speedup() > 0.0);
        }
    }
}

#[test]
fn validate_flag_matches_unvalidated_winners() {
    // Verification must be an observer: the same winners come out with
    // and without it (the flag is excluded from the memo key).
    let net = slices().remove(0);
    let arch = ArchConfig::preset(ArchPreset::Arch1);
    let plain = Flexer::new(arch.clone()).with_options(SearchOptions::quick());
    let mut opts = SearchOptions::quick();
    opts.validate = true;
    let validated = Flexer::new(arch).with_options(opts);
    let a = plain.schedule_network(&net).unwrap();
    let b = validated.schedule_network(&net).unwrap();
    assert!(!a.verified());
    assert!(b.verified());
    for (x, y) in a.layers().iter().zip(b.layers()) {
        assert_eq!(x.schedule, y.schedule, "{}", x.layer);
        assert_eq!(x.factors, y.factors);
        assert_eq!(x.dataflow, y.dataflow);
    }
}
