//! `flexer-cli`: the command-line client for `flexer-serve` — one node
//! or a whole fleet.
//!
//! Builds one protocol request from the arguments, prints the server's
//! response line verbatim on stdout, and exits 0 only when the
//! response says `"ok": true` — which makes it directly usable as a CI
//! assertion. With `--fleet`, requests route by store fingerprint to
//! the owning shard and fail over along ring successors; the serving
//! node is reported on stderr so stdout stays machine-parseable.

use flexer_fleet::{roundtrip_retrying, Router};
use flexer_serve::protocol::Obj;
use flexer_serve::{parse_request, Op};
use flexer_trace::json::{parse, Json};
use std::io::{ErrorKind, Write};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
flexer-cli — client for the flexer-serve scheduling service

USAGE: flexer-cli (--addr HOST:PORT | --fleet HOST:PORT,...) <COMMAND> [OPTIONS]

COMMANDS:
  health                        liveness probe
  stats                         server and store counters
  schedule <network>            out-of-order schedule
  compare <network>             OoO vs. static-baseline comparison
  verify <network>              comparison under differential verification
  shutdown                      graceful drain: finish in-flight work,
                                flush the store, stop the server
  raw <json>                    send one raw request line

<network> is a preset (vgg16, resnet50, squeezenet, yolov2) — use
`raw` with inline \"layers\" for custom shapes.

OPTIONS (schedule/compare/verify):
  --arch arch1..arch8           architecture preset (default arch1)
  --options quick|default       search options preset (default quick)
  --deadline-ms N               per-request deadline
  --mode exact|anytime          deadline semantics (schedule): exact fails
                                on expiry, anytime returns the best-so-far
                                with a proven optimality gap
  --trace                       return the recorded span tree (schedule)
  --id STR                      correlation id echoed in the response

TRANSPORT OPTIONS:
  --fleet A,B,C                 route across a fleet: scheduling requests
                                go to the shard owning their store
                                fingerprint and fail over to ring
                                successors on connect/timeout errors;
                                keyless ops (health, stats, shutdown,
                                store_*) fan out to every member, one
                                response line per member
  --retries N                   extra attempts per node after a transport
                                failure (default 2; requests are
                                idempotent, shutdown is never retried)
  --backoff-ms N                base backoff between attempts, growing
                                linearly (default 50)
  --vnodes N / --seed N         ring parameters (must match the fleet's
                                topology; defaults match flexer-fleet)

EXIT STATUS: 0 response ok and complete, 1 connection/protocol failure
(after all retries and, with --fleet, all failover candidates),
2 usage or typed server error, 3 response ok but partial (an anytime
deadline cut the search; per-layer \"gap\" says how far off at worst).
With --fleet fan-out the worst member's status wins (1 over 2 over 3).";

fn build_request(cmd: &str, mut rest: std::env::Args) -> Result<String, String> {
    let op = match cmd {
        "health" | "stats" | "shutdown" => cmd,
        "schedule" | "compare" | "verify" => cmd,
        "raw" => {
            return rest
                .next()
                .ok_or_else(|| "raw needs one JSON argument".into());
        }
        other => return Err(format!("unknown command {other:?} (see --help)")),
    };
    let mut o = Obj::new();
    o.str("op", op);
    if matches!(op, "schedule" | "compare" | "verify") {
        let network = rest
            .next()
            .ok_or_else(|| format!("{op} needs a network name"))?;
        o.str("network", &network);
    }
    while let Some(flag) = rest.next() {
        let mut value = |what: &str| {
            rest.next()
                .ok_or_else(|| format!("{what} needs a value (see --help)"))
        };
        match flag.as_str() {
            "--arch" => {
                o.str("arch", &value("--arch")?);
            }
            "--options" => {
                o.str("options", &value("--options")?);
            }
            "--deadline-ms" => {
                let ms: u64 = value("--deadline-ms")?
                    .parse()
                    .map_err(|e| format!("--deadline-ms: {e}"))?;
                o.u64("deadline_ms", ms);
            }
            "--mode" => {
                o.str("mode", &value("--mode")?);
            }
            "--trace" => {
                o.bool("trace", true);
            }
            "--id" => {
                o.str("id", &value("--id")?);
            }
            other => return Err(format!("unknown flag {other:?} (see --help)")),
        }
    }
    Ok(o.finish())
}

/// Print one line on stdout, tolerating the consumer closing the pipe
/// early (`flexer-cli ... | head`): the request already succeeded, so
/// a broken pipe must not panic or change the exit code. Rust ignores
/// SIGPIPE, which turns the closed pipe into a write error here.
fn emit(line: &str) {
    let mut out = std::io::stdout().lock();
    if let Err(e) = writeln!(out, "{line}") {
        if e.kind() != ErrorKind::BrokenPipe {
            eprintln!("flexer-cli: stdout: {e}");
        }
    }
}

/// 0 ok, 1 protocol garbage, 2 typed error, 3 ok-but-partial.
fn response_code(response: &str) -> u8 {
    match parse(response) {
        Ok(j) if j.get("ok").and_then(Json::as_bool) == Some(true) => {
            if j.get("partial").and_then(Json::as_bool) == Some(true) {
                eprintln!(
                    "flexer-cli: partial result — the anytime deadline cut the \
                     search; see per-layer \"gap\" for the proven bound"
                );
                3
            } else {
                0
            }
        }
        Ok(_) => 2,
        Err(_) => 1,
    }
}

/// Worse-wins combination for fan-out exit codes: any transport
/// failure dominates, then typed errors, then partials.
fn worse(a: u8, b: u8) -> u8 {
    let rank = |c: u8| match c {
        1 => 3,
        2 => 2,
        3 => 1,
        _ => 0,
    };
    if rank(b) > rank(a) {
        b
    } else {
        a
    }
}

struct Transport {
    addr: Option<String>,
    fleet: Option<String>,
    retries: u32,
    backoff: Duration,
    vnodes: usize,
    seed: u64,
}

fn run(transport: &Transport, line: &str) -> u8 {
    let retries = transport.retries;
    let backoff = transport.backoff;
    if let Some(fleet) = &transport.fleet {
        let addrs: Vec<&str> = fleet.split(',').filter(|a| !a.is_empty()).collect();
        if addrs.is_empty() {
            eprintln!("flexer-cli: --fleet needs at least one HOST:PORT");
            return 2;
        }
        let router = Router::with_ring_params(&addrs, transport.vnodes, transport.seed)
            .retries(retries)
            .backoff(backoff);
        let keyed = matches!(
            parse_request(line),
            Ok(req) if req.op != Op::Shutdown && flexer_fleet::route_fingerprint(&req).is_some()
        );
        if keyed {
            match router.dispatch(line) {
                Ok(routed) => {
                    eprintln!(
                        "flexer-cli: served by {} (attempts {}, failovers {})",
                        routed.node, routed.attempts, routed.failovers
                    );
                    emit(&routed.response);
                    response_code(&routed.response)
                }
                Err(e) => {
                    eprintln!("flexer-cli: every fleet candidate failed: {e}");
                    1
                }
            }
        } else {
            // Keyless ops fan out; shutdown is sent to each member
            // exactly once (never retried — it is not idempotent).
            let mut code = 0u8;
            let is_shutdown = matches!(parse_request(line), Ok(req) if req.op == Op::Shutdown);
            let node_retries = if is_shutdown { 0 } else { retries };
            for addr in router.addrs() {
                match roundtrip_retrying(addr, line, 1 + node_retries, backoff) {
                    Ok((response, _)) => {
                        eprintln!("flexer-cli: {addr}:");
                        emit(&response);
                        code = worse(code, response_code(&response));
                    }
                    Err(e) => {
                        eprintln!("flexer-cli: {addr}: {e}");
                        code = worse(code, 1);
                    }
                }
            }
            code
        }
    } else {
        let addr = transport.addr.as_deref().expect("checked by caller");
        let attempts = match parse_request(line) {
            Ok(req) if req.op == Op::Shutdown => 1,
            _ => 1 + retries,
        };
        match roundtrip_retrying(addr, line, attempts, backoff) {
            Ok((response, used)) => {
                if used > 1 {
                    eprintln!("flexer-cli: succeeded on attempt {used}");
                }
                emit(&response);
                response_code(&response)
            }
            Err(e) => {
                eprintln!("flexer-cli: {e}");
                1
            }
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args();
    let _ = args.next();
    let mut transport = Transport {
        addr: None,
        fleet: None,
        retries: 2,
        backoff: Duration::from_millis(50),
        vnodes: flexer_fleet::ring::DEFAULT_VNODES,
        seed: flexer_fleet::ring::DEFAULT_SEED,
    };
    macro_rules! flag_value {
        ($what:expr) => {
            match args.next() {
                Some(v) => v,
                None => {
                    eprintln!("flexer-cli: {} needs a value (see --help)", $what);
                    return ExitCode::from(2);
                }
            }
        };
    }
    macro_rules! parsed {
        ($what:expr) => {
            match flag_value!($what).parse() {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("flexer-cli: {}: {e}", $what);
                    return ExitCode::from(2);
                }
            }
        };
    }
    let cmd = loop {
        match args.next().as_deref() {
            Some("--addr") => transport.addr = Some(flag_value!("--addr")),
            Some("--fleet") => transport.fleet = Some(flag_value!("--fleet")),
            Some("--retries") => transport.retries = parsed!("--retries"),
            Some("--backoff-ms") => {
                transport.backoff = Duration::from_millis(parsed!("--backoff-ms"));
            }
            Some("--vnodes") => transport.vnodes = parsed!("--vnodes"),
            Some("--seed") => transport.seed = parsed!("--seed"),
            Some("-h" | "--help") => {
                emit(USAGE);
                return ExitCode::SUCCESS;
            }
            Some(cmd) => break cmd.to_string(),
            None => {
                eprintln!("flexer-cli: missing command (see --help)");
                return ExitCode::from(2);
            }
        }
    };
    match (&transport.addr, &transport.fleet) {
        (None, None) => {
            eprintln!("flexer-cli: --addr HOST:PORT or --fleet HOST:PORT,... is required");
            return ExitCode::from(2);
        }
        (Some(_), Some(_)) => {
            eprintln!("flexer-cli: --addr and --fleet are mutually exclusive");
            return ExitCode::from(2);
        }
        _ => {}
    }
    let line = match build_request(&cmd, args) {
        Ok(line) => line,
        Err(msg) => {
            eprintln!("flexer-cli: {msg}");
            return ExitCode::from(2);
        }
    };
    ExitCode::from(run(&transport, &line))
}
