//! `flexer-fleet`: a consistent-hash sharded scheduling fleet with a
//! replicated warm store.
//!
//! One `flexer-serve` node warms its own store and nothing else. This
//! crate turns N of them into one logical service:
//!
//! - **Ring** ([`ring`]): a consistent-hash ring over store
//!   fingerprints (virtual nodes, deterministic seed). Every component
//!   — router, anti-entropy, supervisor — places keys with the *same*
//!   ring, so "who owns this schedule" has exactly one answer.
//! - **Topology** ([`topology`]): the TOML/JSON fleet description the
//!   `flexer-fleet` binary spawns members from, including per-node RAM
//!   dials (leader/follower store capacity and worker-pool size).
//! - **Router** ([`router`]): fingerprint routing with ring-successor
//!   failover and bounded retries — the client layer `flexer-cli
//!   --fleet` uses.
//! - **Sync** ([`sync`]): warm-store replication and anti-entropy over
//!   the NDJSON protocol's `store_manifest`/`store_pull`/`store_push`
//!   ops. Entries are content-addressed (same fingerprint ⇒ same
//!   canonical bytes), so replication is a conflict-free set union and
//!   every ingested entry re-validates through the corrupt-quarantine
//!   path.
//! - **Supervise** ([`supervise`]): spawning, crash-restarting, and
//!   draining member daemons.
//! - **Smoke** ([`smoke`]): the scripted three-node acceptance check
//!   `check.sh` gates on (route-to-owner, kill-one-node failover,
//!   search-free warm start of a freshly joined node).
//!
//! Like the rest of the workspace this is `std`-only: blocking
//! sockets, OS processes, no third-party deps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ring;
pub mod router;
pub mod smoke;
pub mod supervise;
pub mod sync;
pub mod topology;

pub use ring::HashRing;
pub use router::{roundtrip_retrying, route_fingerprint, Routed, Router};
pub use supervise::{Member, Supervisor};
pub use sync::{fetch_manifest, replica_parity, sync_pass, ManifestRow, SyncReport};
pub use topology::{NodeSpec, Role, Topology};
