//! The `flexer-fleet` binary: spawn and supervise a sharded scheduling
//! fleet, run anti-entropy passes, or run the scripted acceptance
//! smoke.

use flexer_fleet::{smoke, sync_pass, Router, Supervisor, Topology};
use std::io::Read;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "\
flexer-fleet — consistent-hash sharded scheduling fleet over flexer-serve

USAGE:
  flexer-fleet run --topology FILE --serve-bin PATH [OPTIONS]
      Spawn every topology member, then supervise: crashed members are
      respawned on their recorded address and an anti-entropy pass runs
      every --sync-interval-ms. Stops (draining every member) when
      stdin reaches EOF — run it with a pipe on stdin and close it.

  flexer-fleet sync --fleet HOST:PORT,... [OPTIONS]
      Run one anti-entropy pass over a running fleet and print what it
      copied.

  flexer-fleet smoke --serve-bin PATH [--scratch DIR]
      Run the three-node acceptance smoke: fingerprint routing to the
      owning shard, failover with one member killed, and search-free
      warm start of a wiped member via replication.

OPTIONS:
  --topology FILE        TOML or JSON fleet description (see crate docs)
  --serve-bin PATH       the flexer-serve binary to spawn members from
  --run-dir DIR          port files + member logs (default .fleet-run)
  --sync-interval-ms N   anti-entropy period for `run` (default 2000)
  --fleet A,B,C          member addresses for `sync`
  --replicas N           replication factor for `sync` (default 2)
  --vnodes N             ring virtual nodes (default 64; must match fleet)
  --seed N               ring hash seed (must match fleet)
  --scratch DIR          smoke working dir (default .fleet-smoke)
  -h, --help             this text";

fn value(args: &mut impl Iterator<Item = String>, what: &str) -> Result<String, String> {
    args.next()
        .ok_or_else(|| format!("{what} needs a value (see --help)"))
}

fn run_fleet(mut args: impl Iterator<Item = String>) -> Result<(), String> {
    let mut topology = None;
    let mut serve_bin = None;
    let mut run_dir = PathBuf::from(".fleet-run");
    let mut interval = Duration::from_millis(2000);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--topology" => topology = Some(PathBuf::from(value(&mut args, "--topology")?)),
            "--serve-bin" => serve_bin = Some(PathBuf::from(value(&mut args, "--serve-bin")?)),
            "--run-dir" => run_dir = PathBuf::from(value(&mut args, "--run-dir")?),
            "--sync-interval-ms" => {
                interval = Duration::from_millis(
                    value(&mut args, "--sync-interval-ms")?
                        .parse()
                        .map_err(|e| format!("--sync-interval-ms: {e}"))?,
                );
            }
            other => return Err(format!("run: unknown flag {other:?}")),
        }
    }
    let topology = Topology::from_file(&topology.ok_or("run needs --topology")?)?;
    let serve_bin = serve_bin.ok_or("run needs --serve-bin")?;
    let mut fleet = Supervisor::spawn(&topology, &serve_bin, &run_dir)?;
    for member in fleet.members() {
        println!(
            "flexer-fleet: member {} ({}) on {}",
            member.spec.name,
            member.spec.role.code(),
            member.addr
        );
    }
    let router = Router::with_ring_params(&fleet.addrs(), topology.vnodes, topology.seed);
    let replicas = topology.effective_replicas();

    // Stdin EOF is the stop signal, watched from a thread so the
    // supervise loop below stays a plain timer.
    let stop = Arc::new(AtomicBool::new(false));
    {
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("flexer-fleet-stdin".into())
            .spawn(move || {
                let mut sink = [0u8; 4096];
                let mut stdin = std::io::stdin();
                while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
                stop.store(true, Ordering::SeqCst);
            })
            .map_err(|e| format!("cannot spawn stdin watcher: {e}"))?;
    }
    println!("flexer-fleet: supervising (close stdin to stop)");
    'supervise: loop {
        // Sleep out the interval in stop-checkable slices.
        let mut slept = Duration::ZERO;
        while slept < interval {
            if stop.load(Ordering::SeqCst) {
                break 'supervise;
            }
            std::thread::sleep(Duration::from_millis(100));
            slept += Duration::from_millis(100);
        }
        for name in fleet.respawn_dead()? {
            println!("flexer-fleet: respawned crashed member {name}");
        }
        match sync_pass(&router, replicas) {
            Ok(report) if report.copied > 0 => {
                println!(
                    "flexer-fleet: anti-entropy copied {} entries ({} rejected)",
                    report.copied, report.rejected
                );
            }
            Ok(_) => {}
            Err(e) => eprintln!("flexer-fleet: anti-entropy pass failed: {e}"),
        }
    }
    println!("flexer-fleet: draining members");
    fleet.drain_all();
    Ok(())
}

fn run_sync(mut args: impl Iterator<Item = String>) -> Result<(), String> {
    let mut fleet = None;
    let mut replicas = 2usize;
    let mut vnodes = flexer_fleet::ring::DEFAULT_VNODES;
    let mut seed = flexer_fleet::ring::DEFAULT_SEED;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fleet" => fleet = Some(value(&mut args, "--fleet")?),
            "--replicas" => {
                replicas = value(&mut args, "--replicas")?
                    .parse()
                    .map_err(|e| format!("--replicas: {e}"))?;
            }
            "--vnodes" => {
                vnodes = value(&mut args, "--vnodes")?
                    .parse()
                    .map_err(|e| format!("--vnodes: {e}"))?;
            }
            "--seed" => {
                seed = value(&mut args, "--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            other => return Err(format!("sync: unknown flag {other:?}")),
        }
    }
    let fleet = fleet.ok_or("sync needs --fleet HOST:PORT,...")?;
    let addrs: Vec<&str> = fleet.split(',').filter(|a| !a.is_empty()).collect();
    let router = Router::with_ring_params(&addrs, vnodes, seed);
    let report = sync_pass(&router, replicas)?;
    println!(
        "flexer-fleet: sync over {} nodes, {} entries: copied {}, existing {}, rejected {}, vanished {}",
        report.nodes, report.entries, report.copied, report.existing, report.rejected, report.vanished
    );
    for addr in &report.unreachable {
        println!("flexer-fleet: unreachable member {addr}");
    }
    Ok(())
}

fn run_smoke(mut args: impl Iterator<Item = String>) -> Result<(), String> {
    let mut serve_bin = None;
    let mut scratch = PathBuf::from(".fleet-smoke");
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--serve-bin" => serve_bin = Some(PathBuf::from(value(&mut args, "--serve-bin")?)),
            "--scratch" => scratch = PathBuf::from(value(&mut args, "--scratch")?),
            other => return Err(format!("smoke: unknown flag {other:?}")),
        }
    }
    let serve_bin = serve_bin.ok_or("smoke needs --serve-bin PATH")?;
    if scratch.exists() {
        std::fs::remove_dir_all(&scratch)
            .map_err(|e| format!("cannot wipe scratch {}: {e}", scratch.display()))?;
    }
    smoke::run(&serve_bin, &scratch)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let result = match args.next().as_deref() {
        Some("run") => run_fleet(args),
        Some("sync") => run_sync(args),
        Some("smoke") => run_smoke(args),
        Some("-h" | "--help") | None => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown subcommand {other:?} (see --help)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("flexer-fleet: {msg}");
            ExitCode::from(2)
        }
    }
}
