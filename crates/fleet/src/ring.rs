//! The consistent-hash ring: deterministic placement of store
//! fingerprints onto fleet nodes.
//!
//! Every node contributes [`DEFAULT_VNODES`] virtual points to a
//! 64-bit hash circle; a fingerprint belongs to the first point at or
//! after its own hash (wrapping). Virtual points smooth the load split
//! and — the property the fleet actually leans on — make membership
//! changes *local*: when a node joins or leaves, only the keys in the
//! arcs it gains or loses move, everything else stays put.
//!
//! The ring is pure data shared by the router, the anti-entropy pass
//! and the supervisor. All of them must agree on placement, so both
//! the point hash and the key hash are pinned FNV-1a-64 constructions
//! seeded with an explicit [`DEFAULT_SEED`]; a golden test pins the
//! placement of known keys so accidental drift breaks loudly.

use flexer_store::Fingerprint;

/// Virtual points each node contributes to the circle.
pub const DEFAULT_VNODES: usize = 64;

/// Seed mixed into every ring hash. Routing clients and fleet members
/// must use the same seed to agree on ownership.
pub const DEFAULT_SEED: u64 = 0xf1ee_7001_5eed_0001;

fn fnv1a_64(chunks: &[&[u8]]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for chunk in chunks {
        for &b in *chunk {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    // Raw FNV-1a clusters on short structured inputs (the vnode points
    // differ in a couple of bytes), which skews arc lengths badly; a
    // splitmix64-style finalizer restores uniformity on the circle.
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// A consistent-hash ring over named nodes (fleet members are named by
/// their `host:port` address so every participant derives the same
/// ring from the same member list).
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point hash, node index)` sorted by point hash.
    points: Vec<(u64, usize)>,
    nodes: Vec<String>,
}

impl HashRing {
    /// Builds a ring over `nodes` with the default virtual-node count
    /// and seed.
    #[must_use]
    pub fn new<S: AsRef<str>>(nodes: &[S]) -> Self {
        Self::with_params(nodes, DEFAULT_VNODES, DEFAULT_SEED)
    }

    /// Builds a ring with explicit parameters. `vnodes` is clamped to
    /// at least 1. Duplicate node names are dropped (the first
    /// occurrence wins) so a sloppy member list cannot double-weight a
    /// node.
    #[must_use]
    pub fn with_params<S: AsRef<str>>(nodes: &[S], vnodes: usize, seed: u64) -> Self {
        let vnodes = vnodes.max(1);
        let mut names: Vec<String> = Vec::with_capacity(nodes.len());
        for n in nodes {
            let n = n.as_ref();
            if !names.iter().any(|have| have == n) {
                names.push(n.to_string());
            }
        }
        let mut points = Vec::with_capacity(names.len() * vnodes);
        for (idx, name) in names.iter().enumerate() {
            for v in 0..vnodes {
                let h = fnv1a_64(&[
                    &seed.to_le_bytes(),
                    name.as_bytes(),
                    b"#",
                    &(v as u32).to_le_bytes(),
                ]);
                points.push((h, idx));
            }
        }
        // Ties (astronomically unlikely) break by node index so the
        // ring is a pure function of the member list.
        points.sort_unstable();
        Self {
            points,
            nodes: names,
        }
    }

    /// The distinct node names on the ring, in insertion order.
    #[must_use]
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// Number of distinct nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the ring has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Hashes a raw 128-bit key onto the circle.
    fn key_point(&self, key: u128) -> u64 {
        // Seedless: the seed already perturbed the node points, and
        // hashing the key identically on every participant is what
        // matters. The 16 little-endian key bytes go through the same
        // FNV construction as the points.
        fnv1a_64(&[&key.to_le_bytes()])
    }

    /// The node that owns `key`: the first virtual point at or after
    /// the key's hash, wrapping at the top of the circle. `None` on an
    /// empty ring.
    #[must_use]
    pub fn owner_of(&self, key: u128) -> Option<&str> {
        self.successors_of(key, 1).into_iter().next()
    }

    /// The owner of a store fingerprint.
    #[must_use]
    pub fn owner(&self, fp: Fingerprint) -> Option<&str> {
        self.owner_of(fp.value())
    }

    /// Up to `n` *distinct* nodes in ring order starting at the owner
    /// of `key` — the key's replica set (owner first), and the
    /// failover order a router walks when the owner is unreachable.
    #[must_use]
    pub fn successors_of(&self, key: u128, n: usize) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::with_capacity(n.min(self.nodes.len()));
        if self.points.is_empty() || n == 0 {
            return out;
        }
        let kh = self.key_point(key);
        let start = self.points.partition_point(|&(h, _)| h < kh);
        for i in 0..self.points.len() {
            let (_, idx) = self.points[(start + i) % self.points.len()];
            let name = self.nodes[idx].as_str();
            if !out.contains(&name) {
                out.push(name);
                if out.len() == n.min(self.nodes.len()) {
                    break;
                }
            }
        }
        out
    }

    /// The replica set of a store fingerprint (owner first).
    #[must_use]
    pub fn successors(&self, fp: Fingerprint, n: usize) -> Vec<&str> {
        self.successors_of(fp.value(), n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn three() -> HashRing {
        HashRing::new(&["127.0.0.1:7001", "127.0.0.1:7002", "127.0.0.1:7003"])
    }

    #[test]
    fn placement_is_deterministic_and_order_independent() {
        let a = three();
        let b = HashRing::new(&["127.0.0.1:7003", "127.0.0.1:7001", "127.0.0.1:7002"]);
        for key in 0..512u128 {
            let k = key.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            assert_eq!(a.owner_of(k), b.owner_of(k), "key {k}");
            assert_eq!(a.successors_of(k, 2), b.successors_of(k, 2));
        }
    }

    #[test]
    fn successors_are_distinct_owner_first_and_bounded() {
        let ring = three();
        for key in 0..256u128 {
            let k = key.wrapping_mul(0x2545_f491_4f6c_dd1d);
            let succ = ring.successors_of(k, 2);
            assert_eq!(succ.len(), 2);
            assert_ne!(succ[0], succ[1]);
            assert_eq!(Some(succ[0]), ring.owner_of(k));
            // Asking for more replicas than nodes caps at the fleet.
            assert_eq!(ring.successors_of(k, 9).len(), 3);
        }
        assert!(HashRing::new::<&str>(&[]).owner_of(7).is_none());
        assert!(HashRing::new::<&str>(&[]).successors_of(7, 2).is_empty());
    }

    #[test]
    fn virtual_nodes_spread_load_roughly_evenly() {
        let ring = three();
        let mut counts: HashMap<&str, usize> = HashMap::new();
        let total = 3000u128;
        for key in 0..total {
            let k = key.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xdead_beef;
            *counts.entry(ring.owner_of(k).unwrap()).or_default() += 1;
        }
        assert_eq!(counts.len(), 3, "every node owns some keys");
        for (&node, &n) in &counts {
            let share = n as f64 / total as f64;
            assert!(
                (0.15..=0.55).contains(&share),
                "{node} owns {share:.2} of keys — vnodes are not spreading"
            );
        }
    }

    #[test]
    fn membership_change_only_moves_the_departed_nodes_keys() {
        let full = three();
        let reduced = HashRing::new(&["127.0.0.1:7001", "127.0.0.1:7002"]);
        for key in 0..2000u128 {
            let k = key.wrapping_mul(0x6c62_272e_07bb_0142);
            let before = full.owner_of(k).unwrap();
            let after = reduced.owner_of(k).unwrap();
            if before != "127.0.0.1:7003" {
                assert_eq!(before, after, "surviving nodes keep their keys");
            }
        }
    }

    #[test]
    fn duplicate_nodes_are_dropped() {
        let ring = HashRing::new(&["a:1", "a:1", "b:2"]);
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.nodes(), &["a:1".to_string(), "b:2".to_string()]);
    }

    #[test]
    fn golden_placement_is_pinned() {
        // Drift in the hash construction, the seed, or the vnode count
        // silently splits a mixed-version fleet into disagreeing
        // routers; this pin makes the break loud instead.
        let ring = three();
        let placements: Vec<&str> = (0..8u128)
            .map(|k| {
                ring.owner_of(k.wrapping_mul(0x1234_5678_9abc_def1))
                    .unwrap()
            })
            .collect();
        assert_eq!(
            placements,
            [
                "127.0.0.1:7003",
                "127.0.0.1:7001",
                "127.0.0.1:7003",
                "127.0.0.1:7002",
                "127.0.0.1:7002",
                "127.0.0.1:7001",
                "127.0.0.1:7001",
                "127.0.0.1:7003",
            ]
        );
    }
}
