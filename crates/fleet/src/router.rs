//! Fingerprint routing with ring-successor failover.
//!
//! The router turns a fleet member list into one logical endpoint:
//! each scheduling request is hashed to its owning shard (the store
//! fingerprint of the request's first layer — for the single-layer
//! requests replication tests lean on, the routed node *is* the ring
//! owner of the request's store entry), and on connect/timeout errors
//! the request walks the key's ring successors with bounded per-node
//! retries and linear backoff. Because schedules are deterministic and
//! stats provenance is maskable ([`flexer_serve::mask_provenance`]),
//! any node's answer is as good as the owner's — failover trades only
//! warm-store locality, never correctness.
//!
//! Every request the protocol defines is idempotent except `shutdown`,
//! so retrying after a transport error is safe; `shutdown` is never
//! retried or failed over.

use crate::ring::HashRing;
use flexer_arch::ArchConfig;
use flexer_sched::{SchedulerKind, SearchOptions};
use flexer_serve::client::roundtrip;
use flexer_serve::{parse_request, Op, OptionsName, Request};
use flexer_store::{fingerprint, Fingerprint};
use std::io;
use std::time::Duration;

/// One successfully routed request.
#[derive(Debug)]
pub struct Routed {
    /// The serialized response line.
    pub response: String,
    /// The member that answered.
    pub node: String,
    /// Total connection attempts spent (1 = first try worked).
    pub attempts: u32,
    /// How many nodes were skipped before one answered (0 = the
    /// preferred node answered).
    pub failovers: usize,
}

/// The store fingerprint a request routes by: its first layer under
/// the request's `(arch, options)` and the OoO scheduler kind — the
/// same address `flexer-serve` reads and writes for that layer, so
/// routing by it sends every request to the shard that owns its warm
/// entry. `None` for ops that carry no network (health, stats,
/// `store_*`, shutdown).
#[must_use]
pub fn route_fingerprint(req: &Request) -> Option<Fingerprint> {
    let layer = req.network.as_ref()?.layers().first()?;
    let arch = ArchConfig::preset(req.arch);
    let opts = match req.options {
        OptionsName::Quick => SearchOptions::quick(),
        OptionsName::Default => SearchOptions::default(),
    };
    Some(fingerprint(layer, &arch, &opts, SchedulerKind::Ooo))
}

/// Round-trips `line` to one address, retrying transport failures up
/// to `attempts` total tries with linear backoff (`backoff`, then
/// `2*backoff`, …) between tries. Typed server errors are *responses*,
/// not transport failures — they come back as `Ok` and are never
/// retried here.
///
/// # Errors
///
/// The last transport error once all attempts are spent.
pub fn roundtrip_retrying(
    addr: &str,
    line: &str,
    attempts: u32,
    backoff: Duration,
) -> io::Result<(String, u32)> {
    let attempts = attempts.max(1);
    let mut last = None;
    for attempt in 1..=attempts {
        match roundtrip(addr, line) {
            Ok(response) => return Ok((response, attempt)),
            Err(e) => last = Some(e),
        }
        if attempt < attempts && !backoff.is_zero() {
            std::thread::sleep(backoff * attempt);
        }
    }
    Err(last.expect("at least one attempt ran"))
}

/// Routes requests across a fleet member list.
#[derive(Debug, Clone)]
pub struct Router {
    addrs: Vec<String>,
    ring: HashRing,
    retries: u32,
    backoff: Duration,
}

impl Router {
    /// A router over `addrs` with the default ring parameters, 2
    /// per-node retries and 25 ms base backoff.
    #[must_use]
    pub fn new<S: AsRef<str>>(addrs: &[S]) -> Self {
        let ring = HashRing::new(addrs);
        Self {
            addrs: ring.nodes().to_vec(),
            ring,
            retries: 2,
            backoff: Duration::from_millis(25),
        }
    }

    /// A router whose ring uses explicit `vnodes`/`seed` (must match
    /// the fleet's topology).
    #[must_use]
    pub fn with_ring_params<S: AsRef<str>>(addrs: &[S], vnodes: usize, seed: u64) -> Self {
        let ring = HashRing::with_params(addrs, vnodes, seed);
        Self {
            addrs: ring.nodes().to_vec(),
            ring,
            retries: 2,
            backoff: Duration::from_millis(25),
        }
    }

    /// Sets the per-node retry budget (extra attempts after the first;
    /// 0 = single attempt per node).
    #[must_use]
    pub fn retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Sets the base backoff between same-node attempts.
    #[must_use]
    pub fn backoff(mut self, backoff: Duration) -> Self {
        self.backoff = backoff;
        self
    }

    /// The member addresses (deduplicated, insertion order).
    #[must_use]
    pub fn addrs(&self) -> &[String] {
        &self.addrs
    }

    /// The ring the router places keys on.
    #[must_use]
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// The failover chain for one request line: the owner of the
    /// request's route fingerprint first, then its ring successors.
    /// Ops without a routing key (and lines the local parser rejects —
    /// the server's parser is authoritative and such lines are never
    /// executed, so forwarding is safe) walk the member list in order.
    #[must_use]
    pub fn candidates(&self, line: &str) -> Vec<String> {
        match parse_request(line) {
            Ok(req) => match route_fingerprint(&req) {
                Some(fp) => self
                    .ring
                    .successors(fp, self.ring.len())
                    .into_iter()
                    .map(str::to_owned)
                    .collect(),
                None => self.addrs.clone(),
            },
            Err(_) => self.addrs.clone(),
        }
    }

    /// Routes one request line: preferred shard first, ring-successor
    /// failover on transport errors, bounded retries + backoff per
    /// node. `shutdown` is refused — it is the one non-idempotent op,
    /// and draining a whole fleet is the caller's explicit decision
    /// ([`Router::fan_out`] each member instead).
    ///
    /// # Errors
    ///
    /// `InvalidInput` for a `shutdown` line; otherwise the last
    /// transport error after every candidate node failed.
    pub fn dispatch(&self, line: &str) -> io::Result<Routed> {
        if matches!(parse_request(line), Ok(req) if req.op == Op::Shutdown) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "shutdown is not idempotent and cannot be routed; \
                 send it to each member explicitly",
            ));
        }
        let candidates = self.candidates(line);
        let mut spent = 0u32;
        let mut last = None;
        for (failovers, addr) in candidates.iter().enumerate() {
            match roundtrip_retrying(addr, line, 1 + self.retries, self.backoff) {
                Ok((response, attempts)) => {
                    return Ok(Routed {
                        response,
                        node: addr.clone(),
                        attempts: spent + attempts,
                        failovers,
                    })
                }
                Err(e) => {
                    spent += 1 + self.retries;
                    last = Some(e);
                }
            }
        }
        Err(last.unwrap_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotConnected,
                "router has no member addresses",
            )
        }))
    }

    /// Sends `line` to *every* member (no failover, retries apply per
    /// member) and returns each member's outcome in member order —
    /// for health/stats sweeps and explicit fleet-wide shutdown.
    #[must_use]
    pub fn fan_out(&self, line: &str) -> Vec<(String, io::Result<String>)> {
        self.addrs
            .iter()
            .map(|addr| {
                let result =
                    roundtrip_retrying(addr, line, 1 + self.retries, self.backoff).map(|(r, _)| r);
                (addr.clone(), result)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule_line() -> String {
        r#"{"op":"schedule","layers":[{"in_channels":16,"height":14,"width":14,"out_channels":16}]}"#
            .to_string()
    }

    #[test]
    fn route_fingerprint_matches_the_store_address() {
        let req = parse_request(&schedule_line()).unwrap();
        let fp = route_fingerprint(&req).unwrap();
        let layer = flexer_model::ConvLayer::new("l0", 16, 14, 14, 16).unwrap();
        let expect = fingerprint(
            &layer,
            &ArchConfig::preset(flexer_arch::ArchPreset::Arch1),
            &SearchOptions::quick(),
            SchedulerKind::Ooo,
        );
        assert_eq!(fp, expect, "routing key is the layer's store address");
        // Health has no network, so no routing key.
        let health = parse_request(r#"{"op":"health"}"#).unwrap();
        assert!(route_fingerprint(&health).is_none());
    }

    #[test]
    fn candidates_walk_ring_successors_owner_first() {
        let router = Router::new(&["127.0.0.1:1", "127.0.0.1:2", "127.0.0.1:3"]);
        let line = schedule_line();
        let candidates = router.candidates(&line);
        assert_eq!(candidates.len(), 3, "full failover chain");
        let req = parse_request(&line).unwrap();
        let fp = route_fingerprint(&req).unwrap();
        assert_eq!(Some(candidates[0].as_str()), router.ring().owner(fp));
        let keyless = router.candidates(r#"{"op":"stats"}"#);
        assert_eq!(keyless, router.addrs());
    }

    #[test]
    fn dispatch_refuses_shutdown_and_reports_dead_fleets() {
        let router = Router::new(&["127.0.0.1:9"])
            .retries(0)
            .backoff(Duration::ZERO);
        let err = router.dispatch(r#"{"op":"shutdown"}"#).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        // Nothing listens on a reserved port 9 — every candidate fails
        // and the last transport error surfaces.
        assert!(router.dispatch(&schedule_line()).is_err());
    }
}
