//! The scripted three-node fleet acceptance check `check.sh` gates on.
//!
//! One run proves, end to end, the three properties the fleet exists
//! for:
//!
//! 1. **Routing**: every cold request lands on the ring owner of its
//!    store fingerprint — asserted with per-node store-miss deltas (the
//!    serving shard takes the miss, every other shard's counters do
//!    not move) and byte-identity against a standalone baseline node.
//! 2. **Failover**: with one member hard-killed, every request is
//!    still answerable through ring successors, byte-identically.
//! 3. **Replication**: a member restarted with a *wiped* store reaches
//!    manifest parity through anti-entropy alone and then answers its
//!    requests with store hits only — zero search evaluations, zero
//!    misses.
//!
//! Everything is deterministic except the OS-assigned ports, so the
//! request set is picked *after* boot: shapes are scanned in a fixed
//! order until the set spans at least two distinct owners.

use crate::router::{route_fingerprint, Router};
use crate::supervise::Supervisor;
use crate::sync::{fetch_manifest, replica_parity, sync_pass};
use crate::topology::{NodeSpec, Role, Topology};
use flexer_serve::client::roundtrip;
use flexer_serve::{mask_provenance, parse_request};
use flexer_trace::json::{parse as parse_json, Json};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Requests in the smoke's replayed set.
const REQUESTS: usize = 8;
/// Shape scan bound while looking for owner diversity.
const SHAPE_SCAN: usize = 64;

fn schedule_line(channels: usize) -> String {
    format!(
        r#"{{"op":"schedule","layers":[{{"in_channels":{channels},"height":14,"width":14,"out_channels":{channels}}}]}}"#
    )
}

/// A node's `(store hits, store misses)` from its stats response.
fn store_counters(addr: &str) -> Result<(u64, u64), String> {
    let response =
        roundtrip(addr, r#"{"op":"stats"}"#).map_err(|e| format!("{addr}: stats: {e}"))?;
    let json = parse_json(&response)
        .map_err(|e| format!("{addr}: unparseable stats: {} at {}", e.message, e.offset))?;
    let store = json
        .get("store")
        .ok_or_else(|| format!("{addr}: stats without a store summary"))?;
    let get = |key: &str| {
        store
            .get(key)
            .and_then(Json::as_num)
            .map(|n| n as u64)
            .ok_or_else(|| format!("{addr}: stats store summary without {key}"))
    };
    Ok((get("hits")?, get("misses")?))
}

fn masked(line: &str) -> String {
    mask_provenance(line)
}

/// Picks `REQUESTS` single-layer schedule lines whose route
/// fingerprints span at least two distinct owners on `router`'s ring.
fn pick_requests(router: &Router) -> Result<Vec<(String, String)>, String> {
    let mut candidates: Vec<(String, String)> = Vec::with_capacity(SHAPE_SCAN);
    for i in 0..SHAPE_SCAN {
        let line = schedule_line(4 + 2 * i);
        let req = parse_request(&line).map_err(|e| format!("smoke request invalid: {e:?}"))?;
        let fp = route_fingerprint(&req).ok_or("smoke request has no routing key")?;
        let owner = router.ring().owner(fp).ok_or("empty ring")?.to_string();
        candidates.push((line, owner));
    }
    let mut picked: Vec<(String, String)> = candidates.iter().take(REQUESTS).cloned().collect();
    if picked.iter().all(|(_, o)| *o == picked[0].1) {
        // 64 vnodes per member make a single-owner prefix vanishingly
        // rare, but ports are OS-assigned — swap in the first shape
        // with a different owner to guarantee routing diversity.
        let diverse = candidates
            .iter()
            .find(|(_, o)| *o != picked[0].1)
            .ok_or(format!(
                "no owner diversity in {SHAPE_SCAN} shapes — ring placement is degenerate"
            ))?;
        *picked.last_mut().expect("picked is non-empty") = diverse.clone();
    }
    Ok(picked)
}

/// Runs the three-node smoke. `scratch` is wiped-by-caller working
/// space for stores, logs and port files; progress goes to stdout as
/// `fleet smoke:` lines so `check.sh` output stays greppable.
///
/// # Errors
///
/// The first violated assertion, as a human-readable message.
pub fn run(serve_bin: &Path, scratch: &Path) -> Result<(), String> {
    std::fs::create_dir_all(scratch)
        .map_err(|e| format!("cannot create scratch {}: {e}", scratch.display()))?;
    let dir = |name: &str| -> PathBuf { scratch.join(name) };

    // --- Baseline: one standalone node answers everything cold. -----
    let solo_topo = Topology {
        vnodes: 64,
        seed: crate::ring::DEFAULT_SEED,
        replicas: 1,
        nodes: vec![NodeSpec {
            name: "solo".into(),
            addr: "127.0.0.1:0".into(),
            store_dir: dir("solo-store"),
            role: Role::Leader,
            store_capacity: None,
            workers: None,
            queue: None,
        }],
    };
    let solo = Supervisor::spawn(&solo_topo, serve_bin, &dir("solo-run"))?;
    let solo_addr = solo.addrs().remove(0);
    println!("fleet smoke: baseline node on {solo_addr}");

    // --- Fleet: one leader, two followers, fresh stores. ------------
    let fleet_topo = Topology {
        vnodes: 64,
        seed: crate::ring::DEFAULT_SEED,
        replicas: 2,
        nodes: ["n1", "n2", "n3"]
            .iter()
            .enumerate()
            .map(|(i, name)| NodeSpec {
                name: (*name).into(),
                addr: "127.0.0.1:0".into(),
                store_dir: dir(&format!("{name}-store")),
                role: if i == 0 { Role::Leader } else { Role::Follower },
                store_capacity: None,
                workers: None,
                queue: None,
            })
            .collect(),
    };
    let replicas = fleet_topo.effective_replicas();
    let mut fleet = Supervisor::spawn(&fleet_topo, serve_bin, &dir("fleet-run"))?;
    let addrs = fleet.addrs();
    let router = Router::with_ring_params(&addrs, fleet_topo.vnodes, fleet_topo.seed)
        .retries(1)
        .backoff(Duration::from_millis(10));
    println!("fleet smoke: members {}", addrs.join(", "));

    let requests = pick_requests(&router)?;
    let owners: std::collections::BTreeSet<&str> =
        requests.iter().map(|(_, o)| o.as_str()).collect();
    println!(
        "fleet smoke: {} requests across {} owning shards",
        requests.len(),
        owners.len()
    );

    // Baseline answers, masked.
    let mut baseline: Vec<String> = Vec::with_capacity(requests.len());
    for (line, _) in &requests {
        let response = roundtrip(solo_addr.as_str(), line).map_err(|e| format!("baseline: {e}"))?;
        baseline.push(masked(&response));
    }

    // --- 1. Cold routed pass: owner serves, nobody else moves. ------
    for (i, (line, owner)) in requests.iter().enumerate() {
        let mut before = Vec::new();
        for addr in &addrs {
            before.push(store_counters(addr)?);
        }
        let routed = router
            .dispatch(line)
            .map_err(|e| format!("dispatch: {e}"))?;
        if routed.node != *owner || routed.failovers != 0 {
            return Err(format!(
                "request {i} served by {} (failovers {}), expected owner {owner}",
                routed.node, routed.failovers
            ));
        }
        for (addr, (_, misses_before)) in addrs.iter().zip(&before) {
            let (_, misses_after) = store_counters(addr)?;
            let delta = misses_after - misses_before;
            if addr == owner && delta == 0 {
                return Err(format!(
                    "request {i}: owning shard {addr} took no store miss"
                ));
            }
            if addr != owner && delta != 0 {
                return Err(format!(
                    "request {i}: non-owning shard {addr} took {delta} store misses"
                ));
            }
        }
        if masked(&routed.response) != baseline[i] {
            return Err(format!(
                "request {i}: routed response differs from baseline after masking"
            ));
        }
    }
    println!("fleet smoke: cold pass routed to owners, byte-identical to baseline");

    // --- 2. Anti-entropy to replica parity. -------------------------
    let report = sync_pass(&router, replicas)?;
    println!(
        "fleet smoke: sync copied {} entries across {} nodes",
        report.copied, report.nodes
    );
    let violations = replica_parity(&router, replicas)?;
    if !violations.is_empty() {
        return Err(format!(
            "replica parity violated: {}",
            violations.join("; ")
        ));
    }

    // --- 3. Kill the owner of request 0; everything still answers. --
    let victim_addr = requests[0].1.clone();
    let victim = fleet
        .members()
        .iter()
        .find(|m| m.addr == victim_addr)
        .map(|m| m.spec.name.clone())
        .ok_or("victim not in member list")?;
    fleet.kill(&victim)?;
    println!("fleet smoke: killed {victim} ({victim_addr})");
    let mut failovers = 0usize;
    for (i, (line, _)) in requests.iter().enumerate() {
        let routed = router
            .dispatch(line)
            .map_err(|e| format!("dispatch with {victim} down: {e}"))?;
        failovers += routed.failovers;
        if masked(&routed.response) != baseline[i] {
            return Err(format!(
                "request {i}: failover response differs from baseline after masking"
            ));
        }
    }
    if failovers == 0 {
        return Err("owner killed yet no request failed over".into());
    }
    println!(
        "fleet smoke: all {} requests answered with {failovers} failovers",
        requests.len()
    );

    // --- 4. Restart the victim with a wiped store; anti-entropy ----
    // --- rebuilds it and it serves from store hits alone. -----------
    fleet.restart(&victim, true)?;
    let report = sync_pass(&router, replicas)?;
    println!(
        "fleet smoke: rejoined {victim} fresh, sync copied {} entries",
        report.copied
    );
    let violations = replica_parity(&router, replicas)?;
    if !violations.is_empty() {
        return Err(format!(
            "replica parity violated after rejoin: {}",
            violations.join("; ")
        ));
    }
    let manifest = fetch_manifest(&victim_addr)?;
    if manifest.is_empty() {
        return Err(format!("{victim} manifest still empty after anti-entropy"));
    }
    let (hits_before, misses_before) = store_counters(&victim_addr)?;
    for (i, (line, owner)) in requests.iter().enumerate() {
        if *owner != victim_addr {
            continue;
        }
        let response =
            roundtrip(victim_addr.as_str(), line).map_err(|e| format!("rejoined {victim}: {e}"))?;
        if masked(&response) != baseline[i] {
            return Err(format!(
                "request {i}: rejoined node answer differs from baseline after masking"
            ));
        }
    }
    let (hits_after, misses_after) = store_counters(&victim_addr)?;
    if hits_after <= hits_before {
        return Err(format!(
            "rejoined {victim} served its requests without store hits — replication did not warm it"
        ));
    }
    if misses_after != misses_before {
        return Err(format!(
            "rejoined {victim} took {} store misses — it ran searches instead of serving replicas",
            misses_after - misses_before
        ));
    }
    println!(
        "fleet smoke: rejoined {victim} answered purely from replicated entries ({} hits, 0 misses)",
        hits_after - hits_before
    );

    fleet.drain_all();
    solo.drain_all();
    println!("fleet smoke: PASS");
    Ok(())
}
