//! Spawning and supervising member daemons from a topology.
//!
//! The supervisor owns one `flexer-serve` child per topology node,
//! started with that node's RAM dials (`--store-capacity`,
//! `--workers`, `--queue`) and `--stdin-shutdown` on a held pipe — if
//! the supervisor dies, every member's stdin closes and the member
//! drains gracefully instead of leaking. Port-0 members report their
//! concrete port through a port file; the supervisor records the
//! resolved `host:port`, which is the node's ring identity from then
//! on (restarts re-bind the *same* address so the ring never drifts).

use crate::topology::{NodeSpec, Topology};
use flexer_serve::client::roundtrip;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// How long to wait for a member to write its port file.
const BOOT_TIMEOUT: Duration = Duration::from_secs(10);
/// Spawn attempts per member (re-binding a just-freed port can race
/// the kernel briefly).
const SPAWN_ATTEMPTS: u32 = 5;

/// One running member.
#[derive(Debug)]
pub struct Member {
    /// The topology entry this member was started from.
    pub spec: NodeSpec,
    /// The resolved `host:port` the member listens on — its ring
    /// identity.
    pub addr: String,
    child: Option<Child>,
}

impl Member {
    /// Whether the child process is still running.
    pub fn alive(&mut self) -> bool {
        match self.child.as_mut() {
            Some(child) => matches!(child.try_wait(), Ok(None)),
            None => false,
        }
    }
}

/// A running fleet of member daemons.
#[derive(Debug)]
pub struct Supervisor {
    members: Vec<Member>,
    serve_bin: PathBuf,
    run_dir: PathBuf,
}

fn wait_port(path: &Path) -> Result<u16, String> {
    let start = Instant::now();
    while start.elapsed() < BOOT_TIMEOUT {
        if let Ok(text) = fs::read_to_string(path) {
            if let Ok(port) = text.trim().parse::<u16>() {
                return Ok(port);
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    Err(format!(
        "no port file at {} after boot timeout",
        path.display()
    ))
}

fn spawn_member(
    serve_bin: &Path,
    spec: &NodeSpec,
    addr: &str,
    run_dir: &Path,
) -> Result<(Child, String), String> {
    let port_file = run_dir.join(format!("{}.port", spec.name));
    let log = run_dir.join(format!("{}.log", spec.name));
    let mut last = String::new();
    for attempt in 0..SPAWN_ATTEMPTS {
        if attempt > 0 {
            std::thread::sleep(Duration::from_millis(100 * u64::from(attempt)));
        }
        let _ = fs::remove_file(&port_file);
        let log_file =
            fs::File::create(&log).map_err(|e| format!("cannot create {}: {e}", log.display()))?;
        let err_file = log_file
            .try_clone()
            .map_err(|e| format!("cannot clone log handle: {e}"))?;
        let mut child = Command::new(serve_bin)
            .arg("--addr")
            .arg(addr)
            .arg("--port-file")
            .arg(&port_file)
            .arg("--store")
            .arg(&spec.store_dir)
            .arg("--store-capacity")
            .arg(spec.effective_store_capacity().to_string())
            .arg("--workers")
            .arg(spec.effective_workers().to_string())
            .arg("--queue")
            .arg(spec.effective_queue().to_string())
            .arg("--node-name")
            .arg(&spec.name)
            .arg("--stdin-shutdown")
            .stdin(Stdio::piped())
            .stdout(Stdio::from(log_file))
            .stderr(Stdio::from(err_file))
            .spawn()
            .map_err(|e| format!("cannot spawn {}: {e}", serve_bin.display()))?;
        match wait_port(&port_file) {
            Ok(port) => {
                let host = addr.rsplit_once(':').map_or("127.0.0.1", |(h, _)| h);
                return Ok((child, format!("{host}:{port}")));
            }
            Err(e) => {
                last = e;
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
    Err(format!(
        "member {:?} failed to boot on {addr}: {last}",
        spec.name
    ))
}

impl Supervisor {
    /// Spawns every topology member. `run_dir` holds port files and
    /// per-member logs; it is created if missing.
    ///
    /// # Errors
    ///
    /// The first member that fails to boot (already-started members
    /// are torn down).
    pub fn spawn(topology: &Topology, serve_bin: &Path, run_dir: &Path) -> Result<Self, String> {
        fs::create_dir_all(run_dir)
            .map_err(|e| format!("cannot create run dir {}: {e}", run_dir.display()))?;
        let mut sup = Self {
            members: Vec::with_capacity(topology.nodes.len()),
            serve_bin: serve_bin.to_path_buf(),
            run_dir: run_dir.to_path_buf(),
        };
        for spec in &topology.nodes {
            match spawn_member(serve_bin, spec, &spec.addr, run_dir) {
                Ok((child, addr)) => sup.members.push(Member {
                    spec: spec.clone(),
                    addr,
                    child: Some(child),
                }),
                Err(e) => {
                    sup.kill_all();
                    return Err(e);
                }
            }
        }
        Ok(sup)
    }

    /// The resolved member addresses, in topology order.
    #[must_use]
    pub fn addrs(&self) -> Vec<String> {
        self.members.iter().map(|m| m.addr.clone()).collect()
    }

    /// The members.
    #[must_use]
    pub fn members(&self) -> &[Member] {
        &self.members
    }

    /// The resolved address of the named member.
    #[must_use]
    pub fn addr_of(&self, name: &str) -> Option<&str> {
        self.members
            .iter()
            .find(|m| m.spec.name == name)
            .map(|m| m.addr.as_str())
    }

    fn member_mut(&mut self, name: &str) -> Result<&mut Member, String> {
        self.members
            .iter_mut()
            .find(|m| m.spec.name == name)
            .ok_or_else(|| format!("no member named {name:?}"))
    }

    /// Hard-kills one member (crash injection; no drain).
    ///
    /// # Errors
    ///
    /// Unknown member name.
    pub fn kill(&mut self, name: &str) -> Result<(), String> {
        let member = self.member_mut(name)?;
        if let Some(mut child) = member.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
        Ok(())
    }

    /// Restarts a (killed or crashed) member on its recorded address.
    /// `fresh_store` wipes the member's store directory first — the
    /// "new node joins with nothing" case anti-entropy then repairs.
    ///
    /// # Errors
    ///
    /// Unknown member, store wipe failure, or boot failure.
    pub fn restart(&mut self, name: &str, fresh_store: bool) -> Result<(), String> {
        let serve_bin = self.serve_bin.clone();
        let run_dir = self.run_dir.clone();
        let member = self.member_mut(name)?;
        if let Some(mut child) = member.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
        if fresh_store && member.spec.store_dir.exists() {
            fs::remove_dir_all(&member.spec.store_dir).map_err(|e| {
                format!("cannot wipe store {}: {e}", member.spec.store_dir.display())
            })?;
        }
        let (child, addr) = spawn_member(&serve_bin, &member.spec, &member.addr, &run_dir)?;
        debug_assert_eq!(addr, member.addr, "ring identity must not drift");
        member.addr = addr;
        member.child = Some(child);
        Ok(())
    }

    /// Respawns every member whose process has died (crash recovery in
    /// the supervise loop). Returns the names respawned.
    ///
    /// # Errors
    ///
    /// The first failed respawn.
    pub fn respawn_dead(&mut self) -> Result<Vec<String>, String> {
        let mut dead: Vec<String> = Vec::new();
        for member in &mut self.members {
            if !member.alive() {
                dead.push(member.spec.name.clone());
            }
        }
        for name in &dead {
            self.restart(name, false)?;
        }
        Ok(dead)
    }

    /// Gracefully drains one member (`shutdown` op, then reap).
    ///
    /// # Errors
    ///
    /// Unknown member name (an already-dead member is fine).
    pub fn drain(&mut self, name: &str) -> Result<(), String> {
        let member = self.member_mut(name)?;
        let _ = roundtrip(member.addr.as_str(), r#"{"op":"shutdown"}"#);
        if let Some(mut child) = member.child.take() {
            // The drain request closes the accept loop; give the child
            // a moment, then make sure it is gone.
            let start = Instant::now();
            while start.elapsed() < Duration::from_secs(5) {
                if !matches!(child.try_wait(), Ok(None)) {
                    return Ok(());
                }
                std::thread::sleep(Duration::from_millis(20));
            }
            let _ = child.kill();
            let _ = child.wait();
        }
        Ok(())
    }

    /// Drains every member and consumes the supervisor.
    pub fn drain_all(mut self) {
        let names: Vec<String> = self.members.iter().map(|m| m.spec.name.clone()).collect();
        for name in names {
            let _ = self.drain(&name);
        }
    }

    fn kill_all(&mut self) {
        for member in &mut self.members {
            if let Some(mut child) = member.child.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        // Leak nothing even on panic paths; a graceful caller used
        // drain_all (which emptied the child slots) already.
        self.kill_all();
    }
}
