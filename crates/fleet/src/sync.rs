//! Warm-store replication and anti-entropy over the NDJSON protocol.
//!
//! A sync pass is manifest-diff gossip: fetch every reachable member's
//! validated manifest (`store_manifest`), compute each entry's replica
//! set from the ring, and for every replica that lacks an entry, pull
//! the checksummed wire bytes from a holder (`store_pull`) and push
//! them to the replica (`store_push`), where they re-validate through
//! the same corrupt-miss pipeline a disk read uses.
//!
//! Replication is conflict-free by construction: entries are
//! content-addressed and the search is deterministic, so two stores
//! can only ever hold *byte-identical* bytes under the same
//! fingerprint. There is nothing to merge, no version to compare, no
//! last-writer-wins — anti-entropy is pure set union, which is why a
//! joining node can stream its ring-owned entries from its successors
//! and immediately serve them byte-identically.
//!
//! Pass shape: unreachable members are skipped (they catch up on the
//! next pass — gossip converges, it does not coordinate), and push
//! requests are chunked to stay far under the protocol's 1 MiB line
//! cap.

use crate::ring::HashRing;
use crate::router::{roundtrip_retrying, Router};
use flexer_serve::{hex_decode, hex_encode, Obj};
use flexer_store::Fingerprint;
use flexer_trace::json::{parse as parse_json, Json};
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::time::Duration;

/// Fingerprints per `store_pull` request.
const PULL_BATCH: usize = 16;
/// Byte budget of hex payload per `store_push` request line — far
/// under [`flexer_serve::MAX_LINE_BYTES`] so framing overhead never
/// tips a request over the cap.
const PUSH_BUDGET: usize = 256 * 1024;
/// Transport attempts per replication request.
const ATTEMPTS: u32 = 3;
/// Base backoff between replication retries.
const BACKOFF: Duration = Duration::from_millis(25);

/// One row of a member's manifest, as fetched over the wire.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ManifestRow {
    /// The entry's content address.
    pub fingerprint: Fingerprint,
    /// On-disk entry size (header + payload).
    pub len: u64,
    /// Payload checksum from the entry header.
    pub checksum: u64,
}

/// What one anti-entropy pass did.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SyncReport {
    /// Members whose manifest was fetched.
    pub nodes: usize,
    /// Distinct fingerprints seen across the fleet.
    pub entries: usize,
    /// Entries newly written to an under-replicated member.
    pub copied: u64,
    /// Entries a destination already had (raced a concurrent pass).
    pub existing: u64,
    /// Entries a destination rejected as invalid — damage that was
    /// caught, not replicated.
    pub rejected: u64,
    /// Entries whose holder could no longer export them (evicted or
    /// quarantined between manifest and pull).
    pub vanished: u64,
    /// Members that could not be reached this pass.
    pub unreachable: Vec<String>,
}

fn rt(addr: &str, line: &str) -> io::Result<String> {
    roundtrip_retrying(addr, line, ATTEMPTS, BACKOFF).map(|(response, _)| response)
}

fn parse_ok(addr: &str, response: &str) -> Result<Json, String> {
    let json = parse_json(response).map_err(|e| {
        format!(
            "{addr}: unparseable response: {} at {}",
            e.message, e.offset
        )
    })?;
    match json.get("ok") {
        Some(Json::Bool(true)) => Ok(json),
        _ => {
            let code = json
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unknown");
            let msg = json.get("message").and_then(Json::as_str).unwrap_or("");
            Err(format!("{addr}: server error {code}: {msg}"))
        }
    }
}

fn row_u64(row: &Json, key: &str, addr: &str) -> Result<u64, String> {
    row.get(key)
        .and_then(Json::as_num)
        .filter(|n| n.is_finite() && *n >= 0.0)
        .map(|n| n as u64)
        .ok_or_else(|| format!("{addr}: manifest row without {key}"))
}

/// Fetches one member's validated manifest, sorted by fingerprint.
///
/// # Errors
///
/// A transport failure (after retries) or a malformed/typed-error
/// response, as a human-readable message naming the member.
pub fn fetch_manifest(addr: &str) -> Result<Vec<ManifestRow>, String> {
    let response = rt(addr, r#"{"op":"store_manifest"}"#).map_err(|e| format!("{addr}: {e}"))?;
    let json = parse_ok(addr, &response)?;
    let rows = json
        .get("entries")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{addr}: manifest response without entries"))?;
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        let fp = row
            .get("fingerprint")
            .and_then(Json::as_str)
            .and_then(Fingerprint::from_hex)
            .ok_or_else(|| format!("{addr}: manifest row with a bad fingerprint"))?;
        out.push(ManifestRow {
            fingerprint: fp,
            len: row_u64(row, "len", addr)?,
            checksum: row_u64(row, "checksum", addr)?,
        });
    }
    out.sort();
    Ok(out)
}

/// Pulls `fps` from `holder` as `(fingerprint, entry bytes)` pairs;
/// fingerprints the holder reported missing are simply absent from the
/// result.
fn pull_entries(holder: &str, fps: &[Fingerprint]) -> Result<Vec<(Fingerprint, Vec<u8>)>, String> {
    let mut out = Vec::with_capacity(fps.len());
    for batch in fps.chunks(PULL_BATCH) {
        let mut list = String::from("[");
        for (i, fp) in batch.iter().enumerate() {
            if i > 0 {
                list.push(',');
            }
            list.push_str(&format!(r#""{}""#, fp.hex()));
        }
        list.push(']');
        let mut o = Obj::new();
        o.str("op", "store_pull").raw("fingerprints", &list);
        let response = rt(holder, &o.finish()).map_err(|e| format!("{holder}: {e}"))?;
        let json = parse_ok(holder, &response)?;
        let rows = json
            .get("entries")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("{holder}: pull response without entries"))?;
        for row in rows {
            let fp = row
                .get("fingerprint")
                .and_then(Json::as_str)
                .and_then(Fingerprint::from_hex)
                .ok_or_else(|| format!("{holder}: pulled row with a bad fingerprint"))?;
            let bytes = row
                .get("bytes")
                .and_then(Json::as_str)
                .and_then(hex_decode)
                .ok_or_else(|| format!("{holder}: pulled row with bad bytes"))?;
            out.push((fp, bytes));
        }
    }
    Ok(out)
}

/// Pushes entries to `target` in line-cap-respecting chunks; returns
/// `(stored, existing, rejected)` totals.
fn push_entries(
    target: &str,
    entries: &[(Fingerprint, Vec<u8>)],
) -> Result<(u64, u64, u64), String> {
    let mut totals = (0u64, 0u64, 0u64);
    let mut i = 0;
    while i < entries.len() {
        let mut list = String::from("[");
        let mut spent = 0usize;
        let mut n = 0usize;
        while i + n < entries.len() && (n == 0 || spent < PUSH_BUDGET) {
            let (fp, bytes) = &entries[i + n];
            if n > 0 {
                list.push(',');
            }
            list.push_str(&format!(
                r#"{{"fingerprint":"{}","bytes":"{}"}}"#,
                fp.hex(),
                hex_encode(bytes)
            ));
            spent += bytes.len() * 2;
            n += 1;
        }
        list.push(']');
        i += n;
        let mut o = Obj::new();
        o.str("op", "store_push").raw("entries", &list);
        let response = rt(target, &o.finish()).map_err(|e| format!("{target}: {e}"))?;
        let json = parse_ok(target, &response)?;
        totals.0 += row_u64(&json, "stored", target)?;
        totals.1 += row_u64(&json, "existing", target)?;
        totals.2 += row_u64(&json, "rejected", target)?;
    }
    Ok(totals)
}

/// Runs one anti-entropy pass over the router's members: every entry
/// ends up on the first `replicas` live nodes of its ring-successor
/// list. Safe to run concurrently with serving traffic and with other
/// passes — pure set union converges no matter the interleaving.
///
/// # Errors
///
/// A malformed response from a reachable member. Unreachable members
/// are not an error (they are reported in the
/// [`SyncReport::unreachable`] list); a pass with zero reachable
/// members is.
pub fn sync_pass(router: &Router, replicas: usize) -> Result<SyncReport, String> {
    let mut report = SyncReport::default();
    let replicas = replicas.max(1);
    // 1. Gossip in: every reachable member's manifest.
    let mut holdings: BTreeMap<Fingerprint, (u64, u64, Vec<String>)> = BTreeMap::new();
    let mut reachable: Vec<String> = Vec::new();
    for addr in router.addrs() {
        match fetch_manifest(addr) {
            Ok(rows) => {
                for row in rows {
                    let slot = holdings.entry(row.fingerprint).or_insert((
                        row.len,
                        row.checksum,
                        Vec::new(),
                    ));
                    slot.2.push(addr.clone());
                }
                reachable.push(addr.clone());
            }
            Err(_) => report.unreachable.push(addr.clone()),
        }
    }
    if reachable.is_empty() {
        return Err("no fleet member reachable for anti-entropy".into());
    }
    report.nodes = reachable.len();
    report.entries = holdings.len();
    // 2. Diff: which live replica of each entry is missing it, and who
    // can supply it. Work is grouped by (holder, target) so pulls and
    // pushes batch naturally.
    let ring: &HashRing = router.ring();
    let mut moves: BTreeMap<(String, String), Vec<Fingerprint>> = BTreeMap::new();
    for (fp, (_, _, holders)) in &holdings {
        let Some(holder) = holders.iter().find(|h| reachable.contains(h)) else {
            continue;
        };
        for target in ring.successors(*fp, replicas) {
            if !reachable.iter().any(|a| a == target) {
                continue;
            }
            if holders.iter().any(|h| h == target) {
                continue;
            }
            moves
                .entry((holder.clone(), target.to_string()))
                .or_default()
                .push(*fp);
        }
    }
    // 3. Stream: pull from the holder, push to the replica.
    for ((holder, target), fps) in moves {
        let entries = pull_entries(&holder, &fps)?;
        report.vanished += (fps.len() - entries.len()) as u64;
        if entries.is_empty() {
            continue;
        }
        let (stored, existing, rejected) = push_entries(&target, &entries)?;
        report.copied += stored;
        report.existing += existing;
        report.rejected += rejected;
    }
    Ok(report)
}

/// Checks replica parity: every entry anyone holds must be present —
/// with the same length and checksum — on each of the first `replicas`
/// reachable nodes of its successor list. Returns the violations
/// (empty = parity).
///
/// # Errors
///
/// A malformed response from a reachable member.
pub fn replica_parity(router: &Router, replicas: usize) -> Result<Vec<String>, String> {
    let mut by_node: BTreeMap<String, BTreeMap<Fingerprint, (u64, u64)>> = BTreeMap::new();
    let mut all: BTreeMap<Fingerprint, (u64, u64)> = BTreeMap::new();
    let mut reachable: BTreeSet<String> = BTreeSet::new();
    for addr in router.addrs() {
        let Ok(rows) = fetch_manifest(addr) else {
            continue;
        };
        reachable.insert(addr.clone());
        let map: BTreeMap<Fingerprint, (u64, u64)> = rows
            .into_iter()
            .map(|r| (r.fingerprint, (r.len, r.checksum)))
            .collect();
        for (fp, meta) in &map {
            if let Some(have) = all.get(fp) {
                if have != meta {
                    return Err(format!(
                        "conflicting manifests for {}: {:?} vs {:?} — content addressing broken",
                        fp.hex(),
                        have,
                        meta
                    ));
                }
            }
            all.insert(*fp, *meta);
        }
        by_node.insert(addr.clone(), map);
    }
    let mut violations = Vec::new();
    for (fp, meta) in &all {
        for target in router.ring().successors(*fp, replicas.max(1)) {
            if !reachable.contains(target) {
                continue;
            }
            match by_node.get(target).and_then(|m| m.get(fp)) {
                Some(have) if have == meta => {}
                Some(_) => violations.push(format!(
                    "{}: replica {target} holds different bytes",
                    fp.hex()
                )),
                None => violations.push(format!("{}: missing on replica {target}", fp.hex())),
            }
        }
    }
    Ok(violations)
}
