//! Fleet topology files: which daemons exist, where they listen, and
//! how much RAM each may spend.
//!
//! A topology is a small TOML or JSON document (the format is sniffed
//! from the first non-whitespace byte, so no extension convention is
//! required). The TOML dialect is the obvious subset — top-level
//! `key = value` pairs plus `[[node]]` tables with string/integer
//! values, full-line `#` comments — deliberately tiny so the repo
//! stays dependency-free.
//!
//! ```toml
//! # ring + replication parameters (all optional)
//! vnodes = 64
//! replicas = 2
//!
//! [[node]]
//! name = "n1"
//! addr = "127.0.0.1:7001"
//! store_dir = "/var/lib/flexer/n1"
//! role = "leader"
//!
//! [[node]]
//! name = "n2"
//! addr = "127.0.0.1:7002"
//! store_dir = "/var/lib/flexer/n2"
//! role = "follower"
//! store_capacity = 67108864
//! workers = 2
//! ```
//!
//! The equivalent JSON is `{"vnodes":64,"replicas":2,"nodes":[{…}]}`.
//!
//! Roles are *memory dials*, not a consensus protocol: a leader
//! defaults to a big store and a wide worker pool, a follower to a
//! small LRU-bounded store and a narrow pool, and every explicit
//! `store_capacity`/`workers`/`queue` overrides its role's default.
//! Content-addressed entries make any replica's answer byte-identical,
//! so a follower that evicted an entry simply recomputes or fails over
//! — degradation, never divergence.

use crate::ring::{HashRing, DEFAULT_SEED, DEFAULT_VNODES};
use flexer_store::DEFAULT_CAPACITY_BYTES;
use flexer_trace::json::{parse as parse_json, Json};
use std::path::{Path, PathBuf};

/// A fleet member's memory role — a preset for the RAM dials.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Role {
    /// Big store, wide worker pool: the node peers shed to.
    Leader,
    /// Small LRU-bounded store, narrow pool. The default.
    #[default]
    Follower,
}

impl Role {
    /// The wire/topology name.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            Role::Leader => "leader",
            Role::Follower => "follower",
        }
    }
}

/// One member daemon of the fleet.
#[derive(Debug, Clone)]
pub struct NodeSpec {
    /// Human-readable member name (unique; used for logs, `--node-name`
    /// and per-node directories).
    pub name: String,
    /// Listen address, `host:port`. Port `0` lets the daemon pick; the
    /// supervisor then learns the concrete port from the port file.
    pub addr: String,
    /// Persistent store directory for this member.
    pub store_dir: PathBuf,
    /// Memory role selecting the default RAM dials.
    pub role: Role,
    /// Explicit store capacity in bytes (overrides the role default;
    /// `0` = unbounded).
    pub store_capacity: Option<u64>,
    /// Explicit worker-pool size (overrides the role default).
    pub workers: Option<usize>,
    /// Explicit accept-queue depth (overrides the role default).
    pub queue: Option<usize>,
}

impl NodeSpec {
    /// The store capacity this node runs with: explicit dial, else the
    /// role default (leaders get the full default store, followers a
    /// quarter of it).
    #[must_use]
    pub fn effective_store_capacity(&self) -> u64 {
        self.store_capacity.unwrap_or(match self.role {
            Role::Leader => DEFAULT_CAPACITY_BYTES,
            Role::Follower => DEFAULT_CAPACITY_BYTES / 4,
        })
    }

    /// The worker-pool size this node runs with.
    #[must_use]
    pub fn effective_workers(&self) -> usize {
        self.workers.unwrap_or(match self.role {
            Role::Leader => 8,
            Role::Follower => 2,
        })
    }

    /// The accept-queue depth this node runs with.
    #[must_use]
    pub fn effective_queue(&self) -> usize {
        self.queue.unwrap_or(match self.role {
            Role::Leader => 32,
            Role::Follower => 16,
        })
    }
}

/// A parsed, validated fleet topology.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Virtual points per node on the consistent-hash ring.
    pub vnodes: usize,
    /// Ring hash seed (must match the routing clients').
    pub seed: u64,
    /// Entry replication factor for anti-entropy (clamped to the fleet
    /// size when larger).
    pub replicas: usize,
    /// The member daemons.
    pub nodes: Vec<NodeSpec>,
}

impl Topology {
    /// Parses a TOML-subset or JSON topology document.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending line or member.
    pub fn parse(text: &str) -> Result<Self, String> {
        let topo = if text.trim_start().starts_with('{') {
            Self::parse_json_doc(text)?
        } else {
            Self::parse_toml_subset(text)?
        };
        topo.validate()?;
        Ok(topo)
    }

    /// Reads and parses a topology file.
    ///
    /// # Errors
    ///
    /// The read failure or the parse failure, with the path named.
    pub fn from_file(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read topology {}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// The ring this topology induces over the given concrete member
    /// addresses (the supervisor passes resolved addresses once
    /// port-0 members have bound).
    #[must_use]
    pub fn ring_over<S: AsRef<str>>(&self, addrs: &[S]) -> HashRing {
        HashRing::with_params(addrs, self.vnodes, self.seed)
    }

    /// The replication factor bounded by the fleet size.
    #[must_use]
    pub fn effective_replicas(&self) -> usize {
        self.replicas.clamp(1, self.nodes.len().max(1))
    }

    fn validate(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("topology has no [[node]] entries".into());
        }
        if self.vnodes == 0 {
            return Err("vnodes must be at least 1".into());
        }
        if self.replicas == 0 {
            return Err("replicas must be at least 1".into());
        }
        for (i, node) in self.nodes.iter().enumerate() {
            if node.name.is_empty() {
                return Err(format!("node[{i}] has an empty name"));
            }
            if !node.addr.contains(':') {
                return Err(format!(
                    "node {:?} addr {:?} is not host:port",
                    node.name, node.addr
                ));
            }
            if node.store_dir.as_os_str().is_empty() {
                return Err(format!("node {:?} has an empty store_dir", node.name));
            }
            for other in &self.nodes[..i] {
                if other.name == node.name {
                    return Err(format!("duplicate node name {:?}", node.name));
                }
                if other.addr == node.addr {
                    return Err(format!("duplicate node addr {:?}", node.addr));
                }
                if other.store_dir == node.store_dir {
                    return Err(format!(
                        "nodes {:?} and {:?} share store_dir {}",
                        other.name,
                        node.name,
                        node.store_dir.display()
                    ));
                }
            }
        }
        Ok(())
    }

    fn parse_json_doc(text: &str) -> Result<Self, String> {
        let doc = parse_json(text).map_err(|e| format!("{} at byte {}", e.message, e.offset))?;
        let num = |j: &Json, what: &str| -> Result<u64, String> {
            let n = j
                .as_num()
                .ok_or_else(|| format!("{what} must be a number"))?;
            if n.is_finite() && n >= 0.0 && n.fract() == 0.0 {
                Ok(n as u64)
            } else {
                Err(format!("{what} must be a non-negative integer"))
            }
        };
        let mut topo = Self::empty();
        if let Some(j) = doc.get("vnodes") {
            topo.vnodes = num(j, "vnodes")? as usize;
        }
        if let Some(j) = doc.get("seed") {
            topo.seed = num(j, "seed")?;
        }
        if let Some(j) = doc.get("replicas") {
            topo.replicas = num(j, "replicas")? as usize;
        }
        let nodes = doc
            .get("nodes")
            .and_then(Json::as_array)
            .ok_or_else(|| "topology needs a \"nodes\" array".to_string())?;
        for (i, n) in nodes.iter().enumerate() {
            let s = |key: &str| -> Result<String, String> {
                n.get(key)
                    .and_then(Json::as_str)
                    .map(str::to_owned)
                    .ok_or_else(|| format!("nodes[{i}] needs a string {key:?}"))
            };
            let mut spec = NodeSpec {
                name: s("name")?,
                addr: s("addr")?,
                store_dir: PathBuf::from(s("store_dir")?),
                role: Role::default(),
                store_capacity: None,
                workers: None,
                queue: None,
            };
            if let Some(j) = n.get("role") {
                spec.role = role_from(
                    j.as_str()
                        .ok_or_else(|| format!("nodes[{i}].role must be a string"))?,
                )?;
            }
            if let Some(j) = n.get("store_capacity") {
                spec.store_capacity = Some(num(j, "store_capacity")?);
            }
            if let Some(j) = n.get("workers") {
                spec.workers = Some(num(j, "workers")? as usize);
            }
            if let Some(j) = n.get("queue") {
                spec.queue = Some(num(j, "queue")? as usize);
            }
            topo.nodes.push(spec);
        }
        Ok(topo)
    }

    fn parse_toml_subset(text: &str) -> Result<Self, String> {
        let mut topo = Self::empty();
        let mut in_node = false;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let at = |msg: String| format!("line {}: {msg}", lineno + 1);
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[node]]" {
                topo.nodes.push(NodeSpec {
                    name: String::new(),
                    addr: String::new(),
                    store_dir: PathBuf::new(),
                    role: Role::default(),
                    store_capacity: None,
                    workers: None,
                    queue: None,
                });
                in_node = true;
                continue;
            }
            if line.starts_with('[') {
                return Err(at(format!(
                    "unsupported table {line:?} (only [[node]] exists)"
                )));
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| at(format!("expected key = value, got {line:?}")))?;
            let key = key.trim();
            let value = value.trim();
            let string = || -> Result<String, String> {
                let inner = value
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .ok_or_else(|| at(format!("{key} must be a quoted string")))?;
                if inner.contains(['"', '\\']) {
                    return Err(at(format!("{key}: escapes are not supported")));
                }
                Ok(inner.to_string())
            };
            let int = || -> Result<u64, String> {
                value.parse::<u64>().map_err(|e| at(format!("{key}: {e}")))
            };
            if !in_node {
                match key {
                    "vnodes" => topo.vnodes = int()? as usize,
                    "seed" => topo.seed = int()?,
                    "replicas" => topo.replicas = int()? as usize,
                    other => return Err(at(format!("unknown fleet key {other:?}"))),
                }
                continue;
            }
            let node = topo.nodes.last_mut().expect("in_node implies a node");
            match key {
                "name" => node.name = string()?,
                "addr" => node.addr = string()?,
                "store_dir" => node.store_dir = PathBuf::from(string()?),
                "role" => node.role = role_from(&string()?).map_err(at)?,
                "store_capacity" => node.store_capacity = Some(int()?),
                "workers" => node.workers = Some(int()? as usize),
                "queue" => node.queue = Some(int()? as usize),
                other => return Err(at(format!("unknown node key {other:?}"))),
            }
        }
        Ok(topo)
    }

    fn empty() -> Self {
        Self {
            vnodes: DEFAULT_VNODES,
            seed: DEFAULT_SEED,
            replicas: 2,
            nodes: Vec::new(),
        }
    }
}

fn role_from(s: &str) -> Result<Role, String> {
    match s {
        "leader" => Ok(Role::Leader),
        "follower" => Ok(Role::Follower),
        other => Err(format!(
            "unknown role {other:?} (expected \"leader\" or \"follower\")"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOML: &str = r#"
# three-member quickstart
replicas = 2

[[node]]
name = "n1"
addr = "127.0.0.1:7001"
store_dir = "/tmp/fleet/n1"
role = "leader"

[[node]]
name = "n2"
addr = "127.0.0.1:7002"
store_dir = "/tmp/fleet/n2"
workers = 3

[[node]]
name = "n3"
addr = "127.0.0.1:7003"
store_dir = "/tmp/fleet/n3"
store_capacity = 1048576
"#;

    #[test]
    fn toml_subset_parses_with_role_defaults() {
        let topo = Topology::parse(TOML).unwrap();
        assert_eq!(topo.vnodes, DEFAULT_VNODES);
        assert_eq!(topo.seed, DEFAULT_SEED);
        assert_eq!(topo.replicas, 2);
        assert_eq!(topo.nodes.len(), 3);
        let n1 = &topo.nodes[0];
        assert_eq!((n1.name.as_str(), n1.role), ("n1", Role::Leader));
        assert_eq!(n1.effective_store_capacity(), DEFAULT_CAPACITY_BYTES);
        assert_eq!((n1.effective_workers(), n1.effective_queue()), (8, 32));
        let n2 = &topo.nodes[1];
        assert_eq!(n2.role, Role::Follower, "role defaults to follower");
        assert_eq!(n2.effective_workers(), 3, "explicit dial wins");
        assert_eq!(n2.effective_store_capacity(), DEFAULT_CAPACITY_BYTES / 4);
        assert_eq!(topo.nodes[2].effective_store_capacity(), 1048576);
    }

    #[test]
    fn json_parses_equivalently() {
        let json = r#"{"replicas":2,"nodes":[
            {"name":"n1","addr":"127.0.0.1:7001","store_dir":"/tmp/fleet/n1","role":"leader"},
            {"name":"n2","addr":"127.0.0.1:7002","store_dir":"/tmp/fleet/n2","workers":3},
            {"name":"n3","addr":"127.0.0.1:7003","store_dir":"/tmp/fleet/n3","store_capacity":1048576}
        ]}"#;
        let a = Topology::parse(TOML).unwrap();
        let b = Topology::parse(json).unwrap();
        assert_eq!(a.nodes.len(), b.nodes.len());
        for (x, y) in a.nodes.iter().zip(&b.nodes) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.addr, y.addr);
            assert_eq!(x.role, y.role);
            assert_eq!(x.effective_store_capacity(), y.effective_store_capacity());
            assert_eq!(x.effective_workers(), y.effective_workers());
        }
    }

    #[test]
    fn validation_rejects_broken_topologies() {
        for (doc, needle) in [
            ("", "no [[node]]"),
            ("[[node]]\nname = \"a\"\naddr = \"x\"\nstore_dir = \"/tmp/a\"", "host:port"),
            (
                "[[node]]\nname = \"a\"\naddr = \"h:1\"\nstore_dir = \"/tmp/a\"\n[[node]]\nname = \"a\"\naddr = \"h:2\"\nstore_dir = \"/tmp/b\"",
                "duplicate node name",
            ),
            (
                "[[node]]\nname = \"a\"\naddr = \"h:1\"\nstore_dir = \"/tmp/a\"\n[[node]]\nname = \"b\"\naddr = \"h:1\"\nstore_dir = \"/tmp/b\"",
                "duplicate node addr",
            ),
            (
                "[[node]]\nname = \"a\"\naddr = \"h:1\"\nstore_dir = \"/tmp/s\"\n[[node]]\nname = \"b\"\naddr = \"h:2\"\nstore_dir = \"/tmp/s\"",
                "share store_dir",
            ),
            ("replicas = 0\n[[node]]\nname = \"a\"\naddr = \"h:1\"\nstore_dir = \"/tmp/a\"", "replicas"),
            ("bogus = 1", "unknown fleet key"),
            ("[[node]]\nrole = \"king\"\nname = \"a\"\naddr = \"h:1\"\nstore_dir = \"/t\"", "unknown role"),
            ("[table]", "unsupported table"),
            ("just words", "key = value"),
        ] {
            let err = Topology::parse(doc).unwrap_err();
            assert!(err.contains(needle), "doc {doc:?} → {err}");
        }
    }

    #[test]
    fn ring_over_respects_topology_params() {
        let mut topo = Topology::parse(TOML).unwrap();
        topo.vnodes = 8;
        topo.seed = 42;
        let addrs = ["127.0.0.1:9001", "127.0.0.1:9002"];
        let ring = topo.ring_over(&addrs);
        let manual = HashRing::with_params(&addrs, 8, 42);
        for k in 0..64u128 {
            assert_eq!(ring.owner_of(k), manual.owner_of(k));
        }
        assert_eq!(topo.effective_replicas(), 2);
        topo.replicas = 99;
        assert_eq!(topo.effective_replicas(), 3, "clamped to fleet size");
    }
}
