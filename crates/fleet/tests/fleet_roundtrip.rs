//! In-process three-node fleet: fingerprint routing, anti-entropy to
//! replica parity, and byte-identical answers from every replica.

use flexer_fleet::{replica_parity, route_fingerprint, sync_pass, Router};
use flexer_serve::client::roundtrip;
use flexer_serve::{mask_provenance, parse_request, request_shutdown, Server, ServerConfig};
use std::net::SocketAddr;
use std::path::PathBuf;

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("flexer-fleet-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Boots `n` in-process members with stores under `scratch`; returns
/// their addresses and the join handles that finish on shutdown.
fn boot(scratch: &Scratch, n: usize) -> (Vec<SocketAddr>, Vec<std::thread::JoinHandle<()>>) {
    let mut addrs = Vec::new();
    let mut joins = Vec::new();
    for i in 0..n {
        let server = Server::bind(ServerConfig {
            store_dir: Some(scratch.0.join(format!("n{i}-store"))),
            workers: 2,
            queue: 8,
            node_name: Some(format!("n{i}")),
            ..ServerConfig::default()
        })
        .unwrap();
        addrs.push(server.local_addr());
        joins.push(std::thread::spawn(move || server.run().unwrap()));
    }
    (addrs, joins)
}

fn schedule_line(channels: usize) -> String {
    format!(
        r#"{{"op":"schedule","layers":[{{"in_channels":{channels},"height":14,"width":14,"out_channels":{channels}}}]}}"#
    )
}

#[test]
fn routed_fleet_replicates_and_answers_byte_identically() {
    let scratch = Scratch::new("roundtrip");
    let (addrs, joins) = boot(&scratch, 3);
    let members: Vec<String> = addrs.iter().map(ToString::to_string).collect();
    let router = Router::new(&members).retries(1);

    // Cold pass: every request lands on its ring owner.
    let lines: Vec<String> = (0..6).map(|i| schedule_line(4 + 2 * i)).collect();
    let mut cold: Vec<(String, String)> = Vec::new();
    for line in &lines {
        let routed = router.dispatch(line).unwrap();
        let req = parse_request(line).unwrap();
        let owner = router
            .ring()
            .owner(route_fingerprint(&req).unwrap())
            .unwrap();
        assert_eq!(routed.node, owner, "request routed to its ring owner");
        assert_eq!(routed.failovers, 0, "all members alive, no failover");
        cold.push((line.clone(), mask_provenance(&routed.response)));
    }

    // Anti-entropy: every entry reaches its 2-replica set, verified by
    // parity, and the fleet holds exactly the entries it computed.
    let report = sync_pass(&router, 2).unwrap();
    assert!(report.unreachable.is_empty());
    assert_eq!(report.entries, lines.len(), "one store entry per shape");
    assert!(report.copied >= 1, "at least one entry needed a replica");
    assert_eq!(report.rejected, 0, "healthy entries are never rejected");
    assert!(replica_parity(&router, 2).unwrap().is_empty());

    // Any replica answers byte-identically (masked) — ask every member
    // directly, not through the router.
    for (line, want) in &cold {
        for member in &members {
            let response = roundtrip(member.as_str(), line).unwrap();
            assert_eq!(
                &mask_provenance(&response),
                want,
                "{member} diverged on {line}"
            );
        }
    }

    for addr in &addrs {
        request_shutdown(*addr).unwrap();
    }
    for join in joins {
        join.join().unwrap();
    }
}
