//! Convolution layer specifications.

use crate::tensor::{ElementSize, TensorShape};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Error returned when a [`ConvLayer`] specification is inconsistent.
///
/// # Examples
///
/// ```
/// use flexer_model::ConvLayerBuilder;
///
/// // A 7x7 kernel cannot slide over a padded 3x3 input.
/// let err = ConvLayerBuilder::new("bad", 3, 3, 3, 8)
///     .kernel(7, 7)
///     .build()
///     .unwrap_err();
/// assert!(err.to_string().contains("kernel"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerSpecError {
    message: String,
}

impl LayerSpecError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for LayerSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid layer specification: {}", self.message)
    }
}

impl Error for LayerSpecError {}

/// The operator kind a [`ConvLayer`] describes.
///
/// Every kind lowers to the same tiled datapath — tiles of inputs,
/// weights and outputs moved between DRAM and the shared SPM, consumed
/// by tiled MAC operations — but the kinds differ in how much of the
/// weight tensor each output channel touches:
///
/// * [`Dense`](LayerKind::Dense): ordinary convolution; every output
///   channel reads every input channel (`K x C x R x S` weights).
/// * [`Matmul`](LayerKind::Matmul): an `M x K x N` matrix multiply
///   expressed as a 1x1 pointwise convolution over an `M x 1` spatial
///   extent. Arithmetically identical to a dense pointwise conv — the
///   kind is a semantic tag (transformer FC/QKV projections) and
///   deliberately shares cached schedules with the equivalent conv.
/// * [`Grouped`](LayerKind::Grouped): grouped/depthwise convolution;
///   input and output channels are split into `groups` disjoint
///   groups and channels only interact within their group
///   (`K x C/G x R x S` weights). Depthwise is the `G == C == K`
///   special case.
///
/// # Examples
///
/// ```
/// use flexer_model::{ConvLayer, LayerKind};
///
/// let dw = ConvLayer::depthwise("dw", 32, 14, 14, 1, 1).unwrap();
/// assert_eq!(dw.kind(), LayerKind::Grouped { groups: 32 });
/// assert_eq!(dw.groups(), 32);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// Ordinary dense convolution (the default; pre-kind layer specs
    /// deserialize as dense).
    #[default]
    Dense,
    /// Matrix multiply lowered as a pointwise convolution.
    Matmul,
    /// Grouped convolution with `groups` disjoint channel groups.
    Grouped {
        /// Number of channel groups (`G`); depthwise when `G == C == K`.
        groups: u32,
    },
}

impl LayerKind {
    /// Number of channel groups: 1 for dense/matmul, `G` for grouped.
    #[must_use]
    pub const fn groups(self) -> u32 {
        match self {
            Self::Dense | Self::Matmul => 1,
            Self::Grouped { groups } => groups,
        }
    }

    /// Whether the kind restricts channel interaction to groups.
    #[must_use]
    pub const fn is_grouped(self) -> bool {
        matches!(self, Self::Grouped { .. })
    }
}

impl fmt::Display for LayerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Dense => write!(f, "dense"),
            Self::Matmul => write!(f, "matmul"),
            Self::Grouped { groups } => write!(f, "grouped/{groups}"),
        }
    }
}

/// Hyper-parameters of a 2-D convolution layer.
///
/// This is the unit of work Flexer schedules: the layer is later split
/// into data tiles (`tIN`, `tWT`, `tOT` in the paper's Figure 3) and a
/// data-flow graph of tiled convolutions by the `flexer-tiling` crate.
///
/// Construct instances with [`ConvLayer::new`] for the common 3x3 case
/// or with [`ConvLayerBuilder`] for full control.
///
/// # Examples
///
/// ```
/// use flexer_model::{ConvLayer, ElementSize};
///
/// let layer = ConvLayer::new("conv4_2", 512, 28, 28, 512)?;
/// assert_eq!(layer.out_height(), 28);
/// assert_eq!(layer.macs(), 512u64 * 512 * 28 * 28 * 9);
/// # Ok::<(), flexer_model::LayerSpecError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvLayer {
    name: String,
    in_channels: u32,
    in_height: u32,
    in_width: u32,
    out_channels: u32,
    kernel_h: u32,
    kernel_w: u32,
    stride: u32,
    padding: u32,
    #[serde(default)]
    kind: LayerKind,
}

impl ConvLayer {
    /// Creates a 3x3, stride-1, padding-1 ("same") convolution — the most
    /// common layer geometry in the evaluated networks.
    ///
    /// # Errors
    ///
    /// Returns [`LayerSpecError`] if the specification is degenerate
    /// (any zero dimension).
    pub fn new(
        name: impl Into<String>,
        in_channels: u32,
        in_height: u32,
        in_width: u32,
        out_channels: u32,
    ) -> Result<Self, LayerSpecError> {
        ConvLayerBuilder::new(name, in_channels, in_height, in_width, out_channels)
            .kernel(3, 3)
            .padding(1)
            .build()
    }

    /// Creates an `M x K x N` matrix multiply lowered onto the tiled
    /// conv datapath: `K` input channels, an `M x 1` spatial extent,
    /// `N` output channels and a 1x1 kernel. The activations play the
    /// `M x K` operand, the weights the `K x N` operand.
    ///
    /// # Errors
    ///
    /// Returns [`LayerSpecError`] if any of `m`, `k`, `n` is zero.
    pub fn matmul(name: impl Into<String>, m: u32, k: u32, n: u32) -> Result<Self, LayerSpecError> {
        let mut layer = ConvLayerBuilder::new(name, k, m, 1, n).build()?;
        layer.kind = LayerKind::Matmul;
        Ok(layer)
    }

    /// Creates a depthwise convolution: one group per channel
    /// (`G == C == K == channels`), so each output channel reads only
    /// its own input channel.
    ///
    /// # Errors
    ///
    /// Returns [`LayerSpecError`] if the specification is degenerate.
    pub fn depthwise(
        name: impl Into<String>,
        channels: u32,
        in_height: u32,
        in_width: u32,
        stride: u32,
        padding: u32,
    ) -> Result<Self, LayerSpecError> {
        ConvLayerBuilder::new(name, channels, in_height, in_width, channels)
            .kernel(3, 3)
            .stride(stride)
            .padding(padding)
            .groups(channels)
            .build()
    }

    /// Layer name (e.g. `"conv4_2"`), unique within a network.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of input channels (`C`).
    #[must_use]
    pub const fn in_channels(&self) -> u32 {
        self.in_channels
    }

    /// Input spatial height (`H`).
    #[must_use]
    pub const fn in_height(&self) -> u32 {
        self.in_height
    }

    /// Input spatial width (`W`).
    #[must_use]
    pub const fn in_width(&self) -> u32 {
        self.in_width
    }

    /// Number of output channels (`K`).
    #[must_use]
    pub const fn out_channels(&self) -> u32 {
        self.out_channels
    }

    /// Kernel height (`R`).
    #[must_use]
    pub const fn kernel_h(&self) -> u32 {
        self.kernel_h
    }

    /// Kernel width (`S`).
    #[must_use]
    pub const fn kernel_w(&self) -> u32 {
        self.kernel_w
    }

    /// Convolution stride (same in both spatial dimensions).
    #[must_use]
    pub const fn stride(&self) -> u32 {
        self.stride
    }

    /// Zero padding applied on every spatial border.
    #[must_use]
    pub const fn padding(&self) -> u32 {
        self.padding
    }

    /// Operator kind (dense conv, matmul, grouped conv).
    #[must_use]
    pub const fn kind(&self) -> LayerKind {
        self.kind
    }

    /// Number of channel groups (`G`): 1 for dense/matmul layers.
    #[must_use]
    pub const fn groups(&self) -> u32 {
        self.kind.groups()
    }

    /// Input channels per group (`C / G`).
    #[must_use]
    pub const fn in_channels_per_group(&self) -> u32 {
        self.in_channels / self.kind.groups()
    }

    /// Output channels per group (`K / G`).
    #[must_use]
    pub const fn out_channels_per_group(&self) -> u32 {
        self.out_channels / self.kind.groups()
    }

    /// Output spatial height: `(H + 2*pad - R) / stride + 1`.
    #[must_use]
    pub const fn out_height(&self) -> u32 {
        (self.in_height + 2 * self.padding - self.kernel_h) / self.stride + 1
    }

    /// Output spatial width: `(W + 2*pad - S) / stride + 1`.
    #[must_use]
    pub const fn out_width(&self) -> u32 {
        (self.in_width + 2 * self.padding - self.kernel_w) / self.stride + 1
    }

    /// Shape of the input activation tensor.
    #[must_use]
    pub fn input_shape(&self) -> TensorShape {
        TensorShape::new(self.in_channels, self.in_height, self.in_width)
    }

    /// Shape of the output activation tensor.
    #[must_use]
    pub fn output_shape(&self) -> TensorShape {
        TensorShape::new(self.out_channels, self.out_height(), self.out_width())
    }

    /// Total multiply-accumulate operations of the layer. Each output
    /// channel reads `C / G` input channels, so grouped layers do a
    /// factor `G` less work than an equivalently shaped dense conv.
    #[must_use]
    pub fn macs(&self) -> u64 {
        u64::from(self.out_channels)
            * u64::from(self.in_channels_per_group())
            * u64::from(self.out_height())
            * u64::from(self.out_width())
            * u64::from(self.kernel_h)
            * u64::from(self.kernel_w)
    }

    /// Byte size of the full input activation tensor.
    #[must_use]
    pub fn input_bytes(&self, elem: ElementSize) -> u64 {
        self.input_shape().bytes(elem)
    }

    /// Byte size of the full weight tensor (`K x C/G x R x S`; `G` is 1
    /// for dense and matmul layers).
    #[must_use]
    pub fn weight_bytes(&self, elem: ElementSize) -> u64 {
        u64::from(self.out_channels)
            * u64::from(self.in_channels_per_group())
            * u64::from(self.kernel_h)
            * u64::from(self.kernel_w)
            * elem.bytes()
    }

    /// Byte size of the full output activation tensor.
    #[must_use]
    pub fn output_bytes(&self, elem: ElementSize) -> u64 {
        self.output_shape().bytes(elem)
    }

    /// Combined byte size of input, weight and output tensors — the
    /// footprint an infinitely large on-chip memory would need to hold
    /// the whole layer at once.
    #[must_use]
    pub fn total_bytes(&self, elem: ElementSize) -> u64 {
        self.input_bytes(elem) + self.weight_bytes(elem) + self.output_bytes(elem)
    }

    /// Returns a copy of this layer with a different name.
    ///
    /// Useful when the same geometry repeats within a network (common
    /// in ResNet-50) but each instance needs a unique identity.
    #[must_use]
    pub fn with_name(&self, name: impl Into<String>) -> Self {
        let mut layer = self.clone();
        layer.name = name.into();
        layer
    }
}

impl fmt::Display for ConvLayer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} -> {} ({}x{} k, s{}, p{}",
            self.name,
            self.input_shape(),
            self.output_shape(),
            self.kernel_h,
            self.kernel_w,
            self.stride,
            self.padding
        )?;
        match self.kind {
            LayerKind::Dense => write!(f, ")"),
            LayerKind::Matmul | LayerKind::Grouped { .. } => write!(f, ", {})", self.kind),
        }
    }
}

/// Builder for [`ConvLayer`] specifications with non-default kernel,
/// stride or padding.
///
/// # Examples
///
/// ```
/// use flexer_model::ConvLayerBuilder;
///
/// // ResNet-50 stem: 7x7 stride-2 convolution.
/// let conv1 = ConvLayerBuilder::new("conv1", 3, 224, 224, 64)
///     .kernel(7, 7)
///     .stride(2)
///     .padding(3)
///     .build()?;
/// assert_eq!(conv1.out_height(), 112);
/// # Ok::<(), flexer_model::LayerSpecError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ConvLayerBuilder {
    layer: ConvLayer,
}

impl ConvLayerBuilder {
    /// Starts building a layer from its tensor extents. Kernel defaults
    /// to 1x1, stride to 1 and padding to 0.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        in_channels: u32,
        in_height: u32,
        in_width: u32,
        out_channels: u32,
    ) -> Self {
        Self {
            layer: ConvLayer {
                name: name.into(),
                in_channels,
                in_height,
                in_width,
                out_channels,
                kernel_h: 1,
                kernel_w: 1,
                stride: 1,
                padding: 0,
                kind: LayerKind::Dense,
            },
        }
    }

    /// Sets the kernel extents (`R` x `S`).
    #[must_use]
    pub fn kernel(mut self, kernel_h: u32, kernel_w: u32) -> Self {
        self.layer.kernel_h = kernel_h;
        self.layer.kernel_w = kernel_w;
        self
    }

    /// Sets the spatial stride.
    #[must_use]
    pub fn stride(mut self, stride: u32) -> Self {
        self.layer.stride = stride;
        self
    }

    /// Sets the zero padding per border.
    #[must_use]
    pub fn padding(mut self, padding: u32) -> Self {
        self.layer.padding = padding;
        self
    }

    /// Splits the channels into `groups` disjoint groups (grouped
    /// convolution). `groups == 1` is normalized back to a dense layer
    /// so a trivially grouped spec is byte-identical to the dense one.
    #[must_use]
    pub fn groups(mut self, groups: u32) -> Self {
        self.layer.kind = if groups == 1 {
            LayerKind::Dense
        } else {
            LayerKind::Grouped { groups }
        };
        self
    }

    /// Validates and builds the layer.
    ///
    /// # Errors
    ///
    /// Returns [`LayerSpecError`] when any dimension is zero, when the
    /// kernel does not fit the padded input, or when the padding is so
    /// large that the convolution would read only padding.
    pub fn build(self) -> Result<ConvLayer, LayerSpecError> {
        let l = &self.layer;
        if l.name.is_empty() {
            return Err(LayerSpecError::new("layer name must not be empty"));
        }
        if l.in_channels == 0 || l.out_channels == 0 {
            return Err(LayerSpecError::new(format!(
                "channel counts must be positive (got C={}, K={})",
                l.in_channels, l.out_channels
            )));
        }
        if l.in_height == 0 || l.in_width == 0 {
            return Err(LayerSpecError::new(format!(
                "input extents must be positive (got {}x{})",
                l.in_height, l.in_width
            )));
        }
        if l.kernel_h == 0 || l.kernel_w == 0 || l.stride == 0 {
            return Err(LayerSpecError::new(
                "kernel extents and stride must be positive",
            ));
        }
        if l.kernel_h > l.in_height + 2 * l.padding || l.kernel_w > l.in_width + 2 * l.padding {
            return Err(LayerSpecError::new(format!(
                "kernel {}x{} larger than padded input {}x{}",
                l.kernel_h,
                l.kernel_w,
                l.in_height + 2 * l.padding,
                l.in_width + 2 * l.padding
            )));
        }
        if l.padding >= l.kernel_h || l.padding >= l.kernel_w {
            return Err(LayerSpecError::new(format!(
                "padding {} must be smaller than the kernel ({}x{})",
                l.padding, l.kernel_h, l.kernel_w
            )));
        }
        if let LayerKind::Grouped { groups } = l.kind {
            if groups == 0 {
                return Err(LayerSpecError::new("group count must be positive"));
            }
            if !l.in_channels.is_multiple_of(groups) || !l.out_channels.is_multiple_of(groups) {
                return Err(LayerSpecError::new(format!(
                    "groups {} must divide both channel counts (C={}, K={})",
                    groups, l.in_channels, l.out_channels
                )));
            }
        }
        Ok(self.layer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_conv_shapes() {
        let l = ConvLayer::new("c", 64, 56, 56, 128).unwrap();
        assert_eq!(l.out_height(), 56);
        assert_eq!(l.out_width(), 56);
        assert_eq!(l.kernel_h(), 3);
        assert_eq!(l.stride(), 1);
        assert_eq!(l.padding(), 1);
    }

    #[test]
    fn strided_conv_shapes() {
        let l = ConvLayerBuilder::new("stem", 3, 224, 224, 64)
            .kernel(7, 7)
            .stride(2)
            .padding(3)
            .build()
            .unwrap();
        assert_eq!(l.out_height(), 112);
        assert_eq!(l.out_width(), 112);
    }

    #[test]
    fn pointwise_conv_shapes() {
        let l = ConvLayerBuilder::new("pw", 256, 14, 14, 1024)
            .build()
            .unwrap();
        assert_eq!(l.out_height(), 14);
        assert_eq!(l.kernel_h(), 1);
        assert_eq!(l.macs(), 256 * 1024 * 14 * 14);
    }

    #[test]
    fn unpadded_strided_conv_shapes() {
        // SqueezeNet conv1: 7x7 stride 2, no padding, 224 input.
        let l = ConvLayerBuilder::new("conv1", 3, 224, 224, 96)
            .kernel(7, 7)
            .stride(2)
            .build()
            .unwrap();
        assert_eq!(l.out_height(), 109);
        assert_eq!(l.out_width(), 109);
    }

    #[test]
    fn byte_sizes() {
        let l = ConvLayer::new("c", 512, 28, 28, 512).unwrap();
        assert_eq!(l.input_bytes(ElementSize::Int8), 512 * 28 * 28);
        assert_eq!(l.weight_bytes(ElementSize::Int8), 512 * 512 * 9);
        assert_eq!(l.output_bytes(ElementSize::Int8), 512 * 28 * 28);
        assert_eq!(
            l.total_bytes(ElementSize::Int8),
            2 * 512 * 28 * 28 + 512 * 512 * 9
        );
        assert_eq!(l.input_bytes(ElementSize::Fp16), 2 * 512 * 28 * 28);
    }

    #[test]
    fn macs_match_closed_form() {
        let l = ConvLayerBuilder::new("m", 32, 16, 16, 48)
            .kernel(3, 3)
            .padding(1)
            .build()
            .unwrap();
        assert_eq!(l.macs(), 48 * 32 * 16 * 16 * 9);
    }

    #[test]
    fn rejects_zero_channels() {
        let err = ConvLayerBuilder::new("z", 0, 8, 8, 8).build().unwrap_err();
        assert!(err.to_string().contains("channel"));
    }

    #[test]
    fn rejects_oversized_kernel() {
        let err = ConvLayerBuilder::new("k", 3, 4, 4, 8)
            .kernel(9, 9)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("kernel"));
    }

    #[test]
    fn rejects_excessive_padding() {
        let err = ConvLayerBuilder::new("p", 3, 8, 8, 8)
            .kernel(3, 3)
            .padding(5)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("padding"));
    }

    #[test]
    fn rejects_empty_name() {
        let err = ConvLayerBuilder::new("", 3, 8, 8, 8).build().unwrap_err();
        assert!(err.to_string().contains("name"));
    }

    #[test]
    fn with_name_renames_only() {
        let a = ConvLayer::new("a", 8, 8, 8, 8).unwrap();
        let b = a.with_name("b");
        assert_eq!(b.name(), "b");
        assert_eq!(a.macs(), b.macs());
    }

    #[test]
    fn display_is_informative() {
        let l = ConvLayer::new("conv1_1", 3, 224, 224, 64).unwrap();
        let s = l.to_string();
        assert!(s.contains("conv1_1"));
        assert!(s.contains("3x224x224"));
    }

    #[test]
    fn matmul_lowers_to_pointwise_geometry() {
        // 196 x 192 x 576: a QKV projection over 196 tokens.
        let l = ConvLayer::matmul("qkv", 196, 192, 576).unwrap();
        assert_eq!(l.kind(), LayerKind::Matmul);
        assert_eq!(l.in_channels(), 192);
        assert_eq!(l.in_height(), 196);
        assert_eq!(l.in_width(), 1);
        assert_eq!(l.out_channels(), 576);
        assert_eq!(l.kernel_h(), 1);
        assert_eq!(l.macs(), 196 * 192 * 576);
        assert_eq!(l.weight_bytes(ElementSize::Int8), 192 * 576);
        assert!(l.to_string().contains("matmul"));
    }

    #[test]
    fn matmul_math_matches_the_equivalent_pointwise_conv() {
        let mm = ConvLayer::matmul("x", 64, 32, 48).unwrap();
        let pw = ConvLayerBuilder::new("x", 32, 64, 1, 48).build().unwrap();
        assert_eq!(mm.macs(), pw.macs());
        assert_eq!(
            mm.weight_bytes(ElementSize::Int8),
            pw.weight_bytes(ElementSize::Int8)
        );
        assert_eq!(mm.output_shape(), pw.output_shape());
    }

    #[test]
    fn depthwise_shapes_and_work() {
        let l = ConvLayer::depthwise("dw", 32, 14, 14, 1, 1).unwrap();
        assert_eq!(l.kind(), LayerKind::Grouped { groups: 32 });
        assert_eq!(l.groups(), 32);
        assert_eq!(l.in_channels_per_group(), 1);
        assert_eq!(l.out_channels_per_group(), 1);
        assert_eq!(l.out_height(), 14);
        // One 3x3 filter per channel.
        assert_eq!(l.macs(), 32 * 14 * 14 * 9);
        assert_eq!(l.weight_bytes(ElementSize::Int8), 32 * 9);
        assert!(l.to_string().contains("grouped/32"));
    }

    #[test]
    fn grouped_conv_divides_work_by_group_count() {
        let dense = ConvLayerBuilder::new("g", 32, 8, 8, 16).build().unwrap();
        let grouped = ConvLayerBuilder::new("g", 32, 8, 8, 16)
            .groups(4)
            .build()
            .unwrap();
        assert_eq!(grouped.macs() * 4, dense.macs());
        assert_eq!(
            grouped.weight_bytes(ElementSize::Int8) * 4,
            dense.weight_bytes(ElementSize::Int8)
        );
    }

    #[test]
    fn single_group_normalizes_to_dense() {
        let l = ConvLayerBuilder::new("g1", 8, 8, 8, 8)
            .groups(1)
            .build()
            .unwrap();
        assert_eq!(l.kind(), LayerKind::Dense);
        assert_eq!(l, ConvLayerBuilder::new("g1", 8, 8, 8, 8).build().unwrap());
    }

    #[test]
    fn rejects_indivisible_groups() {
        let err = ConvLayerBuilder::new("g", 9, 8, 8, 8)
            .groups(4)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("groups"));
        let err = ConvLayerBuilder::new("g", 8, 8, 8, 9)
            .groups(4)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("groups"));
        let err = ConvLayerBuilder::new("g", 8, 8, 8, 8)
            .groups(0)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("group"));
    }

    #[test]
    fn default_kind_is_dense() {
        // Builder-made layers without an explicit kind stay dense, so
        // every pre-kind layer spec in the tree is unchanged.
        let l = ConvLayer::new("old", 8, 8, 8, 8).unwrap();
        assert_eq!(l.kind(), LayerKind::Dense);
        assert_eq!(l.groups(), 1);
        assert_eq!(l.in_channels_per_group(), l.in_channels());
    }
}
