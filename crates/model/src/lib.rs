//! DNN workload model for the Flexer reproduction.
//!
//! Flexer (CGO'23) schedules *tiled convolutions* onto multi-NPU
//! accelerators. The scheduler only consumes layer *hyper-parameters*
//! (channel counts, spatial extents, kernel geometry, stride, padding)
//! and derived quantities (tile sizes, MAC counts) — it never touches
//! actual tensor values. This crate therefore models a network as a
//! sequence of [`ConvLayer`] specifications.
//!
//! The four evaluation networks from the paper are hand-coded here:
//! [`networks::vgg16`], [`networks::resnet50`], [`networks::squeezenet`]
//! and [`networks::yolov2`].
//!
//! # Examples
//!
//! ```
//! use flexer_model::{networks, ElementSize};
//!
//! let net = networks::vgg16();
//! assert_eq!(net.layers().len(), 13);
//! let conv4_2 = net.layer_by_name("conv4_2").unwrap();
//! // 28x28x512 int8 input activations occupy ~401 KiB.
//! assert_eq!(conv4_2.input_bytes(ElementSize::Int8), 512 * 28 * 28);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod layer;
mod network;
mod scale;
mod tensor;

pub mod networks;

pub use layer::{ConvLayer, ConvLayerBuilder, LayerKind, LayerSpecError};
pub use network::{NetEdge, Network};
pub use scale::scale_spatial;
pub use tensor::{ElementSize, TensorShape};
