//! Networks as ordered collections of convolution layers.

use crate::layer::{ConvLayer, LayerSpecError};
use crate::tensor::ElementSize;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An ordered collection of convolution layers forming a network.
///
/// Flexer schedules each layer independently (the inter-layer order is
/// fixed by the network), so a network is simply the list of conv
/// layers plus a name. Pooling, activation and fully-connected layers
/// do not run on the tiled-conv datapath the paper schedules and are
/// therefore not represented; their effect on tensor extents is folded
/// into the conv specs.
///
/// # Examples
///
/// ```
/// use flexer_model::{ConvLayer, Network};
///
/// let net = Network::new(
///     "tiny",
///     vec![
///         ConvLayer::new("c1", 3, 32, 32, 16)?,
///         ConvLayer::new("c2", 16, 32, 32, 16)?,
///     ],
/// )?;
/// assert_eq!(net.layers().len(), 2);
/// # Ok::<(), flexer_model::LayerSpecError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Network {
    name: String,
    layers: Vec<ConvLayer>,
}

impl Network {
    /// Creates a network from its layers.
    ///
    /// # Errors
    ///
    /// Returns [`LayerSpecError`] when the network is empty or two
    /// layers share a name (names key per-layer experiment output).
    pub fn new(name: impl Into<String>, layers: Vec<ConvLayer>) -> Result<Self, LayerSpecError> {
        let name = name.into();
        if layers.is_empty() {
            return Err(LayerSpecError::new(
                "network must contain at least one layer",
            ));
        }
        let mut seen = std::collections::BTreeSet::new();
        for layer in &layers {
            if !seen.insert(layer.name().to_owned()) {
                return Err(LayerSpecError::new(format!(
                    "duplicate layer name {:?} in network {name:?}",
                    layer.name()
                )));
            }
        }
        Ok(Self { name, layers })
    }

    /// Network name (e.g. `"vgg16"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layers in execution order.
    #[must_use]
    pub fn layers(&self) -> &[ConvLayer] {
        &self.layers
    }

    /// Looks up a layer by its unique name.
    #[must_use]
    pub fn layer_by_name(&self, name: &str) -> Option<&ConvLayer> {
        self.layers.iter().find(|l| l.name() == name)
    }

    /// Total MAC count over all layers.
    #[must_use]
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(ConvLayer::macs).sum()
    }

    /// Total weight bytes over all layers.
    #[must_use]
    pub fn total_weight_bytes(&self, elem: ElementSize) -> u64 {
        self.layers.iter().map(|l| l.weight_bytes(elem)).sum()
    }

    /// Iterates over the layers.
    pub fn iter(&self) -> std::slice::Iter<'_, ConvLayer> {
        self.layers.iter()
    }
}

impl<'a> IntoIterator for &'a Network {
    type Item = &'a ConvLayer;
    type IntoIter = std::slice::Iter<'a, ConvLayer>;

    fn into_iter(self) -> Self::IntoIter {
        self.layers.iter()
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} conv layers, {:.1} GMACs)",
            self.name,
            self.layers.len(),
            self.total_macs() as f64 / 1e9
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Network {
        Network::new(
            "tiny",
            vec![
                ConvLayer::new("c1", 3, 8, 8, 4).unwrap(),
                ConvLayer::new("c2", 4, 8, 8, 4).unwrap(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn lookup_by_name() {
        let net = tiny();
        assert!(net.layer_by_name("c1").is_some());
        assert!(net.layer_by_name("missing").is_none());
    }

    #[test]
    fn totals_are_sums() {
        let net = tiny();
        let macs: u64 = net.layers().iter().map(|l| l.macs()).sum();
        assert_eq!(net.total_macs(), macs);
        let wb: u64 = net
            .layers()
            .iter()
            .map(|l| l.weight_bytes(ElementSize::Int8))
            .sum();
        assert_eq!(net.total_weight_bytes(ElementSize::Int8), wb);
    }

    #[test]
    fn rejects_duplicate_names() {
        let err = Network::new(
            "dup",
            vec![
                ConvLayer::new("c", 3, 8, 8, 4).unwrap(),
                ConvLayer::new("c", 4, 8, 8, 4).unwrap(),
            ],
        )
        .unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn rejects_empty_network() {
        assert!(Network::new("empty", vec![]).is_err());
    }

    #[test]
    fn iteration_orders_match() {
        let net = tiny();
        let names: Vec<_> = net.iter().map(|l| l.name().to_owned()).collect();
        assert_eq!(names, ["c1", "c2"]);
        let names2: Vec<_> = (&net).into_iter().map(|l| l.name()).collect();
        assert_eq!(names2, ["c1", "c2"]);
    }

    #[test]
    fn display_mentions_layer_count() {
        assert!(tiny().to_string().contains("2 conv layers"));
    }
}
