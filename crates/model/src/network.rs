//! Networks as ordered collections of convolution layers.

use crate::layer::{ConvLayer, LayerSpecError};
use crate::tensor::ElementSize;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An ordered collection of convolution layers forming a network.
///
/// Flexer schedules each layer independently (the inter-layer order is
/// fixed by the network), so a network is simply the list of conv
/// layers plus a name. Pooling, activation and fully-connected layers
/// do not run on the tiled-conv datapath the paper schedules and are
/// therefore not represented; their effect on tensor extents is folded
/// into the conv specs.
///
/// # Examples
///
/// ```
/// use flexer_model::{ConvLayer, Network};
///
/// let net = Network::new(
///     "tiny",
///     vec![
///         ConvLayer::new("c1", 3, 32, 32, 16)?,
///         ConvLayer::new("c2", 16, 32, 32, 16)?,
///     ],
/// )?;
/// assert_eq!(net.layers().len(), 2);
/// # Ok::<(), flexer_model::LayerSpecError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Network {
    name: String,
    layers: Vec<ConvLayer>,
    /// Explicit producer→consumer edges for non-chain topologies.
    /// Empty means the implicit chain `layers[i] -> layers[i+1]`.
    #[serde(default)]
    edges: Vec<NetEdge>,
}

/// One producer→consumer edge of a branching network topology,
/// indexing into [`Network::layers`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NetEdge {
    /// Index of the producing layer.
    pub from: u32,
    /// Index of the consuming layer.
    pub to: u32,
}

impl NetEdge {
    /// Convenience constructor.
    #[must_use]
    pub const fn new(from: u32, to: u32) -> Self {
        Self { from, to }
    }
}

impl Network {
    /// Creates a network from its layers.
    ///
    /// # Errors
    ///
    /// Returns [`LayerSpecError`] when the network is empty or two
    /// layers share a name (names key per-layer experiment output).
    pub fn new(name: impl Into<String>, layers: Vec<ConvLayer>) -> Result<Self, LayerSpecError> {
        let name = name.into();
        if layers.is_empty() {
            return Err(LayerSpecError::new(
                "network must contain at least one layer",
            ));
        }
        let mut seen = std::collections::BTreeSet::new();
        for layer in &layers {
            if !seen.insert(layer.name().to_owned()) {
                return Err(LayerSpecError::new(format!(
                    "duplicate layer name {:?} in network {name:?}",
                    layer.name()
                )));
            }
        }
        Ok(Self {
            name,
            layers,
            edges: Vec::new(),
        })
    }

    /// Creates a network with an explicit (possibly branching)
    /// producer→consumer topology over the layers.
    ///
    /// Layers still execute in list order (a topological order of the
    /// graph); the edges record which producers feed which consumers,
    /// e.g. a fire module's squeeze layer feeding both expand branches
    /// and a concat consumer reading both.
    ///
    /// # Errors
    ///
    /// Returns [`LayerSpecError`] when the layer list is invalid (see
    /// [`Network::new`]), an edge is out of range or not forward
    /// (`from < to`), an edge repeats, an interior layer is
    /// disconnected, or a consumer's input channels do not match its
    /// producers — a single producer must match exactly (residual
    /// chain) and multiple producers must either each match (residual
    /// add) or sum to the consumer's input channels (concat).
    pub fn with_topology(
        name: impl Into<String>,
        layers: Vec<ConvLayer>,
        edges: Vec<NetEdge>,
    ) -> Result<Self, LayerSpecError> {
        let mut net = Self::new(name, layers)?;
        let n = net.layers.len() as u32;
        let mut seen = std::collections::BTreeSet::new();
        for e in &edges {
            if e.from >= n || e.to >= n {
                return Err(LayerSpecError::new(format!(
                    "edge {} -> {} out of range for {} layers",
                    e.from, e.to, n
                )));
            }
            if e.from >= e.to {
                return Err(LayerSpecError::new(format!(
                    "edge {} -> {} must point forward in layer order",
                    e.from, e.to
                )));
            }
            if !seen.insert((e.from, e.to)) {
                return Err(LayerSpecError::new(format!(
                    "duplicate edge {} -> {}",
                    e.from, e.to
                )));
            }
        }
        if !edges.is_empty() {
            for i in 0..n {
                if i > 0 && !edges.iter().any(|e| e.to == i) {
                    return Err(LayerSpecError::new(format!(
                        "layer {i} has no incoming edge"
                    )));
                }
                if i + 1 < n && !edges.iter().any(|e| e.from == i) {
                    return Err(LayerSpecError::new(format!(
                        "layer {i} has no outgoing edge"
                    )));
                }
            }
            // Shape check per consumer: producers must either each
            // match the consumer's input shape (residual add) or their
            // channels must sum to it over matching spatial extents
            // (concat).
            for to in 1..n {
                let consumer = &net.layers[to as usize];
                let producers: Vec<_> = edges
                    .iter()
                    .filter(|e| e.to == to)
                    .map(|e| &net.layers[e.from as usize])
                    .collect();
                let spatial_ok = producers.iter().all(|p| {
                    p.output_shape().height() == consumer.in_height()
                        && p.output_shape().width() == consumer.in_width()
                });
                if !spatial_ok {
                    return Err(LayerSpecError::new(format!(
                        "producers of {:?} do not match its {}x{} spatial input",
                        consumer.name(),
                        consumer.in_height(),
                        consumer.in_width()
                    )));
                }
                let each_match = producers
                    .iter()
                    .all(|p| p.out_channels() == consumer.in_channels());
                let channel_sum: u32 = producers.iter().map(|p| p.out_channels()).sum();
                if !each_match && channel_sum != consumer.in_channels() {
                    return Err(LayerSpecError::new(format!(
                        "producers of {:?} supply {} channels (or per-producer mismatch) \
                         but it consumes {}",
                        consumer.name(),
                        channel_sum,
                        consumer.in_channels()
                    )));
                }
            }
        }
        net.edges = edges;
        Ok(net)
    }

    /// Whether the network is a simple chain (`layers[i] ->
    /// layers[i+1]` only). Explicit edges that happen to form the
    /// chain count as a chain.
    #[must_use]
    pub fn is_chain(&self) -> bool {
        if self.edges.is_empty() {
            return true;
        }
        let n = self.layers.len() as u32;
        self.edges.len() as u32 == n.saturating_sub(1)
            && self.edges.iter().all(|e| e.to == e.from + 1)
    }

    /// The effective producer→consumer edges: the explicit topology if
    /// one was given, otherwise the implicit chain.
    #[must_use]
    pub fn edges(&self) -> Vec<NetEdge> {
        if self.edges.is_empty() {
            (1..self.layers.len() as u32)
                .map(|i| NetEdge::new(i - 1, i))
                .collect()
        } else {
            self.edges.clone()
        }
    }

    /// Indices of the layers consuming layer `i`'s output.
    #[must_use]
    pub fn consumers_of(&self, i: u32) -> Vec<u32> {
        self.edges()
            .iter()
            .filter(|e| e.from == i)
            .map(|e| e.to)
            .collect()
    }

    /// Indices of the layers producing layer `i`'s input.
    #[must_use]
    pub fn producers_of(&self, i: u32) -> Vec<u32> {
        self.edges()
            .iter()
            .filter(|e| e.to == i)
            .map(|e| e.from)
            .collect()
    }

    /// Network name (e.g. `"vgg16"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layers in execution order.
    #[must_use]
    pub fn layers(&self) -> &[ConvLayer] {
        &self.layers
    }

    /// Looks up a layer by its unique name.
    #[must_use]
    pub fn layer_by_name(&self, name: &str) -> Option<&ConvLayer> {
        self.layers.iter().find(|l| l.name() == name)
    }

    /// Total MAC count over all layers.
    #[must_use]
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(ConvLayer::macs).sum()
    }

    /// Total weight bytes over all layers.
    #[must_use]
    pub fn total_weight_bytes(&self, elem: ElementSize) -> u64 {
        self.layers.iter().map(|l| l.weight_bytes(elem)).sum()
    }

    /// Iterates over the layers.
    pub fn iter(&self) -> std::slice::Iter<'_, ConvLayer> {
        self.layers.iter()
    }
}

impl<'a> IntoIterator for &'a Network {
    type Item = &'a ConvLayer;
    type IntoIter = std::slice::Iter<'a, ConvLayer>;

    fn into_iter(self) -> Self::IntoIter {
        self.layers.iter()
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} conv layers, {:.1} GMACs)",
            self.name,
            self.layers.len(),
            self.total_macs() as f64 / 1e9
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Network {
        Network::new(
            "tiny",
            vec![
                ConvLayer::new("c1", 3, 8, 8, 4).unwrap(),
                ConvLayer::new("c2", 4, 8, 8, 4).unwrap(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn lookup_by_name() {
        let net = tiny();
        assert!(net.layer_by_name("c1").is_some());
        assert!(net.layer_by_name("missing").is_none());
    }

    #[test]
    fn totals_are_sums() {
        let net = tiny();
        let macs: u64 = net.layers().iter().map(|l| l.macs()).sum();
        assert_eq!(net.total_macs(), macs);
        let wb: u64 = net
            .layers()
            .iter()
            .map(|l| l.weight_bytes(ElementSize::Int8))
            .sum();
        assert_eq!(net.total_weight_bytes(ElementSize::Int8), wb);
    }

    #[test]
    fn rejects_duplicate_names() {
        let err = Network::new(
            "dup",
            vec![
                ConvLayer::new("c", 3, 8, 8, 4).unwrap(),
                ConvLayer::new("c", 4, 8, 8, 4).unwrap(),
            ],
        )
        .unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn rejects_empty_network() {
        assert!(Network::new("empty", vec![]).is_err());
    }

    #[test]
    fn iteration_orders_match() {
        let net = tiny();
        let names: Vec<_> = net.iter().map(|l| l.name().to_owned()).collect();
        assert_eq!(names, ["c1", "c2"]);
        let names2: Vec<_> = (&net).into_iter().map(|l| l.name()).collect();
        assert_eq!(names2, ["c1", "c2"]);
    }

    #[test]
    fn display_mentions_layer_count() {
        assert!(tiny().to_string().contains("2 conv layers"));
    }

    /// A minimal fire-module shape: squeeze feeds both expand branches,
    /// whose outputs concat into the consumer.
    fn branching() -> Network {
        use crate::layer::ConvLayerBuilder;
        Network::with_topology(
            "fire",
            vec![
                ConvLayerBuilder::new("squeeze", 16, 8, 8, 4)
                    .build()
                    .unwrap(),
                ConvLayerBuilder::new("e1", 4, 8, 8, 8).build().unwrap(),
                ConvLayer::new("e3", 4, 8, 8, 8).unwrap(),
                ConvLayerBuilder::new("head", 16, 8, 8, 16).build().unwrap(),
            ],
            vec![
                NetEdge::new(0, 1),
                NetEdge::new(0, 2),
                NetEdge::new(1, 3),
                NetEdge::new(2, 3),
            ],
        )
        .unwrap()
    }

    #[test]
    fn chains_report_is_chain() {
        assert!(tiny().is_chain());
        let edges = tiny().edges();
        assert_eq!(edges, vec![NetEdge::new(0, 1)]);
        assert_eq!(tiny().consumers_of(0), vec![1]);
        assert_eq!(tiny().producers_of(1), vec![0]);
    }

    #[test]
    fn branching_topology_is_not_a_chain() {
        let net = branching();
        assert!(!net.is_chain());
        assert_eq!(net.consumers_of(0), vec![1, 2]);
        assert_eq!(net.producers_of(3), vec![1, 2]);
        assert_eq!(net.edges().len(), 4);
    }

    #[test]
    fn explicit_chain_edges_still_count_as_a_chain() {
        let net =
            Network::with_topology("chain", tiny().layers().to_vec(), vec![NetEdge::new(0, 1)])
                .unwrap();
        assert!(net.is_chain());
    }

    #[test]
    fn rejects_backward_and_out_of_range_edges() {
        let layers = tiny().layers().to_vec();
        let err =
            Network::with_topology("bad", layers.clone(), vec![NetEdge::new(1, 0)]).unwrap_err();
        assert!(err.to_string().contains("forward"));
        let err =
            Network::with_topology("bad", layers.clone(), vec![NetEdge::new(0, 5)]).unwrap_err();
        assert!(err.to_string().contains("range"));
        let err =
            Network::with_topology("bad", layers, vec![NetEdge::new(0, 1), NetEdge::new(0, 1)])
                .unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn rejects_disconnected_interior_layers() {
        use crate::layer::ConvLayerBuilder;
        let layers = vec![
            ConvLayerBuilder::new("a", 8, 8, 8, 8).build().unwrap(),
            ConvLayerBuilder::new("b", 8, 8, 8, 8).build().unwrap(),
            ConvLayerBuilder::new("c", 8, 8, 8, 8).build().unwrap(),
        ];
        // b has no incoming edge.
        let err =
            Network::with_topology("gap", layers, vec![NetEdge::new(0, 2), NetEdge::new(1, 2)])
                .unwrap_err();
        assert!(err.to_string().contains("incoming"), "{err}");
    }

    #[test]
    fn rejects_channel_mismatch_at_a_concat_consumer() {
        use crate::layer::ConvLayerBuilder;
        let layers = vec![
            ConvLayerBuilder::new("a", 8, 8, 8, 4).build().unwrap(),
            ConvLayerBuilder::new("b", 4, 8, 8, 4).build().unwrap(),
            // Consumer wants 16 channels; producers supply 4 + 4.
            ConvLayerBuilder::new("c", 16, 8, 8, 8).build().unwrap(),
        ];
        let err = Network::with_topology(
            "bad-concat",
            layers,
            vec![NetEdge::new(0, 1), NetEdge::new(0, 2), NetEdge::new(1, 2)],
        )
        .unwrap_err();
        assert!(err.to_string().contains("channels"), "{err}");
    }
}
