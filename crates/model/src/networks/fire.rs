//! A small residual/fire-module network with an explicit branching
//! topology.
//!
//! SqueezeNet's fire modules are represented in the chain zoo with
//! their concat folded into channel counts; this net makes the
//! divergence explicit with [`crate::NetEdge`]s — each squeeze output
//! feeds *two* expand consumers, and each pair of expand outputs
//! concatenates into the next consumer. This is the zoo's stress test
//! for anything that assumes `layers[i] -> layers[i+1]` edges (e.g.
//! the inter-layer residency planner must decline it cleanly).

use crate::layer::{ConvLayer, ConvLayerBuilder};
use crate::network::{NetEdge, Network};

fn conv1x1(name: &str, in_c: u32, hw: u32, out_c: u32) -> ConvLayer {
    ConvLayerBuilder::new(name, in_c, hw, hw, out_c)
        .build()
        .expect("static fire-net spec is valid")
}

fn conv3x3(name: &str, in_c: u32, hw: u32, out_c: u32) -> ConvLayer {
    ConvLayerBuilder::new(name, in_c, hw, hw, out_c)
        .kernel(3, 3)
        .padding(1)
        .build()
        .expect("static fire-net spec is valid")
}

/// Builds the branching fire net: a 3x3 stem, two fire modules
/// (squeeze feeding parallel 1x1/3x3 expands whose outputs concat),
/// and a 1x1 head.
///
/// Layer order is a topological order of the graph; the explicit
/// edges record the divergence and the concats.
///
/// # Examples
///
/// ```
/// let net = flexer_model::networks::firenet();
/// assert!(!net.is_chain());
/// // The squeeze layer feeds both expand branches.
/// assert_eq!(net.consumers_of(1), vec![2, 3]);
/// ```
#[must_use]
pub fn firenet() -> Network {
    let hw = 32;
    let layers = vec![
        conv3x3("stem", 3, hw, 32),        // 0
        conv1x1("f1_squeeze", 32, hw, 16), // 1
        conv1x1("f1_expand1", 16, hw, 32), // 2
        conv3x3("f1_expand3", 16, hw, 32), // 3
        conv1x1("f2_squeeze", 64, hw, 16), // 4: concat of 32+32
        conv1x1("f2_expand1", 16, hw, 32), // 5
        conv3x3("f2_expand3", 16, hw, 32), // 6
        conv1x1("head", 64, hw, 64),       // 7: concat of 32+32
    ];
    let edges = vec![
        NetEdge::new(0, 1),
        NetEdge::new(1, 2),
        NetEdge::new(1, 3),
        NetEdge::new(2, 4),
        NetEdge::new(3, 4),
        NetEdge::new(4, 5),
        NetEdge::new(4, 6),
        NetEdge::new(5, 7),
        NetEdge::new(6, 7),
    ];
    Network::with_topology("firenet", layers, edges).expect("static fire-net spec is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_a_branching_topology() {
        let net = firenet();
        assert_eq!(net.layers().len(), 8);
        assert!(!net.is_chain());
        assert_eq!(net.edges().len(), 9);
    }

    #[test]
    fn squeezes_feed_two_expands() {
        let net = firenet();
        assert_eq!(net.consumers_of(1), vec![2, 3]);
        assert_eq!(net.consumers_of(4), vec![5, 6]);
    }

    #[test]
    fn concat_consumers_read_both_branches() {
        let net = firenet();
        assert_eq!(net.producers_of(4), vec![2, 3]);
        assert_eq!(net.producers_of(7), vec![5, 6]);
        let f2 = net.layer_by_name("f2_squeeze").unwrap();
        assert_eq!(f2.in_channels(), 64);
    }
}
