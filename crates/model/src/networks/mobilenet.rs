//! A MobileNet-style depthwise-separable network.
//!
//! Each separable block is a 3x3 depthwise convolution (one filter per
//! channel, [`crate::LayerKind::Grouped`] with `G == C == K`) followed
//! by a 1x1 pointwise convolution that mixes channels. The net here is
//! a reduced-depth variant over a 64x64 input so that exhaustive
//! per-layer searches stay fast in tests; the operator mix — and the
//! kind-specific tiling it stresses — matches MobileNetV1.

use crate::layer::{ConvLayer, ConvLayerBuilder};
use crate::network::Network;

fn pointwise(name: String, in_c: u32, hw: u32, out_c: u32) -> ConvLayer {
    ConvLayerBuilder::new(name, in_c, hw, hw, out_c)
        .build()
        .expect("static MobileNet spec is valid")
}

/// Appends one depthwise-separable block: 3x3 depthwise (possibly
/// strided) then 1x1 pointwise widening to `out_c`.
fn separable(
    layers: &mut Vec<ConvLayer>,
    index: u32,
    channels: u32,
    hw: u32,
    stride: u32,
    out_c: u32,
) {
    layers.push(
        ConvLayer::depthwise(format!("dw{index}"), channels, hw, hw, stride, 1)
            .expect("static MobileNet spec is valid"),
    );
    let out_hw = (hw + 2 - 3) / stride + 1;
    layers.push(pointwise(format!("pw{index}"), channels, out_hw, out_c));
}

/// Builds the reduced MobileNet-style net: a strided 3x3 stem then
/// four depthwise-separable blocks, alternating stride-2 downsampling
/// with channel doubling.
///
/// # Examples
///
/// ```
/// let net = flexer_model::networks::mobilenet();
/// assert_eq!(net.layers().len(), 9);
/// let dw = net.layer_by_name("dw1").unwrap();
/// assert_eq!(dw.groups(), dw.in_channels());
/// ```
#[must_use]
pub fn mobilenet() -> Network {
    let mut layers = Vec::with_capacity(9);
    // Stem: 3x3 stride-2 dense conv, 64 -> 32.
    layers.push(
        ConvLayerBuilder::new("stem", 3, 64, 64, 16)
            .kernel(3, 3)
            .stride(2)
            .padding(1)
            .build()
            .expect("static MobileNet spec is valid"),
    );
    separable(&mut layers, 1, 16, 32, 1, 32);
    separable(&mut layers, 2, 32, 32, 2, 64);
    separable(&mut layers, 3, 64, 16, 1, 128);
    separable(&mut layers, 4, 128, 16, 2, 256);
    Network::new("mobilenet", layers).expect("static MobileNet spec is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;

    #[test]
    fn nine_layers_alternating_kinds() {
        let net = mobilenet();
        assert_eq!(net.layers().len(), 9);
        assert!(net.is_chain());
        let depthwise = net
            .layers()
            .iter()
            .filter(|l| l.kind().is_grouped())
            .count();
        assert_eq!(depthwise, 4);
    }

    #[test]
    fn depthwise_layers_have_one_group_per_channel() {
        for l in mobilenet()
            .layers()
            .iter()
            .filter(|l| l.kind().is_grouped())
        {
            assert_eq!(l.groups(), l.in_channels());
            assert_eq!(l.in_channels(), l.out_channels());
            assert_eq!(l.kind(), LayerKind::Grouped { groups: l.groups() });
        }
    }

    #[test]
    fn blocks_chain_shapes() {
        let net = mobilenet();
        let layers = net.layers();
        for pair in layers.windows(2) {
            assert_eq!(
                pair[0].output_shape(),
                pair[1].input_shape(),
                "{} -> {}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn strided_blocks_halve_the_extent() {
        let net = mobilenet();
        assert_eq!(net.layer_by_name("dw2").unwrap().out_height(), 16);
        assert_eq!(net.layer_by_name("dw4").unwrap().out_height(), 8);
    }
}
