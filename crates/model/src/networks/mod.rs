//! Hand-coded layer specifications of the paper's four evaluation
//! networks.
//!
//! The paper evaluates VGGNet-16, ResNet-50, SqueezeNet (v1.0) and
//! YOLOv2 (§5). The authors' toolchain imports framework models; this
//! reproduction hand-codes the convolution hyper-parameters from the
//! original publications instead (see DESIGN.md §2). Only convolution
//! layers are listed — pooling/activation layers do not run on the
//! tiled-conv datapath and their shape effects are folded into the
//! conv extents.
//!
//! # Examples
//!
//! ```
//! use flexer_model::networks;
//!
//! for net in networks::all() {
//!     assert!(net.total_macs() > 0);
//! }
//! ```

mod fire;
mod mobilenet;
mod resnet;
mod squeezenet;
mod transformer;
mod vgg;
mod yolo;

pub use fire::firenet;
pub use mobilenet::mobilenet;
pub use resnet::resnet50;
pub use squeezenet::squeezenet;
pub use transformer::transformer_encoder;
pub use vgg::vgg16;
pub use yolo::yolov2;

use crate::network::Network;

/// All evaluation networks: the paper's four CNNs in the paper's
/// order, then the workload-diversity additions (transformer encoder,
/// MobileNet-style, branching fire net).
///
/// # Examples
///
/// ```
/// let names: Vec<_> = flexer_model::networks::all()
///     .iter()
///     .map(|n| n.name().to_owned())
///     .collect();
/// assert_eq!(
///     names,
///     ["vgg16", "resnet50", "squeezenet", "yolov2",
///      "transformer", "mobilenet", "firenet"]
/// );
/// ```
#[must_use]
pub fn all() -> Vec<Network> {
    vec![
        vgg16(),
        resnet50(),
        squeezenet(),
        yolov2(),
        transformer_encoder(),
        mobilenet(),
        firenet(),
    ]
}

/// The workload-diversity networks added beyond the paper's four
/// CNNs: one per new operator kind / topology (matmul, depthwise,
/// branching).
#[must_use]
pub fn diverse() -> Vec<Network> {
    vec![transformer_encoder(), mobilenet(), firenet()]
}

/// Looks up an evaluation network by name.
///
/// # Examples
///
/// ```
/// assert!(flexer_model::networks::by_name("resnet50").is_some());
/// assert!(flexer_model::networks::by_name("mobilenet").is_some());
/// assert!(flexer_model::networks::by_name("alexnet").is_none());
/// ```
#[must_use]
pub fn by_name(name: &str) -> Option<Network> {
    match name {
        "vgg16" => Some(vgg16()),
        "resnet50" => Some(resnet50()),
        "squeezenet" => Some(squeezenet()),
        "yolov2" => Some(yolov2()),
        "transformer" => Some(transformer_encoder()),
        "mobilenet" => Some(mobilenet()),
        "firenet" => Some(firenet()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_seven_present() {
        assert_eq!(all().len(), 7);
        assert_eq!(diverse().len(), 3);
    }

    #[test]
    fn by_name_round_trips() {
        for net in all() {
            let again = by_name(net.name()).unwrap();
            assert_eq!(net, again);
        }
    }
}
