//! ResNet-50 layer specifications (He et al., 2015).

use crate::layer::{ConvLayer, ConvLayerBuilder};
use crate::network::Network;

fn conv(
    name: String,
    in_c: u32,
    hw: u32,
    out_c: u32,
    kernel: u32,
    stride: u32,
    padding: u32,
) -> ConvLayer {
    ConvLayerBuilder::new(name, in_c, hw, hw, out_c)
        .kernel(kernel, kernel)
        .stride(stride)
        .padding(padding)
        .build()
        .expect("static ResNet-50 spec is valid")
}

/// Parameters of one ResNet stage.
struct Stage {
    /// Stage index used in layer names (2-5).
    index: u32,
    /// Number of bottleneck blocks.
    blocks: u32,
    /// Bottleneck width (the 3x3 convolution's channel count).
    width: u32,
    /// Input channels of the stage's first block.
    in_channels: u32,
    /// Input spatial extent of the stage's first block.
    in_hw: u32,
}

/// Builds the 53 convolution layers of ResNet-50 for a 224x224x3 input.
///
/// Bottleneck blocks follow the v1.5 convention (the stride-2
/// convolution is the 3x3 in the first block of stages 3-5). Layer
/// names follow the paper's `conv<stage>_<block>_<conv>` scheme (e.g.
/// `conv3_1_1`, the layer analysed in Figure 10); projection shortcuts
/// are named `conv<stage>_<block>_ds`.
///
/// # Examples
///
/// ```
/// let net = flexer_model::networks::resnet50();
/// assert_eq!(net.layers().len(), 53);
/// let l = net.layer_by_name("conv3_1_1").unwrap();
/// assert_eq!((l.in_channels(), l.out_channels()), (256, 128));
/// ```
#[must_use]
pub fn resnet50() -> Network {
    let mut layers = vec![conv("conv1".to_owned(), 3, 224, 64, 7, 2, 3)];

    let stages = [
        Stage {
            index: 2,
            blocks: 3,
            width: 64,
            in_channels: 64,
            in_hw: 56,
        },
        Stage {
            index: 3,
            blocks: 4,
            width: 128,
            in_channels: 256,
            in_hw: 56,
        },
        Stage {
            index: 4,
            blocks: 6,
            width: 256,
            in_channels: 512,
            in_hw: 28,
        },
        Stage {
            index: 5,
            blocks: 3,
            width: 512,
            in_channels: 1024,
            in_hw: 14,
        },
    ];

    for stage in &stages {
        let out_channels = stage.width * 4;
        // Stage 2 keeps the 56x56 extent (the stem's max-pool already
        // reduced it); stages 3-5 downsample in their first block.
        let first_stride = if stage.index > 2 { 2 } else { 1 };
        let out_hw = stage.in_hw / first_stride;
        for block in 1..=stage.blocks {
            let first = block == 1;
            let stride = if first { first_stride } else { 1 };
            let in_c = if first {
                stage.in_channels
            } else {
                out_channels
            };
            let in_hw = if first { stage.in_hw } else { out_hw };
            let base = format!("conv{}_{}", stage.index, block);
            layers.push(conv(format!("{base}_1"), in_c, in_hw, stage.width, 1, 1, 0));
            layers.push(conv(
                format!("{base}_2"),
                stage.width,
                in_hw,
                stage.width,
                3,
                stride,
                1,
            ));
            layers.push(conv(
                format!("{base}_3"),
                stage.width,
                out_hw,
                out_channels,
                1,
                1,
                0,
            ));
            if first {
                layers.push(conv(
                    format!("{base}_ds"),
                    in_c,
                    in_hw,
                    out_channels,
                    1,
                    stride,
                    0,
                ));
            }
        }
    }

    Network::new("resnet50", layers).expect("static ResNet-50 spec is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifty_three_convs() {
        assert_eq!(resnet50().layers().len(), 53);
    }

    #[test]
    fn stem_is_strided_7x7() {
        let net = resnet50();
        let stem = net.layer_by_name("conv1").unwrap();
        assert_eq!(stem.kernel_h(), 7);
        assert_eq!(stem.stride(), 2);
        assert_eq!(stem.out_height(), 112);
    }

    #[test]
    fn figure10_layer_exists() {
        let net = resnet50();
        let l = net.layer_by_name("conv3_1_1").unwrap();
        assert_eq!(l.in_channels(), 256);
        assert_eq!(l.out_channels(), 128);
        assert_eq!(l.in_height(), 56);
    }

    #[test]
    fn downsample_blocks_present_once_per_stage() {
        let net = resnet50();
        let ds: Vec<_> = net
            .layers()
            .iter()
            .filter(|l| l.name().ends_with("_ds"))
            .map(|l| l.name().to_owned())
            .collect();
        assert_eq!(ds, ["conv2_1_ds", "conv3_1_ds", "conv4_1_ds", "conv5_1_ds"]);
    }

    #[test]
    fn stage_extents() {
        let net = resnet50();
        // First block of each stage consumes the previous stage's extent.
        assert_eq!(net.layer_by_name("conv2_1_1").unwrap().in_height(), 56);
        assert_eq!(net.layer_by_name("conv3_1_1").unwrap().in_height(), 56);
        assert_eq!(net.layer_by_name("conv4_1_1").unwrap().in_height(), 28);
        assert_eq!(net.layer_by_name("conv5_1_1").unwrap().in_height(), 14);
        // Later blocks run at the stage extent.
        assert_eq!(net.layer_by_name("conv3_2_1").unwrap().in_height(), 28);
        assert_eq!(net.layer_by_name("conv4_3_2").unwrap().in_height(), 14);
        assert_eq!(net.layer_by_name("conv5_3_3").unwrap().in_height(), 7);
    }

    #[test]
    fn bottleneck_channel_pattern() {
        let net = resnet50();
        // Second block of stage 4: 1024 -> 256 -> 256 -> 1024.
        assert_eq!(net.layer_by_name("conv4_2_1").unwrap().in_channels(), 1024);
        assert_eq!(net.layer_by_name("conv4_2_1").unwrap().out_channels(), 256);
        assert_eq!(net.layer_by_name("conv4_2_2").unwrap().kernel_h(), 3);
        assert_eq!(net.layer_by_name("conv4_2_3").unwrap().out_channels(), 1024);
    }

    #[test]
    fn strided_convs_are_exactly_the_stage_transitions() {
        let net = resnet50();
        for l in net.layers() {
            if l.name() == "conv1" {
                continue;
            }
            let strided = l.stride() == 2;
            let expected = matches!(
                l.name(),
                "conv3_1_2"
                    | "conv4_1_2"
                    | "conv5_1_2"
                    | "conv3_1_ds"
                    | "conv4_1_ds"
                    | "conv5_1_ds"
            );
            assert_eq!(strided, expected, "layer {}", l.name());
        }
    }

    #[test]
    fn output_extent_matches_following_block() {
        let net = resnet50();
        // conv3_1_3 produces 28x28, which conv3_2_1 consumes.
        assert_eq!(net.layer_by_name("conv3_1_3").unwrap().out_height(), 28);
        assert_eq!(net.layer_by_name("conv3_2_1").unwrap().in_height(), 28);
    }

    #[test]
    fn total_macs_in_expected_range() {
        // ResNet-50 convolutions perform ~4 GMACs on 224x224 input.
        let gmacs = resnet50().total_macs() as f64 / 1e9;
        assert!((3.5..4.5).contains(&gmacs), "gmacs = {gmacs}");
    }
}
