//! SqueezeNet v1.0 layer specifications (Iandola et al., 2016).

use crate::layer::{ConvLayer, ConvLayerBuilder};
use crate::network::Network;

fn conv1x1(name: String, in_c: u32, hw: u32, out_c: u32) -> ConvLayer {
    ConvLayerBuilder::new(name, in_c, hw, hw, out_c)
        .build()
        .expect("static SqueezeNet spec is valid")
}

fn conv3x3(name: String, in_c: u32, hw: u32, out_c: u32) -> ConvLayer {
    ConvLayerBuilder::new(name, in_c, hw, hw, out_c)
        .kernel(3, 3)
        .padding(1)
        .build()
        .expect("static SqueezeNet spec is valid")
}

/// Appends the three convolutions of one fire module: a 1x1 squeeze
/// followed by parallel 1x1 and 3x3 expands.
fn fire(layers: &mut Vec<ConvLayer>, index: u32, in_c: u32, hw: u32, squeeze: u32, expand: u32) {
    layers.push(conv1x1(format!("fire{index}_squeeze"), in_c, hw, squeeze));
    layers.push(conv1x1(
        format!("fire{index}_expand1x1"),
        squeeze,
        hw,
        expand,
    ));
    layers.push(conv3x3(
        format!("fire{index}_expand3x3"),
        squeeze,
        hw,
        expand,
    ));
}

/// Builds the 26 convolution layers of SqueezeNet v1.0 for a 224x224x3
/// input.
///
/// Structure: a 7x7 stride-2 stem, eight fire modules (each a 1x1
/// squeeze plus 1x1/3x3 expands) with ceil-mode 3x3 stride-2 max-pools
/// after the stem, fire4 and fire8, and a final 1x1 classifier
/// convolution.
///
/// # Examples
///
/// ```
/// let net = flexer_model::networks::squeezenet();
/// assert_eq!(net.layers().len(), 26);
/// assert!(net.layer_by_name("fire5_expand3x3").is_some());
/// ```
#[must_use]
pub fn squeezenet() -> Network {
    let mut layers = Vec::with_capacity(26);
    // conv1: 224 -> 109 (7x7, stride 2, no padding), max-pool -> 54.
    layers.push(
        ConvLayerBuilder::new("conv1", 3, 224, 224, 96)
            .kernel(7, 7)
            .stride(2)
            .build()
            .expect("static SqueezeNet spec is valid"),
    );
    // fire2-4 at 54x54; max-pool (ceil) -> 27.
    fire(&mut layers, 2, 96, 54, 16, 64);
    fire(&mut layers, 3, 128, 54, 16, 64);
    fire(&mut layers, 4, 128, 54, 32, 128);
    // fire5-8 at 27x27; max-pool (ceil) -> 13.
    fire(&mut layers, 5, 256, 27, 32, 128);
    fire(&mut layers, 6, 256, 27, 48, 192);
    fire(&mut layers, 7, 384, 27, 48, 192);
    fire(&mut layers, 8, 384, 27, 64, 256);
    // fire9 at 13x13, then the 1x1 classifier conv.
    fire(&mut layers, 9, 512, 13, 64, 256);
    layers.push(conv1x1("conv10".to_owned(), 512, 13, 1000));

    Network::new("squeezenet", layers).expect("static SqueezeNet spec is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_six_convs() {
        assert_eq!(squeezenet().layers().len(), 26);
    }

    #[test]
    fn eight_fire_modules() {
        let net = squeezenet();
        let squeezes = net
            .layers()
            .iter()
            .filter(|l| l.name().ends_with("_squeeze"))
            .count();
        assert_eq!(squeezes, 8);
    }

    #[test]
    fn fire_expand_channels_concatenate() {
        let net = squeezenet();
        // fire4 expands to 128+128=256 channels, which fire5 consumes.
        assert_eq!(
            net.layer_by_name("fire4_expand1x1").unwrap().out_channels(),
            128
        );
        assert_eq!(
            net.layer_by_name("fire4_expand3x3").unwrap().out_channels(),
            128
        );
        assert_eq!(
            net.layer_by_name("fire5_squeeze").unwrap().in_channels(),
            256
        );
    }

    #[test]
    fn pool_stages() {
        let net = squeezenet();
        assert_eq!(net.layer_by_name("fire2_squeeze").unwrap().in_height(), 54);
        assert_eq!(net.layer_by_name("fire5_squeeze").unwrap().in_height(), 27);
        assert_eq!(net.layer_by_name("fire9_squeeze").unwrap().in_height(), 13);
    }

    #[test]
    fn stem_output_extent() {
        let stem = squeezenet();
        let conv1 = stem.layer_by_name("conv1").unwrap();
        assert_eq!(conv1.out_height(), 109);
    }

    #[test]
    fn classifier_is_wide_pointwise() {
        let net = squeezenet();
        let conv10 = net.layer_by_name("conv10").unwrap();
        assert_eq!(conv10.kernel_h(), 1);
        assert_eq!(conv10.out_channels(), 1000);
    }
}
