//! A small transformer encoder (DeiT-Tiny-like) lowered to matmul
//! layers.
//!
//! The scheduler consumes per-layer hyper-parameters only, so an
//! encoder block is represented by its four projection matmuls — QKV,
//! attention output, and the two FFN linears — each an `M x K x N`
//! matrix multiply over the token sequence (`M = seq`). Softmax,
//! layernorm and the attention score products are elementwise/small
//! and do not run on the tiled MAC datapath, mirroring how pooling is
//! folded away in the CNN zoo.

use crate::layer::ConvLayer;
use crate::network::Network;

/// Sequence length (196 = 14x14 patches of a 224 input).
const SEQ: u32 = 196;
/// Embedding dimension (DeiT-Tiny uses 192).
const DIM: u32 = 192;
/// Number of encoder blocks represented.
const BLOCKS: u32 = 2;

fn mm(name: String, m: u32, k: u32, n: u32) -> ConvLayer {
    ConvLayer::matmul(name, m, k, n).expect("static transformer spec is valid")
}

/// Builds a two-block transformer encoder over 196 tokens of width
/// 192: per block a fused QKV projection (`d -> 3d`), the attention
/// output projection (`d -> d`) and an MLP (`d -> 4d -> d`), all as
/// [`crate::LayerKind::Matmul`] layers.
///
/// # Examples
///
/// ```
/// use flexer_model::LayerKind;
///
/// let net = flexer_model::networks::transformer_encoder();
/// assert_eq!(net.layers().len(), 8);
/// assert!(net.layers().iter().all(|l| l.kind() == LayerKind::Matmul));
/// ```
#[must_use]
pub fn transformer_encoder() -> Network {
    let mut layers = Vec::with_capacity((BLOCKS * 4) as usize);
    for b in 0..BLOCKS {
        layers.push(mm(format!("blk{b}_qkv"), SEQ, DIM, 3 * DIM));
        layers.push(mm(format!("blk{b}_proj"), SEQ, DIM, DIM));
        layers.push(mm(format!("blk{b}_ffn1"), SEQ, DIM, 4 * DIM));
        layers.push(mm(format!("blk{b}_ffn2"), SEQ, 4 * DIM, DIM));
    }
    Network::new("transformer", layers).expect("static transformer spec is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;

    #[test]
    fn eight_matmuls() {
        let net = transformer_encoder();
        assert_eq!(net.layers().len(), 8);
        assert!(net.layers().iter().all(|l| l.kind() == LayerKind::Matmul));
        assert!(net.is_chain());
    }

    #[test]
    fn qkv_widens_to_three_heads() {
        let net = transformer_encoder();
        let qkv = net.layer_by_name("blk0_qkv").unwrap();
        assert_eq!(qkv.in_channels(), DIM);
        assert_eq!(qkv.out_channels(), 3 * DIM);
        assert_eq!(qkv.in_height(), SEQ);
        assert_eq!(qkv.in_width(), 1);
    }

    #[test]
    fn ffn_expands_four_fold() {
        let net = transformer_encoder();
        let ffn1 = net.layer_by_name("blk1_ffn1").unwrap();
        let ffn2 = net.layer_by_name("blk1_ffn2").unwrap();
        assert_eq!(ffn1.out_channels(), 4 * DIM);
        assert_eq!(ffn2.in_channels(), 4 * DIM);
        assert_eq!(ffn2.out_channels(), DIM);
    }

    #[test]
    fn block_macs_match_closed_form() {
        let per_block =
            u64::from(SEQ) * u64::from(DIM) * u64::from(3 * DIM + DIM + 4 * DIM + 4 * DIM);
        assert_eq!(
            transformer_encoder().total_macs(),
            per_block * u64::from(BLOCKS)
        );
    }
}
