//! VGGNet-16 layer specifications (Simonyan & Zisserman, 2014).

use crate::layer::ConvLayer;
use crate::network::Network;

/// Builds the 13 convolution layers of VGG-16 (configuration D) for a
/// 224x224x3 input.
///
/// All convolutions are 3x3, stride 1, padding 1; 2x2 max-pooling
/// between stages halves the spatial extents.
///
/// # Examples
///
/// ```
/// let net = flexer_model::networks::vgg16();
/// assert_eq!(net.layers().len(), 13);
/// // VGG-16 convs perform ~15.3 GMACs on a 224x224 input.
/// let gmacs = net.total_macs() as f64 / 1e9;
/// assert!((15.0..16.0).contains(&gmacs), "gmacs = {gmacs}");
/// ```
#[must_use]
pub fn vgg16() -> Network {
    let same = |name: &str, c: u32, hw: u32, k: u32| {
        ConvLayer::new(name, c, hw, hw, k).expect("static VGG-16 spec is valid")
    };
    let layers = vec![
        same("conv1_1", 3, 224, 64),
        same("conv1_2", 64, 224, 64),
        same("conv2_1", 64, 112, 128),
        same("conv2_2", 128, 112, 128),
        same("conv3_1", 128, 56, 256),
        same("conv3_2", 256, 56, 256),
        same("conv3_3", 256, 56, 256),
        same("conv4_1", 256, 28, 512),
        same("conv4_2", 512, 28, 512),
        same("conv4_3", 512, 28, 512),
        same("conv5_1", 512, 14, 512),
        same("conv5_2", 512, 14, 512),
        same("conv5_3", 512, 14, 512),
    ];
    Network::new("vgg16", layers).expect("static VGG-16 spec is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::ElementSize;

    #[test]
    fn thirteen_convs() {
        assert_eq!(vgg16().layers().len(), 13);
    }

    #[test]
    fn stage_extents_halve() {
        let net = vgg16();
        let heights: Vec<u32> = ["conv1_1", "conv2_1", "conv3_1", "conv4_1", "conv5_1"]
            .iter()
            .map(|n| net.layer_by_name(n).unwrap().in_height())
            .collect();
        assert_eq!(heights, [224, 112, 56, 28, 14]);
    }

    #[test]
    fn all_same_convs() {
        for l in vgg16().layers() {
            assert_eq!(l.kernel_h(), 3);
            assert_eq!(l.stride(), 1);
            assert_eq!(l.padding(), 1);
            assert_eq!(l.out_height(), l.in_height());
        }
    }

    #[test]
    fn conv_weight_total_matches_reference() {
        // VGG-16 conv weights: ~14.71 M parameters.
        let params = vgg16().total_weight_bytes(ElementSize::Int8);
        assert_eq!(params, 14_710_464);
    }

    #[test]
    fn conv4_2_is_the_figure10_layer() {
        let net = vgg16();
        let l = net.layer_by_name("conv4_2").unwrap();
        assert_eq!(l.in_channels(), 512);
        assert_eq!(l.in_height(), 28);
        assert_eq!(l.out_channels(), 512);
    }
}
