//! YOLOv2 layer specifications (Redmon & Farhadi, 2016).

use crate::layer::{ConvLayer, ConvLayerBuilder};
use crate::network::Network;

fn conv3x3(name: &str, in_c: u32, hw: u32, out_c: u32) -> ConvLayer {
    ConvLayerBuilder::new(name, in_c, hw, hw, out_c)
        .kernel(3, 3)
        .padding(1)
        .build()
        .expect("static YOLOv2 spec is valid")
}

fn conv1x1(name: &str, in_c: u32, hw: u32, out_c: u32) -> ConvLayer {
    ConvLayerBuilder::new(name, in_c, hw, hw, out_c)
        .build()
        .expect("static YOLOv2 spec is valid")
}

/// Builds the 23 convolution layers of YOLOv2 for a 416x416x3 input:
/// the Darknet-19 backbone (18 convs up to `conv18`) plus the detection
/// head (`conv19`-`conv20`, the 1x1 pass-through projection `conv21`,
/// the fused `conv22` and the 425-channel prediction layer `conv23`).
///
/// Max-pools between backbone stages halve the extents
/// (416 -> 208 -> 104 -> 52 -> 26 -> 13). The pass-through
/// concatenation (26x26x512 reorganized to 13x13x256) is folded into
/// `conv22`'s 1280 input channels.
///
/// # Examples
///
/// ```
/// let net = flexer_model::networks::yolov2();
/// assert_eq!(net.layers().len(), 23);
/// assert_eq!(net.layer_by_name("conv23").unwrap().out_channels(), 425);
/// ```
#[must_use]
pub fn yolov2() -> Network {
    let layers = vec![
        conv3x3("conv1", 3, 416, 32),
        conv3x3("conv2", 32, 208, 64),
        conv3x3("conv3", 64, 104, 128),
        conv1x1("conv4", 128, 104, 64),
        conv3x3("conv5", 64, 104, 128),
        conv3x3("conv6", 128, 52, 256),
        conv1x1("conv7", 256, 52, 128),
        conv3x3("conv8", 128, 52, 256),
        conv3x3("conv9", 256, 26, 512),
        conv1x1("conv10", 512, 26, 256),
        conv3x3("conv11", 256, 26, 512),
        conv1x1("conv12", 512, 26, 256),
        conv3x3("conv13", 256, 26, 512),
        conv3x3("conv14", 512, 13, 1024),
        conv1x1("conv15", 1024, 13, 512),
        conv3x3("conv16", 512, 13, 1024),
        conv1x1("conv17", 1024, 13, 512),
        conv3x3("conv18", 512, 13, 1024),
        // Detection head.
        conv3x3("conv19", 1024, 13, 1024),
        conv3x3("conv20", 1024, 13, 1024),
        conv1x1("conv21", 512, 26, 64),
        conv3x3("conv22", 1280, 13, 1024),
        conv1x1("conv23", 1024, 13, 425),
    ];
    Network::new("yolov2", layers).expect("static YOLOv2 spec is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_three_convs() {
        assert_eq!(yolov2().layers().len(), 23);
    }

    #[test]
    fn backbone_extent_pyramid() {
        let net = yolov2();
        let extents: Vec<u32> = ["conv1", "conv2", "conv3", "conv6", "conv9", "conv14"]
            .iter()
            .map(|n| net.layer_by_name(n).unwrap().in_height())
            .collect();
        assert_eq!(extents, [416, 208, 104, 52, 26, 13]);
    }

    #[test]
    fn bottleneck_pattern_alternates() {
        let net = yolov2();
        // Darknet-19 alternates 3x3 expansion and 1x1 compression.
        assert_eq!(net.layer_by_name("conv4").unwrap().kernel_h(), 1);
        assert_eq!(net.layer_by_name("conv5").unwrap().kernel_h(), 3);
        assert_eq!(net.layer_by_name("conv15").unwrap().out_channels(), 512);
    }

    #[test]
    fn passthrough_projection() {
        let net = yolov2();
        let pt = net.layer_by_name("conv21").unwrap();
        assert_eq!(pt.in_height(), 26);
        assert_eq!(pt.out_channels(), 64);
        // Fused layer consumes 1024 + 256 reorganized channels.
        assert_eq!(net.layer_by_name("conv22").unwrap().in_channels(), 1280);
    }

    #[test]
    fn total_macs_in_expected_range() {
        // YOLOv2 at 416x416 performs ~14.6 GMACs.
        let gmacs = yolov2().total_macs() as f64 / 1e9;
        assert!((13.0..16.5).contains(&gmacs), "gmacs = {gmacs}");
    }
}
