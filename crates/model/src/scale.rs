//! Workload down-scaling for fast experiments.

use crate::layer::{ConvLayer, ConvLayerBuilder};
use crate::network::Network;

/// Returns a copy of `network` with every layer's spatial extents
/// divided by `divisor` (rounded up, clamped so the kernel still fits).
///
/// The paper's full search takes ~20 hours per network; the scaled
/// variants keep the channel structure (which drives tiling and reuse
/// behaviour) while shrinking the spatial iteration space, so quick
/// runs of the experiment harness finish in minutes. Full-size runs use
/// `divisor = 1`. Channel counts, kernels, strides and paddings are
/// untouched; layers are scheduled independently, so the (intentionally
/// broken) inter-layer tensor chaining is irrelevant to the scheduler.
///
/// # Panics
///
/// Panics if `divisor` is zero.
///
/// # Examples
///
/// ```
/// use flexer_model::{networks, scale_spatial};
///
/// let full = networks::vgg16();
/// let quick = scale_spatial(&full, 4);
/// assert_eq!(quick.layers().len(), full.layers().len());
/// assert_eq!(quick.layers()[0].in_height(), 56); // 224 / 4
/// ```
#[must_use]
pub fn scale_spatial(network: &Network, divisor: u32) -> Network {
    assert!(divisor > 0, "divisor must be positive");
    if divisor == 1 {
        return network.clone();
    }
    let layers: Vec<ConvLayer> = network
        .layers()
        .iter()
        .map(|l| {
            // Keep the input large enough for one kernel application and
            // at least one full stride step so strided layers remain
            // meaningful after scaling.
            let min_h = (l.kernel_h() + l.stride())
                .saturating_sub(2 * l.padding())
                .max(1);
            let min_w = (l.kernel_w() + l.stride())
                .saturating_sub(2 * l.padding())
                .max(1);
            let h = l.in_height().div_ceil(divisor).max(min_h);
            let w = l.in_width().div_ceil(divisor).max(min_w);
            ConvLayerBuilder::new(l.name(), l.in_channels(), h, w, l.out_channels())
                .kernel(l.kernel_h(), l.kernel_w())
                .stride(l.stride())
                .padding(l.padding())
                .build()
                .expect("scaling preserves validity")
        })
        .collect();
    Network::new(format!("{}/{}", network.name(), divisor), layers)
        .expect("scaling preserves layer names")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::networks;

    #[test]
    fn identity_scale_is_clone() {
        let net = networks::vgg16();
        let same = scale_spatial(&net, 1);
        assert_eq!(net, same);
    }

    #[test]
    fn scale_divides_spatial_extents() {
        let net = networks::vgg16();
        let s = scale_spatial(&net, 2);
        for (a, b) in net.layers().iter().zip(s.layers()) {
            assert_eq!(b.in_height(), a.in_height().div_ceil(2).max(1));
            assert_eq!(a.in_channels(), b.in_channels());
            assert_eq!(a.out_channels(), b.out_channels());
        }
    }

    #[test]
    fn extreme_scale_keeps_layers_valid() {
        for net in [
            networks::vgg16(),
            networks::resnet50(),
            networks::squeezenet(),
            networks::yolov2(),
        ] {
            let s = scale_spatial(&net, 1000);
            for l in s.layers() {
                assert!(l.out_height() >= 1);
                assert!(l.out_width() >= 1);
                assert!(l.macs() > 0);
            }
        }
    }

    #[test]
    fn scaled_name_records_divisor() {
        let s = scale_spatial(&networks::vgg16(), 4);
        assert_eq!(s.name(), "vgg16/4");
    }

    #[test]
    #[should_panic(expected = "divisor must be positive")]
    fn zero_divisor_panics() {
        let _ = scale_spatial(&networks::vgg16(), 0);
    }
}
