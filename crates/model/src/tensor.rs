//! Tensor shapes and element sizes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Size in bytes of a single tensor element.
///
/// The accelerators the paper evaluates run integer inference; the
/// element size only matters to the scheduler through the byte sizes of
/// data tiles, so a plain per-element byte width suffices.
///
/// # Examples
///
/// ```
/// use flexer_model::ElementSize;
///
/// assert_eq!(ElementSize::Int8.bytes(), 1);
/// assert_eq!(ElementSize::Fp16.bytes(), 2);
/// ```
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum ElementSize {
    /// 8-bit quantized elements (1 byte). The default for the paper's
    /// embedded NPU setting.
    #[default]
    Int8,
    /// 16-bit half-precision elements (2 bytes).
    Fp16,
    /// 32-bit single-precision elements (4 bytes).
    Fp32,
}

impl ElementSize {
    /// Number of bytes occupied by one element.
    #[must_use]
    pub const fn bytes(self) -> u64 {
        match self {
            ElementSize::Int8 => 1,
            ElementSize::Fp16 => 2,
            ElementSize::Fp32 => 4,
        }
    }
}

impl fmt::Display for ElementSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElementSize::Int8 => write!(f, "int8"),
            ElementSize::Fp16 => write!(f, "fp16"),
            ElementSize::Fp32 => write!(f, "fp32"),
        }
    }
}

/// A three-dimensional `channels x height x width` tensor shape.
///
/// Used for activation tensors (layer inputs and outputs). Weight
/// tensors are four-dimensional and are described directly by their
/// owning [`crate::ConvLayer`].
///
/// # Examples
///
/// ```
/// use flexer_model::{ElementSize, TensorShape};
///
/// let shape = TensorShape::new(64, 112, 112);
/// assert_eq!(shape.elements(), 64 * 112 * 112);
/// assert_eq!(shape.bytes(ElementSize::Fp16), 2 * 64 * 112 * 112);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TensorShape {
    channels: u32,
    height: u32,
    width: u32,
}

impl TensorShape {
    /// Creates a new shape.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero; a zero-sized tensor is never a
    /// meaningful workload description.
    #[must_use]
    pub fn new(channels: u32, height: u32, width: u32) -> Self {
        assert!(
            channels > 0 && height > 0 && width > 0,
            "tensor dimensions must be positive: {channels}x{height}x{width}"
        );
        Self {
            channels,
            height,
            width,
        }
    }

    /// Channel count.
    #[must_use]
    pub const fn channels(&self) -> u32 {
        self.channels
    }

    /// Spatial height.
    #[must_use]
    pub const fn height(&self) -> u32 {
        self.height
    }

    /// Spatial width.
    #[must_use]
    pub const fn width(&self) -> u32 {
        self.width
    }

    /// Total number of elements.
    #[must_use]
    pub const fn elements(&self) -> u64 {
        self.channels as u64 * self.height as u64 * self.width as u64
    }

    /// Total byte size for the given element width.
    #[must_use]
    pub const fn bytes(&self, elem: ElementSize) -> u64 {
        self.elements() * elem.bytes()
    }
}

impl fmt::Display for TensorShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.channels, self.height, self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_sizes() {
        assert_eq!(ElementSize::Int8.bytes(), 1);
        assert_eq!(ElementSize::Fp16.bytes(), 2);
        assert_eq!(ElementSize::Fp32.bytes(), 4);
        assert_eq!(ElementSize::default(), ElementSize::Int8);
    }

    #[test]
    fn shape_accessors() {
        let s = TensorShape::new(3, 224, 224);
        assert_eq!(s.channels(), 3);
        assert_eq!(s.height(), 224);
        assert_eq!(s.width(), 224);
        assert_eq!(s.elements(), 3 * 224 * 224);
        assert_eq!(s.bytes(ElementSize::Fp32), 4 * 3 * 224 * 224);
    }

    #[test]
    fn shape_display() {
        assert_eq!(TensorShape::new(64, 56, 56).to_string(), "64x56x56");
        assert_eq!(ElementSize::Int8.to_string(), "int8");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dimension_rejected() {
        let _ = TensorShape::new(0, 1, 1);
    }

    #[test]
    fn shape_no_overflow_for_large_tensors() {
        // u32::MAX channels with large spatial dims stays within u64.
        let s = TensorShape::new(u32::MAX, 1024, 1024);
        assert!(s.elements() > u64::from(u32::MAX));
    }
}
