//! Property-based tests of the workload model.

use flexer_model::{scale_spatial, ConvLayer, ConvLayerBuilder, ElementSize, Network};
use proptest::prelude::*;

fn layer_strategy() -> impl Strategy<Value = ConvLayer> {
    (
        1u32..512,
        3u32..224,
        1u32..512,
        prop_oneof![Just((1u32, 0u32)), Just((3, 1)), Just((5, 2)), Just((7, 3))],
        1u32..=2,
    )
        .prop_map(|(c, hw, k, (kern, pad), stride)| {
            ConvLayerBuilder::new("l", c, hw, hw, k)
                .kernel(kern, kern)
                .stride(stride)
                .padding(pad)
                .build()
                .expect("generated layers are valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// MACs factor exactly as K*C*OH*OW*R*S.
    #[test]
    fn macs_match_closed_form(layer in layer_strategy()) {
        let expect = u64::from(layer.out_channels())
            * u64::from(layer.in_channels())
            * u64::from(layer.out_height())
            * u64::from(layer.out_width())
            * u64::from(layer.kernel_h())
            * u64::from(layer.kernel_w());
        prop_assert_eq!(layer.macs(), expect);
    }

    /// Output extents are consistent with the convolution arithmetic:
    /// every output position reads a window fully inside the padded
    /// input.
    #[test]
    fn output_extent_is_maximal(layer in layer_strategy()) {
        let padded = u64::from(layer.in_height()) + 2 * u64::from(layer.padding());
        let last_start = u64::from(layer.out_height() - 1) * u64::from(layer.stride());
        prop_assert!(last_start + u64::from(layer.kernel_h()) <= padded);
        // One more output row would not fit.
        let next = last_start + u64::from(layer.stride());
        prop_assert!(next + u64::from(layer.kernel_h()) > padded);
    }

    /// Byte sizes scale linearly with the element width.
    #[test]
    fn byte_sizes_scale_with_element_width(layer in layer_strategy()) {
        for (a, b, factor) in [
            (ElementSize::Int8, ElementSize::Fp16, 2u64),
            (ElementSize::Int8, ElementSize::Fp32, 4u64),
        ] {
            prop_assert_eq!(layer.input_bytes(b), layer.input_bytes(a) * factor);
            prop_assert_eq!(layer.weight_bytes(b), layer.weight_bytes(a) * factor);
            prop_assert_eq!(layer.output_bytes(b), layer.output_bytes(a) * factor);
        }
    }

    /// Scaling a network keeps every layer valid and never grows it.
    #[test]
    fn scaling_shrinks_monotonically(layer in layer_strategy(), divisor in 1u32..16) {
        let net = Network::new("n", vec![layer.clone()]).unwrap();
        let scaled = scale_spatial(&net, divisor);
        let s = &scaled.layers()[0];
        prop_assert!(s.in_height() <= layer.in_height().max(s.in_height()));
        prop_assert!(s.macs() <= layer.macs());
        prop_assert!(s.out_height() >= 1);
        prop_assert_eq!(s.in_channels(), layer.in_channels());
        prop_assert_eq!(s.out_channels(), layer.out_channels());
    }
}
