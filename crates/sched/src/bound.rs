//! The branch-and-bound machinery of the tiling × dataflow search.
//!
//! The admissible [`ScheduleBound`] and its constructor
//! [`lower_bound`] live in `flexer-solve` — the analytical solver and
//! the exact search share one definition of "no schedule can beat
//! this" — and are re-exported here. This module keeps the pieces that
//! only make sense inside a running search:
//!
//! * [`Incumbent`] — the best score found so far for one layer,
//!   shared lock-free across worker threads;
//! * [`Cutoff`] — the strict comparison against the incumbent that
//!   aborts provably-losing candidates mid-schedule.
//!
//! Because the bound is admissible and the cutoff strict, pruning is
//! exact: winners are byte-identical to the exhaustive search's (see
//! DESIGN.md §10).

use crate::metric::{decode_score, encode_score, Metric};
use std::sync::atomic::{AtomicU64, Ordering};

pub use flexer_solve::{lower_bound, lower_bound_resident, ScheduleBound};

/// The best score found so far for one layer, shared across worker
/// threads.
///
/// Scores are stored monotone-encoded (see
/// [`crate::metric::encode_score`]) so [`Incumbent::observe`] is a
/// single `AtomicU64::fetch_min` — lock-free and only ever decreasing.
#[derive(Debug)]
pub struct Incumbent(AtomicU64);

impl Incumbent {
    /// A fresh incumbent at `+inf` (nothing found yet).
    #[must_use]
    pub fn new() -> Self {
        Self(AtomicU64::new(encode_score(f64::INFINITY)))
    }

    /// Records a completed candidate's score; keeps the minimum.
    pub fn observe(&self, score: f64) {
        self.0.fetch_min(encode_score(score), Ordering::Relaxed);
    }

    /// The best score observed so far (`+inf` if none).
    #[must_use]
    pub fn get(&self) -> f64 {
        decode_score(self.0.load(Ordering::Relaxed))
    }
}

impl Default for Incumbent {
    fn default() -> Self {
        Self::new()
    }
}

/// A pruning cutoff handed to the OoO scheduler: the layer's shared
/// incumbent plus the metric scoring partial schedules against it.
///
/// Latency and transferred bytes only grow as a schedule commits steps,
/// so for a monotone metric the running score of a partial schedule
/// never exceeds its final score — once it *strictly* exceeds the
/// incumbent the candidate provably cannot win (nor tie), and the run
/// aborts with [`crate::SchedError::Pruned`]. Strictness is what keeps
/// pruning exact: a candidate tying the incumbent is still scheduled to
/// completion, preserving the exhaustive search's first-in-work-order
/// tie-break. The same strictness makes *seeding* the incumbent with
/// an analytically found schedule winner-neutral: a seeded cutoff can
/// only skip candidates that provably lose to a schedule the search
/// itself would also have found and preferred.
#[derive(Debug, Clone, Copy)]
pub struct Cutoff<'a> {
    incumbent: &'a Incumbent,
    metric: Metric,
}

impl<'a> Cutoff<'a> {
    /// Pairs a shared incumbent with the search metric.
    #[must_use]
    pub fn new(incumbent: &'a Incumbent, metric: Metric) -> Self {
        Self { incumbent, metric }
    }

    /// Whether a (partial) schedule at `latency` cycles and
    /// `transfer_bytes` bytes is already strictly worse than the
    /// incumbent.
    #[must_use]
    pub fn exceeded(&self, latency: u64, transfer_bytes: u64) -> bool {
        self.metric.score(latency, transfer_bytes) > self.incumbent.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incumbent_keeps_the_minimum() {
        let inc = Incumbent::new();
        assert_eq!(inc.get(), f64::INFINITY);
        inc.observe(100.0);
        assert_eq!(inc.get(), 100.0);
        inc.observe(250.0);
        assert_eq!(inc.get(), 100.0);
        inc.observe(25.0);
        assert_eq!(inc.get(), 25.0);
    }

    #[test]
    fn cutoff_is_strict() {
        let inc = Incumbent::new();
        inc.observe(Metric::Latency.score(100, 0));
        let cutoff = Cutoff::new(&inc, Metric::Latency);
        // Equal score ties the incumbent: NOT exceeded (strictness
        // preserves the first-in-work-order tie-break).
        assert!(!cutoff.exceeded(100, 0));
        assert!(!cutoff.exceeded(99, u64::MAX));
        assert!(cutoff.exceeded(101, 0));
    }

    #[test]
    fn fresh_incumbent_never_cuts() {
        let inc = Incumbent::new();
        let cutoff = Cutoff::new(&inc, Metric::LatencyTimesTransfer);
        assert!(!cutoff.exceeded(u64::MAX, u64::MAX));
    }
}
