//! Admissible lower bounds and the branch-and-bound machinery of the
//! tiling × dataflow search.
//!
//! For every (layer, tiling) pair the search computes — *before*
//! running any scheduler — a [`ScheduleBound`] that no legal schedule
//! can beat:
//!
//! * **latency** ≥ max(compute envelope packed on `n` cores, serial
//!   DMA time of the compulsory traffic). Compute can at best be
//!   perfectly load-balanced and the single shared DMA channel must
//!   move every compulsory tile at least once.
//! * **transfer** ≥ compulsory bytes: each distinct input and weight
//!   tile is loaded at least once and each output tile stored once.
//!
//! Both terms are dataflow-independent, so one bound covers all six
//! dataflows of a tiling. Because every monotone [`Metric`] is
//! non-decreasing in (latency, transfer),
//! `metric.score(bound.latency, bound.transfer_bytes)` never exceeds
//! the true score of any schedule of that work item — the bound is
//! *admissible*, and pruning on it is exact (see DESIGN.md §10).

use crate::metric::{decode_score, encode_score, Metric};
use flexer_arch::{ArchConfig, PerfModel};
use flexer_model::ConvLayer;
use flexer_tiling::{compute_envelope, CompulsoryTiles, TilingFactors};
use std::sync::atomic::{AtomicU64, Ordering};

/// Admissible lower bounds on the cost of any schedule of one
/// (layer, tiling) pair, valid for every dataflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleBound {
    /// Lower bound on the schedule makespan, in cycles.
    pub latency: u64,
    /// Lower bound on the transferred bytes.
    pub transfer_bytes: u64,
}

impl ScheduleBound {
    /// Scores the bound under `metric`; by admissibility this never
    /// exceeds the score of any real schedule of the work item.
    #[must_use]
    pub fn score(&self, metric: Metric) -> f64 {
        metric.score(self.latency, self.transfer_bytes)
    }
}

/// Computes the admissible [`ScheduleBound`] of `layer` tiled by
/// `factors` on `arch` under `perf`.
#[must_use]
pub fn lower_bound(
    layer: &ConvLayer,
    arch: &ArchConfig,
    perf: &dyn PerfModel,
    factors: &TilingFactors,
) -> ScheduleBound {
    let env = compute_envelope(layer, factors, perf);
    let compute = perf.packed_compute_cycles(
        env.total_cycles,
        env.max_op_cycles,
        env.chain_cycles,
        arch.cores(),
    );
    let tiles = CompulsoryTiles::compute(layer, factors, arch.element_size().bytes());
    let sizes: Vec<u64> = tiles.transfer_sizes().collect();
    let dma = perf.serial_dma_cycles(&sizes);
    ScheduleBound {
        latency: compute.max(dma),
        transfer_bytes: tiles.total_bytes(),
    }
}

/// The best score found so far for one layer, shared across worker
/// threads.
///
/// Scores are stored monotone-encoded (see
/// [`crate::metric::encode_score`]) so [`Incumbent::observe`] is a
/// single `AtomicU64::fetch_min` — lock-free and only ever decreasing.
#[derive(Debug)]
pub struct Incumbent(AtomicU64);

impl Incumbent {
    /// A fresh incumbent at `+inf` (nothing found yet).
    #[must_use]
    pub fn new() -> Self {
        Self(AtomicU64::new(encode_score(f64::INFINITY)))
    }

    /// Records a completed candidate's score; keeps the minimum.
    pub fn observe(&self, score: f64) {
        self.0.fetch_min(encode_score(score), Ordering::Relaxed);
    }

    /// The best score observed so far (`+inf` if none).
    #[must_use]
    pub fn get(&self) -> f64 {
        decode_score(self.0.load(Ordering::Relaxed))
    }
}

impl Default for Incumbent {
    fn default() -> Self {
        Self::new()
    }
}

/// A pruning cutoff handed to the OoO scheduler: the layer's shared
/// incumbent plus the metric scoring partial schedules against it.
///
/// Latency and transferred bytes only grow as a schedule commits steps,
/// so for a monotone metric the running score of a partial schedule
/// never exceeds its final score — once it *strictly* exceeds the
/// incumbent the candidate provably cannot win (nor tie), and the run
/// aborts with [`crate::SchedError::Pruned`]. Strictness is what keeps
/// pruning exact: a candidate tying the incumbent is still scheduled to
/// completion, preserving the exhaustive search's first-in-work-order
/// tie-break.
#[derive(Debug, Clone, Copy)]
pub struct Cutoff<'a> {
    incumbent: &'a Incumbent,
    metric: Metric,
}

impl<'a> Cutoff<'a> {
    /// Pairs a shared incumbent with the search metric.
    #[must_use]
    pub fn new(incumbent: &'a Incumbent, metric: Metric) -> Self {
        Self { incumbent, metric }
    }

    /// Whether a (partial) schedule at `latency` cycles and
    /// `transfer_bytes` bytes is already strictly worse than the
    /// incumbent.
    #[must_use]
    pub fn exceeded(&self, latency: u64, transfer_bytes: u64) -> bool {
        self.metric.score(latency, transfer_bytes) > self.incumbent.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexer_arch::{ArchPreset, SystolicModel};
    use flexer_tiling::TileKind;

    fn setup() -> (ConvLayer, ArchConfig, SystolicModel) {
        let layer = ConvLayer::new("b", 32, 14, 14, 48).unwrap();
        let arch = ArchConfig::preset(ArchPreset::Arch1);
        let perf = SystolicModel::new(&arch);
        (layer, arch, perf)
    }

    #[test]
    fn bound_combines_compute_and_dma_terms() {
        let (layer, arch, perf) = setup();
        let factors = TilingFactors::normalized(&layer, 2, 2, 2, 2);
        let b = lower_bound(&layer, &arch, &perf, &factors);
        assert!(b.latency > 0);
        let tiles = CompulsoryTiles::compute(&layer, &factors, arch.element_size().bytes());
        assert_eq!(b.transfer_bytes, tiles.total_bytes());
        assert!(b.transfer_bytes >= tiles.kind_bytes(TileKind::Output));
    }

    #[test]
    fn incumbent_keeps_the_minimum() {
        let inc = Incumbent::new();
        assert_eq!(inc.get(), f64::INFINITY);
        inc.observe(100.0);
        assert_eq!(inc.get(), 100.0);
        inc.observe(250.0);
        assert_eq!(inc.get(), 100.0);
        inc.observe(25.0);
        assert_eq!(inc.get(), 25.0);
    }

    #[test]
    fn cutoff_is_strict() {
        let inc = Incumbent::new();
        inc.observe(Metric::Latency.score(100, 0));
        let cutoff = Cutoff::new(&inc, Metric::Latency);
        // Equal score ties the incumbent: NOT exceeded (strictness
        // preserves the first-in-work-order tie-break).
        assert!(!cutoff.exceeded(100, 0));
        assert!(!cutoff.exceeded(99, u64::MAX));
        assert!(cutoff.exceeded(101, 0));
    }

    #[test]
    fn fresh_incumbent_never_cuts() {
        let inc = Incumbent::new();
        let cutoff = Cutoff::new(&inc, Metric::LatencyTimesTransfer);
        assert!(!cutoff.exceeded(u64::MAX, u64::MAX));
    }
}
