//! Operation-set generation and dataflow-map pruning (§4.2).

use flexer_spm::SpmMemory;
use flexer_tiling::{Dfg, OpId, TileKind};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};

/// The dataflow classification of one operation set (paper Figure 7's
/// *dataflow map*): for each data type, the multiset of intra-set
/// sharing degrees of the *reused* (already on-chip) and *new* tiles
/// it touches.
///
/// Two sets with equal classes move the same number and type of tiles
/// with the same sharing structure, so they are duplicates for the
/// priority function; only one representative is evaluated.
///
/// # Examples
///
/// ```
/// use flexer_arch::{ArchConfig, ArchPreset, SystolicModel};
/// use flexer_model::ConvLayer;
/// use flexer_sched::dataflow_class;
/// use flexer_spm::SpmMemory;
/// use flexer_tiling::{Dataflow, Dfg, OpId, TilingFactors};
///
/// let arch = ArchConfig::preset(ArchPreset::Arch1);
/// let layer = ConvLayer::new("c", 16, 8, 8, 16)?;
/// let factors = TilingFactors::normalized(&layer, 4, 1, 2, 1);
/// let dfg = Dfg::build(&layer, factors, Dataflow::Csk, &SystolicModel::new(&arch), &arch)?;
/// let spm = SpmMemory::new(arch.spm_bytes());
///
/// // (k=0,s=0) with (k=1,s=0) shares the input tile; so does
/// // (k=2,s=0) with (k=3,s=0): identical dataflow class.
/// let a = dataflow_class(&dfg, &spm, &[OpId::new(0), OpId::new(1)]);
/// let b = dataflow_class(&dfg, &spm, &[OpId::new(2), OpId::new(3)]);
/// assert_eq!(a, b);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DataflowClass(Vec<u8>);

/// Computes the [`DataflowClass`] of `ops` given the current residency
/// state of `spm`.
#[must_use]
pub fn dataflow_class(dfg: &Dfg, spm: &SpmMemory, ops: &[OpId]) -> DataflowClass {
    // Sharing degree of every distinct tile the set references.
    let mut degrees: BTreeMap<flexer_tiling::TileId, u8> = BTreeMap::new();
    for &id in ops {
        for tile in dfg.op(id).operands() {
            *degrees.entry(tile).or_default() += 1;
        }
    }
    // Bucket by (kind, reused/new), keeping degree multisets sorted.
    let kind_index = |k: TileKind| match k {
        TileKind::Input => 0usize,
        TileKind::Weight => 1,
        TileKind::Output => 2,
    };
    let mut buckets: [[Vec<u8>; 2]; 3] = Default::default();
    for (tile, degree) in degrees {
        let reused = usize::from(!spm.contains(tile));
        buckets[kind_index(tile.kind())][reused].push(degree);
    }
    // Canonical encoding: per bucket its sorted degrees behind a
    // length byte.
    let mut encoding = Vec::with_capacity(16);
    for kind in &mut buckets {
        for bucket in kind {
            bucket.sort_unstable();
            encoding.push(bucket.len() as u8);
            encoding.extend_from_slice(bucket);
        }
    }
    DataflowClass(encoding)
}

/// Budgets for operation-set generation.
///
/// The paper enumerates every `C(ready, cores)` combination and prunes
/// duplicates afterwards (§4.2); with 100 ready operations and 4 cores
/// that is ~3.9M sets per step, which is why the authors' scheduler
/// needs ~20 hours per network. These budgets bound the enumeration
/// while preserving its structure; the defaults examine every
/// combination of the 16 most reuse-friendly ready operations.
///
/// # Examples
///
/// ```
/// let opts = flexer_sched::ComboOptions {
///     width_cap: 8,
///     ..Default::default()
/// };
/// assert_eq!(opts.width_cap, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComboOptions {
    /// Ready operations considered for combination (most resident
    /// operand bytes first, op id on ties).
    pub width_cap: usize,
    /// Maximum combinations examined per scheduling step.
    pub max_combos: usize,
    /// Maximum distinct (post-pruning) sets returned per step.
    pub max_sets: usize,
    /// Whether dataflow-map pruning is applied (§4.2). Disabling it
    /// returns every examined combination — the ablation knob.
    pub prune: bool,
}

impl Default for ComboOptions {
    fn default() -> Self {
        Self {
            width_cap: 16,
            max_combos: 4096,
            max_sets: 64,
            prune: true,
        }
    }
}

/// Generates candidate operation sets of exactly `set_size` operations
/// from the ready queue (paper Algorithm 1, line 19 `MakeCombination`
/// plus the §4.2 pruning).
///
/// `ready` must be sorted by op id. Returned sets are sorted
/// internally and appear in deterministic order. When pruning is on,
/// at most one representative per [`DataflowClass`] is returned.
///
/// # Panics
///
/// Panics if `set_size` is zero or exceeds `ready.len()`.
#[must_use]
pub fn generate_sets(
    dfg: &Dfg,
    spm: &SpmMemory,
    ready: &[OpId],
    set_size: usize,
    options: &ComboOptions,
) -> Vec<Vec<OpId>> {
    assert!(set_size > 0, "set size must be positive");
    assert!(
        set_size <= ready.len(),
        "set size {set_size} exceeds ready count {}",
        ready.len()
    );
    debug_assert!(ready.windows(2).all(|w| w[0] < w[1]), "ready must be sorted");

    // Rank candidates: reuse-friendly first (most resident operand
    // bytes), op id as the deterministic tie-break.
    let mut candidates: Vec<OpId> = ready.to_vec();
    let resident_bytes = |id: OpId| -> u64 {
        dfg.op(id)
            .operands()
            .filter(|&t| spm.contains(t))
            .map(|t| dfg.tile_bytes(t))
            .sum()
    };
    candidates.sort_by_key(|&id| (std::cmp::Reverse(resident_bytes(id)), id));
    candidates.truncate(options.width_cap.max(set_size));

    let mut kept: Vec<Vec<OpId>> = Vec::new();
    let mut seen: HashSet<DataflowClass> = HashSet::new();
    let mut examined = 0usize;

    // Lexicographic k-combination enumeration over candidate indices.
    let n = candidates.len();
    let mut idx: Vec<usize> = (0..set_size).collect();
    loop {
        examined += 1;
        let mut set: Vec<OpId> = idx.iter().map(|&i| candidates[i]).collect();
        set.sort_unstable();
        if options.prune {
            let class = dataflow_class(dfg, spm, &set);
            if seen.insert(class) {
                kept.push(set);
            }
        } else {
            kept.push(set);
        }
        if kept.len() >= options.max_sets || examined >= options.max_combos {
            break;
        }
        // Advance the combination.
        let mut i = set_size;
        loop {
            if i == 0 {
                return kept;
            }
            i -= 1;
            if idx[i] != i + n - set_size {
                break;
            }
        }
        idx[i] += 1;
        for j in i + 1..set_size {
            idx[j] = idx[j - 1] + 1;
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexer_arch::{ArchConfig, ArchPreset, SystolicModel};
    use flexer_model::ConvLayer;
    use flexer_spm::FlexerSpill;
    use flexer_tiling::{Dataflow, TilingFactors};

    fn fixture(k: u32, c: u32, h: u32) -> (Dfg, SpmMemory) {
        let arch = ArchConfig::preset(ArchPreset::Arch1);
        let layer = ConvLayer::new("c", 16, 8, 8, 16).unwrap();
        let factors = TilingFactors::normalized(&layer, k, c, h, 1);
        let dfg = Dfg::build(
            &layer,
            factors,
            Dataflow::Csk,
            &SystolicModel::new(&arch),
            &arch,
        )
        .unwrap();
        (dfg, SpmMemory::new(arch.spm_bytes()))
    }

    #[test]
    fn class_distinguishes_sharing_structure() {
        let (dfg, spm) = fixture(4, 1, 2);
        // All ops ready (c=1). Ops (k,s): id order CSK = s middle, k inner.
        let ready: Vec<OpId> = dfg.initial_ready().collect();
        assert_eq!(ready.len(), 8);
        // Two ops sharing an input (same s) vs two sharing nothing.
        let sharing = dataflow_class(&dfg, &spm, &[ready[0], ready[1]]);
        let disjoint = dataflow_class(&dfg, &spm, &[ready[0], ready[5]]);
        assert_ne!(sharing, disjoint);
    }

    #[test]
    fn class_depends_on_residency() {
        let (dfg, mut spm) = fixture(4, 1, 2);
        let ready: Vec<OpId> = dfg.initial_ready().collect();
        let cold = dataflow_class(&dfg, &spm, &[ready[0], ready[1]]);
        let t = dfg.op(ready[0]).input();
        spm.allocate(t, dfg.tile_bytes(t), 1, &FlexerSpill).unwrap();
        let warm = dataflow_class(&dfg, &spm, &[ready[0], ready[1]]);
        assert_ne!(cold, warm);
    }

    #[test]
    fn class_ignores_operation_identity() {
        let (dfg, spm) = fixture(4, 1, 2);
        let ready: Vec<OpId> = dfg.initial_ready().collect();
        // (k0,s0)+(k1,s0) vs (k2,s1)+(k3,s1): same structure.
        let a = dataflow_class(&dfg, &spm, &[ready[0], ready[1]]);
        let ops_s1: Vec<OpId> = ready
            .iter()
            .copied()
            .filter(|&id| dfg.op(id).s() == 1)
            .take(2)
            .collect();
        let b = dataflow_class(&dfg, &spm, &ops_s1);
        assert_eq!(a, b);
    }

    #[test]
    fn pruning_collapses_duplicates() {
        let (dfg, spm) = fixture(4, 1, 2);
        let ready: Vec<OpId> = dfg.initial_ready().collect();
        let pruned = generate_sets(&dfg, &spm, &ready, 2, &ComboOptions::default());
        let unpruned = generate_sets(
            &dfg,
            &spm,
            &ready,
            2,
            &ComboOptions {
                prune: false,
                ..Default::default()
            },
        );
        // C(8,2) = 28 total combos, far fewer distinct classes.
        assert_eq!(unpruned.len(), 28);
        assert!(pruned.len() < unpruned.len(), "{}", pruned.len());
        // Each kept set keeps a unique class.
        let classes: HashSet<_> = pruned
            .iter()
            .map(|s| dataflow_class(&dfg, &spm, s))
            .collect();
        assert_eq!(classes.len(), pruned.len());
    }

    #[test]
    fn budgets_are_respected() {
        let (dfg, spm) = fixture(4, 1, 2);
        let ready: Vec<OpId> = dfg.initial_ready().collect();
        let opts = ComboOptions {
            max_sets: 3,
            prune: false,
            ..Default::default()
        };
        assert_eq!(generate_sets(&dfg, &spm, &ready, 2, &opts).len(), 3);
        let opts = ComboOptions {
            max_combos: 5,
            prune: false,
            ..Default::default()
        };
        assert_eq!(generate_sets(&dfg, &spm, &ready, 2, &opts).len(), 5);
    }

    #[test]
    fn width_cap_limits_candidates() {
        let (dfg, spm) = fixture(4, 1, 2);
        let ready: Vec<OpId> = dfg.initial_ready().collect();
        let opts = ComboOptions {
            width_cap: 3,
            prune: false,
            max_combos: 10_000,
            max_sets: 10_000,
        };
        // C(3,2) = 3 combos.
        assert_eq!(generate_sets(&dfg, &spm, &ready, 2, &opts).len(), 3);
    }

    #[test]
    fn generation_is_deterministic() {
        let (dfg, spm) = fixture(4, 2, 2);
        let ready: Vec<OpId> = dfg.initial_ready().collect();
        let a = generate_sets(&dfg, &spm, &ready, 2, &ComboOptions::default());
        let b = generate_sets(&dfg, &spm, &ready, 2, &ComboOptions::default());
        assert_eq!(a, b);
    }

    #[test]
    fn single_op_sets() {
        let (dfg, spm) = fixture(2, 1, 1);
        let ready: Vec<OpId> = dfg.initial_ready().collect();
        let sets = generate_sets(&dfg, &spm, &ready, 1, &ComboOptions::default());
        assert!(!sets.is_empty());
        for s in &sets {
            assert_eq!(s.len(), 1);
        }
    }

    #[test]
    fn resident_operands_rank_ops_first() {
        let (dfg, mut spm) = fixture(4, 1, 2);
        let ready: Vec<OpId> = dfg.initial_ready().collect();
        // Make the *last* op's weight resident; it should appear in the
        // first generated set.
        let last = *ready.last().unwrap();
        let t = dfg.op(last).weight();
        spm.allocate(t, dfg.tile_bytes(t), 1, &FlexerSpill).unwrap();
        let sets = generate_sets(&dfg, &spm, &ready, 2, &ComboOptions::default());
        assert!(sets[0].contains(&last), "{:?}", sets[0]);
    }

    #[test]
    #[should_panic(expected = "set size must be positive")]
    fn zero_set_size_panics() {
        let (dfg, spm) = fixture(2, 1, 1);
        let ready: Vec<OpId> = dfg.initial_ready().collect();
        let _ = generate_sets(&dfg, &spm, &ready, 0, &ComboOptions::default());
    }
}
