//! Operation-set generation and dataflow-map pruning (§4.2).

use crate::stats::SearchStats;
use flexer_spm::SpmMemory;
use flexer_tiling::{Dfg, OpId, TileId, TileKind};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a, the hasher for the per-step duplicate-class set: the class
/// encodings are ~10–20 bytes, where SipHash's setup cost dominates the
/// hash itself. Membership tests run once per examined combination.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

type FnvSet<T> = HashSet<T, BuildHasherDefault<FnvHasher>>;

/// The dataflow classification of one operation set (paper Figure 7's
/// *dataflow map*): for each data type, the multiset of intra-set
/// sharing degrees of the *reused* (already on-chip) and *new* tiles
/// it touches.
///
/// Two sets with equal classes move the same number and type of tiles
/// with the same sharing structure, so they are duplicates for the
/// priority function; only one representative is evaluated.
///
/// # Examples
///
/// ```
/// use flexer_arch::{ArchConfig, ArchPreset, SystolicModel};
/// use flexer_model::ConvLayer;
/// use flexer_sched::dataflow_class;
/// use flexer_spm::SpmMemory;
/// use flexer_tiling::{Dataflow, Dfg, OpId, TilingFactors};
///
/// let arch = ArchConfig::preset(ArchPreset::Arch1);
/// let layer = ConvLayer::new("c", 16, 8, 8, 16)?;
/// let factors = TilingFactors::normalized(&layer, 4, 1, 2, 1);
/// let dfg = Dfg::build(&layer, factors, Dataflow::Csk, &SystolicModel::new(&arch), &arch)?;
/// let spm = SpmMemory::new(arch.spm_bytes());
///
/// // (k=0,s=0) with (k=1,s=0) shares the input tile; so does
/// // (k=2,s=0) with (k=3,s=0): identical dataflow class.
/// let a = dataflow_class(&dfg, &spm, &[OpId::new(0), OpId::new(1)]);
/// let b = dataflow_class(&dfg, &spm, &[OpId::new(2), OpId::new(3)]);
/// assert_eq!(a, b);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DataflowClass(Vec<u8>);

impl std::borrow::Borrow<[u8]> for DataflowClass {
    fn borrow(&self) -> &[u8] {
        // Consistent with the derived Hash/Eq: a Vec<u8> hashes and
        // compares exactly like its slice, so encodings can be looked
        // up in a HashSet<DataflowClass> without allocating a class.
        &self.0
    }
}

/// Reusable buffers for set generation and classification: one of
/// these lives per scheduler run, so the per-combination inner loop
/// allocates only when a *new* dataflow class is kept.
#[derive(Debug, Default)]
pub(crate) struct ComboScratch {
    /// `(resident operand bytes, op)` ranking, computed once per call.
    ranked: Vec<(u64, OpId)>,
    /// Current combination's candidate indices.
    idx: Vec<usize>,
    /// Current combination's (sorted) operation set.
    set: Vec<OpId>,
    /// Dataflow classes already represented this call.
    seen: FnvSet<DataflowClass>,
    /// Classification scratch: the set's operand tiles, sorted so
    /// sharing degrees fall out of a run-length pass (a flat vector —
    /// a reused `BTreeMap` would still allocate tree nodes on every
    /// rebuild, and per-element sorted insertion measures ~4x slower
    /// than sort-then-scan at these sizes).
    tiles: Vec<(TileId, bool)>,
    /// Operand triples of the ranked candidates with their residency,
    /// prefetched once per call so the inner loop never touches the
    /// graph or re-answers a residency query.
    cands: Vec<[(TileId, bool); 3]>,
    /// Sorted snapshot of every tile resident in the memory, taken
    /// once per call: `SpmMemory::contains` is a linear block scan,
    /// far too expensive to repeat for every tile of every candidate
    /// and combination. Residency cannot change mid-call (the memory
    /// is held by `&`), so one snapshot answers every query.
    resident: Vec<TileId>,
    /// Classification scratch: degree multisets by (kind, reused/new).
    buckets: [[Vec<u8>; 2]; 3],
    /// Classification scratch: the canonical encoding.
    class_buf: Vec<u8>,
}

/// Computes the canonical class encoding of the `(tile, resident)`
/// operand pairs already collected in `tiles` into `out`, reusing the
/// `buckets` scratch. Residency travels with each tile, so no lookup
/// of any kind happens here.
fn classify_tiles(
    tiles: &mut [(TileId, bool)],
    buckets: &mut [[Vec<u8>; 2]; 3],
    out: &mut Vec<u8>,
) {
    // Sharing degree of every distinct tile the set references: sort
    // the (tiny) operand list and count runs in ascending tile order.
    // Duplicate tiles carry equal residency flags, so pair order
    // within a run is immaterial.
    tiles.sort_unstable();
    // Bucket by (kind, reused/new), keeping degree multisets sorted.
    let kind_index = |k: TileKind| match k {
        TileKind::Input => 0usize,
        TileKind::Weight => 1,
        TileKind::Output => 2,
    };
    for kind in buckets.iter_mut() {
        for bucket in kind {
            bucket.clear();
        }
    }
    let mut i = 0;
    while i < tiles.len() {
        let (tile, resident) = tiles[i];
        let mut degree = 0u8;
        while i < tiles.len() && tiles[i].0 == tile {
            degree += 1;
            i += 1;
        }
        let reused = usize::from(!resident);
        buckets[kind_index(tile.kind())][reused].push(degree);
    }
    // Canonical encoding: per bucket its sorted degrees behind a
    // length byte.
    out.clear();
    for kind in buckets.iter_mut() {
        for bucket in kind {
            bucket.sort_unstable();
            out.push(bucket.len() as u8);
            out.extend_from_slice(bucket);
        }
    }
}

/// Computes the [`DataflowClass`] of `ops` given the current residency
/// state of `spm`.
#[must_use]
pub fn dataflow_class(dfg: &Dfg, spm: &SpmMemory, ops: &[OpId]) -> DataflowClass {
    let mut tiles = Vec::new();
    for &id in ops {
        tiles.extend(dfg.op(id).operands().map(|t| (t, spm.contains(t))));
    }
    let mut buckets: [[Vec<u8>; 2]; 3] = Default::default();
    let mut encoding = Vec::with_capacity(16);
    classify_tiles(&mut tiles, &mut buckets, &mut encoding);
    DataflowClass(encoding)
}

/// Budgets for operation-set generation.
///
/// The paper enumerates every `C(ready, cores)` combination and prunes
/// duplicates afterwards (§4.2); with 100 ready operations and 4 cores
/// that is ~3.9M sets per step, which is why the authors' scheduler
/// needs ~20 hours per network. These budgets bound the enumeration
/// while preserving its structure; the defaults examine every
/// combination of the 16 most reuse-friendly ready operations.
///
/// # Examples
///
/// ```
/// let opts = flexer_sched::ComboOptions {
///     width_cap: 8,
///     ..Default::default()
/// };
/// assert_eq!(opts.width_cap, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ComboOptions {
    /// Ready operations considered for combination (most resident
    /// operand bytes first, op id on ties).
    pub width_cap: usize,
    /// Maximum combinations examined per scheduling step.
    pub max_combos: usize,
    /// Maximum distinct (post-pruning) sets returned per step.
    pub max_sets: usize,
    /// Whether dataflow-map pruning is applied (§4.2). Disabling it
    /// returns every examined combination — the ablation knob.
    pub prune: bool,
}

impl Default for ComboOptions {
    fn default() -> Self {
        Self {
            width_cap: 16,
            max_combos: 4096,
            max_sets: 64,
            prune: true,
        }
    }
}

/// Generates candidate operation sets of exactly `set_size` operations
/// from the ready queue (paper Algorithm 1, line 19 `MakeCombination`
/// plus the §4.2 pruning).
///
/// `ready` must be sorted by op id. Returned sets are sorted
/// internally and appear in deterministic order. When pruning is on,
/// at most one representative per [`DataflowClass`] is returned.
///
/// # Panics
///
/// Panics if `set_size` is zero or exceeds `ready.len()`.
#[must_use]
pub fn generate_sets(
    dfg: &Dfg,
    spm: &SpmMemory,
    ready: &[OpId],
    set_size: usize,
    options: &ComboOptions,
) -> Vec<Vec<OpId>> {
    let mut scratch = ComboScratch::default();
    let mut out = Vec::new();
    let mut stats = SearchStats::default();
    generate_sets_into(
        dfg,
        spm,
        ready,
        set_size,
        options,
        &mut scratch,
        &mut out,
        &mut stats,
    );
    out
}

/// [`generate_sets`] writing into `out` and reusing `scratch` — the
/// scheduler's per-step entry point. `out` is truncated to exactly the
/// kept sets; its inner vectors are recycled across calls.
///
/// `stats` accumulates the examined/pruned counts.
#[allow(clippy::too_many_arguments)]
pub(crate) fn generate_sets_into(
    dfg: &Dfg,
    spm: &SpmMemory,
    ready: &[OpId],
    set_size: usize,
    options: &ComboOptions,
    scratch: &mut ComboScratch,
    out: &mut Vec<Vec<OpId>>,
    stats: &mut SearchStats,
) {
    assert!(set_size > 0, "set size must be positive");
    assert!(
        set_size <= ready.len(),
        "set size {set_size} exceeds ready count {}",
        ready.len()
    );
    debug_assert!(
        ready.windows(2).all(|w| w[0] < w[1]),
        "ready must be sorted"
    );

    // Snapshot the resident tile set in one pass over the block list:
    // every residency query below becomes a binary search instead of
    // an `SpmMemory::contains` linear block scan.
    let resident = &mut scratch.resident;
    resident.clear();
    resident.extend(
        spm.blocks()
            .iter()
            .filter_map(|b| b.state().tile_data().map(|d| d.tile)),
    );
    resident.sort_unstable();
    let resident = &scratch.resident;

    // Rank candidates: reuse-friendly first (most resident operand
    // bytes), op id as the deterministic tie-break. The residency key
    // is computed once per candidate up front, not re-derived inside
    // every comparison of the sort.
    let ranked = &mut scratch.ranked;
    ranked.clear();
    ranked.extend(ready.iter().map(|&id| {
        let bytes: u64 = dfg
            .op(id)
            .operands()
            .filter(|&t| resident.binary_search(&t).is_ok())
            .map(|t| dfg.tile_bytes(t))
            .sum();
        (bytes, id)
    }));
    ranked.sort_unstable_by_key(|&(bytes, id)| (std::cmp::Reverse(bytes), id));
    ranked.truncate(options.width_cap.max(set_size));

    // Prefetch each candidate's operand triple with its residency, so
    // the inner loop indexes a flat array instead of chasing into the
    // graph or binary-searching the snapshot per tile.
    let cands = &mut scratch.cands;
    cands.clear();
    cands.extend(ranked.iter().map(|&(_, id)| {
        let op = dfg.op(id);
        let tag = |t: TileId| (t, resident.binary_search(&t).is_ok());
        [tag(op.input()), tag(op.weight()), tag(op.output())]
    }));

    let mut produced = 0usize;
    // Appends the current combination to `out`, recycling a spare
    // inner vector when one is available.
    let keep = |set: &[OpId], out: &mut Vec<Vec<OpId>>, produced: &mut usize| {
        if let Some(slot) = out.get_mut(*produced) {
            slot.clear();
            slot.extend_from_slice(set);
        } else {
            out.push(set.to_vec());
        }
        *produced += 1;
    };
    scratch.seen.clear();
    let mut examined = 0usize;

    // Lexicographic k-combination enumeration over candidate indices.
    let n = ranked.len();
    scratch.idx.clear();
    scratch.idx.extend(0..set_size);
    loop {
        examined += 1;
        stats.sets_generated += 1;
        scratch.set.clear();
        scratch.set.extend(scratch.idx.iter().map(|&i| ranked[i].1));
        scratch.set.sort_unstable();
        if options.prune {
            scratch.tiles.clear();
            for &i in scratch.idx.iter() {
                scratch.tiles.extend_from_slice(&cands[i]);
            }
            classify_tiles(
                &mut scratch.tiles,
                &mut scratch.buckets,
                &mut scratch.class_buf,
            );
            // Duplicates cost no allocation: the encoding buffer is
            // looked up as a slice and only cloned when new.
            if scratch.seen.contains(scratch.class_buf.as_slice()) {
                stats.sets_pruned += 1;
            } else {
                scratch
                    .seen
                    .insert(DataflowClass(scratch.class_buf.clone()));
                keep(&scratch.set, out, &mut produced);
            }
        } else {
            keep(&scratch.set, out, &mut produced);
        }
        if produced >= options.max_sets || examined >= options.max_combos {
            break;
        }
        // Advance the combination.
        let mut i = set_size;
        loop {
            if i == 0 {
                out.truncate(produced);
                return;
            }
            i -= 1;
            if scratch.idx[i] != i + n - set_size {
                break;
            }
        }
        scratch.idx[i] += 1;
        for j in i + 1..set_size {
            scratch.idx[j] = scratch.idx[j - 1] + 1;
        }
    }
    out.truncate(produced);
}

/// The seed implementation of [`dataflow_class`], kept verbatim as
/// part of the `CloneBaseline` reference path: a freshly allocated
/// degree map per combination and a `contains` block scan per
/// distinct tile. Produces encodings identical to [`classify_tiles`].
fn dataflow_class_reference(dfg: &Dfg, spm: &SpmMemory, ops: &[OpId]) -> DataflowClass {
    // Sharing degree of every distinct tile the set references.
    let mut degrees: std::collections::BTreeMap<TileId, u8> = std::collections::BTreeMap::new();
    for &id in ops {
        for tile in dfg.op(id).operands() {
            *degrees.entry(tile).or_default() += 1;
        }
    }
    // Bucket by (kind, reused/new), keeping degree multisets sorted.
    let kind_index = |k: TileKind| match k {
        TileKind::Input => 0usize,
        TileKind::Weight => 1,
        TileKind::Output => 2,
    };
    let mut buckets: [[Vec<u8>; 2]; 3] = Default::default();
    for (tile, degree) in degrees {
        let reused = usize::from(!spm.contains(tile));
        buckets[kind_index(tile.kind())][reused].push(degree);
    }
    // Canonical encoding: per bucket its sorted degrees behind a
    // length byte.
    let mut encoding = Vec::with_capacity(16);
    for kind in &mut buckets {
        for bucket in kind {
            bucket.sort_unstable();
            encoding.push(bucket.len() as u8);
            encoding.extend_from_slice(bucket);
        }
    }
    DataflowClass(encoding)
}

/// The pre-optimization reference twin of [`generate_sets_into`],
/// kept for the `CloneBaseline` benchmark mode: it re-derives the
/// residency ranking key inside every sort comparison and allocates
/// fresh classification state (degree map, degree buckets, encoding)
/// plus a fresh vector per combination — the per-combination
/// allocation storm the scratch path eliminates. Output and stats
/// counters are identical to the scratch path by construction.
pub(crate) fn generate_sets_baseline(
    dfg: &Dfg,
    spm: &SpmMemory,
    ready: &[OpId],
    set_size: usize,
    options: &ComboOptions,
    stats: &mut SearchStats,
) -> Vec<Vec<OpId>> {
    assert!(set_size > 0, "set size must be positive");
    assert!(
        set_size <= ready.len(),
        "set size {set_size} exceeds ready count {}",
        ready.len()
    );
    let resident_bytes = |id: OpId| -> u64 {
        dfg.op(id)
            .operands()
            .filter(|&t| spm.contains(t))
            .map(|t| dfg.tile_bytes(t))
            .sum()
    };
    let mut ranked: Vec<OpId> = ready.to_vec();
    ranked.sort_by_key(|&id| (std::cmp::Reverse(resident_bytes(id)), id));
    ranked.truncate(options.width_cap.max(set_size));

    let mut out: Vec<Vec<OpId>> = Vec::new();
    let mut seen: HashSet<DataflowClass> = HashSet::new();
    let mut examined = 0usize;
    let n = ranked.len();
    let mut idx: Vec<usize> = (0..set_size).collect();
    loop {
        examined += 1;
        stats.sets_generated += 1;
        let mut set: Vec<OpId> = idx.iter().map(|&i| ranked[i]).collect();
        set.sort_unstable();
        if options.prune {
            let class = dataflow_class_reference(dfg, spm, &set);
            if seen.contains(&class) {
                stats.sets_pruned += 1;
            } else {
                seen.insert(class);
                out.push(set);
            }
        } else {
            out.push(set);
        }
        if out.len() >= options.max_sets || examined >= options.max_combos {
            break;
        }
        let mut i = set_size;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] != i + n - set_size {
                break;
            }
        }
        idx[i] += 1;
        for j in i + 1..set_size {
            idx[j] = idx[j - 1] + 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexer_arch::{ArchConfig, ArchPreset, SystolicModel};
    use flexer_model::ConvLayer;
    use flexer_spm::FlexerSpill;
    use flexer_tiling::{Dataflow, TilingFactors};

    fn fixture(k: u32, c: u32, h: u32) -> (Dfg, SpmMemory) {
        let arch = ArchConfig::preset(ArchPreset::Arch1);
        let layer = ConvLayer::new("c", 16, 8, 8, 16).unwrap();
        let factors = TilingFactors::normalized(&layer, k, c, h, 1);
        let dfg = Dfg::build(
            &layer,
            factors,
            Dataflow::Csk,
            &SystolicModel::new(&arch),
            &arch,
        )
        .unwrap();
        (dfg, SpmMemory::new(arch.spm_bytes()))
    }

    #[test]
    fn class_distinguishes_sharing_structure() {
        let (dfg, spm) = fixture(4, 1, 2);
        // All ops ready (c=1). Ops (k,s): id order CSK = s middle, k inner.
        let ready: Vec<OpId> = dfg.initial_ready().collect();
        assert_eq!(ready.len(), 8);
        // Two ops sharing an input (same s) vs two sharing nothing.
        let sharing = dataflow_class(&dfg, &spm, &[ready[0], ready[1]]);
        let disjoint = dataflow_class(&dfg, &spm, &[ready[0], ready[5]]);
        assert_ne!(sharing, disjoint);
    }

    #[test]
    fn class_depends_on_residency() {
        let (dfg, mut spm) = fixture(4, 1, 2);
        let ready: Vec<OpId> = dfg.initial_ready().collect();
        let cold = dataflow_class(&dfg, &spm, &[ready[0], ready[1]]);
        let t = dfg.op(ready[0]).input();
        spm.allocate(t, dfg.tile_bytes(t), 1, &FlexerSpill).unwrap();
        let warm = dataflow_class(&dfg, &spm, &[ready[0], ready[1]]);
        assert_ne!(cold, warm);
    }

    #[test]
    fn class_ignores_operation_identity() {
        let (dfg, spm) = fixture(4, 1, 2);
        let ready: Vec<OpId> = dfg.initial_ready().collect();
        // (k0,s0)+(k1,s0) vs (k2,s1)+(k3,s1): same structure.
        let a = dataflow_class(&dfg, &spm, &[ready[0], ready[1]]);
        let ops_s1: Vec<OpId> = ready
            .iter()
            .copied()
            .filter(|&id| dfg.op(id).s() == 1)
            .take(2)
            .collect();
        let b = dataflow_class(&dfg, &spm, &ops_s1);
        assert_eq!(a, b);
    }

    #[test]
    fn pruning_collapses_duplicates() {
        let (dfg, spm) = fixture(4, 1, 2);
        let ready: Vec<OpId> = dfg.initial_ready().collect();
        let pruned = generate_sets(&dfg, &spm, &ready, 2, &ComboOptions::default());
        let unpruned = generate_sets(
            &dfg,
            &spm,
            &ready,
            2,
            &ComboOptions {
                prune: false,
                ..Default::default()
            },
        );
        // C(8,2) = 28 total combos, far fewer distinct classes.
        assert_eq!(unpruned.len(), 28);
        assert!(pruned.len() < unpruned.len(), "{}", pruned.len());
        // Each kept set keeps a unique class.
        let classes: HashSet<_> = pruned
            .iter()
            .map(|s| dataflow_class(&dfg, &spm, s))
            .collect();
        assert_eq!(classes.len(), pruned.len());
    }

    #[test]
    fn budgets_are_respected() {
        let (dfg, spm) = fixture(4, 1, 2);
        let ready: Vec<OpId> = dfg.initial_ready().collect();
        let opts = ComboOptions {
            max_sets: 3,
            prune: false,
            ..Default::default()
        };
        assert_eq!(generate_sets(&dfg, &spm, &ready, 2, &opts).len(), 3);
        let opts = ComboOptions {
            max_combos: 5,
            prune: false,
            ..Default::default()
        };
        assert_eq!(generate_sets(&dfg, &spm, &ready, 2, &opts).len(), 5);
    }

    #[test]
    fn width_cap_limits_candidates() {
        let (dfg, spm) = fixture(4, 1, 2);
        let ready: Vec<OpId> = dfg.initial_ready().collect();
        let opts = ComboOptions {
            width_cap: 3,
            prune: false,
            max_combos: 10_000,
            max_sets: 10_000,
        };
        // C(3,2) = 3 combos.
        assert_eq!(generate_sets(&dfg, &spm, &ready, 2, &opts).len(), 3);
    }

    #[test]
    fn generation_is_deterministic() {
        let (dfg, spm) = fixture(4, 2, 2);
        let ready: Vec<OpId> = dfg.initial_ready().collect();
        let a = generate_sets(&dfg, &spm, &ready, 2, &ComboOptions::default());
        let b = generate_sets(&dfg, &spm, &ready, 2, &ComboOptions::default());
        assert_eq!(a, b);
    }

    #[test]
    fn single_op_sets() {
        let (dfg, spm) = fixture(2, 1, 1);
        let ready: Vec<OpId> = dfg.initial_ready().collect();
        let sets = generate_sets(&dfg, &spm, &ready, 1, &ComboOptions::default());
        assert!(!sets.is_empty());
        for s in &sets {
            assert_eq!(s.len(), 1);
        }
    }

    #[test]
    fn resident_operands_rank_ops_first() {
        let (dfg, mut spm) = fixture(4, 1, 2);
        let ready: Vec<OpId> = dfg.initial_ready().collect();
        // Make the *last* op's weight resident; it should appear in the
        // first generated set.
        let last = *ready.last().unwrap();
        let t = dfg.op(last).weight();
        spm.allocate(t, dfg.tile_bytes(t), 1, &FlexerSpill).unwrap();
        let sets = generate_sets(&dfg, &spm, &ready, 2, &ComboOptions::default());
        assert!(sets[0].contains(&last), "{:?}", sets[0]);
    }

    #[test]
    fn scratch_generation_matches_allocating_path() {
        let (dfg, spm) = fixture(4, 1, 2);
        let ready: Vec<OpId> = dfg.initial_ready().collect();
        let opts = ComboOptions::default();
        let baseline = generate_sets(&dfg, &spm, &ready, 2, &opts);
        let mut scratch = ComboScratch::default();
        // Pre-fill with stale sets: the call must overwrite/truncate.
        let mut out = vec![vec![OpId::new(99)]; 40];
        let mut stats = SearchStats::default();
        generate_sets_into(
            &dfg,
            &spm,
            &ready,
            2,
            &opts,
            &mut scratch,
            &mut out,
            &mut stats,
        );
        assert_eq!(out, baseline);
        // C(8,2) combinations examined; everything not kept was pruned.
        assert_eq!(stats.sets_generated, 28);
        assert_eq!(stats.sets_pruned as usize, 28 - baseline.len());
        // Reusing the same scratch reproduces the result exactly.
        generate_sets_into(
            &dfg,
            &spm,
            &ready,
            2,
            &opts,
            &mut scratch,
            &mut out,
            &mut stats,
        );
        assert_eq!(out, baseline);
    }

    #[test]
    fn baseline_generation_matches_scratch_path() {
        let (dfg, mut spm) = fixture(4, 2, 2);
        let ready: Vec<OpId> = dfg.initial_ready().collect();
        // Warm memory so the ranking is non-trivial.
        let t = dfg.op(*ready.last().unwrap()).weight();
        spm.allocate(t, dfg.tile_bytes(t), 1, &FlexerSpill).unwrap();
        for prune in [true, false] {
            let opts = ComboOptions {
                prune,
                ..ComboOptions::default()
            };
            let fast = generate_sets(&dfg, &spm, &ready, 2, &opts);
            let mut stats = SearchStats::default();
            let slow = generate_sets_baseline(&dfg, &spm, &ready, 2, &opts, &mut stats);
            assert_eq!(fast, slow);
            let mut fast_stats = SearchStats::default();
            let mut out = Vec::new();
            let mut scratch = ComboScratch::default();
            generate_sets_into(
                &dfg,
                &spm,
                &ready,
                2,
                &opts,
                &mut scratch,
                &mut out,
                &mut fast_stats,
            );
            assert_eq!(stats.sets_generated, fast_stats.sets_generated);
            assert_eq!(stats.sets_pruned, fast_stats.sets_pruned);
        }
    }

    #[test]
    #[should_panic(expected = "set size must be positive")]
    fn zero_set_size_panics() {
        let (dfg, spm) = fixture(2, 1, 1);
        let ready: Vec<OpId> = dfg.initial_ready().collect();
        let _ = generate_sets(&dfg, &spm, &ready, 0, &ComboOptions::default());
    }
}
