//! Scheduler error types.

use crate::verify::VerifyError;
use flexer_sim::TimelineError;
use flexer_spm::AllocError;
use flexer_tiling::TilingError;
use std::error::Error;
use std::fmt;

/// Error returned by the schedulers and the search driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// No tiling of the layer fits the target architecture under the
    /// given options.
    NoViableTiling {
        /// The layer that could not be tiled.
        layer: String,
    },
    /// The scheduler could not place an operation's working set in the
    /// on-chip buffer.
    Alloc(AllocError),
    /// The tiling was rejected while building the data-flow graph.
    Tiling(TilingError),
    /// The scheduler stalled: operations remain but none are ready
    /// (impossible for well-formed DFGs; indicates an internal bug and
    /// is surfaced rather than panicking).
    Stalled {
        /// Operations left unscheduled.
        remaining: usize,
    },
    /// Cycle arithmetic overflowed while timing the schedule
    /// (adversarial architecture configurations).
    Timeline(TimelineError),
    /// A winning schedule failed verification — the scheduler produced
    /// an illegal schedule or a program diverging from it (an internal
    /// bug, surfaced rather than silently reported as a result).
    IllegalSchedule(VerifyError),
    /// A search candidate was cut off because its running score already
    /// exceeded the incumbent — not a real failure, just a candidate
    /// the branch-and-bound layer proved could not win.
    Pruned,
    /// A layer shared its search with an identical earlier layer whose
    /// search failed; wraps the replayed error with the originating
    /// layer's name.
    DuplicateOf {
        /// Name of the leader layer whose search actually failed.
        leader: String,
        /// The leader's error.
        error: Box<SchedError>,
    },
    /// A seed score injected into the incumbent undercut the layer's
    /// best admissible lower bound, or cut every candidate of the
    /// layer — an inadmissible seed could silently prune the true
    /// optimum, so it is rejected with this typed error instead of
    /// letting the search return a non-optimal winner.
    ///
    /// Scores are carried as `f64::to_bits` patterns so the error type
    /// stays `Eq`; [`std::fmt::Display`] renders the numeric values.
    InadmissibleSeed {
        /// Name of the layer whose search was poisoned.
        layer: String,
        /// Bit pattern (`f64::to_bits`) of the injected seed score.
        seed_score_bits: u64,
        /// Bit pattern (`f64::to_bits`) of the layer's best admissible
        /// lower-bound score.
        bound_score_bits: u64,
    },
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::NoViableTiling { layer } => {
                write!(
                    f,
                    "no viable tiling for layer {layer:?} on this architecture"
                )
            }
            SchedError::Alloc(e) => write!(f, "on-chip allocation failed: {e}"),
            SchedError::Tiling(e) => write!(f, "tiling rejected: {e}"),
            SchedError::Stalled { remaining } => {
                write!(f, "scheduler stalled with {remaining} operations remaining")
            }
            SchedError::Timeline(e) => write!(f, "schedule timing overflowed: {e}"),
            SchedError::IllegalSchedule(e) => {
                write!(f, "winning schedule failed verification: {e}")
            }
            SchedError::Pruned => {
                write!(f, "candidate pruned: running score exceeded the incumbent")
            }
            SchedError::DuplicateOf { leader, error } => {
                write!(f, "search failed for identical layer {leader:?}: {error}")
            }
            SchedError::InadmissibleSeed {
                layer,
                seed_score_bits,
                bound_score_bits,
            } => {
                write!(
                    f,
                    "inadmissible seed for layer {layer:?}: seed score {} \
                     cuts below the best admissible lower bound {}",
                    f64::from_bits(*seed_score_bits),
                    f64::from_bits(*bound_score_bits)
                )
            }
        }
    }
}

impl Error for SchedError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SchedError::Alloc(e) => Some(e),
            SchedError::Tiling(e) => Some(e),
            SchedError::Timeline(e) => Some(e),
            SchedError::IllegalSchedule(e) => Some(e),
            SchedError::DuplicateOf { error, .. } => Some(error.as_ref()),
            _ => None,
        }
    }
}

impl From<AllocError> for SchedError {
    fn from(e: AllocError) -> Self {
        SchedError::Alloc(e)
    }
}

impl From<TilingError> for SchedError {
    fn from(e: TilingError) -> Self {
        SchedError::Tiling(e)
    }
}

impl From<TimelineError> for SchedError {
    fn from(e: TimelineError) -> Self {
        SchedError::Timeline(e)
    }
}

impl From<VerifyError> for SchedError {
    fn from(e: VerifyError) -> Self {
        SchedError::IllegalSchedule(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = SchedError::NoViableTiling {
            layer: "conv1".into(),
        };
        assert!(e.to_string().contains("conv1"));
        let e = SchedError::Stalled { remaining: 3 };
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn conversions_preserve_source() {
        let e: SchedError = AllocError::ZeroSize.into();
        assert!(matches!(e, SchedError::Alloc(_)));
        assert!(Error::source(&e).is_some());
        let e: SchedError = TilingError::TooManyOps {
            requested: 10,
            max: 5,
        }
        .into();
        assert!(matches!(e, SchedError::Tiling(_)));
    }

    #[test]
    fn duplicate_wrapper_names_the_leader_and_keeps_the_source() {
        let e = SchedError::DuplicateOf {
            leader: "conv2a".into(),
            error: Box::new(SchedError::NoViableTiling {
                layer: "conv2a".into(),
            }),
        };
        assert!(e.to_string().contains("conv2a"));
        assert!(e.to_string().contains("no viable tiling"));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn pruned_display_is_not_alarming() {
        assert!(SchedError::Pruned.to_string().contains("pruned"));
    }

    #[test]
    fn inadmissible_seed_round_trips_its_scores() {
        let e = SchedError::InadmissibleSeed {
            layer: "conv3".into(),
            seed_score_bits: 1.5f64.to_bits(),
            bound_score_bits: 2.5f64.to_bits(),
        };
        let msg = e.to_string();
        assert!(msg.contains("conv3"));
        assert!(msg.contains("1.5"));
        assert!(msg.contains("2.5"));
        // Bit-pattern fields keep the enum Eq.
        assert_eq!(e.clone(), e);
    }
}
