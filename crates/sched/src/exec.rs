//! Shared execution state: committing operation sets to the memory,
//! the timeline and the schedule record.
//!
//! Both the out-of-order scheduler and the static loop-order baseline
//! issue *operation sets* against the same machinery, so the
//! comparison between them is apples-to-apples (DESIGN.md §5).

use crate::error::SchedError;
use crate::priority::{plan_set, PlanEvent, TileAction};
use crate::program::{Command, Program};
use crate::stats::SearchStats;
use flexer_arch::{ArchConfig, PerfModel};
use flexer_sim::{MemOpKind, Schedule, ScheduleBuilder, TrafficClass};
use flexer_spm::{SpillPolicy, SpmMemory};
use flexer_tiling::{Dfg, OpId, TileId, TileKind};
use flexer_trace::{Lane, TraceDetail};
use std::collections::BTreeMap;

/// Mutable state of one scheduling run.
pub(crate) struct ExecState<'a> {
    dfg: &'a Dfg,
    perf: &'a dyn PerfModel,
    spill: &'a dyn SpillPolicy,
    cores: u32,
    spm: SpmMemory,
    /// Remaining operand references per tile (before unscheduled ops).
    uses: BTreeMap<TileId, u32>,
    /// End cycle of every scheduled op.
    op_end: Vec<u64>,
    /// Cycle at which a tile's current on-chip copy is valid.
    tile_ready: BTreeMap<TileId, u64>,
    /// Last cycle at which a tile is read or written by a scheduled op.
    tile_busy: BTreeMap<TileId, u64>,
    builder: ScheduleBuilder,
    scheduled: Vec<bool>,
    remaining: usize,
    commands: Vec<Command>,
    stats: SearchStats,
}

impl<'a> ExecState<'a> {
    pub(crate) fn new(
        dfg: &'a Dfg,
        arch: &'a ArchConfig,
        perf: &'a dyn PerfModel,
        spill: &'a dyn SpillPolicy,
    ) -> Self {
        let uses = dfg.tiles().map(|t| (t, dfg.initial_uses(t))).collect();
        Self {
            dfg,
            perf,
            spill,
            cores: arch.cores(),
            spm: SpmMemory::new(arch.spm_bytes()),
            uses,
            op_end: vec![0; dfg.num_ops()],
            tile_ready: BTreeMap::new(),
            tile_busy: BTreeMap::new(),
            builder: ScheduleBuilder::new(arch.cores()),
            scheduled: vec![false; dfg.num_ops()],
            remaining: dfg.num_ops(),
            commands: Vec::new(),
            stats: SearchStats::default(),
        }
    }

    pub(crate) fn spm(&self) -> &SpmMemory {
        &self.spm
    }

    pub(crate) fn uses(&self) -> &BTreeMap<TileId, u32> {
        &self.uses
    }

    /// Splits the borrow so the transactional evaluator can mutate the
    /// scratchpad while reading the use counts.
    pub(crate) fn spm_and_uses(&mut self) -> (&mut SpmMemory, &BTreeMap<TileId, u32>) {
        (&mut self.spm, &self.uses)
    }

    /// Counters accumulated by committed sets (evictions, compactions).
    pub(crate) fn stats(&self) -> &SearchStats {
        &self.stats
    }

    pub(crate) fn remaining(&self) -> usize {
        self.remaining
    }

    /// Running `(latency, transfer_bytes)` of the partial schedule.
    /// Both components are monotone over committed sets, so the pair
    /// lower-bounds the finished schedule's cost — the basis of the
    /// branch-and-bound early exit.
    pub(crate) fn running_cost(&self) -> (u64, u64) {
        (
            self.builder.timeline().horizon(),
            self.builder.transfer_bytes(),
        )
    }

    /// Commits one operation set: plans and pins its memory, records
    /// spills, loads, compute and final stores, updates use counts and
    /// returns the ids newly woken up (paper Algorithm 1 lines 21-24).
    ///
    /// At [`TraceDetail::Memory`] the commit is recorded into `lane` as
    /// a `commit` span carrying the plan's eviction / compaction / load
    /// shape, followed by an SPM-occupancy gauge sample.
    pub(crate) fn commit_set(
        &mut self,
        ops: &[OpId],
        lane: &mut Lane,
    ) -> Result<Vec<OpId>, SchedError> {
        debug_assert!(!ops.is_empty() && ops.len() <= self.cores as usize);
        debug_assert!(ops.windows(2).all(|w| w[0] < w[1]));
        let commit_span = lane
            .records(TraceDetail::Memory)
            .then(|| lane.enter("commit"));
        let plan = match plan_set(self.dfg, &mut self.spm, &self.uses, self.spill, ops) {
            Ok(plan) => plan,
            Err(e) => {
                if let Some(guard) = commit_span {
                    lane.attr("outcome", "plan-failed");
                    lane.exit(guard);
                }
                return Err(SchedError::from(e));
            }
        };
        if commit_span.is_some() {
            lane.attr("ops", ops.len());
            lane.attr("evictions", plan.evictions.len());
            lane.attr(
                "dirty_evictions",
                plan.evictions.iter().filter(|ev| ev.dirty).count(),
            );
            lane.attr("compaction_bytes", plan.compaction_bytes);
            lane.attr(
                "loads",
                plan.tiles
                    .iter()
                    .filter(|(_, _, a)| *a == TileAction::Load)
                    .count(),
            );
        }
        self.stats.evictions += plan.evictions.len() as u64;
        if plan.compaction_bytes > 0 {
            self.stats.compactions += 1;
        }

        // The remaining work has several fallible timeline recordings;
        // running it in a closure lets the one exit path below close
        // the commit span whatever happens.
        let result = (|| -> Result<Vec<OpId>, SchedError> {
            // On-chip compaction keeps the DMA engine busy but moves no
            // off-chip data.
            if plan.compaction_bytes > 0 {
                self.builder.record_compaction(
                    plan.compaction_bytes,
                    self.perf.dma_cycles(plan.compaction_bytes),
                )?;
            }

            // Lower the plan's event trace into buffer commands, in the
            // exact order the allocator performed them.
            for event in &plan.events {
                self.commands.push(match *event {
                    PlanEvent::Move(m) => Command::Move {
                        tile: m.tile,
                        bytes: m.bytes,
                        from: m.from,
                        to: m.to,
                    },
                    PlanEvent::Evict(ev) if ev.dirty => Command::Spill {
                        tile: ev.tile,
                        address: ev.address,
                        bytes: ev.bytes,
                    },
                    PlanEvent::Evict(ev) => Command::Discard {
                        tile: ev.tile,
                        address: ev.address,
                        bytes: ev.bytes,
                    },
                    PlanEvent::Place {
                        tile,
                        bytes,
                        address,
                        ref action,
                    } => match action {
                        TileAction::AllocOutput => Command::Reserve {
                            tile,
                            address,
                            bytes,
                        },
                        _ if self.dfg.residency().input_resident
                            && tile.kind() == TileKind::Input =>
                        {
                            Command::GatherIn {
                                tile,
                                address,
                                bytes,
                            }
                        }
                        _ => Command::Load {
                            tile,
                            address,
                            bytes,
                        },
                    },
                });
            }

            // Spill write-backs for dirty evictions. Clean evictions cost
            // nothing (their data is still in DRAM).
            for ev in &plan.evictions {
                self.tile_ready.remove(&ev.tile);
                if ev.dirty {
                    debug_assert_eq!(ev.tile.kind(), TileKind::Output);
                    let earliest = self.tile_busy.get(&ev.tile).copied().unwrap_or(0);
                    self.builder.record_mem_op_after(
                        MemOpKind::Spill,
                        TrafficClass::Psum,
                        ev.tile,
                        ev.bytes,
                        self.perf.dma_cycles(ev.bytes),
                        earliest,
                        None,
                    )?;
                }
            }

            // Loads for missing inputs, weights and spilled partial sums.
            for (tile, bytes, action) in &plan.tiles {
                if *action != TileAction::Load {
                    if *action == TileAction::AllocOutput {
                        // Fresh accumulator: available immediately.
                        self.tile_ready.insert(*tile, 0);
                    }
                    continue;
                }
                let class = match tile.kind() {
                    TileKind::Input => TrafficClass::Input,
                    TileKind::Weight => TrafficClass::Weight,
                    TileKind::Output => TrafficClass::Psum,
                };
                // The tag names one representative consumer for
                // diagnostics; a tile shared by several ops of the set
                // has a single load. The validator checks every consumer
                // of the tile (`validate_schedule` check 5b), not just
                // the tagged one.
                let for_op = ops
                    .iter()
                    .copied()
                    .find(|&id| self.dfg.op(id).operands().any(|t| t == *tile));
                // A resident input tensor is gathered on-chip: the DMA
                // engine is busy for the same span but no DRAM bytes
                // move. Psum reloads of spilled accumulators still
                // round-trip through DRAM.
                let resident_gather =
                    self.dfg.residency().input_resident && tile.kind() == TileKind::Input;
                let (_, end) = if resident_gather {
                    self.builder.record_resident_mem_op_after(
                        MemOpKind::Load,
                        class,
                        *tile,
                        *bytes,
                        self.perf.dma_cycles(*bytes),
                        0,
                        for_op,
                    )?
                } else {
                    self.builder.record_mem_op(
                        MemOpKind::Load,
                        class,
                        *tile,
                        *bytes,
                        self.perf.dma_cycles(*bytes),
                        for_op,
                    )?
                };
                self.tile_ready.insert(*tile, end);
            }

            // Spatial reuse: tiles consumed by several ops of this set
            // (paper Figure 11).
            {
                let mut degree: BTreeMap<TileId, u32> = BTreeMap::new();
                for &id in ops {
                    for tile in self.dfg.op(id).operands() {
                        *degree.entry(tile).or_default() += 1;
                    }
                }
                for (tile, sharers) in degree {
                    if sharers >= 2 {
                        self.builder.record_shared_tile(
                            tile.kind(),
                            self.dfg.tile_bytes(tile),
                            sharers,
                        );
                    }
                }
            }

            // Issue the compute operations on distinct cores, earliest-free
            // cores first.
            let mut free_cores: Vec<u32> = (0..self.cores).collect();
            free_cores.sort_by_key(|&c| (self.builder.timeline().core_free(c), c));
            let mut woken = Vec::new();
            for (&id, &core) in ops.iter().zip(free_cores.iter()) {
                let op = self.dfg.op(id);
                let mut earliest = 0u64;
                for tile in op.operands() {
                    earliest = earliest.max(self.tile_ready.get(&tile).copied().unwrap_or(0));
                }
                if let Some(pred) = self.dfg.pred(id) {
                    debug_assert!(self.scheduled[pred.index()]);
                    earliest = earliest.max(self.op_end[pred.index()]);
                }
                let (_, end) = self
                    .builder
                    .record_compute(id, core, earliest, op.latency())?;
                self.commands.push(Command::Exec {
                    op: id,
                    core,
                    input: self.spm.address_of(op.input()).expect("input resident"),
                    weight: self.spm.address_of(op.weight()).expect("weight resident"),
                    output: self.spm.address_of(op.output()).expect("output resident"),
                    accumulate: op.needs_psum(),
                });
                self.op_end[id.index()] = end;
                for tile in op.operands() {
                    let busy = self.tile_busy.entry(tile).or_default();
                    *busy = (*busy).max(end);
                }
                // The op (re)writes its accumulator.
                self.tile_ready.insert(op.output(), end);
                self.spm.set_dirty(op.output(), true);

                // Bookkeeping: use counts and wakeup.
                for tile in op.operands() {
                    if let Some(u) = self.uses.get_mut(&tile) {
                        *u = u.saturating_sub(1);
                    }
                    self.spm.decrement_uses(tile);
                }
                self.scheduled[id.index()] = true;
                self.remaining -= 1;
                if let Some(succ) = self.dfg.succ(id) {
                    woken.push(succ);
                }

                // Mandatory eager store of finished outputs. A resident
                // output tensor is scattered into the reserved SPM
                // region instead — same DMA occupancy, zero DRAM bytes.
                if op.is_final() {
                    let bytes = self.dfg.tile_bytes(op.output());
                    let address = self.spm.address_of(op.output()).expect("output resident");
                    if self.dfg.residency().output_resident {
                        self.builder.record_resident_mem_op_after(
                            MemOpKind::Store,
                            TrafficClass::Output,
                            op.output(),
                            bytes,
                            self.perf.dma_cycles(bytes),
                            end,
                            None,
                        )?;
                        self.commands.push(Command::ScatterOut {
                            tile: op.output(),
                            address,
                            bytes,
                        });
                    } else {
                        self.builder.record_mem_op_after(
                            MemOpKind::Store,
                            TrafficClass::Output,
                            op.output(),
                            bytes,
                            self.perf.dma_cycles(bytes),
                            end,
                            None,
                        )?;
                        self.commands.push(Command::Store {
                            tile: op.output(),
                            address,
                            bytes,
                        });
                    }
                    self.spm.set_dirty(op.output(), false);
                }
            }

            self.spm.unpin_all();
            self.builder.record_spm_utilization(self.spm.utilization());
            Ok(woken)
        })();
        if let Some(guard) = commit_span {
            if result.is_err() {
                lane.attr("outcome", "timeline-failed");
            }
            lane.exit(guard);
            lane.counter("spm_used_bytes", self.spm.used_bytes());
        }
        result
    }

    /// Finalizes the schedule and its lowered command program.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if operations remain unscheduled.
    pub(crate) fn finish(self) -> (Schedule, Program) {
        debug_assert_eq!(self.remaining, 0, "unscheduled operations remain");
        let program = Program::new(self.spm.capacity(), self.cores, self.commands);
        (self.builder.finish(), program)
    }
}
