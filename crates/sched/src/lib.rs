//! Schedulers: Flexer's out-of-order list scheduler, the static
//! loop-order baseline, and the Algorithm-1 search driver.
//!
//! The pipeline mirrors the paper's Figure 4:
//!
//! 1. [`search_layer`] (Algorithm 1) iterates over all viable tilings
//!    and dataflows, calls the out-of-order scheduler
//!    ([`OooScheduler`], `GetSchedule`) for each, and returns the
//!    schedule minimizing a configurable [`Metric`]
//!    (default `latency x transferred-data`).
//! 2. Each `GetSchedule` run keeps a ready queue, forms *operation
//!    sets* of up to `n` ready operations ([`generate_sets`], §4.2's
//!    dataflow-map pruning), ranks them with a [`PriorityPolicy`]
//!    (§4.3: memory benefit, then utilization, then memory-op
//!    latency), manages the shared buffer through `flexer-spm`, and
//!    records timing through `flexer-sim`.
//! 3. [`search_layer_static`] runs the same exhaustive search with the
//!    in-order loop-order scheduler ([`StaticScheduler`]) to produce
//!    the paper's baseline: the best static loop-order schedule.
//!
//! # Examples
//!
//! ```
//! use flexer_arch::{ArchConfig, ArchPreset};
//! use flexer_model::ConvLayer;
//! use flexer_sched::{search_layer, search_layer_static, SearchOptions};
//!
//! let layer = ConvLayer::new("conv", 32, 14, 14, 32)?;
//! let arch = ArchConfig::preset(ArchPreset::Arch1);
//! let opts = SearchOptions::quick();
//! let ooo = search_layer(&layer, &arch, &opts)?;
//! let base = search_layer_static(&layer, &arch, &opts)?;
//! // Both searches return legal schedules with positive latency.
//! assert!(ooo.schedule.latency() > 0);
//! assert!(base.schedule.latency() > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bound;
mod combo;
mod error;
mod exec;
mod memo;
mod metric;
mod ooo;
mod priority;
mod program;
mod search;
mod static_sched;
mod stats;
mod verify;
pub mod wire;

pub use bound::{lower_bound, Cutoff, Incumbent, ScheduleBound};
pub use combo::{dataflow_class, generate_sets, ComboOptions, DataflowClass};
pub use error::SchedError;
pub use memo::MemoCache;
pub use metric::Metric;
pub use ooo::{EvalMode, OooScheduler};
pub use priority::{PriorityPolicy, SetEvaluation};
pub use program::{Command, Program, ProgramError};
pub use search::{
    search_layer, search_layer_cached, search_layer_deadline, search_layer_static,
    search_layer_static_cached, search_layer_static_deadline, search_layer_traced, search_network,
    search_network_cached, search_network_deadline, search_network_layerwise,
    search_network_static, search_network_static_cached, search_network_static_deadline,
    search_network_static_traced, search_network_traced, search_network_traced_cached, solve_layer,
    sweep_tilings, verify_layer_result, LayerSearchResult, MemoKey, SchedulePoint, SchedulerKind,
    SearchOptions, SearchOutcome, SeedOptions, SpillPolicyChoice, TraceOptions,
};
pub use static_sched::StaticScheduler;
pub use stats::{SearchStats, StatKind};
pub use verify::{verify_schedule_program, VerifyError};
