//! Memoization of search winners.

use crate::search::MemoKey;
use flexer_tiling::{Dataflow, TilingFactors};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Remembers the winning `(tiling, dataflow)` of previous layer
/// searches — the paper's suggested "memory function to remember the
/// best tiling" that "could significantly reduce the runtime of the
/// scheduler" (§3).
///
/// Keys are [`MemoKey`]s: the layer *shape* (not its name), the
/// hardware configuration and every search knob, hashed structurally,
/// so distinct searches never collide while repeated shapes —
/// ResNet-50 alone has its bottleneck geometry dozens of times — skip
/// the exhaustive search and only re-run the single winning schedule.
///
/// The cache is internally synchronized and can be shared across
/// threads by reference.
///
/// # Examples
///
/// ```
/// use flexer_sched::MemoCache;
///
/// let cache = MemoCache::new();
/// assert_eq!(cache.len(), 0);
/// assert!(cache.is_empty());
/// ```
#[derive(Debug, Default)]
pub struct MemoCache {
    inner: Mutex<HashMap<MemoKey, (TilingFactors, Dataflow)>>,
}

impl MemoCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a search key.
    #[must_use]
    pub fn get(&self, key: &MemoKey) -> Option<(TilingFactors, Dataflow)> {
        self.inner.lock().get(key).copied()
    }

    /// Records a search winner.
    pub fn insert(&self, key: MemoKey, factors: TilingFactors, dataflow: Dataflow) {
        self.inner.lock().insert(key, (factors, dataflow));
    }

    /// Number of cached winners.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{SchedulerKind, SearchOptions};
    use flexer_arch::{ArchConfig, ArchPreset};
    use flexer_model::ConvLayer;

    fn key(layer: &ConvLayer, kind: SchedulerKind) -> MemoKey {
        let arch = ArchConfig::preset(ArchPreset::Arch1);
        SearchOptions::quick().memo_key(layer, &arch, kind)
    }

    #[test]
    fn round_trip() {
        let cache = MemoCache::new();
        let layer = ConvLayer::new("c", 8, 8, 8, 8).unwrap();
        let f = TilingFactors::normalized(&layer, 2, 2, 1, 1);
        let k = key(&layer, SchedulerKind::Ooo);
        cache.insert(k.clone(), f, Dataflow::Csk);
        assert_eq!(cache.get(&k), Some((f, Dataflow::Csk)));
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
        assert!(cache.get(&key(&layer, SchedulerKind::Static)).is_none());
    }

    #[test]
    fn insert_overwrites() {
        let cache = MemoCache::new();
        let layer = ConvLayer::new("c", 8, 8, 8, 8).unwrap();
        let f1 = TilingFactors::normalized(&layer, 2, 2, 1, 1);
        let f2 = TilingFactors::normalized(&layer, 4, 1, 1, 1);
        let k = key(&layer, SchedulerKind::Ooo);
        cache.insert(k.clone(), f1, Dataflow::Csk);
        cache.insert(k.clone(), f2, Dataflow::Kcs);
        assert_eq!(cache.get(&k), Some((f2, Dataflow::Kcs)));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn shared_across_threads() {
        let cache = MemoCache::new();
        let layer = ConvLayer::new("c", 8, 8, 8, 8).unwrap();
        let other = ConvLayer::new("c", 16, 8, 8, 8).unwrap();
        let f = TilingFactors::normalized(&layer, 2, 2, 1, 1);
        std::thread::scope(|s| {
            s.spawn(|| cache.insert(key(&layer, SchedulerKind::Ooo), f, Dataflow::Kcs));
            s.spawn(|| cache.insert(key(&other, SchedulerKind::Ooo), f, Dataflow::Sck));
        });
        assert_eq!(cache.len(), 2);
    }
}
