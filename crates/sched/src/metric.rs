//! Score encoding for the search's atomic incumbent.
//!
//! The ranking [`Metric`] itself lives in `flexer-solve` (the
//! analytical solver scores candidates with the same objective the
//! exact search minimizes) and is re-exported here; this module keeps
//! the lock-free encoding the shared [`crate::Incumbent`] relies on.

pub use flexer_solve::Metric;

/// Encodes a non-negative score so that `u64` integer order matches
/// `f64` numeric order, enabling `AtomicU64::fetch_min` on scores.
///
/// Standard sign-magnitude trick: flip all bits of negative floats and
/// the sign bit of non-negative ones. Total order matches IEEE-754
/// numeric order for all non-NaN values, including `+inf`.
pub(crate) fn encode_score(score: f64) -> u64 {
    let bits = score.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// Inverse of [`encode_score`].
pub(crate) fn decode_score(encoded: u64) -> f64 {
    let bits = if encoded >> 63 == 1 {
        encoded & !(1 << 63)
    } else {
        !encoded
    };
    f64::from_bits(bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexported_metric_defaults_to_the_paper_objective() {
        assert_eq!(Metric::default(), Metric::LatencyTimesTransfer);
        assert_eq!(Metric::default().score(10, 20), 200.0);
    }

    #[test]
    fn score_encoding_preserves_order() {
        let scores = [0.0, 1.0, 1.5, 1e9, 1e300, f64::INFINITY];
        for pair in scores.windows(2) {
            assert!(
                encode_score(pair[0]) < encode_score(pair[1]),
                "{} vs {}",
                pair[0],
                pair[1]
            );
        }
        for s in scores {
            assert_eq!(decode_score(encode_score(s)), s, "{s}");
        }
        // Negative scores (not produced by any metric, but the encoding
        // is total over non-NaN floats) still order correctly.
        assert!(encode_score(-1.0) < encode_score(0.0));
        assert_eq!(decode_score(encode_score(-2.5)), -2.5);
    }
}
