//! The out-of-order list scheduler (`GetSchedule`, Algorithm 1).

use crate::combo::{generate_sets, ComboOptions};
use crate::error::SchedError;
use crate::exec::ExecState;
use crate::priority::{PriorityPolicy, SetEvaluation};
use flexer_arch::{ArchConfig, PerfModel};
use crate::program::Program;
use flexer_sim::Schedule;
use flexer_spm::{FlexerSpill, SpillPolicy};
use flexer_tiling::{Dfg, OpId};
use std::collections::BTreeSet;

/// Flexer's out-of-order scheduler for one data-flow graph — the
/// paper's `GetSchedule` (Algorithm 1 lines 12-27).
///
/// Operates like a list instruction scheduler for a multi-issue
/// machine where each NPU is a functional unit (§3): every step it
/// forms candidate sets of ready operations ([`generate_sets`], with
/// §4.2's dataflow-map pruning), evaluates their memory consequences
/// against the shared buffer, selects the highest-priority set
/// ([`PriorityPolicy`], §4.3) and issues it, inserting loads and
/// spills on the fly.
///
/// # Examples
///
/// ```
/// use flexer_arch::{ArchConfig, ArchPreset, SystolicModel};
/// use flexer_model::ConvLayer;
/// use flexer_sched::OooScheduler;
/// use flexer_tiling::{Dataflow, Dfg, TilingFactors};
///
/// let arch = ArchConfig::preset(ArchPreset::Arch1);
/// let layer = ConvLayer::new("c", 32, 14, 14, 32)?;
/// let model = SystolicModel::new(&arch);
/// let factors = TilingFactors::normalized(&layer, 2, 2, 2, 2);
/// let dfg = Dfg::build(&layer, factors, Dataflow::Csk, &model, &arch)?;
///
/// let schedule = OooScheduler::new(&dfg, &arch, &model).schedule()?;
/// assert_eq!(schedule.compute().len(), dfg.num_ops());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Copy)]
pub struct OooScheduler<'a> {
    dfg: &'a Dfg,
    arch: &'a ArchConfig,
    perf: &'a dyn PerfModel,
    spill: &'a dyn SpillPolicy,
    priority: PriorityPolicy,
    combo: ComboOptions,
}

impl std::fmt::Debug for OooScheduler<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OooScheduler")
            .field("dfg", &self.dfg.to_string())
            .field("priority", &self.priority)
            .field("combo", &self.combo)
            .finish_non_exhaustive()
    }
}

impl<'a> OooScheduler<'a> {
    /// Creates a scheduler with the paper's defaults: Algorithm-2
    /// spilling, the §4.3 priority function and default combination
    /// budgets.
    #[must_use]
    pub fn new(dfg: &'a Dfg, arch: &'a ArchConfig, perf: &'a dyn PerfModel) -> Self {
        Self {
            dfg,
            arch,
            perf,
            spill: &FlexerSpill,
            priority: PriorityPolicy::FlexerDefault,
            combo: ComboOptions::default(),
        }
    }

    /// Replaces the spill-victim policy (Table 2's MemPolicy ablations).
    #[must_use]
    pub fn with_spill(mut self, spill: &'a dyn SpillPolicy) -> Self {
        self.spill = spill;
        self
    }

    /// Replaces the set-priority policy (Table 2's Priority ablations).
    #[must_use]
    pub fn with_priority(mut self, priority: PriorityPolicy) -> Self {
        self.priority = priority;
        self
    }

    /// Replaces the combination budgets.
    #[must_use]
    pub fn with_combo(mut self, combo: ComboOptions) -> Self {
        self.combo = combo;
        self
    }

    /// Runs the scheduler to completion.
    ///
    /// # Errors
    ///
    /// * [`SchedError::Alloc`] when even a single operation's working
    ///   set cannot be placed in the on-chip buffer;
    /// * [`SchedError::Stalled`] if the ready queue empties while
    ///   operations remain (unreachable for well-formed DFGs).
    pub fn schedule(&self) -> Result<Schedule, SchedError> {
        self.schedule_with_program().map(|(schedule, _)| schedule)
    }

    /// Runs the scheduler to completion and also lowers the result to
    /// an executable NPU command [`Program`] with concrete buffer
    /// addresses.
    ///
    /// # Errors
    ///
    /// As [`OooScheduler::schedule`].
    pub fn schedule_with_program(&self) -> Result<(Schedule, Program), SchedError> {
        let mut state = ExecState::new(self.dfg, self.arch, self.perf, self.spill);
        let mut ready: BTreeSet<OpId> = self.dfg.initial_ready().collect();
        let cores = self.arch.cores() as usize;
        let dma = |b: u64| self.perf.dma_cycles(b);

        while state.remaining() > 0 {
            if ready.is_empty() {
                return Err(SchedError::Stalled {
                    remaining: state.remaining(),
                });
            }
            let ready_vec: Vec<OpId> = ready.iter().copied().collect();

            // Try the widest sets first; shrink when memory pressure
            // makes every candidate of that width infeasible.
            let mut selected: Option<Vec<OpId>> = None;
            let mut width = cores.min(ready_vec.len());
            while width >= 1 {
                let sets = generate_sets(self.dfg, state.spm(), &ready_vec, width, &self.combo);
                let evals: Vec<SetEvaluation> = sets
                    .iter()
                    .filter_map(|set| {
                        SetEvaluation::evaluate(
                            self.dfg,
                            state.spm(),
                            state.uses(),
                            self.spill,
                            self.arch.cores(),
                            &dma,
                            set,
                        )
                    })
                    .collect();
                if let Some(best) = self.priority.select(&evals) {
                    selected = Some(best.ops.clone());
                    break;
                }
                width -= 1;
            }
            let Some(set) = selected else {
                // Surface the underlying allocation failure of the
                // cheapest single-op set.
                let probe = crate::priority::plan_probe(
                    self.dfg,
                    state.spm(),
                    state.uses(),
                    self.spill,
                    &ready_vec[..1],
                );
                return Err(match probe {
                    Err(e) => SchedError::Alloc(e),
                    Ok(()) => SchedError::Stalled {
                        remaining: state.remaining(),
                    },
                });
            };

            let woken = state.commit_set(&set)?;
            for id in &set {
                ready.remove(id);
            }
            ready.extend(woken);
        }
        Ok(state.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexer_arch::{ArchConfigBuilder, ArchPreset, SystolicModel};
    use flexer_model::ConvLayer;
    use flexer_sim::{validate_schedule, MemOpKind, TrafficClass};
    use flexer_spm::SmallestFirstSpill;
    use flexer_tiling::{Dataflow, TilingFactors};

    fn dfg_for(layer: &ConvLayer, arch: &ArchConfig, k: u32, c: u32, s: u32) -> Dfg {
        let model = SystolicModel::new(arch);
        let factors = TilingFactors::normalized(layer, k, c, s, s);
        Dfg::build(layer, factors, Dataflow::Csk, &model, arch).unwrap()
    }

    #[test]
    fn fills_all_cores_when_memory_allows() {
        let arch = ArchConfig::preset(ArchPreset::Arch8);
        let model = SystolicModel::new(&arch);
        let layer = ConvLayer::new("w", 32, 16, 16, 64).unwrap();
        let dfg = dfg_for(&layer, &arch, 8, 1, 2);
        let sched = OooScheduler::new(&dfg, &arch, &model).schedule().unwrap();
        validate_schedule(&dfg, &sched).unwrap();
        // All four cores execute work.
        for core in 0..arch.cores() {
            assert!(sched.core_busy(core) > 0, "core {core} idle");
        }
    }

    #[test]
    fn degrades_to_narrow_sets_under_memory_pressure() {
        // The buffer holds one working set but never two.
        let layer = ConvLayer::new("n", 64, 8, 8, 64).unwrap();
        let arch = ArchConfigBuilder::new(4, 30 * 1024, 32).build().unwrap();
        let model = SystolicModel::new(&arch);
        let dfg = dfg_for(&layer, &arch, 2, 1, 1);
        let sched = OooScheduler::new(&dfg, &arch, &model).schedule().unwrap();
        validate_schedule(&dfg, &sched).unwrap();
        // Everything ran on one core at a time.
        let busy: Vec<u64> = (0..4).map(|c| sched.core_busy(c)).collect();
        assert!(busy.iter().filter(|&&b| b > 0).count() >= 1);
        assert!(sched.compute_utilization() <= 0.5);
    }

    #[test]
    fn spilled_partial_sums_reload_as_psum_traffic() {
        // Long accumulation chains across many output tiles with a
        // buffer too small to keep them all: psums must round-trip.
        let layer = ConvLayer::new("p", 128, 16, 16, 128).unwrap();
        let arch = ArchConfigBuilder::new(2, 24 * 1024, 32).build().unwrap();
        let model = SystolicModel::new(&arch);
        let dfg = dfg_for(&layer, &arch, 8, 4, 2);
        let sched = OooScheduler::new(&dfg, &arch, &model).schedule().unwrap();
        validate_schedule(&dfg, &sched).unwrap();
        let psum = sched.traffic().class_bytes(TrafficClass::Psum);
        if psum > 0 {
            // Write-backs and reloads both appear.
            let spills = sched
                .mem_ops()
                .iter()
                .any(|m| m.kind == MemOpKind::Spill && m.class == TrafficClass::Psum);
            let reloads = sched
                .mem_ops()
                .iter()
                .any(|m| m.kind == MemOpKind::Load && m.class == TrafficClass::Psum);
            assert!(spills, "psum traffic without write-backs");
            assert!(reloads == spills || psum > 0);
        }
        // Either way the schedule stays legal and stores everything.
        assert!(
            sched.traffic().class_bytes(TrafficClass::Output)
                >= layer.output_bytes(arch.element_size())
        );
    }

    #[test]
    fn builder_knobs_change_behaviour_not_legality() {
        let arch = ArchConfig::preset(ArchPreset::Arch1);
        let model = SystolicModel::new(&arch);
        let layer = ConvLayer::new("k", 64, 16, 16, 64).unwrap();
        let dfg = dfg_for(&layer, &arch, 4, 2, 2);
        for priority in [
            PriorityPolicy::FlexerDefault,
            PriorityPolicy::MinTransfer,
            PriorityPolicy::MinSpill,
        ] {
            let sched = OooScheduler::new(&dfg, &arch, &model)
                .with_priority(priority)
                .with_spill(&SmallestFirstSpill)
                .with_combo(ComboOptions {
                    width_cap: 4,
                    max_combos: 64,
                    max_sets: 8,
                    prune: true,
                })
                .schedule()
                .unwrap();
            validate_schedule(&dfg, &sched).unwrap_or_else(|e| panic!("{priority}: {e}"));
        }
    }

    #[test]
    fn repeated_runs_are_identical() {
        let arch = ArchConfig::preset(ArchPreset::Arch5);
        let model = SystolicModel::new(&arch);
        let layer = ConvLayer::new("d", 96, 16, 16, 96).unwrap();
        let dfg = dfg_for(&layer, &arch, 4, 4, 2);
        let a = OooScheduler::new(&dfg, &arch, &model).schedule().unwrap();
        let b = OooScheduler::new(&dfg, &arch, &model).schedule().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn debug_format_is_informative() {
        let arch = ArchConfig::preset(ArchPreset::Arch1);
        let model = SystolicModel::new(&arch);
        let layer = ConvLayer::new("f", 16, 8, 8, 16).unwrap();
        let dfg = dfg_for(&layer, &arch, 1, 1, 1);
        let s = format!("{:?}", OooScheduler::new(&dfg, &arch, &model));
        assert!(s.contains("OooScheduler"));
        assert!(s.contains("priority"));
    }
}
