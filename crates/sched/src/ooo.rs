//! The out-of-order list scheduler (`GetSchedule`, Algorithm 1).

use crate::bound::Cutoff;
use crate::combo::{generate_sets_baseline, generate_sets_into, ComboOptions, ComboScratch};
use crate::error::SchedError;
use crate::exec::ExecState;
use crate::priority::{EvalScratch, PriorityPolicy, SetEvaluation};
use crate::program::Program;
use crate::stats::SearchStats;
use flexer_arch::{ArchConfig, PerfModel};
use flexer_sim::Schedule;
use flexer_spm::{FlexerSpill, SpillPolicy};
use flexer_tiling::{Dfg, OpId};
use flexer_trace::{Lane, TraceDetail};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::time::Instant;

/// How candidate operation sets are trial-planned against the shared
/// scratchpad each scheduling step.
///
/// Both modes produce byte-identical schedules; they differ only in
/// cost. Transactional planning journals the allocator's mutations and
/// undoes them (`O(mutations)` per candidate), while the baseline
/// deep-clones the whole block map per candidate — the behaviour of
/// the original implementation, kept as a reference and as the
/// benchmark baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EvalMode {
    /// Checkpoint/rollback on the live scratchpad (default).
    #[default]
    Transactional,
    /// The pre-transactional reference path: clone-per-candidate
    /// evaluation and per-combination allocating set generation. Kept
    /// as the benchmark baseline; schedules are byte-identical.
    CloneBaseline,
}

/// Flexer's out-of-order scheduler for one data-flow graph — the
/// paper's `GetSchedule` (Algorithm 1 lines 12-27).
///
/// Operates like a list instruction scheduler for a multi-issue
/// machine where each NPU is a functional unit (§3): every step it
/// forms candidate sets of ready operations ([`generate_sets`], with
/// §4.2's dataflow-map pruning), evaluates their memory consequences
/// against the shared buffer, selects the highest-priority set
/// ([`PriorityPolicy`], §4.3) and issues it, inserting loads and
/// spills on the fly.
///
/// # Examples
///
/// ```
/// use flexer_arch::{ArchConfig, ArchPreset, SystolicModel};
/// use flexer_model::ConvLayer;
/// use flexer_sched::OooScheduler;
/// use flexer_tiling::{Dataflow, Dfg, TilingFactors};
///
/// let arch = ArchConfig::preset(ArchPreset::Arch1);
/// let layer = ConvLayer::new("c", 32, 14, 14, 32)?;
/// let model = SystolicModel::new(&arch);
/// let factors = TilingFactors::normalized(&layer, 2, 2, 2, 2);
/// let dfg = Dfg::build(&layer, factors, Dataflow::Csk, &model, &arch)?;
///
/// let schedule = OooScheduler::new(&dfg, &arch, &model).schedule()?;
/// assert_eq!(schedule.compute().len(), dfg.num_ops());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Copy)]
pub struct OooScheduler<'a> {
    dfg: &'a Dfg,
    arch: &'a ArchConfig,
    perf: &'a dyn PerfModel,
    spill: &'a dyn SpillPolicy,
    priority: PriorityPolicy,
    combo: ComboOptions,
    eval_mode: EvalMode,
    cutoff: Option<Cutoff<'a>>,
}

impl std::fmt::Debug for OooScheduler<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OooScheduler")
            .field("dfg", &self.dfg.to_string())
            .field("priority", &self.priority)
            .field("combo", &self.combo)
            .field("eval_mode", &self.eval_mode)
            .finish_non_exhaustive()
    }
}

impl<'a> OooScheduler<'a> {
    /// Creates a scheduler with the paper's defaults: Algorithm-2
    /// spilling, the §4.3 priority function and default combination
    /// budgets.
    #[must_use]
    pub fn new(dfg: &'a Dfg, arch: &'a ArchConfig, perf: &'a dyn PerfModel) -> Self {
        Self {
            dfg,
            arch,
            perf,
            spill: &FlexerSpill,
            priority: PriorityPolicy::FlexerDefault,
            combo: ComboOptions::default(),
            eval_mode: EvalMode::default(),
            cutoff: None,
        }
    }

    /// Replaces the spill-victim policy (Table 2's MemPolicy ablations).
    #[must_use]
    pub fn with_spill(mut self, spill: &'a dyn SpillPolicy) -> Self {
        self.spill = spill;
        self
    }

    /// Replaces the set-priority policy (Table 2's Priority ablations).
    #[must_use]
    pub fn with_priority(mut self, priority: PriorityPolicy) -> Self {
        self.priority = priority;
        self
    }

    /// Replaces the combination budgets.
    #[must_use]
    pub fn with_combo(mut self, combo: ComboOptions) -> Self {
        self.combo = combo;
        self
    }

    /// Replaces the candidate-evaluation mode (see [`EvalMode`]).
    #[must_use]
    pub fn with_eval_mode(mut self, eval_mode: EvalMode) -> Self {
        self.eval_mode = eval_mode;
        self
    }

    /// Installs a branch-and-bound cutoff: the run aborts with
    /// [`SchedError::Pruned`] as soon as its running score strictly
    /// exceeds the cutoff's incumbent. Latency and transferred bytes
    /// only grow per committed step, so an aborted candidate provably
    /// could not have produced a schedule scoring at or below the
    /// incumbent.
    #[must_use]
    pub fn with_cutoff(mut self, cutoff: Cutoff<'a>) -> Self {
        self.cutoff = Some(cutoff);
        self
    }

    /// Runs the scheduler to completion.
    ///
    /// # Errors
    ///
    /// * [`SchedError::Alloc`] when even a single operation's working
    ///   set cannot be placed in the on-chip buffer;
    /// * [`SchedError::Stalled`] if the ready queue empties while
    ///   operations remain (unreachable for well-formed DFGs).
    pub fn schedule(&self) -> Result<Schedule, SchedError> {
        self.schedule_with_program().map(|(schedule, _)| schedule)
    }

    /// Runs the scheduler to completion and also lowers the result to
    /// an executable NPU command [`Program`] with concrete buffer
    /// addresses.
    ///
    /// # Errors
    ///
    /// As [`OooScheduler::schedule`].
    pub fn schedule_with_program(&self) -> Result<(Schedule, Program), SchedError> {
        self.schedule_with_stats().map(|(s, p, _)| (s, p))
    }

    /// As [`OooScheduler::schedule_with_program`], additionally
    /// returning the run's [`SearchStats`] counters.
    ///
    /// # Errors
    ///
    /// As [`OooScheduler::schedule`].
    pub fn schedule_with_stats(&self) -> Result<(Schedule, Program, SearchStats), SchedError> {
        self.schedule_traced(&mut Lane::off())
    }

    /// As [`OooScheduler::schedule_with_stats`], recording the run into
    /// a trace lane: one `step` span per issue-loop iteration (at
    /// [`flexer_trace::TraceDetail::Steps`] and deeper) with the ready
    /// count, the issued width and the selected set size, plus per-step
    /// memory events from [`ExecState::commit_set`] at
    /// [`flexer_trace::TraceDetail::Memory`]. On a disabled lane this
    /// is exactly [`OooScheduler::schedule_with_stats`].
    ///
    /// # Errors
    ///
    /// As [`OooScheduler::schedule`].
    pub fn schedule_traced(
        &self,
        lane: &mut Lane,
    ) -> Result<(Schedule, Program, SearchStats), SchedError> {
        let mut stats = SearchStats::default();
        let mut state = ExecState::new(self.dfg, self.arch, self.perf, self.spill);
        let mut ready: BTreeSet<OpId> = self.dfg.initial_ready().collect();
        let cores = self.arch.cores() as usize;
        let dma = |b: u64| self.perf.dma_cycles(b);

        // All step-loop buffers live across iterations: candidate
        // generation, classification and plan evaluation run without
        // per-candidate heap churn.
        let mut combo_scratch = ComboScratch::default();
        let mut eval_scratch = EvalScratch::default();
        let mut ready_vec: Vec<OpId> = Vec::new();
        let mut sets: Vec<Vec<OpId>> = Vec::new();

        while state.remaining() > 0 {
            stats.steps += 1;
            if ready.is_empty() {
                return Err(SchedError::Stalled {
                    remaining: state.remaining(),
                });
            }
            ready_vec.clear();
            ready_vec.extend(ready.iter().copied());
            let step_span = lane.records(TraceDetail::Steps).then(|| {
                let guard = lane.enter("step");
                lane.attr("ready", ready_vec.len());
                lane.attr("remaining", state.remaining());
                guard
            });

            // Try the widest sets first; shrink when memory pressure
            // makes every candidate of that width infeasible.
            let mut selected: Option<Vec<OpId>> = None;
            let mut width = cores.min(ready_vec.len());
            while width >= 1 {
                let gen_start = Instant::now();
                match self.eval_mode {
                    EvalMode::Transactional => generate_sets_into(
                        self.dfg,
                        state.spm(),
                        &ready_vec,
                        width,
                        &self.combo,
                        &mut combo_scratch,
                        &mut sets,
                        &mut stats,
                    ),
                    // The reference path regenerates every buffer from
                    // scratch, as the scheduler did before the
                    // transactional rewrite.
                    EvalMode::CloneBaseline => {
                        sets = generate_sets_baseline(
                            self.dfg,
                            state.spm(),
                            &ready_vec,
                            width,
                            &self.combo,
                            &mut stats,
                        );
                    }
                }
                stats.gen_nanos += gen_start.elapsed().as_nanos() as u64;

                // Incremental selection: the priority comparison is a
                // total order, so keeping the first strict minimum is
                // equivalent to collecting every evaluation and running
                // `PriorityPolicy::select`.
                let eval_start = Instant::now();
                let mut best: Option<SetEvaluation> = None;
                for set in &sets {
                    stats.sets_evaluated += 1;
                    let eval = match self.eval_mode {
                        EvalMode::Transactional => {
                            let (spm, uses) = state.spm_and_uses();
                            SetEvaluation::evaluate_transactional(
                                self.dfg,
                                spm,
                                uses,
                                self.spill,
                                self.arch.cores(),
                                &dma,
                                set,
                                &mut eval_scratch,
                                &mut stats,
                            )
                        }
                        EvalMode::CloneBaseline => SetEvaluation::evaluate(
                            self.dfg,
                            state.spm(),
                            state.uses(),
                            self.spill,
                            self.arch.cores(),
                            &dma,
                            set,
                        ),
                    };
                    if let Some(e) = eval {
                        let better = best
                            .as_ref()
                            .is_none_or(|b| self.priority.compare(&e, b) == Ordering::Less);
                        if better {
                            best = Some(e);
                        }
                    }
                }
                stats.eval_nanos += eval_start.elapsed().as_nanos() as u64;
                if let Some(best) = best {
                    selected = Some(best.ops);
                    break;
                }
                width -= 1;
            }
            let Some(set) = selected else {
                if let Some(guard) = step_span {
                    lane.attr("outcome", "infeasible");
                    lane.exit(guard);
                }
                // Surface the underlying allocation failure of the
                // cheapest single-op set.
                let (spm, uses) = state.spm_and_uses();
                let probe =
                    crate::priority::plan_probe(self.dfg, spm, uses, self.spill, &ready_vec[..1]);
                return Err(match probe {
                    Err(e) => SchedError::Alloc(e),
                    Ok(()) => SchedError::Stalled {
                        remaining: state.remaining(),
                    },
                });
            };
            if step_span.is_some() {
                lane.attr("width", width);
                lane.attr("issued", set.len());
            }

            let commit_start = Instant::now();
            let woken = match state.commit_set(&set, lane) {
                Ok(woken) => woken,
                Err(e) => {
                    if let Some(guard) = step_span {
                        lane.attr("outcome", "commit-failed");
                        lane.exit(guard);
                    }
                    return Err(e);
                }
            };
            stats.commit_nanos += commit_start.elapsed().as_nanos() as u64;
            // Branch-and-bound early exit: the partial schedule's cost
            // only grows from here, so once it strictly exceeds the
            // incumbent this candidate cannot win (nor tie).
            if let Some(cutoff) = &self.cutoff {
                let (latency, transfer) = state.running_cost();
                if cutoff.exceeded(latency, transfer) {
                    if let Some(guard) = step_span {
                        lane.attr("outcome", "cutoff");
                        lane.exit(guard);
                    }
                    return Err(SchedError::Pruned);
                }
            }
            for id in &set {
                ready.remove(id);
            }
            ready.extend(woken);
            if let Some(guard) = step_span {
                lane.exit(guard);
            }
        }
        stats.merge(state.stats());
        let (schedule, program) = state.finish();
        Ok((schedule, program, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexer_arch::{ArchConfigBuilder, ArchPreset, SystolicModel};
    use flexer_model::ConvLayer;
    use flexer_sim::{validate_schedule, MemOpKind, TrafficClass};
    use flexer_spm::SmallestFirstSpill;
    use flexer_tiling::{Dataflow, TilingFactors};

    fn dfg_for(layer: &ConvLayer, arch: &ArchConfig, k: u32, c: u32, s: u32) -> Dfg {
        let model = SystolicModel::new(arch);
        let factors = TilingFactors::normalized(layer, k, c, s, s);
        Dfg::build(layer, factors, Dataflow::Csk, &model, arch).unwrap()
    }

    #[test]
    fn fills_all_cores_when_memory_allows() {
        let arch = ArchConfig::preset(ArchPreset::Arch8);
        let model = SystolicModel::new(&arch);
        let layer = ConvLayer::new("w", 32, 16, 16, 64).unwrap();
        let dfg = dfg_for(&layer, &arch, 8, 1, 2);
        let sched = OooScheduler::new(&dfg, &arch, &model).schedule().unwrap();
        validate_schedule(&dfg, &sched).unwrap();
        // All four cores execute work.
        for core in 0..arch.cores() {
            assert!(sched.core_busy(core) > 0, "core {core} idle");
        }
    }

    #[test]
    fn degrades_to_narrow_sets_under_memory_pressure() {
        // The buffer holds one working set but never two.
        let layer = ConvLayer::new("n", 64, 8, 8, 64).unwrap();
        let arch = ArchConfigBuilder::new(4, 30 * 1024, 32).build().unwrap();
        let model = SystolicModel::new(&arch);
        let dfg = dfg_for(&layer, &arch, 2, 1, 1);
        let sched = OooScheduler::new(&dfg, &arch, &model).schedule().unwrap();
        validate_schedule(&dfg, &sched).unwrap();
        // Everything ran on one core at a time.
        let busy: Vec<u64> = (0..4).map(|c| sched.core_busy(c)).collect();
        assert!(busy.iter().filter(|&&b| b > 0).count() >= 1);
        assert!(sched.compute_utilization() <= 0.5);
    }

    #[test]
    fn spilled_partial_sums_reload_as_psum_traffic() {
        // Long accumulation chains across many output tiles with a
        // buffer too small to keep them all: psums must round-trip.
        let layer = ConvLayer::new("p", 128, 16, 16, 128).unwrap();
        let arch = ArchConfigBuilder::new(2, 24 * 1024, 32).build().unwrap();
        let model = SystolicModel::new(&arch);
        let dfg = dfg_for(&layer, &arch, 8, 4, 2);
        let sched = OooScheduler::new(&dfg, &arch, &model).schedule().unwrap();
        validate_schedule(&dfg, &sched).unwrap();
        let psum = sched.traffic().class_bytes(TrafficClass::Psum);
        if psum > 0 {
            // Write-backs and reloads both appear.
            let spills = sched
                .mem_ops()
                .iter()
                .any(|m| m.kind == MemOpKind::Spill && m.class == TrafficClass::Psum);
            let reloads = sched
                .mem_ops()
                .iter()
                .any(|m| m.kind == MemOpKind::Load && m.class == TrafficClass::Psum);
            assert!(spills, "psum traffic without write-backs");
            assert!(reloads == spills || psum > 0);
        }
        // Either way the schedule stays legal and stores everything.
        assert!(
            sched.traffic().class_bytes(TrafficClass::Output)
                >= layer.output_bytes(arch.element_size())
        );
    }

    #[test]
    fn builder_knobs_change_behaviour_not_legality() {
        let arch = ArchConfig::preset(ArchPreset::Arch1);
        let model = SystolicModel::new(&arch);
        let layer = ConvLayer::new("k", 64, 16, 16, 64).unwrap();
        let dfg = dfg_for(&layer, &arch, 4, 2, 2);
        for priority in [
            PriorityPolicy::FlexerDefault,
            PriorityPolicy::MinTransfer,
            PriorityPolicy::MinSpill,
        ] {
            let sched = OooScheduler::new(&dfg, &arch, &model)
                .with_priority(priority)
                .with_spill(&SmallestFirstSpill)
                .with_combo(ComboOptions {
                    width_cap: 4,
                    max_combos: 64,
                    max_sets: 8,
                    prune: true,
                })
                .schedule()
                .unwrap();
            validate_schedule(&dfg, &sched).unwrap_or_else(|e| panic!("{priority}: {e}"));
        }
    }

    #[test]
    fn repeated_runs_are_identical() {
        let arch = ArchConfig::preset(ArchPreset::Arch5);
        let model = SystolicModel::new(&arch);
        let layer = ConvLayer::new("d", 96, 16, 16, 96).unwrap();
        let dfg = dfg_for(&layer, &arch, 4, 4, 2);
        let a = OooScheduler::new(&dfg, &arch, &model).schedule().unwrap();
        let b = OooScheduler::new(&dfg, &arch, &model).schedule().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn eval_modes_produce_identical_schedules() {
        let arch = ArchConfig::preset(ArchPreset::Arch5);
        let model = SystolicModel::new(&arch);
        let layer = ConvLayer::new("d", 96, 16, 16, 96).unwrap();
        let dfg = dfg_for(&layer, &arch, 4, 4, 2);
        let base = OooScheduler::new(&dfg, &arch, &model);
        let (s_tx, p_tx, st_tx) = base.schedule_with_stats().unwrap();
        let (s_cl, p_cl, st_cl) = base
            .with_eval_mode(EvalMode::CloneBaseline)
            .schedule_with_stats()
            .unwrap();
        // The transactional path must be a pure optimization: identical
        // schedule, identical command stream, identical search shape.
        assert_eq!(s_tx, s_cl);
        assert_eq!(p_tx, p_cl);
        assert_eq!(st_tx.steps, st_cl.steps);
        assert_eq!(st_tx.sets_generated, st_cl.sets_generated);
        assert_eq!(st_tx.sets_pruned, st_cl.sets_pruned);
        assert_eq!(st_tx.sets_evaluated, st_cl.sets_evaluated);
        // Rollback accounting only exists on the transactional path.
        assert!(st_tx.steps > 0);
        assert!(st_tx.rollback_bytes > 0);
        assert!(st_tx.clone_bytes_avoided > 0);
        assert_eq!(st_cl.rollback_bytes, 0);
        assert_eq!(st_cl.clone_bytes_avoided, 0);
    }

    #[test]
    fn stats_count_scheduler_work() {
        let arch = ArchConfig::preset(ArchPreset::Arch8);
        let model = SystolicModel::new(&arch);
        let layer = ConvLayer::new("w", 32, 16, 16, 64).unwrap();
        let dfg = dfg_for(&layer, &arch, 8, 1, 2);
        let (_, _, stats) = OooScheduler::new(&dfg, &arch, &model)
            .schedule_with_stats()
            .unwrap();
        assert!(stats.steps > 0);
        assert!(stats.sets_generated >= stats.sets_evaluated);
        assert!(stats.sets_evaluated > 0);
    }

    #[test]
    fn cutoff_aborts_hopeless_runs_and_spares_viable_ones() {
        use crate::bound::Incumbent;
        use crate::metric::Metric;
        let arch = ArchConfig::preset(ArchPreset::Arch1);
        let model = SystolicModel::new(&arch);
        let layer = ConvLayer::new("c", 64, 16, 16, 64).unwrap();
        let dfg = dfg_for(&layer, &arch, 4, 2, 2);
        let inc = Incumbent::new();
        let guarded = OooScheduler::new(&dfg, &arch, &model)
            .with_cutoff(Cutoff::new(&inc, Metric::LatencyTimesTransfer));
        // An infinite incumbent never cuts: identical to no cutoff.
        let a = guarded.schedule().unwrap();
        let b = OooScheduler::new(&dfg, &arch, &model).schedule().unwrap();
        assert_eq!(a, b);
        // An unbeatable incumbent aborts the run as Pruned.
        inc.observe(0.0);
        assert!(matches!(guarded.schedule(), Err(SchedError::Pruned)));
    }

    #[test]
    fn debug_format_is_informative() {
        let arch = ArchConfig::preset(ArchPreset::Arch1);
        let model = SystolicModel::new(&arch);
        let layer = ConvLayer::new("f", 16, 8, 8, 16).unwrap();
        let dfg = dfg_for(&layer, &arch, 1, 1, 1);
        let s = format!("{:?}", OooScheduler::new(&dfg, &arch, &model));
        assert!(s.contains("OooScheduler"));
        assert!(s.contains("priority"));
    }
}
