//! Operation-set planning, evaluation and priority policies (§4.3).

use crate::stats::SearchStats;
use flexer_spm::{AllocError, AllocMethod, Eviction, SpillPolicy, SpmMemory, TileMove};
use flexer_tiling::{Dfg, OpId, TileId};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;

/// What must happen for one distinct tile of an operation set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum TileAction {
    /// The tile was resident before the set; its data is reused.
    Reuse,
    /// The tile must be loaded from DRAM (inputs, weights, spilled
    /// partial sums).
    Load,
    /// A fresh output tile is allocated; no data moves.
    AllocOutput,
}

/// One step of a set plan's memory activity, in the exact order it
/// occurred — the trace a code generator lowers into commands.
#[derive(Debug, Clone)]
pub(crate) enum PlanEvent {
    /// A tile was evicted from its block.
    Evict(Eviction),
    /// Compaction relocated a tile.
    Move(TileMove),
    /// A tile was placed at an address (loaded or reserved).
    Place {
        /// The placed tile.
        tile: TileId,
        /// Its byte size.
        bytes: u64,
        /// Its block's start address.
        address: u64,
        /// Whether data must be fetched ([`TileAction::Load`]) or the
        /// block is a fresh accumulator.
        action: TileAction,
    },
}

/// The memory plan of one candidate operation set: per-tile actions
/// and the evictions they trigger, applied to (a clone of or the real)
/// scratchpad.
#[derive(Debug, Clone, Default)]
pub(crate) struct SetPlan {
    /// `(tile, bytes, action)` for every distinct tile, in plan order.
    pub tiles: Vec<(TileId, u64, TileAction)>,
    /// Evictions in the order they occurred.
    pub evictions: Vec<Eviction>,
    /// The precise event trace (evictions, compaction moves and
    /// placements interleaved in execution order).
    pub events: Vec<PlanEvent>,
    /// Sum over ops and their operands of pre-resident tile sizes
    /// (the paper's *reused data*, counted per operation reference).
    pub reused_bytes: u64,
    /// Bytes moved by on-chip compaction, when pinned residents
    /// fragmented the buffer so badly that spilling alone could not
    /// produce a sufficient hole.
    pub compaction_bytes: u64,
}

impl SetPlan {
    /// Empties the plan for reuse, keeping every buffer's capacity.
    fn clear(&mut self) {
        self.tiles.clear();
        self.evictions.clear();
        self.events.clear();
        self.reused_bytes = 0;
        self.compaction_bytes = 0;
    }
}

/// Reusable buffers for candidate evaluation: one set of these lives
/// per scheduler run, so the inner candidate loop allocates nothing.
#[derive(Debug, Default)]
pub(crate) struct EvalScratch {
    plan: SetPlan,
    seen: Vec<TileId>,
    missing: Vec<(TileId, u64, TileAction)>,
}

/// Plans the memory operations of `ops` against `spm`, mutating it:
/// resident operands are pinned, missing tiles are allocated (evicting
/// victims chosen by `spill`), and every set operand ends up resident
/// and pinned. The caller unpins after issuing the set.
///
/// Missing tiles are placed largest-first, which minimizes the chance
/// that freshly pinned small tiles fragment the space a large tile
/// needs; if an allocation still fails, the buffer is compacted once
/// (cost reported in [`SetPlan::compaction_bytes`]) and retried.
///
/// `uses` maps every tile to its remaining operand-reference count
/// *before* this set executes.
pub(crate) fn plan_set(
    dfg: &Dfg,
    spm: &mut SpmMemory,
    uses: &BTreeMap<TileId, u32>,
    spill: &dyn SpillPolicy,
    ops: &[OpId],
) -> Result<SetPlan, AllocError> {
    let mut scratch = EvalScratch::default();
    plan_set_into(dfg, spm, uses, spill, ops, &mut scratch)?;
    Ok(std::mem::take(&mut scratch.plan))
}

/// [`plan_set`] writing into `scratch.plan` instead of allocating —
/// the hot-loop entry point of the transactional evaluation path.
pub(crate) fn plan_set_into(
    dfg: &Dfg,
    spm: &mut SpmMemory,
    uses: &BTreeMap<TileId, u32>,
    spill: &dyn SpillPolicy,
    ops: &[OpId],
    scratch: &mut EvalScratch,
) -> Result<(), AllocError> {
    let plan = &mut scratch.plan;
    plan.clear();
    let seen = &mut scratch.seen;
    seen.clear();
    let missing = &mut scratch.missing;
    missing.clear();

    // Pin pass: protect everything the set touches that is already
    // on-chip, account per-reference reuse, and collect the missing
    // tiles in first-encounter order. A reference reuses data when the
    // tile was already resident *or* an earlier operation of the same
    // set brings it in — intra-set sharing is the spatial (inter-NPU)
    // reuse of the paper's Figure 11 and counts fully. `seen` stays
    // sorted so the first-reference check is a binary search rather
    // than a linear scan over every prior operand.
    for &id in ops {
        let op = dfg.op(id);
        for tile in op.operands() {
            let resident = spm.contains(tile);
            let seen_slot = seen.binary_search(&tile);
            let first_reference = seen_slot.is_err();
            if resident || !first_reference {
                plan.reused_bytes += dfg.tile_bytes(tile);
            }
            if resident {
                spm.pin(tile);
            }
            if let Err(slot) = seen_slot {
                seen.insert(slot, tile);
                let bytes = dfg.tile_bytes(tile);
                if resident {
                    plan.tiles.push((tile, bytes, TileAction::Reuse));
                } else {
                    let action = match tile {
                        // A fresh output that consumes no partial sum
                        // holds no data yet; everything else must be
                        // fetched.
                        TileId::Output { .. } if !op.needs_psum() => TileAction::AllocOutput,
                        _ => TileAction::Load,
                    };
                    missing.push((tile, bytes, action));
                }
            }
        }
    }

    // Allocation pass, largest tiles first (ties broken by tile id so
    // planning stays deterministic).
    missing.sort_by_key(|&(tile, bytes, _)| (std::cmp::Reverse(bytes), tile));
    for (tile, bytes, action) in missing.drain(..) {
        let remain = uses.get(&tile).copied().unwrap_or(0);
        let outcome = spm.allocate(tile, bytes, remain, spill)?;
        debug_assert_ne!(outcome.method, AllocMethod::AlreadyResident);
        // Compaction (if any) ran before the victims were evicted,
        // which in turn precede the placement.
        plan.events.extend(
            outcome
                .compaction_moves
                .iter()
                .copied()
                .map(PlanEvent::Move),
        );
        plan.events
            .extend(outcome.evictions.iter().copied().map(PlanEvent::Evict));
        plan.events.push(PlanEvent::Place {
            tile,
            bytes,
            address: outcome.address,
            action: action.clone(),
        });
        plan.evictions.extend(outcome.evictions);
        plan.compaction_bytes += outcome.compaction_bytes;
        spm.pin(tile);
        plan.tiles.push((tile, bytes, action));
    }
    Ok(())
}

/// Probes whether an operation set could be placed, returning the
/// underlying allocation error if not. Runs inside a checkpoint and
/// rolls back, so the memory is observably untouched.
pub(crate) fn plan_probe(
    dfg: &Dfg,
    spm: &mut SpmMemory,
    uses: &BTreeMap<TileId, u32>,
    spill: &dyn SpillPolicy,
    ops: &[OpId],
) -> Result<(), AllocError> {
    let token = spm.checkpoint();
    let result = plan_set(dfg, spm, uses, spill, ops).map(|_| ());
    spm.rollback(token);
    result
}

/// The measurable consequences of issuing one candidate operation set,
/// used to rank sets (paper §4.3 and Figure 7's priority table).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SetEvaluation {
    /// The operations of the set, in id order.
    pub ops: Vec<OpId>,
    /// `reused data - spilled data` (§4.3), where spilled data weighs
    /// each eviction by `min(cores, remaining uses)`.
    pub memory_benefit: i64,
    /// Scratchpad utilization after the set's allocations.
    pub utilization_after: f64,
    /// DMA cycles of the set's loads and dirty-eviction write-backs —
    /// the *memory overhead* column of Figure 7.
    pub mem_latency: u64,
    /// Bytes loaded from DRAM for the set.
    pub loaded_bytes: u64,
    /// Bytes of dirty evictions that must be written back.
    pub spill_writeback_bytes: u64,
    /// Total evicted bytes (dirty or clean).
    pub evicted_bytes: u64,
    /// The reuse-weighted spill cost used in the memory benefit.
    pub spilled_value: u64,
    /// Per-reference bytes of pre-resident data the set reuses.
    pub reused_bytes: u64,
}

impl SetEvaluation {
    /// Builds the evaluation of `ops` by planning it against a *clone*
    /// of `spm`; the real memory is untouched. Returns `None` when the
    /// set cannot be placed (infeasible under current pins/capacity).
    ///
    /// `dma_cycles` converts transfer bytes to DMA latency (from the
    /// architecture's performance model); `cores` bounds the reuse
    /// weight of spilled data (§4.3's `max ref count`).
    #[must_use]
    pub fn evaluate(
        dfg: &Dfg,
        spm: &SpmMemory,
        uses: &BTreeMap<TileId, u32>,
        spill: &dyn SpillPolicy,
        cores: u32,
        dma_cycles: &dyn Fn(u64) -> u64,
        ops: &[OpId],
    ) -> Option<Self> {
        let mut scratch = spm.clone();
        let plan = plan_set(dfg, &mut scratch, uses, spill, ops).ok()?;
        Some(Self::from_plan(
            &plan,
            scratch.utilization(),
            cores,
            dma_cycles,
            ops,
        ))
    }

    /// As [`SetEvaluation::evaluate`], but plans against the *live*
    /// scratchpad inside a checkpoint and rolls back afterwards —
    /// `O(mutations)` per candidate instead of cloning the whole block
    /// map. Observable memory state is unchanged on return; the
    /// produced evaluation is bit-identical to the clone path's.
    ///
    /// `scratch` carries the reusable plan buffers; `stats` receives
    /// the rollback/clone-savings accounting.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn evaluate_transactional(
        dfg: &Dfg,
        spm: &mut SpmMemory,
        uses: &BTreeMap<TileId, u32>,
        spill: &dyn SpillPolicy,
        cores: u32,
        dma_cycles: &dyn Fn(u64) -> u64,
        ops: &[OpId],
        scratch: &mut EvalScratch,
        stats: &mut SearchStats,
    ) -> Option<Self> {
        stats.clone_bytes_avoided += spm.footprint_bytes();
        let token = spm.checkpoint();
        let planned = plan_set_into(dfg, spm, uses, spill, ops, scratch);
        // Utilization must be read while the trial allocations are
        // still in place, before the rollback erases them.
        let eval = planned
            .ok()
            .map(|()| Self::from_plan(&scratch.plan, spm.utilization(), cores, dma_cycles, ops));
        stats.rollback_bytes += spm.rollback(token);
        eval
    }

    /// Derives the evaluation metrics from a completed plan and the
    /// post-plan scratchpad utilization.
    fn from_plan(
        plan: &SetPlan,
        utilization_after: f64,
        cores: u32,
        dma_cycles: &dyn Fn(u64) -> u64,
        ops: &[OpId],
    ) -> Self {
        // Saturating sums: a ranking value, not a timed quantity, so
        // adversarial DRAM latencies must not overflow here before the
        // timeline's checked arithmetic can report them.
        let mut loaded_bytes = 0;
        let mut mem_latency = 0u64;
        for (_, bytes, action) in &plan.tiles {
            if *action == TileAction::Load {
                loaded_bytes += bytes;
                mem_latency = mem_latency.saturating_add(dma_cycles(*bytes));
            }
        }
        let mut spill_writeback_bytes = 0;
        let mut evicted_bytes = 0;
        let mut spilled_value = 0;
        for ev in &plan.evictions {
            evicted_bytes += ev.bytes;
            if ev.dirty {
                spill_writeback_bytes += ev.bytes;
                mem_latency = mem_latency.saturating_add(dma_cycles(ev.bytes));
            }
            spilled_value += ev.bytes * u64::from(ev.remain_uses.min(cores));
        }
        if plan.compaction_bytes > 0 {
            mem_latency = mem_latency.saturating_add(dma_cycles(plan.compaction_bytes));
        }
        Self {
            ops: ops.to_vec(),
            memory_benefit: plan.reused_bytes as i64 - spilled_value as i64,
            utilization_after,
            mem_latency,
            loaded_bytes,
            spill_writeback_bytes,
            evicted_bytes,
            spilled_value,
            reused_bytes: plan.reused_bytes,
        }
    }
}

/// How candidate operation sets are ranked each scheduling step.
///
/// [`PriorityPolicy::FlexerDefault`] is the paper's §4.3 policy;
/// [`PriorityPolicy::MinTransfer`] and [`PriorityPolicy::MinSpill`]
/// are Table 2's Priority1/Priority2 ablations (Figure 12).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PriorityPolicy {
    /// Highest memory benefit, then highest utilization, then lowest
    /// memory-operation latency.
    #[default]
    FlexerDefault,
    /// Table 2 *Priority1*: the set causing the minimal amount of data
    /// movement (loads plus write-backs).
    MinTransfer,
    /// Table 2 *Priority2*: the set causing the lowest amount of
    /// spilled data.
    MinSpill,
}

impl PriorityPolicy {
    /// Compares two evaluations; `Ordering::Less` means `a` has the
    /// *higher* priority. Ties are broken by op-id order so ranking is
    /// total and deterministic.
    ///
    /// Utilization is compared at 1/32-of-capacity granularity:
    /// §4.3's third criterion (shorter memory operations) only matters
    /// if utilization can actually tie, and byte-exact comparison
    /// would make ties vanishingly rare.
    #[must_use]
    pub fn compare(&self, a: &SetEvaluation, b: &SetEvaluation) -> Ordering {
        let util_bucket = |u: f64| (u * 32.0).floor() as i64;
        let primary = match self {
            PriorityPolicy::FlexerDefault => b
                .memory_benefit
                .cmp(&a.memory_benefit)
                .then_with(|| {
                    util_bucket(b.utilization_after).cmp(&util_bucket(a.utilization_after))
                })
                .then_with(|| a.mem_latency.cmp(&b.mem_latency)),
            PriorityPolicy::MinTransfer => (a.loaded_bytes + a.spill_writeback_bytes)
                .cmp(&(b.loaded_bytes + b.spill_writeback_bytes))
                .then_with(|| a.mem_latency.cmp(&b.mem_latency)),
            PriorityPolicy::MinSpill => a
                .evicted_bytes
                .cmp(&b.evicted_bytes)
                .then_with(|| a.loaded_bytes.cmp(&b.loaded_bytes)),
        };
        primary.then_with(|| a.ops.cmp(&b.ops))
    }

    /// Selects the highest-priority evaluation, or `None` for an empty
    /// slice.
    #[must_use]
    pub fn select<'a>(&self, evals: &'a [SetEvaluation]) -> Option<&'a SetEvaluation> {
        evals.iter().min_by(|a, b| self.compare(a, b))
    }
}

impl fmt::Display for PriorityPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PriorityPolicy::FlexerDefault => "flexer-default",
            PriorityPolicy::MinTransfer => "min-transfer",
            PriorityPolicy::MinSpill => "min-spilling",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexer_arch::{ArchConfig, ArchPreset, PerfModel, SystolicModel};
    use flexer_model::ConvLayer;
    use flexer_spm::FlexerSpill;
    use flexer_tiling::{Dataflow, TilingFactors};

    fn fixture() -> (Dfg, SpmMemory, BTreeMap<TileId, u32>, SystolicModel) {
        let arch = ArchConfig::preset(ArchPreset::Arch1);
        let layer = ConvLayer::new("p", 16, 8, 8, 16).unwrap();
        let model = SystolicModel::new(&arch);
        let factors = TilingFactors::normalized(&layer, 2, 2, 2, 1);
        let dfg = Dfg::build(&layer, factors, Dataflow::Csk, &model, &arch).unwrap();
        let spm = SpmMemory::new(4096);
        let uses: BTreeMap<TileId, u32> = dfg.tiles().map(|t| (t, dfg.initial_uses(t))).collect();
        (dfg, spm, uses, model)
    }

    fn eval(
        dfg: &Dfg,
        spm: &SpmMemory,
        uses: &BTreeMap<TileId, u32>,
        model: &SystolicModel,
        ops: &[OpId],
    ) -> Option<SetEvaluation> {
        SetEvaluation::evaluate(
            dfg,
            spm,
            uses,
            &FlexerSpill,
            2,
            &|b| model.dma_cycles(b),
            ops,
        )
    }

    #[test]
    fn cold_start_set_loads_everything() {
        let (dfg, spm, uses, model) = fixture();
        let ready: Vec<OpId> = dfg.initial_ready().collect();
        // CSK: the first two ready ops share their input tile, which
        // counts as (intra-set, spatial) reuse; nothing else does.
        let e = eval(&dfg, &spm, &uses, &model, &ready[..2]).unwrap();
        let shared_input = dfg.tile_bytes(dfg.op(ready[0]).input());
        assert_eq!(e.reused_bytes, shared_input);
        assert_eq!(e.memory_benefit, shared_input as i64);
        assert!(e.loaded_bytes > 0);
        assert!(e.mem_latency > 0);
        assert!(e.evicted_bytes == 0);
        assert!(e.utilization_after > 0.0);
        // A single cold op shares nothing.
        let solo = eval(&dfg, &spm, &uses, &model, &ready[..1]).unwrap();
        assert_eq!(solo.reused_bytes, 0);
        assert_eq!(solo.memory_benefit, 0);
    }

    #[test]
    fn evaluation_does_not_mutate_memory() {
        let (dfg, spm, uses, model) = fixture();
        let before = spm.clone();
        let ready: Vec<OpId> = dfg.initial_ready().collect();
        let _ = eval(&dfg, &spm, &uses, &model, &ready[..2]);
        assert_eq!(spm, before);
    }

    #[test]
    fn resident_operands_raise_memory_benefit() {
        let (dfg, mut spm, uses, model) = fixture();
        let ready: Vec<OpId> = dfg.initial_ready().collect();
        let op = dfg.op(ready[0]);
        spm.allocate(op.input(), dfg.tile_bytes(op.input()), 2, &FlexerSpill)
            .unwrap();
        spm.allocate(op.weight(), dfg.tile_bytes(op.weight()), 1, &FlexerSpill)
            .unwrap();
        let warm = eval(&dfg, &spm, &uses, &model, &ready[..1]).unwrap();
        assert_eq!(
            warm.reused_bytes,
            dfg.tile_bytes(op.input()) + dfg.tile_bytes(op.weight())
        );
        assert!(warm.memory_benefit > 0);
        // The same set cold has no benefit.
        let cold = eval(&dfg, &SpmMemory::new(4096), &uses, &model, &ready[..1]).unwrap();
        assert!(warm.memory_benefit > cold.memory_benefit);
        assert!(warm.mem_latency < cold.mem_latency);
    }

    #[test]
    fn shared_tiles_are_loaded_once() {
        let (dfg, spm, uses, model) = fixture();
        // CSK order: the first two ready ops share the input tile
        // IN(0,0) (k=0 and k=1).
        let ready: Vec<OpId> = dfg.initial_ready().collect();
        let a = dfg.op(ready[0]);
        let b = dfg.op(ready[1]);
        assert_eq!(a.input(), b.input());
        let e = eval(&dfg, &spm, &uses, &model, &ready[..2]).unwrap();
        // loads: 1 shared input + 2 weights; outputs are fresh allocs.
        let expected =
            dfg.tile_bytes(a.input()) + dfg.tile_bytes(a.weight()) + dfg.tile_bytes(b.weight());
        assert_eq!(e.loaded_bytes, expected);
    }

    #[test]
    fn spilled_value_weighs_remaining_uses() {
        let (dfg, _, uses, model) = fixture();
        // Tiny memory: only one op's working set fits.
        let ws: u64 = {
            let op = dfg.op(dfg.initial_ready().next().unwrap());
            op.operands().map(|t| dfg.tile_bytes(t)).sum()
        };
        let mut spm = SpmMemory::new(ws);
        let ready: Vec<OpId> = dfg.initial_ready().collect();
        // Fill with the first op's tiles (hot: 5 remaining uses each).
        for t in dfg.op(ready[0]).operands() {
            spm.allocate(t, dfg.tile_bytes(t), 5, &FlexerSpill).unwrap();
        }
        // Evaluate an op sharing nothing: everything must be evicted.
        let other = ready
            .iter()
            .copied()
            .find(|&id| {
                let o = dfg.op(id);
                o.input() != dfg.op(ready[0]).input() && o.weight() != dfg.op(ready[0]).weight()
            })
            .unwrap();
        let e = eval(&dfg, &spm, &uses, &model, &[other]).unwrap();
        assert!(e.evicted_bytes > 0);
        // max ref count = min(cores=2, remain_uses=5) = 2.
        assert_eq!(e.spilled_value, e.evicted_bytes * 2);
        assert!(e.memory_benefit < 0);
    }

    #[test]
    fn infeasible_sets_evaluate_to_none() {
        let (dfg, _, uses, model) = fixture();
        let spm = SpmMemory::new(4); // absurdly small
        let ready: Vec<OpId> = dfg.initial_ready().collect();
        assert!(eval(&dfg, &spm, &uses, &model, &ready[..1]).is_none());
    }

    #[test]
    fn default_policy_ranks_by_benefit_then_util_then_latency() {
        let base = SetEvaluation {
            ops: vec![OpId::new(0)],
            memory_benefit: 10,
            utilization_after: 0.5,
            mem_latency: 100,
            loaded_bytes: 0,
            spill_writeback_bytes: 0,
            evicted_bytes: 0,
            spilled_value: 0,
            reused_bytes: 0,
        };
        let better_benefit = SetEvaluation {
            memory_benefit: 20,
            ops: vec![OpId::new(1)],
            ..base.clone()
        };
        let better_util = SetEvaluation {
            utilization_after: 0.9,
            ops: vec![OpId::new(2)],
            ..base.clone()
        };
        let better_latency = SetEvaluation {
            mem_latency: 10,
            ops: vec![OpId::new(3)],
            ..base.clone()
        };
        let p = PriorityPolicy::FlexerDefault;
        assert_eq!(p.compare(&better_benefit, &base), Ordering::Less);
        assert_eq!(p.compare(&better_util, &base), Ordering::Less);
        assert_eq!(p.compare(&better_latency, &base), Ordering::Less);
        // Selection picks the benefit winner.
        let all = vec![base, better_latency, better_util, better_benefit.clone()];
        assert_eq!(p.select(&all).unwrap(), &better_benefit);
    }

    #[test]
    fn ablation_policies_use_their_own_keys() {
        let a = SetEvaluation {
            ops: vec![OpId::new(0)],
            memory_benefit: -5,
            utilization_after: 0.1,
            mem_latency: 500,
            loaded_bytes: 10,
            spill_writeback_bytes: 0,
            evicted_bytes: 90,
            spilled_value: 90,
            reused_bytes: 0,
        };
        let b = SetEvaluation {
            ops: vec![OpId::new(1)],
            memory_benefit: 50,
            utilization_after: 0.9,
            mem_latency: 5,
            loaded_bytes: 100,
            spill_writeback_bytes: 20,
            evicted_bytes: 10,
            spilled_value: 10,
            reused_bytes: 60,
        };
        // MinTransfer: a moves 10 bytes, b moves 120.
        assert_eq!(PriorityPolicy::MinTransfer.compare(&a, &b), Ordering::Less);
        // MinSpill: b evicts 10 < a's 90.
        assert_eq!(PriorityPolicy::MinSpill.compare(&b, &a), Ordering::Less);
        // Default: b's benefit wins.
        assert_eq!(
            PriorityPolicy::FlexerDefault.compare(&b, &a),
            Ordering::Less
        );
    }

    #[test]
    fn transactional_evaluation_matches_clone_path() {
        let (dfg, mut spm, uses, model) = fixture();
        // Warm the memory a little so reuse/eviction paths differ from
        // a cold start.
        let ready: Vec<OpId> = dfg.initial_ready().collect();
        let first = dfg.op(ready[0]);
        spm.allocate(
            first.input(),
            dfg.tile_bytes(first.input()),
            3,
            &FlexerSpill,
        )
        .unwrap();
        let mut scratch = EvalScratch::default();
        let mut stats = SearchStats::default();
        for width in 1..=2usize {
            let set = &ready[..width];
            let clone_based = eval(&dfg, &spm, &uses, &model, set);
            let before = spm.clone();
            let transactional = SetEvaluation::evaluate_transactional(
                &dfg,
                &mut spm,
                &uses,
                &FlexerSpill,
                2,
                &|b| model.dma_cycles(b),
                set,
                &mut scratch,
                &mut stats,
            );
            assert_eq!(clone_based, transactional);
            assert_eq!(spm, before, "rollback must restore the memory");
        }
        assert!(stats.rollback_bytes > 0);
        assert!(stats.clone_bytes_avoided > 0);
        assert!(!spm.in_transaction());
    }

    #[test]
    fn transactional_evaluation_handles_infeasible_sets() {
        let (dfg, _, uses, model) = fixture();
        let mut spm = SpmMemory::new(4); // absurdly small
        let ready: Vec<OpId> = dfg.initial_ready().collect();
        let mut scratch = EvalScratch::default();
        let mut stats = SearchStats::default();
        let e = SetEvaluation::evaluate_transactional(
            &dfg,
            &mut spm,
            &uses,
            &FlexerSpill,
            2,
            &|b| model.dma_cycles(b),
            &ready[..1],
            &mut scratch,
            &mut stats,
        );
        assert!(e.is_none());
        assert!(!spm.in_transaction());
        assert_eq!(spm, SpmMemory::new(4));
    }

    #[test]
    fn plan_probe_leaves_memory_untouched() {
        let (dfg, mut spm, uses, _) = fixture();
        let before = spm.clone();
        let ready: Vec<OpId> = dfg.initial_ready().collect();
        plan_probe(&dfg, &mut spm, &uses, &FlexerSpill, &ready[..1]).unwrap();
        assert_eq!(spm, before);
        assert!(!spm.in_transaction());
    }

    #[test]
    fn tie_break_is_deterministic() {
        let a = SetEvaluation {
            ops: vec![OpId::new(0)],
            memory_benefit: 0,
            utilization_after: 0.5,
            mem_latency: 0,
            loaded_bytes: 0,
            spill_writeback_bytes: 0,
            evicted_bytes: 0,
            spilled_value: 0,
            reused_bytes: 0,
        };
        let b = SetEvaluation {
            ops: vec![OpId::new(1)],
            ..a.clone()
        };
        assert_eq!(
            PriorityPolicy::FlexerDefault.compare(&a, &b),
            Ordering::Less
        );
        assert_eq!(
            PriorityPolicy::FlexerDefault.compare(&b, &a),
            Ordering::Greater
        );
    }
}
