//! Lowered NPU command programs.
//!
//! The authors' toolchain lowers schedules through "a compiler, a
//! cycle-accurate simulator, and an RTL generator" (§5). This module
//! is the reproduction's compiler back end: it represents a scheduled
//! layer as the explicit command stream an accelerator sequencer would
//! execute — loads, spills and stores with concrete global-buffer
//! addresses, on-chip compaction copies, and per-core `EXEC` commands
//! whose operand addresses point into the buffer.
//!
//! [`Program::check`] is an independent validator: it replays the
//! commands against a region tracker and rejects out-of-bounds or
//! overlapping placements, uses of non-resident data, and operand
//! addresses that do not match residency — a second line of defence
//! behind the schedule validator in `flexer-sim`.

use flexer_tiling::{Dfg, OpId, TileId};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// One command of a lowered program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Fetch a tile from DRAM into the buffer block at `address`.
    Load {
        /// The tile fetched.
        tile: TileId,
        /// Destination block address.
        address: u64,
        /// Transfer size.
        bytes: u64,
    },
    /// Write a dirty tile (partial sum) back to DRAM and free its
    /// block.
    Spill {
        /// The tile written back.
        tile: TileId,
        /// Source block address.
        address: u64,
        /// Transfer size.
        bytes: u64,
    },
    /// Drop a clean tile from the buffer (its data is still in DRAM).
    Discard {
        /// The tile dropped.
        tile: TileId,
        /// Its block address.
        address: u64,
        /// Its block size.
        bytes: u64,
    },
    /// Relocate a tile within the buffer (compaction copy).
    Move {
        /// The tile relocated.
        tile: TileId,
        /// Its byte size.
        bytes: u64,
        /// Old block address.
        from: u64,
        /// New block address.
        to: u64,
    },
    /// Reserve a block for a fresh accumulator tile (no data moves).
    Reserve {
        /// The accumulator tile.
        tile: TileId,
        /// Its block address.
        address: u64,
        /// Its block size.
        bytes: u64,
    },
    /// Run one tiled convolution on a core, reading the input and
    /// weight blocks and accumulating into the output block.
    Exec {
        /// The operation.
        op: OpId,
        /// The core it runs on.
        core: u32,
        /// Input tile address.
        input: u64,
        /// Weight tile address.
        weight: u64,
        /// Output / partial-sum tile address.
        output: u64,
        /// Whether the output block holds a partial sum to accumulate
        /// onto (`c > 0`).
        accumulate: bool,
    },
    /// Write a finished output tile to DRAM (it stays resident).
    Store {
        /// The tile stored.
        tile: TileId,
        /// Source block address.
        address: u64,
        /// Transfer size.
        bytes: u64,
    },
    /// Gather an input tile from the cross-layer residency region (an
    /// on-chip copy replacing a DRAM load).
    GatherIn {
        /// The tile gathered.
        tile: TileId,
        /// Destination block address.
        address: u64,
        /// Transfer size.
        bytes: u64,
    },
    /// Scatter a finished output tile into the cross-layer residency
    /// region (an on-chip copy replacing the DRAM store).
    ScatterOut {
        /// The tile scattered.
        tile: TileId,
        /// Source block address.
        address: u64,
        /// Transfer size.
        bytes: u64,
    },
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Command::Load { tile, address, bytes } => {
                write!(f, "LOAD    {tile:<12} -> [{address:#08x}; {bytes}]")
            }
            Command::Spill { tile, address, bytes } => {
                write!(f, "SPILL   {tile:<12} <- [{address:#08x}; {bytes}]")
            }
            Command::Discard { tile, address, bytes } => {
                write!(f, "DISCARD {tile:<12}    [{address:#08x}; {bytes}]")
            }
            Command::Move { tile, bytes, from, to } => {
                write!(f, "MOVE    {tile:<12}    [{from:#08x}] -> [{to:#08x}; {bytes}]")
            }
            Command::Reserve { tile, address, bytes } => {
                write!(f, "RESERVE {tile:<12}    [{address:#08x}; {bytes}]")
            }
            Command::Exec { op, core, input, weight, output, accumulate } => write!(
                f,
                "EXEC    {op:<12} @core{core} in=[{input:#08x}] wt=[{weight:#08x}] out=[{output:#08x}]{}",
                if *accumulate { " +acc" } else { "" }
            ),
            Command::Store { tile, address, bytes } => {
                write!(f, "STORE   {tile:<12} <- [{address:#08x}; {bytes}]")
            }
            Command::GatherIn { tile, address, bytes } => {
                write!(f, "GATHER  {tile:<12} -> [{address:#08x}; {bytes}]")
            }
            Command::ScatterOut { tile, address, bytes } => {
                write!(f, "SCATTER {tile:<12} <- [{address:#08x}; {bytes}]")
            }
        }
    }
}

/// A violation found by [`Program::check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A block extends past the buffer.
    OutOfBounds {
        /// The offending command index.
        index: usize,
    },
    /// A placement overlaps a live block.
    Overlap {
        /// The offending command index.
        index: usize,
        /// The tile already occupying the range.
        occupant: TileId,
    },
    /// A command uses a tile that is not resident (or not at the
    /// claimed address).
    NotResident {
        /// The offending command index.
        index: usize,
        /// The tile.
        tile: TileId,
    },
    /// An `Exec` command's shape disagrees with the DFG (wrong operand
    /// address or accumulate flag).
    ExecMismatch {
        /// The offending command index.
        index: usize,
        /// The operation.
        op: OpId,
    },
    /// Not every DFG operation was executed exactly once.
    ExecCount {
        /// The operation.
        op: OpId,
        /// How often it ran.
        times: usize,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::OutOfBounds { index } => {
                write!(f, "command {index}: block exceeds the buffer")
            }
            ProgramError::Overlap { index, occupant } => {
                write!(
                    f,
                    "command {index}: placement overlaps live tile {occupant}"
                )
            }
            ProgramError::NotResident { index, tile } => {
                write!(
                    f,
                    "command {index}: {tile} not resident at the claimed address"
                )
            }
            ProgramError::ExecMismatch { index, op } => {
                write!(
                    f,
                    "command {index}: {op} operand addresses disagree with the DFG"
                )
            }
            ProgramError::ExecCount { op, times } => {
                write!(f, "{op} executed {times} times (expected exactly once)")
            }
        }
    }
}

impl Error for ProgramError {}

/// The lowered command stream of one scheduled layer.
///
/// Produced by [`crate::OooScheduler::schedule_with_program`];
/// commands appear in issue order.
///
/// # Examples
///
/// ```
/// use flexer_arch::{ArchConfig, ArchPreset, SystolicModel};
/// use flexer_model::ConvLayer;
/// use flexer_sched::OooScheduler;
/// use flexer_tiling::{Dataflow, Dfg, TilingFactors};
///
/// let arch = ArchConfig::preset(ArchPreset::Arch1);
/// let model = SystolicModel::new(&arch);
/// let layer = ConvLayer::new("c", 32, 14, 14, 32)?;
/// let factors = TilingFactors::normalized(&layer, 2, 2, 2, 2);
/// let dfg = Dfg::build(&layer, factors, Dataflow::Csk, &model, &arch)?;
///
/// let (_, program) = OooScheduler::new(&dfg, &arch, &model).schedule_with_program()?;
/// program.check(&dfg)?;
/// assert!(program.render().contains("EXEC"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    spm_bytes: u64,
    cores: u32,
    commands: Vec<Command>,
}

impl Program {
    pub(crate) fn new(spm_bytes: u64, cores: u32, commands: Vec<Command>) -> Self {
        Self {
            spm_bytes,
            cores,
            commands,
        }
    }

    /// The commands in issue order.
    #[must_use]
    pub fn commands(&self) -> &[Command] {
        &self.commands
    }

    /// Number of commands.
    #[must_use]
    pub fn len(&self) -> usize {
        self.commands.len()
    }

    /// Whether the program is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.commands.is_empty()
    }

    /// Buffer size the program was lowered for.
    #[must_use]
    pub const fn spm_bytes(&self) -> u64 {
        self.spm_bytes
    }

    /// Number of cores the program was lowered for.
    #[must_use]
    pub const fn cores(&self) -> u32 {
        self.cores
    }

    /// Converts the command stream into the vocabulary of the
    /// `flexer-sim` abstract machine, for
    /// [`flexer_sim::interpret_program`].
    #[must_use]
    pub fn lowered(&self) -> Vec<flexer_sim::SpmCommand> {
        use flexer_sim::SpmCommand;
        self.commands
            .iter()
            .map(|c| match *c {
                Command::Load {
                    tile,
                    address,
                    bytes,
                } => SpmCommand::Load {
                    tile,
                    address,
                    bytes,
                },
                Command::Spill {
                    tile,
                    address,
                    bytes,
                } => SpmCommand::Spill {
                    tile,
                    address,
                    bytes,
                },
                Command::Discard {
                    tile,
                    address,
                    bytes,
                } => SpmCommand::Discard {
                    tile,
                    address,
                    bytes,
                },
                Command::Move {
                    tile,
                    bytes,
                    from,
                    to,
                } => SpmCommand::Move {
                    tile,
                    bytes,
                    from,
                    to,
                },
                Command::Reserve {
                    tile,
                    address,
                    bytes,
                } => SpmCommand::Reserve {
                    tile,
                    address,
                    bytes,
                },
                Command::Exec {
                    op,
                    core,
                    input,
                    weight,
                    output,
                    accumulate,
                } => SpmCommand::Exec {
                    op,
                    core,
                    input,
                    weight,
                    output,
                    accumulate,
                },
                Command::Store {
                    tile,
                    address,
                    bytes,
                } => SpmCommand::Store {
                    tile,
                    address,
                    bytes,
                },
                Command::GatherIn {
                    tile,
                    address,
                    bytes,
                } => SpmCommand::GatherIn {
                    tile,
                    address,
                    bytes,
                },
                Command::ScatterOut {
                    tile,
                    address,
                    bytes,
                } => SpmCommand::ScatterOut {
                    tile,
                    address,
                    bytes,
                },
            })
            .collect()
    }

    /// Renders the program as assembler-style text, one command per
    /// line.
    #[must_use]
    pub fn render(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "; program for {} cores, {} B global buffer, {} commands",
            self.cores,
            self.spm_bytes,
            self.commands.len()
        );
        for (i, c) in self.commands.iter().enumerate() {
            let _ = writeln!(out, "{i:>5}: {c}");
        }
        out
    }

    /// Validates the program against `dfg`: placements stay in bounds
    /// and never overlap live blocks, every command operates on
    /// resident data at the claimed address, `Exec` operands match the
    /// DFG, and every operation executes exactly once.
    ///
    /// # Errors
    ///
    /// Returns the first [`ProgramError`] found.
    pub fn check(&self, dfg: &Dfg) -> Result<(), ProgramError> {
        // Live blocks: tile -> (address, bytes).
        let mut live: BTreeMap<TileId, (u64, u64)> = BTreeMap::new();
        let mut exec_counts = vec![0usize; dfg.num_ops()];

        let overlap = |live: &BTreeMap<TileId, (u64, u64)>, addr: u64, bytes: u64| {
            live.iter()
                .find(|(_, &(a, b))| addr < a + b && a < addr + bytes)
                .map(|(t, _)| *t)
        };

        let mut i = 0;
        while i < self.commands.len() {
            let index = i;
            match self.commands[i] {
                Command::Load {
                    tile,
                    address,
                    bytes,
                }
                | Command::GatherIn {
                    tile,
                    address,
                    bytes,
                }
                | Command::Reserve {
                    tile,
                    address,
                    bytes,
                } => {
                    if address + bytes > self.spm_bytes {
                        return Err(ProgramError::OutOfBounds { index });
                    }
                    if let Some(occupant) = overlap(&live, address, bytes) {
                        return Err(ProgramError::Overlap { index, occupant });
                    }
                    live.insert(tile, (address, bytes));
                }
                Command::Spill { tile, address, .. } | Command::Discard { tile, address, .. } => {
                    if live.get(&tile).is_none_or(|&(a, _)| a != address) {
                        return Err(ProgramError::NotResident { index, tile });
                    }
                    live.remove(&tile);
                }
                Command::Move { .. } => {
                    // Compaction emits a batch of moves that happen
                    // "at once": later sources may overlap earlier
                    // destinations, so apply the whole run atomically.
                    let start = i;
                    let mut end = i;
                    while end < self.commands.len()
                        && matches!(self.commands[end], Command::Move { .. })
                    {
                        end += 1;
                    }
                    for j in start..end {
                        let Command::Move { tile, from, .. } = self.commands[j] else {
                            unreachable!("run contains only moves");
                        };
                        if live.get(&tile).is_none_or(|&(a, _)| a != from) {
                            return Err(ProgramError::NotResident { index: j, tile });
                        }
                        live.remove(&tile);
                    }
                    for j in start..end {
                        let Command::Move {
                            tile, bytes, to, ..
                        } = self.commands[j]
                        else {
                            unreachable!("run contains only moves");
                        };
                        if to + bytes > self.spm_bytes {
                            return Err(ProgramError::OutOfBounds { index: j });
                        }
                        if let Some(occupant) = overlap(&live, to, bytes) {
                            return Err(ProgramError::Overlap { index: j, occupant });
                        }
                        live.insert(tile, (to, bytes));
                    }
                    i = end;
                    continue;
                }
                Command::Exec {
                    op,
                    input,
                    weight,
                    output,
                    accumulate,
                    ..
                } => {
                    if op.index() >= dfg.num_ops() {
                        return Err(ProgramError::ExecMismatch { index, op });
                    }
                    exec_counts[op.index()] += 1;
                    let node = dfg.op(op);
                    for (tile, addr) in [
                        (node.input(), input),
                        (node.weight(), weight),
                        (node.output(), output),
                    ] {
                        if live.get(&tile).is_none_or(|&(a, _)| a != addr) {
                            return Err(ProgramError::NotResident { index, tile });
                        }
                    }
                    if accumulate != node.needs_psum() {
                        return Err(ProgramError::ExecMismatch { index, op });
                    }
                }
                Command::Store { tile, address, .. }
                | Command::ScatterOut { tile, address, .. } => {
                    if live.get(&tile).is_none_or(|&(a, _)| a != address) {
                        return Err(ProgramError::NotResident { index, tile });
                    }
                }
            }
            i += 1;
        }

        for (idx, &times) in exec_counts.iter().enumerate() {
            if times != 1 {
                return Err(ProgramError::ExecCount {
                    op: OpId::new(idx as u32),
                    times,
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "program: {} commands for {} cores / {} B buffer",
            self.commands.len(),
            self.cores,
            self.spm_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexer_arch::{ArchConfig, ArchPreset, SystolicModel};
    use flexer_model::ConvLayer;
    use flexer_tiling::{Dataflow, TilingFactors};

    fn tiny_dfg() -> (Dfg, ArchConfig) {
        let arch = ArchConfig::preset(ArchPreset::Arch1);
        let layer = ConvLayer::new("p", 8, 8, 8, 8).unwrap();
        let factors = TilingFactors::normalized(&layer, 1, 2, 1, 1);
        let model = SystolicModel::new(&arch);
        let dfg = Dfg::build(&layer, factors, Dataflow::Kcs, &model, &arch).unwrap();
        (dfg, arch)
    }

    /// A hand-written legal program for the 2-op chain of `tiny_dfg`.
    fn legal_program(dfg: &Dfg, spm: u64) -> Program {
        let op0 = dfg.op(OpId::new(0));
        let op1 = dfg.op(OpId::new(1));
        let b = |t: TileId| dfg.tile_bytes(t);
        let commands = vec![
            Command::Load {
                tile: op0.input(),
                address: 0,
                bytes: b(op0.input()),
            },
            Command::Load {
                tile: op0.weight(),
                address: 1000,
                bytes: b(op0.weight()),
            },
            Command::Reserve {
                tile: op0.output(),
                address: 2000,
                bytes: b(op0.output()),
            },
            Command::Exec {
                op: op0.id(),
                core: 0,
                input: 0,
                weight: 1000,
                output: 2000,
                accumulate: false,
            },
            Command::Discard {
                tile: op0.input(),
                address: 0,
                bytes: b(op0.input()),
            },
            Command::Load {
                tile: op1.input(),
                address: 0,
                bytes: b(op1.input()),
            },
            Command::Discard {
                tile: op0.weight(),
                address: 1000,
                bytes: b(op0.weight()),
            },
            Command::Load {
                tile: op1.weight(),
                address: 1000,
                bytes: b(op1.weight()),
            },
            Command::Exec {
                op: op1.id(),
                core: 0,
                input: 0,
                weight: 1000,
                output: 2000,
                accumulate: true,
            },
            Command::Store {
                tile: op1.output(),
                address: 2000,
                bytes: b(op1.output()),
            },
        ];
        Program::new(spm, 2, commands)
    }

    #[test]
    fn legal_program_checks() {
        let (dfg, arch) = tiny_dfg();
        let p = legal_program(&dfg, arch.spm_bytes());
        p.check(&dfg).unwrap();
        assert_eq!(p.len(), 10);
        assert!(!p.is_empty());
    }

    #[test]
    fn overlap_detected() {
        let (dfg, arch) = tiny_dfg();
        let mut p = legal_program(&dfg, arch.spm_bytes());
        // Second load lands on top of the first.
        if let Command::Load { address, .. } = &mut p.commands[1] {
            *address = 0;
        }
        let err = p.check(&dfg).unwrap_err();
        assert!(
            matches!(err, ProgramError::Overlap { index: 1, .. }),
            "{err}"
        );
    }

    #[test]
    fn out_of_bounds_detected() {
        let (dfg, _) = tiny_dfg();
        let p = legal_program(&dfg, 128); // absurdly small buffer
        assert!(matches!(
            p.check(&dfg).unwrap_err(),
            ProgramError::OutOfBounds { .. } | ProgramError::Overlap { .. }
        ));
    }

    #[test]
    fn use_of_non_resident_data_detected() {
        let (dfg, arch) = tiny_dfg();
        let mut p = legal_program(&dfg, arch.spm_bytes());
        // Execute before the weight arrives.
        p.commands.swap(1, 3);
        let err = p.check(&dfg).unwrap_err();
        assert!(matches!(err, ProgramError::NotResident { .. }), "{err}");
    }

    #[test]
    fn accumulate_flag_must_match_dfg() {
        let (dfg, arch) = tiny_dfg();
        let mut p = legal_program(&dfg, arch.spm_bytes());
        if let Command::Exec { accumulate, .. } = &mut p.commands[3] {
            *accumulate = true;
        }
        let err = p.check(&dfg).unwrap_err();
        assert!(matches!(err, ProgramError::ExecMismatch { .. }), "{err}");
    }

    #[test]
    fn missing_exec_detected() {
        let (dfg, arch) = tiny_dfg();
        let mut p = legal_program(&dfg, arch.spm_bytes());
        p.commands.truncate(5); // drop op1 entirely
        let err = p.check(&dfg).unwrap_err();
        assert!(
            matches!(err, ProgramError::ExecCount { times: 0, .. }),
            "{err}"
        );
    }

    #[test]
    fn move_batches_apply_atomically() {
        let (dfg, arch) = tiny_dfg();
        let op0 = dfg.op(OpId::new(0));
        let b = |t: TileId| dfg.tile_bytes(t);
        // Two tiles slide down; the second's destination overlaps the
        // first's old home — legal because the batch is atomic.
        let commands = vec![
            Command::Load {
                tile: op0.input(),
                address: 100,
                bytes: b(op0.input()),
            },
            Command::Load {
                tile: op0.weight(),
                address: 100 + b(op0.input()),
                bytes: b(op0.weight()),
            },
            Command::Move {
                tile: op0.input(),
                bytes: b(op0.input()),
                from: 100,
                to: 0,
            },
            Command::Move {
                tile: op0.weight(),
                bytes: b(op0.weight()),
                from: 100 + b(op0.input()),
                to: b(op0.input()),
            },
            Command::Reserve {
                tile: op0.output(),
                address: 4000,
                bytes: b(op0.output()),
            },
            Command::Exec {
                op: op0.id(),
                core: 0,
                input: 0,
                weight: b(op0.input()),
                output: 4000,
                accumulate: false,
            },
        ];
        let p = Program::new(arch.spm_bytes(), 2, commands);
        // op1 never executes -> ExecCount, but everything before is legal.
        let err = p.check(&dfg).unwrap_err();
        assert!(matches!(err, ProgramError::ExecCount { .. }), "{err}");
    }

    #[test]
    fn render_is_line_per_command() {
        let (dfg, arch) = tiny_dfg();
        let p = legal_program(&dfg, arch.spm_bytes());
        let text = p.render();
        assert_eq!(text.lines().count(), 1 + p.len());
        assert!(text.contains("LOAD"));
        assert!(text.contains("EXEC"));
        assert!(text.contains("+acc"));
        assert!(text.contains("STORE"));
    }
}
