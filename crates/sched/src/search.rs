//! The Algorithm-1 search driver: exhaustive search over tilings and
//! dataflows.

use crate::bound::{lower_bound_resident, Cutoff, Incumbent};
use crate::combo::ComboOptions;
use crate::error::SchedError;
use crate::memo::MemoCache;
use crate::metric::Metric;
use crate::ooo::{EvalMode, OooScheduler};
use crate::priority::PriorityPolicy;
use crate::static_sched::StaticScheduler;
use crate::stats::SearchStats;
use crate::verify::{verify_schedule_program, VerifyError};
use flexer_arch::{ArchConfig, SystolicModel};
use flexer_model::ConvLayer;
use flexer_sim::Schedule;
use flexer_spm::{FirstFitSpill, FlexerSpill, SmallestFirstSpill, SpillPolicy};
use flexer_tiling::{enumerate_tilings, Dataflow, Dfg, Residency, TilingFactors, TilingOptions};
use flexer_trace::{ClockMode, Lane, Trace, TraceConfig, TraceDetail, Tracer};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

/// Which spill-victim policy the scheduler uses (Table 2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpillPolicyChoice {
    /// The paper's Algorithm 2 (default).
    #[default]
    Flexer,
    /// Table 2 MemPolicy1: first fit.
    FirstFit,
    /// Table 2 MemPolicy2: smallest blocks first.
    SmallestFirst,
}

impl SpillPolicyChoice {
    /// The policy instance.
    #[must_use]
    pub fn policy(self) -> &'static dyn SpillPolicy {
        match self {
            SpillPolicyChoice::Flexer => &FlexerSpill,
            SpillPolicyChoice::FirstFit => &FirstFitSpill,
            SpillPolicyChoice::SmallestFirst => &SmallestFirstSpill,
        }
    }
}

/// How the `*_traced` search entry points record their run.
///
/// These options only configure *how* a trace is recorded (timestamp
/// source and instrumentation depth). Recording itself is switched on
/// by calling a traced entry point ([`crate::search_layer_traced`],
/// [`crate::search_network_traced`], …); the untraced APIs never
/// record, so carrying `TraceOptions` inside [`SearchOptions`] adds no
/// overhead to them. Excluded from the memo key — tracing never
/// changes a winner.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceOptions {
    /// Timestamp source. The default logical clock makes traces
    /// byte-stable across runs; [`ClockMode::Wall`] records real
    /// profiles at the price of run-to-run stability.
    pub clock: ClockMode,
    /// Instrumentation depth, from search-level spans only up to
    /// per-step memory events.
    pub detail: TraceDetail,
}

impl TraceOptions {
    /// The tracer these options describe.
    #[must_use]
    pub fn tracer(&self) -> Tracer {
        Tracer::new(TraceConfig {
            clock: self.clock,
            detail: self.detail,
        })
    }
}

/// Analytical incumbent seeding (`flexer-solve`).
///
/// When enabled, each leader layer's search starts with a *seed pass*:
/// the solver ranks every (tiling, dataflow) candidate with its
/// closed-form contention model, the top-`top_k` are fully evaluated
/// first, and the best of them becomes the initial [`Incumbent`]. The
/// branch-and-bound cutoff is therefore strong from the very first
/// regular candidate instead of warming up over hundreds of full
/// evaluations. Because cutoff comparisons are *strict*, seeding is
/// winner-neutral: the search returns byte-identical winners with
/// seeding on or off (see DESIGN.md §13). Excluded from the memo key
/// for the same reason.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeedOptions {
    /// Run the solver seed pass before the exact search. Off by
    /// default; requires pruning (a seed without a cutoff to arm does
    /// nothing and is skipped).
    pub enabled: bool,
    /// How many solver-ranked candidates the seed pass fully
    /// evaluates. Clamped to at least 1.
    pub top_k: usize,
    /// Test hook: install this exact score as the incumbent instead of
    /// evaluating solver candidates. An inadmissible value — below the
    /// layer's best lower bound, or cutting every candidate — fails
    /// the search with [`SchedError::InadmissibleSeed`] rather than
    /// silently returning a non-optimum.
    pub inject: Option<f64>,
}

impl Default for SeedOptions {
    fn default() -> Self {
        Self {
            enabled: false,
            top_k: 4,
            inject: None,
        }
    }
}

/// How a layer search terminated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SearchOutcome {
    /// Every candidate was resolved: the result is the proven optimum
    /// under the search metric.
    Exact,
    /// A deadline expired before every candidate was resolved: the
    /// result is the best schedule found so far.
    Anytime {
        /// Proven optimality gap: `score / best-unresolved-lower-bound`
        /// (`1.0` means the partial result is provably optimal anyway;
        /// `+inf` when no bounds were available to prove a gap).
        gap: f64,
    },
}

impl SearchOutcome {
    /// Whether this outcome proves the result optimal *and* the search
    /// exhaustive — the only results the memo cache and the persistent
    /// store are allowed to keep.
    #[must_use]
    pub fn is_exact(&self) -> bool {
        matches!(self, SearchOutcome::Exact)
    }
}

/// Every knob of the Algorithm-1 search.
///
/// # Examples
///
/// ```
/// use flexer_sched::{Metric, SearchOptions};
///
/// let opts = SearchOptions {
///     metric: Metric::Transfer,
///     ..SearchOptions::quick()
/// };
/// assert_eq!(opts.metric, Metric::Transfer);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchOptions {
    /// Tiling enumeration limits.
    pub tiling: TilingOptions,
    /// Dataflows (loop orders) explored; defaults to all six.
    pub dataflows: Vec<Dataflow>,
    /// The schedule-ranking metric (Algorithm 1 line 5).
    pub metric: Metric,
    /// Operation-set priority policy (§4.3 / Table 2).
    pub priority: PriorityPolicy,
    /// Spill-victim policy (§4.1 / Table 2).
    pub spill: SpillPolicyChoice,
    /// Combination-generation budgets (§4.2).
    pub combo: ComboOptions,
    /// How candidate sets are trial-planned against SPM state:
    /// transactionally on the live memory (default) or on a clone per
    /// candidate (the pre-optimization baseline, kept for benchmarks).
    /// Both produce byte-identical schedules.
    pub eval_mode: EvalMode,
    /// Worker threads for the parallel search the paper suggests (§3);
    /// `0` uses the available parallelism, `1` is serial. The unit of
    /// work is one `(layer, tiling, dataflow)` triple, so multi-layer
    /// searches do not serialize on layer boundaries.
    pub threads: usize,
    /// Whether to keep the `(latency, transfer)` point of every
    /// explored `(tiling, dataflow)` pair — the Figure-1 scatter data.
    pub collect_points: bool,
    /// Differentially verify every winning schedule: re-run its
    /// scheduler, lower the run to a command [`crate::Program`],
    /// execute it on the `flexer-sim` SPM abstract machine, and
    /// cross-check traffic, load counts, core placement and
    /// compaction against the analytical schedule
    /// ([`crate::verify_schedule_program`]). A failure surfaces as
    /// [`SchedError::IllegalSchedule`] instead of a silently wrong
    /// result. Off by default (one extra scheduler run per layer).
    /// Excluded from the memo key — memoized winners are re-verified
    /// on replay.
    #[serde(default)]
    pub validate: bool,
    /// Branch-and-bound pruning (on by default): skip candidates whose
    /// admissible lower bound is strictly worse than the layer's best
    /// score so far, and abort scheduler runs whose running score
    /// strictly exceeds it. *Exact*: strict comparisons preserve the
    /// exhaustive search's first-in-work-order tie-break, so winning
    /// schedules are byte-identical (see DESIGN.md §10).
    /// Force-disabled when [`SearchOptions::collect_points`] is set
    /// (point collection needs every candidate) or the metric is not
    /// monotone in (latency, transfer). Excluded from the memo key —
    /// the winner does not depend on it.
    #[serde(default)]
    pub prune: bool,
    /// Trace-recording configuration consumed by the `*_traced` entry
    /// points (see [`TraceOptions`]). Inert everywhere else; excluded
    /// from the memo key.
    #[serde(default)]
    pub trace: TraceOptions,
    /// Analytical incumbent seeding (see [`SeedOptions`]). Off by
    /// default; winner-neutral, so excluded from the memo key like
    /// [`SearchOptions::prune`].
    #[serde(default)]
    pub seed: SeedOptions,
    /// Cross-layer SPM residency of this layer's tensors, assigned by
    /// the network-level planner (`flexer-core`). A resident input is
    /// gathered from the producer's reserved SPM region instead of
    /// loaded from DRAM; a resident output is scattered into its own
    /// reserved region instead of stored. Resident transfers occupy
    /// the DMA engine for the same span but move zero DRAM bytes, so
    /// they change the transfer side of every score, bound and
    /// estimate — *included* in the memo key and the store
    /// fingerprint. Off (all-DRAM) by default.
    #[serde(default)]
    pub residency: Residency,
}

impl Default for SearchOptions {
    fn default() -> Self {
        Self {
            tiling: TilingOptions::default(),
            dataflows: Dataflow::all().to_vec(),
            metric: Metric::default(),
            priority: PriorityPolicy::default(),
            spill: SpillPolicyChoice::default(),
            combo: ComboOptions::default(),
            eval_mode: EvalMode::default(),
            threads: 0,
            collect_points: false,
            validate: false,
            prune: true,
            trace: TraceOptions::default(),
            seed: SeedOptions::default(),
            residency: Residency::default(),
        }
    }
}

impl SearchOptions {
    /// A reduced-budget configuration for tests and quick experiment
    /// runs: fewer tilings, smaller DFGs, tighter combination budgets.
    /// The search structure is unchanged, only its breadth.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            tiling: TilingOptions {
                max_ops: 256,
                max_tilings: 10,
                ..TilingOptions::default()
            },
            combo: ComboOptions {
                width_cap: 10,
                max_combos: 512,
                max_sets: 24,
                prune: true,
            },
            ..Self::default()
        }
    }

    /// Memoization key for a layer shape under these options.
    pub(crate) fn memo_key(
        &self,
        layer: &ConvLayer,
        arch: &ArchConfig,
        kind: SchedulerKind,
    ) -> MemoKey {
        // The operator kind normalizes to (tag, groups): matmul lowers
        // to exactly the geometry of the equivalent pointwise conv, so
        // the two deliberately share memo (and store) entries.
        let (kind_tag, kind_groups) = match layer.kind() {
            flexer_model::LayerKind::Dense | flexer_model::LayerKind::Matmul => (0, 1),
            flexer_model::LayerKind::Grouped { groups } => (1, groups),
        };
        MemoKey {
            shape: [
                layer.in_channels(),
                layer.in_height(),
                layer.in_width(),
                layer.out_channels(),
                layer.kernel_h(),
                layer.kernel_w(),
                layer.stride(),
                layer.padding(),
                kind_tag,
                kind_groups,
            ],
            arch: arch.clone(),
            kind,
            metric: self.metric.fingerprint(),
            priority: self.priority,
            spill: self.spill,
            combo: self.combo,
            eval_mode: self.eval_mode,
            tiling: self.tiling.clone(),
            dataflows: self.dataflows.clone(),
            residency: self.residency,
        }
    }
}

/// Memoization key of one layer search: the layer *shape* (not its
/// name), the hardware configuration, the scheduler kind and every
/// search knob. Derived `Hash + Eq` — distinct searches can never
/// collide the way a formatted string key could.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MemoKey {
    shape: [u32; 10],
    arch: ArchConfig,
    kind: SchedulerKind,
    metric: (u8, u64),
    priority: PriorityPolicy,
    spill: SpillPolicyChoice,
    combo: ComboOptions,
    eval_mode: EvalMode,
    tiling: TilingOptions,
    dataflows: Vec<Dataflow>,
    residency: Residency,
}

/// The `(latency, transfer)` outcome of one `(tiling, dataflow)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulePoint {
    /// The tiling factors.
    pub factors: TilingFactors,
    /// The dataflow (loop order).
    pub dataflow: Dataflow,
    /// Schedule latency in cycles.
    pub latency: u64,
    /// Transferred bytes.
    pub transfer_bytes: u64,
    /// The metric score (lower is better).
    pub score: f64,
}

/// The result of one layer search.
#[derive(Debug, Clone)]
pub struct LayerSearchResult {
    /// The layer searched.
    pub layer: String,
    /// The winning schedule.
    pub schedule: Schedule,
    /// Its tiling factors.
    pub factors: TilingFactors,
    /// Its dataflow.
    pub dataflow: Dataflow,
    /// Its metric score.
    pub score: f64,
    /// `(tiling, dataflow)` pairs the search resolved: scheduled to
    /// completion, bound-pruned, or early-exited (1 on a memo hit).
    pub evaluated: usize,
    /// All explored points when
    /// [`SearchOptions::collect_points`] was set.
    pub points: Vec<SchedulePoint>,
    /// Search-effort counters summed over every evaluated pair
    /// (zeroed for the static scheduler, which has no set search).
    pub stats: SearchStats,
    /// Whether the search was exhaustive ([`SearchOutcome::Exact`]) or
    /// cut short by a deadline with a proven optimality gap
    /// ([`SearchOutcome::Anytime`]).
    pub outcome: SearchOutcome,
}

impl LayerSearchResult {
    /// Whether this result is the proven optimum of an exhaustive
    /// search.
    #[must_use]
    pub fn is_exact(&self) -> bool {
        self.outcome.is_exact()
    }

    /// The anytime optimality gap, or `None` for an exact result.
    #[must_use]
    pub fn gap(&self) -> Option<f64> {
        match self.outcome {
            SearchOutcome::Exact => None,
            SearchOutcome::Anytime { gap } => Some(gap),
        }
    }
}

/// Which scheduler a search (or a persisted result) ran: the paper's
/// out-of-order scheduler or the static loop-order baseline. Part of
/// the memo key and of the `flexer-store` fingerprint — the two
/// schedulers' winners must never alias.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Flexer's out-of-order scheduler (Algorithm 1 `GetSchedule`).
    Ooo,
    /// The in-order loop-order baseline (§5).
    Static,
}

/// How one layer of a batch search is resolved.
enum Role {
    /// Searched exhaustively; owns work items `span.0..span.1` of the
    /// global queue.
    Leader { span: (usize, usize) },
    /// Same memo key as an earlier layer of this batch: replays the
    /// leader's winner with a single scheduler run.
    Duplicate { leader: usize },
    /// Memo-cache hit: replays the recorded winner directly.
    Replay {
        factors: TilingFactors,
        dataflow: Dataflow,
    },
}

/// How one `(layer, tiling, dataflow)` work item was resolved.
enum RunOutcome {
    /// Scheduled to completion (boxed: the other arms are small and
    /// pruned searches produce many of them).
    Done(Box<(Schedule, SearchStats)>),
    /// Skipped outright: its admissible lower bound was strictly worse
    /// than the layer's incumbent.
    Bounded,
    /// The scheduler aborted mid-run when the running score strictly
    /// exceeded the incumbent.
    EarlyExit,
    /// Left unresolved: the search deadline expired before this item's
    /// turn (the first item of each layer always runs, so an anytime
    /// search still produces a schedule).
    DeadlineCut,
    /// A real scheduling failure.
    Failed(SchedError),
}

/// Builds the DFG of one `(tiling, dataflow)` pair and runs the chosen
/// scheduler over it. A `cutoff` arms the out-of-order scheduler's
/// branch-and-bound early exit (the static scheduler has no incremental
/// cost to watch, so it ignores it).
#[allow(clippy::too_many_arguments)]
fn run_one(
    kind: SchedulerKind,
    layer: &ConvLayer,
    arch: &ArchConfig,
    model: &SystolicModel,
    (factors, dataflow): (TilingFactors, Dataflow),
    opts: &SearchOptions,
    cutoff: Option<Cutoff<'_>>,
    lane: &mut Lane,
) -> Result<(Schedule, SearchStats), SchedError> {
    let dfg = Dfg::build_resident(layer, factors, dataflow, model, arch, opts.residency)?;
    match kind {
        SchedulerKind::Ooo => {
            let mut sched = OooScheduler::new(&dfg, arch, model)
                .with_spill(opts.spill.policy())
                .with_priority(opts.priority)
                .with_combo(opts.combo)
                .with_eval_mode(opts.eval_mode);
            if let Some(cutoff) = cutoff {
                sched = sched.with_cutoff(cutoff);
            }
            sched
                .schedule_traced(lane)
                .map(|(schedule, _, stats)| (schedule, stats))
        }
        SchedulerKind::Static => StaticScheduler::new(&dfg, arch, model)
            .schedule()
            .map(|schedule| (schedule, SearchStats::default())),
    }
}

/// Differentially verifies a resolved winner: re-runs its scheduler
/// with program lowering, confirms the replay reproduces the winning
/// schedule, and runs the full verification chain
/// ([`verify_schedule_program`]) over the pair.
fn verify_winner(
    kind: SchedulerKind,
    layer: &ConvLayer,
    arch: &ArchConfig,
    model: &SystolicModel,
    opts: &SearchOptions,
    result: &mut LayerSearchResult,
) -> Result<(), SchedError> {
    let start = Instant::now();
    let dfg = Dfg::build_resident(
        layer,
        result.factors,
        result.dataflow,
        model,
        arch,
        opts.residency,
    )?;
    let (schedule, program) = match kind {
        SchedulerKind::Ooo => OooScheduler::new(&dfg, arch, model)
            .with_spill(opts.spill.policy())
            .with_priority(opts.priority)
            .with_combo(opts.combo)
            .with_eval_mode(opts.eval_mode)
            .schedule_with_program()?,
        SchedulerKind::Static => StaticScheduler::new(&dfg, arch, model).schedule_with_program()?,
    };
    if schedule != result.schedule {
        return Err(SchedError::IllegalSchedule(VerifyError::ReplayDiverged));
    }
    // Only the out-of-order scheduler's compactions are timed; the
    // static program's repacking moves are an addressing artifact.
    let check_compaction = kind == SchedulerKind::Ooo;
    verify_schedule_program(&dfg, &schedule, &program, check_compaction)?;
    result.stats.schedules_verified += 1;
    result.stats.verify_nanos += start.elapsed().as_nanos() as u64;
    Ok(())
}

/// Differentially verifies an already-resolved [`LayerSearchResult`]
/// — the public face of the search's internal winner verification,
/// for results that did not come out of a live search (e.g. a
/// `flexer-store` warm start): re-runs the result's scheduler with
/// program lowering, confirms the replay reproduces the recorded
/// schedule, and runs the full verification chain over the pair.
/// On success `result.stats.schedules_verified` is incremented.
///
/// # Errors
///
/// [`SchedError::IllegalSchedule`] when the replay diverges from the
/// recorded schedule or the program fails verification; any
/// [`SchedError`] the replayed scheduler itself reports.
pub fn verify_layer_result(
    layer: &ConvLayer,
    arch: &ArchConfig,
    opts: &SearchOptions,
    kind: SchedulerKind,
    result: &mut LayerSearchResult,
) -> Result<(), SchedError> {
    let model = SystolicModel::new(arch);
    verify_winner(kind, layer, arch, &model, opts, result)
}

/// Replays a known `(tiling, dataflow)` winner as a full
/// [`LayerSearchResult`] with `evaluated == 1`.
#[allow(clippy::too_many_arguments)]
fn replay_one(
    kind: SchedulerKind,
    layer: &ConvLayer,
    arch: &ArchConfig,
    model: &SystolicModel,
    factors: TilingFactors,
    dataflow: Dataflow,
    opts: &SearchOptions,
    lane: &mut Lane,
) -> Result<LayerSearchResult, SchedError> {
    let (schedule, stats) = run_one(
        kind,
        layer,
        arch,
        model,
        (factors, dataflow),
        opts,
        None,
        lane,
    )?;
    let score = opts
        .metric
        .score(schedule.latency(), schedule.transfer_bytes());
    Ok(LayerSearchResult {
        layer: layer.name().to_owned(),
        schedule,
        factors,
        dataflow,
        score,
        evaluated: 1,
        points: Vec::new(),
        stats,
        outcome: SearchOutcome::Exact,
    })
}

/// Searches a batch of layers over one flat work queue of
/// `(layer, tiling, dataflow)` triples.
///
/// Workers pull triples off a single shared index, so a network search
/// never serializes on layer boundaries: the last straggler tiling of
/// layer *i* overlaps with layer *i+1*'s search. Layers that hit the
/// memo cache, or that repeat an earlier in-batch shape, replay the
/// winner with one scheduler run instead of contributing work items.
///
/// The reduction per layer is deterministic in work order regardless of
/// thread count. Returns the first failing layer's error (in layer
/// order) if any layer fails.
fn search_many(
    kind: SchedulerKind,
    layers: &[ConvLayer],
    arch: &ArchConfig,
    opts: &SearchOptions,
    cache: Option<&MemoCache>,
    deadline: Option<Instant>,
) -> Result<Vec<LayerSearchResult>, SchedError> {
    let (results, _) = search_many_traced(
        kind,
        layers,
        arch,
        opts,
        cache,
        deadline,
        Tracer::disabled(),
    );
    results.into_iter().collect()
}

/// [`search_many`] with per-layer results and a recorded [`Trace`].
///
/// Lane 0 is the orchestrator: the search root span, per-leader bound
/// pre-passes, per-layer reduction / replay / verification spans and
/// the per-layer [`SearchStats`] counters. Work item *i* of the global
/// queue records into lane `1 + i`, so span identity is a function of
/// the deterministic work order, never of thread interleaving. With
/// the default logical clock the drained trace is byte-identical
/// across runs for `threads == 1` (any options) or any thread count
/// with pruning disabled — under parallel pruning the incumbent race
/// decides *when* a candidate is cut, which the per-candidate outcome
/// attributes faithfully record.
fn search_many_traced(
    kind: SchedulerKind,
    layers: &[ConvLayer],
    arch: &ArchConfig,
    opts: &SearchOptions,
    cache: Option<&MemoCache>,
    deadline: Option<Instant>,
    tracer: Tracer,
) -> (Vec<Result<LayerSearchResult, SchedError>>, Trace) {
    let model = SystolicModel::new(arch);
    let mut lane0 = tracer.lane(0, "search");
    let root_span = lane0.is_enabled().then(|| {
        let guard = lane0.enter("search");
        lane0.attr(
            "scheduler",
            match kind {
                SchedulerKind::Ooo => "ooo",
                SchedulerKind::Static => "static",
            },
        );
        lane0.attr("layers", layers.len());
        guard
    });

    // Classify layers: memo replays (§3's "memory function"), in-batch
    // duplicates, and leaders that contribute work to the global queue.
    // Point collection forces a full search of every layer.
    let mut seen: HashMap<MemoKey, usize> = HashMap::new();
    let mut roles: Vec<Role> = Vec::with_capacity(layers.len());
    let mut work: Vec<(usize, TilingFactors, Dataflow)> = Vec::new();
    for (li, layer) in layers.iter().enumerate() {
        if !opts.collect_points {
            let key = opts.memo_key(layer, arch, kind);
            if let Some((factors, dataflow)) = cache.and_then(|c| c.get(&key)) {
                roles.push(Role::Replay { factors, dataflow });
                continue;
            }
            if let Some(&leader) = seen.get(&key) {
                roles.push(Role::Duplicate { leader });
                continue;
            }
            seen.insert(key, li);
        }
        let tilings = enumerate_tilings(layer, arch, &opts.tiling);
        let start = work.len();
        work.extend(
            tilings
                .iter()
                .flat_map(|&f| opts.dataflows.iter().map(move |&d| (li, f, d))),
        );
        roles.push(Role::Leader {
            span: (start, work.len()),
        });
    }

    // Branch-and-bound pre-pass. Admissible lower bounds are
    // dataflow-independent, so one bound per (layer, tiling) covers the
    // whole consecutive run of its dataflow work items. Each leader's
    // span is then *executed* best-bound-first so strong incumbents
    // form early, while the reduction below still scans the span in
    // original work order — pruning never changes the winner (see
    // DESIGN.md §10).
    // Bounds are computed when pruning wants them *or* a deadline is
    // set (an anytime result needs per-candidate bounds to prove its
    // optimality gap); pruning additionally requires the bounds.
    let bounds_enabled =
        (opts.prune || deadline.is_some()) && !opts.collect_points && opts.metric.is_monotone();
    let prune_enabled = opts.prune && bounds_enabled;
    if root_span.is_some() {
        lane0.attr("prune", prune_enabled);
    }
    let incumbents: Vec<Incumbent> = layers.iter().map(|_| Incumbent::new()).collect();
    let mut bounds: Vec<f64> = Vec::new();
    let mut bound_nanos: Vec<u64> = vec![0; layers.len()];
    let mut exec_order: Vec<usize> = (0..work.len()).collect();
    if bounds_enabled {
        bounds = vec![0.0; work.len()];
        for (li, role) in roles.iter().enumerate() {
            let Role::Leader { span: (start, end) } = *role else {
                continue;
            };
            let bound_span = lane0.is_enabled().then(|| {
                let guard = lane0.enter("bound");
                lane0.attr("layer", layers[li].name());
                lane0.attr("candidates", end - start);
                guard
            });
            let bound_start = Instant::now();
            let mut i = start;
            while i < end {
                let factors = work[i].1;
                let score =
                    lower_bound_resident(&layers[li], arch, &model, &factors, opts.residency)
                        .score(opts.metric);
                while i < end && work[i].1 == factors {
                    bounds[i] = score;
                    i += 1;
                }
            }
            bound_nanos[li] = bound_start.elapsed().as_nanos() as u64;
            exec_order[start..end]
                .sort_by(|&a, &b| bounds[a].total_cmp(&bounds[b]).then(a.cmp(&b)));
            if let Some(guard) = bound_span {
                lane0.exit(guard);
            }
        }
    }

    // Drain the queue, optionally across threads (§3's suggested
    // parallelization). Each worker keeps its results in a private
    // vector — no per-slot lock — and they are scattered back into
    // work order afterwards.
    let threads = match opts.threads {
        0 => std::thread::available_parallelism().map_or(1, usize::from),
        n => n,
    }
    .min(work.len())
    .max(1);

    // Deadline bookkeeping. `expired` latches the first observation so
    // later items skip the clock read; `started` guarantees the first
    // item of every layer always runs — an anytime search must produce
    // *a* schedule per layer, however late the deadline already is.
    let expired = AtomicBool::new(false);
    let started: Vec<AtomicBool> = layers.iter().map(|_| AtomicBool::new(false)).collect();

    // Resolves work item `i`: bound-gate, schedule (with the layer's
    // shared incumbent armed as a cutoff), record the incumbent. The
    // item records into its own lane — identity `1 + i` pins the span
    // order to the work queue, not the thread schedule.
    let process = |i: usize| -> (RunOutcome, Lane) {
        let (li, f, d) = work[i];
        let mut lane = if tracer.is_enabled() {
            tracer.lane(
                1 + u32::try_from(i).expect("work queue fits in u32"),
                format!("{}/{i}", layers[li].name()),
            )
        } else {
            Lane::off()
        };
        let span = lane.is_enabled().then(|| {
            let guard = lane.enter("candidate");
            lane.attr("layer", layers[li].name());
            lane.attr("tiling", f.to_string());
            lane.attr("dataflow", format!("{d:?}"));
            guard
        });
        let first = !started[li].swap(true, Ordering::Relaxed);
        let cut = !first
            && deadline.is_some_and(|d| {
                expired.load(Ordering::Relaxed) || {
                    let e = Instant::now() >= d;
                    if e {
                        expired.store(true, Ordering::Relaxed);
                    }
                    e
                }
            });
        let outcome = if cut {
            if span.is_some() {
                lane.attr("outcome", "deadline");
            }
            RunOutcome::DeadlineCut
        } else if prune_enabled && bounds[i] > incumbents[li].get() {
            if span.is_some() {
                lane.attr("outcome", "bounded");
                lane.attr("bound", bounds[i]);
            }
            RunOutcome::Bounded
        } else {
            let cutoff = (prune_enabled && kind == SchedulerKind::Ooo)
                .then(|| Cutoff::new(&incumbents[li], opts.metric));
            match run_one(
                kind,
                &layers[li],
                arch,
                &model,
                (f, d),
                opts,
                cutoff,
                &mut lane,
            ) {
                Ok((schedule, stats)) => {
                    let score = opts
                        .metric
                        .score(schedule.latency(), schedule.transfer_bytes());
                    if prune_enabled {
                        incumbents[li].observe(score);
                    }
                    if span.is_some() {
                        lane.attr("outcome", "scheduled");
                        lane.attr("latency", schedule.latency());
                        lane.attr("transfer_bytes", schedule.transfer_bytes());
                        lane.attr("score", score);
                    }
                    RunOutcome::Done(Box::new((schedule, stats)))
                }
                Err(SchedError::Pruned) => {
                    if span.is_some() {
                        lane.attr("outcome", "early-exit");
                    }
                    RunOutcome::EarlyExit
                }
                Err(e) => {
                    if span.is_some() {
                        lane.attr("outcome", "failed");
                        lane.attr("error", e.to_string());
                    }
                    RunOutcome::Failed(e)
                }
            }
        };
        if let Some(guard) = span {
            lane.exit(guard);
        }
        (outcome, lane)
    };

    // Solver seed pass (`flexer-solve`). For each leader the top-k
    // analytically ranked candidates are fully evaluated *before* the
    // drain, so every regular candidate already faces a near-optimal
    // incumbent instead of one that warms up over the whole queue.
    // Strict cutoffs keep this winner-neutral (see DESIGN.md §13).
    // Requires pruning: a seed without a cutoff to arm does nothing.
    let seed_enabled = opts.seed.enabled && prune_enabled;
    let mut seeded: Vec<bool> = vec![false; work.len()];
    let mut seed_errors: Vec<Option<SchedError>> = layers.iter().map(|_| None).collect();
    let mut seed_scores: Vec<f64> = vec![f64::INFINITY; layers.len()];
    let mut seed_gap_ppms: Vec<u64> = vec![0; layers.len()];
    let mut seed_nanos: Vec<u64> = vec![0; layers.len()];
    let mut seed_results: Vec<(usize, (RunOutcome, Lane))> = Vec::new();
    if seed_enabled {
        for (li, role) in roles.iter().enumerate() {
            let Role::Leader { span: (start, end) } = *role else {
                continue;
            };
            if start == end {
                continue;
            }
            let seed_span = lane0.is_enabled().then(|| {
                let guard = lane0.enter("seed");
                lane0.attr("layer", layers[li].name());
                guard
            });
            let seed_start = Instant::now();
            let min_bound = bounds[start..end]
                .iter()
                .copied()
                .fold(f64::INFINITY, f64::min);
            match opts.seed.inject {
                // An injected score below every candidate's admissible
                // floor would cut the whole layer — reject it up front.
                Some(inject) if inject < min_bound => {
                    if seed_span.is_some() {
                        lane0.attr("outcome", "inadmissible");
                    }
                    seed_errors[li] = Some(SchedError::InadmissibleSeed {
                        layer: layers[li].name().to_owned(),
                        seed_score_bits: inject.to_bits(),
                        bound_score_bits: min_bound.to_bits(),
                    });
                }
                Some(inject) => {
                    incumbents[li].observe(inject);
                    if seed_span.is_some() {
                        lane0.attr("outcome", "injected");
                    }
                }
                None => {
                    let mut est: Vec<(f64, usize)> = (start..end)
                        .map(|i| {
                            let e = flexer_solve::estimate_resident(
                                &layers[li],
                                arch,
                                &model,
                                &work[i].1,
                                work[i].2,
                                opts.residency,
                            );
                            (opts.metric.score(e.latency, e.transfer_bytes), i)
                        })
                        .collect();
                    est.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                    let k = opts.seed.top_k.max(1).min(est.len());
                    for &(_, i) in &est[..k] {
                        seeded[i] = true;
                        seed_results.push((i, process(i)));
                    }
                    if seed_span.is_some() {
                        lane0.attr("outcome", "evaluated");
                        lane0.attr("evaluated", k);
                    }
                }
            }
            let score = incumbents[li].get();
            seed_scores[li] = score;
            if seed_errors[li].is_none() {
                seed_gap_ppms[li] = flexer_solve::gap_ppm(score, min_bound);
            }
            seed_nanos[li] = seed_start.elapsed().as_nanos() as u64;
            if let Some(guard) = seed_span {
                lane0.attr("score", score);
                lane0.attr("gap_ppm", seed_gap_ppms[li]);
                lane0.exit(guard);
            }
        }
        // Seeded items already ran; a seed-poisoned layer runs nothing.
        exec_order.retain(|&i| !seeded[i] && seed_errors[work[i].0].is_none());
    }

    let mut results: Vec<Option<(RunOutcome, Lane)>> = if threads == 1 {
        let mut slots: Vec<Option<(RunOutcome, Lane)>> = work.iter().map(|_| None).collect();
        for &i in &exec_order {
            slots[i] = Some(process(i));
        }
        slots
    } else {
        let next = AtomicUsize::new(0);
        let locals: Vec<Vec<(usize, (RunOutcome, Lane))>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let n = next.fetch_add(1, Ordering::Relaxed);
                            if n >= exec_order.len() {
                                break;
                            }
                            let i = exec_order[n];
                            local.push((i, process(i)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("search worker panicked"))
                .collect()
        });
        let mut slots: Vec<Option<(RunOutcome, Lane)>> = work.iter().map(|_| None).collect();
        for (i, r) in locals.into_iter().flatten() {
            slots[i] = Some(r);
        }
        slots
    };
    for (i, r) in seed_results {
        results[i] = Some(r);
    }

    // Deterministic per-layer reduction in work order. Leaders always
    // precede their duplicates, so a single in-order pass resolves
    // every role. Candidate lanes drain into the trace here, in work
    // order.
    let mut lanes: Vec<Lane> = Vec::new();
    let mut out: Vec<Result<LayerSearchResult, SchedError>> = Vec::with_capacity(layers.len());
    for (li, role) in roles.iter().enumerate() {
        let layer = &layers[li];
        let layer_span = lane0.is_enabled().then(|| {
            let guard = lane0.enter("layer");
            lane0.attr("name", layer.name());
            lane0.attr(
                "role",
                match role {
                    Role::Leader { .. } => "leader",
                    Role::Duplicate { .. } => "duplicate",
                    Role::Replay { .. } => "replay",
                },
            );
            guard
        });
        let resolved = match *role {
            Role::Replay { factors, dataflow } => replay_one(
                kind, layer, arch, &model, factors, dataflow, opts, &mut lane0,
            ),
            Role::Duplicate { leader } => match &out[leader] {
                // The duplicate inherits the leader's outcome: a
                // deadline-cut leader's winner is not proven optimal
                // for the duplicate either.
                Ok(lead) => replay_one(
                    kind,
                    layer,
                    arch,
                    &model,
                    lead.factors,
                    lead.dataflow,
                    opts,
                    &mut lane0,
                )
                .map(|mut r| {
                    r.outcome = lead.outcome;
                    r
                }),
                // The replayed error names the layer whose search
                // actually ran (the leader), not this duplicate.
                Err(e) => Err(SchedError::DuplicateOf {
                    leader: layers[leader].name().to_owned(),
                    error: Box::new(e.clone()),
                }),
            },
            Role::Leader { span: (start, end) } => {
                if let Some(e) = seed_errors[li].take() {
                    // A seed-poisoned layer ran no work items: its
                    // slots are still empty, so the typed error must
                    // win before the scan below would panic on them.
                    Err(e)
                } else {
                    let mut best: Option<(usize, Schedule, f64)> = None;
                    let mut points = Vec::new();
                    let mut first_err: Option<SchedError> = None;
                    let mut evaluated = 0usize;
                    let mut cut = 0u64;
                    let mut cut_min_bound = f64::INFINITY;
                    let mut stats = SearchStats::default();
                    if bounds_enabled {
                        stats.candidates_bounded += (end - start) as u64;
                        stats.bound_nanos += bound_nanos[li];
                    }
                    stats.seed_nanos += seed_nanos[li];
                    stats.seed_gap_ppm += seed_gap_ppms[li];
                    // Original work order, NOT execution order: a pruned
                    // candidate can never beat (nor tie) the incumbent, so
                    // keeping the first strict minimum over the surviving
                    // candidates reproduces the exhaustive search's
                    // first-in-work-order tie-break exactly.
                    for i in start..end {
                        let (outcome, lane) = results[i].take().expect("every work item processed");
                        lanes.push(lane);
                        match outcome {
                            RunOutcome::Done(done) => {
                                let (schedule, run_stats) = *done;
                                evaluated += 1;
                                stats.merge(&run_stats);
                                let score = opts
                                    .metric
                                    .score(schedule.latency(), schedule.transfer_bytes());
                                if opts.collect_points {
                                    points.push(SchedulePoint {
                                        factors: work[i].1,
                                        dataflow: work[i].2,
                                        latency: schedule.latency(),
                                        transfer_bytes: schedule.transfer_bytes(),
                                        score,
                                    });
                                }
                                if best.as_ref().is_none_or(|(_, _, s)| score < *s) {
                                    best = Some((i, schedule, score));
                                }
                            }
                            RunOutcome::Bounded => {
                                evaluated += 1;
                                stats.candidates_pruned += 1;
                                // The seed's score alone was enough to
                                // cut this candidate.
                                if bounds[i] > seed_scores[li] {
                                    stats.seeded_cutoffs += 1;
                                }
                            }
                            RunOutcome::EarlyExit => {
                                evaluated += 1;
                                stats.early_exits += 1;
                            }
                            RunOutcome::DeadlineCut => {
                                cut += 1;
                                if bounds_enabled {
                                    cut_min_bound = cut_min_bound.min(bounds[i]);
                                }
                            }
                            RunOutcome::Failed(e) => first_err = first_err.or(Some(e)),
                        }
                    }
                    match best {
                        Some((i, schedule, score)) => {
                            let outcome = if cut == 0 {
                                SearchOutcome::Exact
                            } else if !bounds_enabled {
                                // Unresolved candidates with no bounds:
                                // nothing provable about the gap.
                                SearchOutcome::Anytime { gap: f64::INFINITY }
                            } else if cut_min_bound >= score {
                                // Every unresolved candidate provably
                                // cannot beat the result — but the
                                // search was still not exhaustive, so
                                // it is not cached as exact.
                                SearchOutcome::Anytime { gap: 1.0 }
                            } else {
                                SearchOutcome::Anytime {
                                    gap: score / cut_min_bound,
                                }
                            };
                            if outcome.is_exact() {
                                if let Some(c) = cache {
                                    c.insert(
                                        opts.memo_key(layer, arch, kind),
                                        work[i].1,
                                        work[i].2,
                                    );
                                }
                            }
                            Ok(LayerSearchResult {
                                layer: layer.name().to_owned(),
                                schedule,
                                factors: work[i].1,
                                dataflow: work[i].2,
                                score,
                                evaluated,
                                points,
                                stats,
                                outcome,
                            })
                        }
                        // An admissible-looking injected seed that still
                        // cut every candidate sat between the layer's
                        // best bound and its true optimum — inadmissible
                        // after the fact.
                        None => match (first_err, opts.seed.inject) {
                            (Some(e), _) => Err(e),
                            (None, Some(inject)) if seed_enabled && end > start => {
                                let min_bound = bounds[start..end]
                                    .iter()
                                    .copied()
                                    .fold(f64::INFINITY, f64::min);
                                Err(SchedError::InadmissibleSeed {
                                    layer: layer.name().to_owned(),
                                    seed_score_bits: inject.to_bits(),
                                    bound_score_bits: min_bound.to_bits(),
                                })
                            }
                            _ => Err(SchedError::NoViableTiling {
                                layer: layer.name().to_owned(),
                            }),
                        },
                    }
                }
            }
        };
        let resolved = if opts.validate {
            resolved.and_then(|mut r| {
                let verify_span = lane0.is_enabled().then(|| lane0.enter("verify"));
                let verified = verify_winner(kind, layer, arch, &model, opts, &mut r);
                if let Some(guard) = verify_span {
                    lane0.attr("ok", verified.is_ok());
                    lane0.exit(guard);
                }
                verified.map(|()| r)
            })
        } else {
            resolved
        };
        if let Some(guard) = layer_span {
            match &resolved {
                Ok(r) => {
                    lane0.attr("outcome", "ok");
                    lane0.attr("evaluated", r.evaluated);
                    lane0.attr("score", r.score);
                    lane0.attr("latency", r.schedule.latency());
                    lane0.attr("transfer_bytes", r.schedule.transfer_bytes());
                    if let SearchOutcome::Anytime { gap } = r.outcome {
                        lane0.attr("gap", gap);
                    }
                    r.stats.record_counters(&mut lane0);
                }
                Err(e) => {
                    lane0.attr("outcome", "failed");
                    lane0.attr("error", e.to_string());
                }
            }
            lane0.exit(guard);
        }
        out.push(resolved);
    }

    if let Some(guard) = root_span {
        lane0.exit(guard);
    }
    let mut all_lanes = Vec::with_capacity(lanes.len() + 1);
    all_lanes.push(lane0);
    all_lanes.extend(lanes);
    (out, Trace::from_lanes(tracer.config(), all_lanes))
}

fn search(
    kind: SchedulerKind,
    layer: &ConvLayer,
    arch: &ArchConfig,
    opts: &SearchOptions,
    cache: Option<&MemoCache>,
    deadline: Option<Instant>,
) -> Result<LayerSearchResult, SchedError> {
    search_many(
        kind,
        std::slice::from_ref(layer),
        arch,
        opts,
        cache,
        deadline,
    )
    .map(|mut v| v.pop().expect("one layer in, one result out"))
}

/// Finds the best out-of-order schedule of `layer` on `arch` — the
/// paper's Algorithm 1.
///
/// # Errors
///
/// Returns [`SchedError::NoViableTiling`] when no tiling fits the
/// architecture, or the scheduling error of the only viable tilings.
pub fn search_layer(
    layer: &ConvLayer,
    arch: &ArchConfig,
    opts: &SearchOptions,
) -> Result<LayerSearchResult, SchedError> {
    search(SchedulerKind::Ooo, layer, arch, opts, None, None)
}

/// [`search_layer`] with a shared [`MemoCache`].
///
/// # Errors
///
/// As [`search_layer`].
pub fn search_layer_cached(
    layer: &ConvLayer,
    arch: &ArchConfig,
    opts: &SearchOptions,
    cache: &MemoCache,
) -> Result<LayerSearchResult, SchedError> {
    search(SchedulerKind::Ooo, layer, arch, opts, Some(cache), None)
}

/// Finds the best *static loop-order* schedule of `layer` on `arch` —
/// the paper's baseline (§5): exhaustive search over data-stationary
/// models (loop orders) and viable tiling sizes, executed in order.
///
/// # Errors
///
/// As [`search_layer`].
pub fn search_layer_static(
    layer: &ConvLayer,
    arch: &ArchConfig,
    opts: &SearchOptions,
) -> Result<LayerSearchResult, SchedError> {
    search(SchedulerKind::Static, layer, arch, opts, None, None)
}

/// [`search_layer_static`] with a shared [`MemoCache`].
///
/// # Errors
///
/// As [`search_layer`].
pub fn search_layer_static_cached(
    layer: &ConvLayer,
    arch: &ArchConfig,
    opts: &SearchOptions,
    cache: &MemoCache,
) -> Result<LayerSearchResult, SchedError> {
    search(SchedulerKind::Static, layer, arch, opts, Some(cache), None)
}

/// Searches every layer of a network over one shared work queue — the
/// multi-layer form of [`search_layer`].
///
/// All `(layer, tiling, dataflow)` triples feed one queue, so worker
/// threads never idle at a layer boundary while a straggler tiling of
/// the previous layer finishes. Repeated layer shapes are searched
/// once and replayed. Results are index-aligned with `layers` and
/// identical to per-layer [`search_layer`] calls.
///
/// # Errors
///
/// The first failing layer's error, in layer order — as
/// [`search_layer`] for that layer.
pub fn search_network(
    layers: &[ConvLayer],
    arch: &ArchConfig,
    opts: &SearchOptions,
) -> Result<Vec<LayerSearchResult>, SchedError> {
    search_many(SchedulerKind::Ooo, layers, arch, opts, None, None)
}

/// [`search_network`] with a shared [`MemoCache`].
///
/// # Errors
///
/// As [`search_network`].
pub fn search_network_cached(
    layers: &[ConvLayer],
    arch: &ArchConfig,
    opts: &SearchOptions,
    cache: &MemoCache,
) -> Result<Vec<LayerSearchResult>, SchedError> {
    search_many(SchedulerKind::Ooo, layers, arch, opts, Some(cache), None)
}

/// The static-baseline counterpart of [`search_network`].
///
/// # Errors
///
/// As [`search_network`].
pub fn search_network_static(
    layers: &[ConvLayer],
    arch: &ArchConfig,
    opts: &SearchOptions,
) -> Result<Vec<LayerSearchResult>, SchedError> {
    search_many(SchedulerKind::Static, layers, arch, opts, None, None)
}

/// [`search_network_static`] with a shared [`MemoCache`].
///
/// # Errors
///
/// As [`search_network`].
pub fn search_network_static_cached(
    layers: &[ConvLayer],
    arch: &ArchConfig,
    opts: &SearchOptions,
    cache: &MemoCache,
) -> Result<Vec<LayerSearchResult>, SchedError> {
    search_many(SchedulerKind::Static, layers, arch, opts, Some(cache), None)
}

/// [`search_layer`] with an *anytime* deadline.
///
/// Up to `deadline` the search is the exact branch-and-bound search;
/// once it expires, unstarted candidates are left unresolved and the
/// best schedule found so far is returned with
/// [`SearchOutcome::Anytime`] carrying a proven optimality gap —
/// `score / min(lower bound of the unresolved candidates)`. The first
/// candidate always runs even under an already-expired deadline, so
/// the result is always a real, verifiable schedule. `None` behaves
/// exactly like [`search_layer`].
///
/// # Errors
///
/// As [`search_layer`].
pub fn search_layer_deadline(
    layer: &ConvLayer,
    arch: &ArchConfig,
    opts: &SearchOptions,
    deadline: Option<Instant>,
) -> Result<LayerSearchResult, SchedError> {
    search(SchedulerKind::Ooo, layer, arch, opts, None, deadline)
}

/// [`search_network`] with an *anytime* deadline — per-layer semantics
/// as [`search_layer_deadline`]. The first candidate of *every* layer
/// runs even when the deadline has already expired, so an anytime
/// network search always returns one schedule per layer.
///
/// # Errors
///
/// As [`search_network`].
pub fn search_network_deadline(
    layers: &[ConvLayer],
    arch: &ArchConfig,
    opts: &SearchOptions,
    deadline: Option<Instant>,
) -> Result<Vec<LayerSearchResult>, SchedError> {
    search_many(SchedulerKind::Ooo, layers, arch, opts, None, deadline)
}

/// [`search_layer_static`] with an *anytime* deadline — the baseline
/// counterpart of [`search_layer_deadline`]. Identical semantics: up
/// to `deadline` the search is exhaustive; once it expires, unstarted
/// candidates are left unresolved and the best loop-order schedule
/// found so far is returned with [`SearchOutcome::Anytime`] carrying
/// a proven optimality gap. The first candidate always runs, so even
/// an already-expired deadline yields a real schedule.
///
/// # Errors
///
/// As [`search_layer_static`].
pub fn search_layer_static_deadline(
    layer: &ConvLayer,
    arch: &ArchConfig,
    opts: &SearchOptions,
    deadline: Option<Instant>,
) -> Result<LayerSearchResult, SchedError> {
    search(SchedulerKind::Static, layer, arch, opts, None, deadline)
}

/// [`search_network_static`] with an *anytime* deadline — per-layer
/// semantics as [`search_layer_static_deadline`]. The first candidate
/// of *every* layer runs even when the deadline has already expired,
/// so an anytime baseline search always returns one schedule per
/// layer.
///
/// # Errors
///
/// As [`search_network_static`].
pub fn search_network_static_deadline(
    layers: &[ConvLayer],
    arch: &ArchConfig,
    opts: &SearchOptions,
    deadline: Option<Instant>,
) -> Result<Vec<LayerSearchResult>, SchedError> {
    search_many(SchedulerKind::Static, layers, arch, opts, None, deadline)
}

/// The solver-only scheduling backend: rank every `(tiling, dataflow)`
/// candidate with the `flexer-solve` closed-form model, fully evaluate
/// only the top [`SeedOptions::top_k`], and return the best as a real,
/// verifiable schedule in milliseconds.
///
/// The result carries a *provable* quality certificate:
/// [`SearchOutcome::Exact`] when the winner meets the layer's best
/// admissible lower bound, otherwise [`SearchOutcome::Anytime`] with
/// `gap = score / best_lower_bound` (and
/// [`SearchStats::seed_gap_ppm`] holding the same gap in parts per
/// million). [`SearchStats::seed_nanos`] records the wall time of the
/// whole call.
///
/// # Errors
///
/// As [`search_layer`].
pub fn solve_layer(
    layer: &ConvLayer,
    arch: &ArchConfig,
    opts: &SearchOptions,
) -> Result<LayerSearchResult, SchedError> {
    let start = Instant::now();
    let model = SystolicModel::new(arch);
    let tilings = enumerate_tilings(layer, arch, &opts.tiling);
    let ranked = flexer_solve::rank_candidates_resident(
        layer,
        arch,
        &model,
        &tilings,
        &opts.dataflows,
        opts.metric,
        opts.residency,
    );
    if ranked.is_empty() {
        return Err(SchedError::NoViableTiling {
            layer: layer.name().to_owned(),
        });
    }
    let min_bound = ranked
        .iter()
        .map(|c| c.bound_score(opts.metric))
        .fold(f64::INFINITY, f64::min);
    let incumbent = Incumbent::new();
    let k = opts.seed.top_k.max(1).min(ranked.len());
    let mut best: Option<(TilingFactors, Dataflow, Schedule, f64)> = None;
    let mut first_err: Option<SchedError> = None;
    let mut evaluated = 0usize;
    let mut stats = SearchStats::default();
    for c in &ranked[..k] {
        match run_one(
            SchedulerKind::Ooo,
            layer,
            arch,
            &model,
            (c.factors, c.dataflow),
            opts,
            Some(Cutoff::new(&incumbent, opts.metric)),
            &mut Lane::off(),
        ) {
            Ok((schedule, run_stats)) => {
                evaluated += 1;
                stats.merge(&run_stats);
                let score = opts
                    .metric
                    .score(schedule.latency(), schedule.transfer_bytes());
                incumbent.observe(score);
                if best.as_ref().is_none_or(|(_, _, _, s)| score < *s) {
                    best = Some((c.factors, c.dataflow, schedule, score));
                }
            }
            Err(SchedError::Pruned) => {
                evaluated += 1;
                stats.early_exits += 1;
            }
            Err(e) => first_err = first_err.or(Some(e)),
        }
    }
    match best {
        Some((factors, dataflow, schedule, score)) => {
            stats.seed_nanos = start.elapsed().as_nanos() as u64;
            stats.seed_gap_ppm = flexer_solve::gap_ppm(score, min_bound);
            let outcome = if score <= min_bound {
                SearchOutcome::Exact
            } else if min_bound > 0.0 {
                SearchOutcome::Anytime {
                    gap: score / min_bound,
                }
            } else {
                SearchOutcome::Anytime { gap: f64::INFINITY }
            };
            Ok(LayerSearchResult {
                layer: layer.name().to_owned(),
                schedule,
                factors,
                dataflow,
                score,
                evaluated,
                points: Vec::new(),
                stats,
                outcome,
            })
        }
        None => Err(first_err.unwrap_or(SchedError::NoViableTiling {
            layer: layer.name().to_owned(),
        })),
    }
}

/// [`search_layer`] with trace recording under
/// [`SearchOptions::trace`]. Always returns the recorded [`Trace`],
/// even when the search fails — failed searches are exactly when a
/// trace is most useful.
///
/// With the default logical clock the trace is byte-identical across
/// runs when `opts.threads == 1` (any options), or at any thread count
/// with `opts.prune == false`; under parallel pruning the incumbent
/// race decides when candidates are cut, which the trace records
/// faithfully.
pub fn search_layer_traced(
    layer: &ConvLayer,
    arch: &ArchConfig,
    opts: &SearchOptions,
) -> (Result<LayerSearchResult, SchedError>, Trace) {
    let (mut results, trace) = search_many_traced(
        SchedulerKind::Ooo,
        std::slice::from_ref(layer),
        arch,
        opts,
        None,
        None,
        opts.trace.tracer(),
    );
    (results.pop().expect("one layer in, one result out"), trace)
}

/// [`search_network`] with trace recording under
/// [`SearchOptions::trace`] — determinism contract as
/// [`search_layer_traced`].
pub fn search_network_traced(
    layers: &[ConvLayer],
    arch: &ArchConfig,
    opts: &SearchOptions,
) -> (Result<Vec<LayerSearchResult>, SchedError>, Trace) {
    let (results, trace) = search_many_traced(
        SchedulerKind::Ooo,
        layers,
        arch,
        opts,
        None,
        None,
        opts.trace.tracer(),
    );
    (results.into_iter().collect(), trace)
}

/// [`search_network_traced`] with a shared [`MemoCache`].
pub fn search_network_traced_cached(
    layers: &[ConvLayer],
    arch: &ArchConfig,
    opts: &SearchOptions,
    cache: &MemoCache,
) -> (Result<Vec<LayerSearchResult>, SchedError>, Trace) {
    let (results, trace) = search_many_traced(
        SchedulerKind::Ooo,
        layers,
        arch,
        opts,
        Some(cache),
        None,
        opts.trace.tracer(),
    );
    (results.into_iter().collect(), trace)
}

/// The static-baseline counterpart of [`search_network_traced`].
pub fn search_network_static_traced(
    layers: &[ConvLayer],
    arch: &ArchConfig,
    opts: &SearchOptions,
) -> (Result<Vec<LayerSearchResult>, SchedError>, Trace) {
    let (results, trace) = search_many_traced(
        SchedulerKind::Static,
        layers,
        arch,
        opts,
        None,
        None,
        opts.trace.tracer(),
    );
    (results.into_iter().collect(), trace)
}

/// [`search_network`] without the first-error collapse: one
/// `Result` per layer, index-aligned with `layers`.
///
/// Where [`search_network`] returns only the first failing layer's
/// error, this keeps every layer's individual outcome — in particular
/// a duplicate of a failed leader surfaces as
/// [`SchedError::DuplicateOf`] wrapping the leader's error, which the
/// collapsed form can never show (the leader's own error always
/// precedes it in layer order).
pub fn search_network_layerwise(
    layers: &[ConvLayer],
    arch: &ArchConfig,
    opts: &SearchOptions,
) -> Vec<Result<LayerSearchResult, SchedError>> {
    search_many_traced(
        SchedulerKind::Ooo,
        layers,
        arch,
        opts,
        None,
        None,
        Tracer::disabled(),
    )
    .0
}

/// Explores every `(tiling, dataflow)` pair with both schedulers and
/// returns their `(latency, transfer)` scatter — the data behind the
/// paper's Figure 1.
///
/// Returns index-aligned `(ooo_points, static_points)`: entry `i` of
/// both vectors describes the same `(tiling, dataflow)` pair. Pairs
/// where either scheduler failed are omitted from both vectors.
///
/// # Errors
///
/// As [`search_layer`].
pub fn sweep_tilings(
    layer: &ConvLayer,
    arch: &ArchConfig,
    opts: &SearchOptions,
) -> Result<(Vec<SchedulePoint>, Vec<SchedulePoint>), SchedError> {
    let mut opts = opts.clone();
    opts.collect_points = true;
    let ooo = search(SchedulerKind::Ooo, layer, arch, &opts, None, None)?;
    let st = search(SchedulerKind::Static, layer, arch, &opts, None, None)?;
    // Inner-join on the (tiling, dataflow) key: either scheduler may
    // have skipped pairs it could not schedule.
    let key = |p: &SchedulePoint| (p.factors, p.dataflow);
    let static_by_key: std::collections::BTreeMap<_, SchedulePoint> =
        st.points.into_iter().map(|p| (key(&p), p)).collect();
    let mut ooo_points = Vec::new();
    let mut static_points = Vec::new();
    for p in ooo.points {
        if let Some(s) = static_by_key.get(&key(&p)) {
            ooo_points.push(p);
            static_points.push(*s);
        }
    }
    Ok((ooo_points, static_points))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexer_arch::ArchPreset;

    fn layer() -> ConvLayer {
        ConvLayer::new("t", 32, 14, 14, 32).unwrap()
    }

    fn arch() -> ArchConfig {
        ArchConfig::preset(ArchPreset::Arch1)
    }

    #[test]
    fn ooo_search_returns_best_of_points() {
        let mut opts = SearchOptions::quick();
        opts.collect_points = true;
        opts.threads = 1;
        let r = search_layer(&layer(), &arch(), &opts).unwrap();
        assert!(!r.points.is_empty());
        assert_eq!(r.evaluated, r.points.len());
        let min = r
            .points
            .iter()
            .map(|p| p.score)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(r.score, min);
    }

    #[test]
    fn parallel_and_serial_agree() {
        let mut serial_opts = SearchOptions::quick();
        serial_opts.threads = 1;
        let mut par_opts = SearchOptions::quick();
        par_opts.threads = 4;
        let a = search_layer(&layer(), &arch(), &serial_opts).unwrap();
        let b = search_layer(&layer(), &arch(), &par_opts).unwrap();
        assert_eq!(a.factors, b.factors);
        assert_eq!(a.dataflow, b.dataflow);
        assert_eq!(a.score, b.score);
        assert_eq!(a.schedule.latency(), b.schedule.latency());
    }

    #[test]
    fn network_search_matches_per_layer_searches() {
        // One queue over all layers must produce exactly what
        // independent per-layer searches produce, at any thread count.
        let layers = [
            layer(),
            ConvLayer::new("u", 16, 28, 28, 32).unwrap(),
            layer().with_name("t-again"),
        ];
        for threads in [1, 4] {
            let mut opts = SearchOptions::quick();
            opts.threads = threads;
            let batch = search_network(&layers, &arch(), &opts).unwrap();
            assert_eq!(batch.len(), layers.len());
            for (l, b) in layers.iter().zip(&batch) {
                let solo = search_layer(l, &arch(), &opts).unwrap();
                assert_eq!(b.layer, l.name());
                assert_eq!(b.factors, solo.factors);
                assert_eq!(b.dataflow, solo.dataflow);
                assert_eq!(b.score, solo.score);
                assert_eq!(b.schedule, solo.schedule);
            }
        }
    }

    #[test]
    fn network_search_replays_repeated_shapes() {
        let layers = [layer(), layer().with_name("twin")];
        let opts = SearchOptions::quick();
        let batch = search_network(&layers, &arch(), &opts).unwrap();
        assert!(batch[0].evaluated > 1, "leader searches exhaustively");
        assert_eq!(batch[1].evaluated, 1, "duplicate replays the winner");
        assert_eq!(batch[0].schedule, batch[1].schedule);
    }

    #[test]
    fn search_results_carry_stats() {
        let mut opts = SearchOptions::quick();
        opts.threads = 1;
        let r = search_layer(&layer(), &arch(), &opts).unwrap();
        assert!(r.stats.steps > 0);
        assert!(r.stats.sets_evaluated > 0);
        assert!(r.stats.rollback_bytes > 0, "transactional mode is default");
        assert_eq!(r.stats.candidates_bounded as usize, r.evaluated);
        // The static scheduler has no set search, but the
        // branch-and-bound layer still bounds its candidates.
        let s = search_layer_static(&layer(), &arch(), &opts).unwrap();
        assert_eq!(s.stats.steps, 0);
        assert_eq!(s.stats.sets_evaluated, 0);
        assert!(s.stats.candidates_bounded > 0);
        assert_eq!(s.stats.early_exits, 0, "no cutoff in the static path");
    }

    #[test]
    fn pruned_search_matches_exhaustive() {
        for threads in [1, 4] {
            let mut pruned = SearchOptions::quick();
            pruned.threads = threads;
            assert!(pruned.prune, "pruning is the default");
            let mut exhaustive = pruned.clone();
            exhaustive.prune = false;
            for (l, ar) in [
                (layer(), arch()),
                (
                    ConvLayer::new("v", 64, 28, 28, 48).unwrap(),
                    ArchConfig::preset(ArchPreset::Arch5),
                ),
            ] {
                let p = search_layer(&l, &ar, &pruned).unwrap();
                let e = search_layer(&l, &ar, &exhaustive).unwrap();
                assert_eq!(p.factors, e.factors);
                assert_eq!(p.dataflow, e.dataflow);
                assert_eq!(p.score, e.score);
                assert_eq!(p.schedule, e.schedule);
                assert!(p.stats.candidates_bounded > 0);
                assert_eq!(e.stats.candidates_bounded, 0);
                let ps = search_layer_static(&l, &ar, &pruned).unwrap();
                let es = search_layer_static(&l, &ar, &exhaustive).unwrap();
                assert_eq!(ps.factors, es.factors);
                assert_eq!(ps.score, es.score);
                assert_eq!(ps.schedule, es.schedule);
            }
        }
    }

    #[test]
    fn serial_pruned_search_actually_prunes() {
        let mut opts = SearchOptions::quick();
        opts.threads = 1;
        let r = search_layer(&layer(), &arch(), &opts).unwrap();
        assert!(
            r.stats.candidates_pruned + r.stats.early_exits > 0,
            "quick search of a 32-channel layer should cut something: {:?}",
            r.stats
        );
        assert!(r.stats.bound_nanos > 0);
    }

    #[test]
    fn non_monotone_metric_disables_pruning() {
        let mut opts = SearchOptions::quick();
        opts.threads = 1;
        opts.metric = Metric::TransferWeighted { weight: -1.0 };
        let r = search_layer(&layer(), &arch(), &opts).unwrap();
        assert_eq!(r.stats.candidates_bounded, 0);
        assert_eq!(r.stats.candidates_pruned, 0);
        assert_eq!(r.stats.early_exits, 0);
    }

    #[test]
    fn static_search_works() {
        let opts = SearchOptions::quick();
        let r = search_layer_static(&layer(), &arch(), &opts).unwrap();
        assert!(r.schedule.latency() > 0);
        assert!(r.schedule.transfer_bytes() > 0);
    }

    #[test]
    fn memo_cache_replays_winner() {
        let opts = SearchOptions::quick();
        let cache = MemoCache::new();
        let full = search_layer_cached(&layer(), &arch(), &opts, &cache).unwrap();
        assert!(full.evaluated > 1);
        assert_eq!(cache.len(), 1);
        // Same shape, different name: memo hit.
        let renamed = layer().with_name("other");
        let hit = search_layer_cached(&renamed, &arch(), &opts, &cache).unwrap();
        assert_eq!(hit.evaluated, 1);
        assert_eq!(hit.factors, full.factors);
        assert_eq!(hit.dataflow, full.dataflow);
        assert_eq!(hit.schedule.latency(), full.schedule.latency());
        assert_eq!(hit.score, full.score);
    }

    #[test]
    fn memo_key_distinguishes_options() {
        let a = SearchOptions::quick();
        let mut b = SearchOptions::quick();
        b.metric = Metric::Transfer;
        let mut c = SearchOptions::quick();
        c.eval_mode = EvalMode::CloneBaseline;
        let l = layer();
        let ar = arch();
        assert_ne!(
            a.memo_key(&l, &ar, SchedulerKind::Ooo),
            b.memo_key(&l, &ar, SchedulerKind::Ooo)
        );
        assert_ne!(
            a.memo_key(&l, &ar, SchedulerKind::Ooo),
            c.memo_key(&l, &ar, SchedulerKind::Ooo)
        );
        assert_ne!(
            a.memo_key(&l, &ar, SchedulerKind::Ooo),
            a.memo_key(&l, &ar, SchedulerKind::Static)
        );
        // The key tracks the shape, not the name.
        assert_eq!(
            a.memo_key(&l, &ar, SchedulerKind::Ooo),
            a.memo_key(&l.clone().with_name("alias"), &ar, SchedulerKind::Ooo)
        );
    }

    #[test]
    fn sweep_produces_both_scatters() {
        let opts = SearchOptions::quick();
        let (ooo, st) = sweep_tilings(&layer(), &arch(), &opts).unwrap();
        assert!(!ooo.is_empty());
        assert_eq!(ooo.len(), st.len());
    }

    #[test]
    fn restricted_dataflows_are_honoured() {
        let mut opts = SearchOptions::quick();
        opts.dataflows = vec![Dataflow::Ksc];
        opts.collect_points = true;
        let r = search_layer_static(&layer(), &arch(), &opts).unwrap();
        assert!(r.points.iter().all(|p| p.dataflow == Dataflow::Ksc));
        assert_eq!(r.dataflow, Dataflow::Ksc);
    }

    #[test]
    fn spill_policy_choices_resolve() {
        assert_eq!(SpillPolicyChoice::Flexer.policy().name(), "flexer");
        assert_eq!(SpillPolicyChoice::FirstFit.policy().name(), "first-fit");
        assert_eq!(
            SpillPolicyChoice::SmallestFirst.policy().name(),
            "small-first"
        );
        assert_eq!(SpillPolicyChoice::default(), SpillPolicyChoice::Flexer);
    }

    #[test]
    fn collect_points_bypasses_memo_replay() {
        let mut opts = SearchOptions::quick();
        let cache = MemoCache::new();
        let _ = search_layer_cached(&layer(), &arch(), &opts, &cache).unwrap();
        assert_eq!(cache.len(), 1);
        opts.collect_points = true;
        let full = search_layer_cached(&layer(), &arch(), &opts, &cache).unwrap();
        assert!(full.evaluated > 1, "memo must not shortcut a point sweep");
        assert!(!full.points.is_empty());
    }

    #[test]
    fn ooo_and_static_memo_entries_do_not_collide() {
        let opts = SearchOptions::quick();
        let cache = MemoCache::new();
        let _ = search_layer_cached(&layer(), &arch(), &opts, &cache).unwrap();
        let _ = search_layer_static_cached(&layer(), &arch(), &opts, &cache).unwrap();
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn validated_searches_verify_every_winner() {
        let mut opts = SearchOptions::quick();
        opts.validate = true;
        opts.threads = 1;
        let r = search_layer(&layer(), &arch(), &opts).unwrap();
        assert_eq!(r.stats.schedules_verified, 1);
        assert!(r.stats.verify_nanos > 0);
        let s = search_layer_static(&layer(), &arch(), &opts).unwrap();
        assert_eq!(s.stats.schedules_verified, 1);
    }

    #[test]
    fn validated_memo_replays_are_reverified() {
        let mut opts = SearchOptions::quick();
        opts.validate = true;
        let cache = MemoCache::new();
        let _ = search_layer_cached(&layer(), &arch(), &opts, &cache).unwrap();
        let hit = search_layer_cached(&layer().with_name("other"), &arch(), &opts, &cache).unwrap();
        assert_eq!(hit.evaluated, 1, "memo hit replays the winner");
        assert_eq!(hit.stats.schedules_verified, 1, "replays are verified too");
    }

    #[test]
    fn validate_is_not_part_of_the_memo_key() {
        let a = SearchOptions::quick();
        let mut b = SearchOptions::quick();
        b.validate = true;
        let l = layer();
        let ar = arch();
        assert_eq!(
            a.memo_key(&l, &ar, SchedulerKind::Ooo),
            b.memo_key(&l, &ar, SchedulerKind::Ooo)
        );
    }

    #[test]
    fn prune_is_not_part_of_the_memo_key() {
        // Pruning never changes the winner, so memo entries recorded
        // with it on replay correctly with it off and vice versa.
        let a = SearchOptions::quick();
        let mut b = SearchOptions::quick();
        b.prune = false;
        let l = layer();
        let ar = arch();
        assert_eq!(
            a.memo_key(&l, &ar, SchedulerKind::Ooo),
            b.memo_key(&l, &ar, SchedulerKind::Ooo)
        );
    }

    #[test]
    fn trace_is_not_part_of_the_memo_key() {
        let a = SearchOptions::quick();
        let mut b = SearchOptions::quick();
        b.trace = TraceOptions {
            clock: ClockMode::Wall,
            detail: TraceDetail::Memory,
        };
        let l = layer();
        let ar = arch();
        assert_eq!(
            a.memo_key(&l, &ar, SchedulerKind::Ooo),
            b.memo_key(&l, &ar, SchedulerKind::Ooo)
        );
    }

    /// Number of `Enter` events named `name` across all lanes.
    fn count_spans(trace: &Trace, name: &str) -> usize {
        trace
            .lanes()
            .iter()
            .flat_map(|l| &l.events)
            .filter(|e| matches!(e.kind, flexer_trace::EventKind::Enter { name: n } if n == name))
            .count()
    }

    #[test]
    fn traced_search_records_a_well_formed_trace() {
        let mut opts = SearchOptions::quick();
        opts.threads = 1;
        let (r, trace) = search_layer_traced(&layer(), &arch(), &opts);
        let r = r.unwrap();
        trace.check().unwrap();
        assert_eq!(count_spans(&trace, "search"), 1);
        assert_eq!(count_spans(&trace, "layer"), 1);
        assert_eq!(
            count_spans(&trace, "candidate"),
            r.evaluated,
            "one candidate span per evaluated (tiling, dataflow) pair"
        );
        assert!(count_spans(&trace, "bound") > 0, "pruning is the default");
        let summary = trace.summary();
        assert!(summary.counters > 0, "layer stats become counters");
    }

    #[test]
    fn traced_serial_search_is_deterministic() {
        let mut opts = SearchOptions::quick();
        opts.threads = 1;
        let (_, a) = search_layer_traced(&layer(), &arch(), &opts);
        let (_, b) = search_layer_traced(&layer(), &arch(), &opts);
        assert_eq!(
            flexer_trace::text::render_tree(&a),
            flexer_trace::text::render_tree(&b)
        );
        assert_eq!(
            flexer_trace::chrome::to_chrome_json(&a),
            flexer_trace::chrome::to_chrome_json(&b)
        );
    }

    #[test]
    fn traced_search_returns_trace_on_failure() {
        let huge = flexer_model::ConvLayerBuilder::new("huge", 4096, 1024, 1024, 4096)
            .build()
            .unwrap();
        let mut opts = SearchOptions::quick();
        opts.tiling.max_ops = 32;
        let (r, trace) = search_layer_traced(&huge, &arch(), &opts);
        assert!(r.is_err());
        trace.check().unwrap();
        assert!(!trace.is_empty(), "failures still produce a trace");
        let tree = flexer_trace::text::render_tree(&trace);
        assert!(tree.contains("outcome=failed"), "{tree}");
    }

    #[test]
    fn untraced_searches_share_the_traced_code_path() {
        let mut opts = SearchOptions::quick();
        opts.threads = 1;
        let plain = search_layer(&layer(), &arch(), &opts).unwrap();
        opts.trace.detail = TraceDetail::Memory;
        let (traced, trace) = search_layer_traced(&layer(), &arch(), &opts);
        let traced = traced.unwrap();
        assert_eq!(
            plain.schedule, traced.schedule,
            "tracing never changes winners"
        );
        assert_eq!(plain.score, traced.score);
        assert!(
            count_spans(&trace, "step") > 0,
            "Memory detail includes steps"
        );
        assert!(count_spans(&trace, "commit") > 0);
    }

    #[test]
    fn layerwise_search_keeps_per_layer_errors() {
        let good = layer();
        let bad = flexer_model::ConvLayerBuilder::new("huge", 4096, 1024, 1024, 4096)
            .build()
            .unwrap();
        let mut opts = SearchOptions::quick();
        opts.tiling.max_ops = 32;
        let results = search_network_layerwise(&[good, bad], &arch(), &opts);
        assert_eq!(results.len(), 2);
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1].as_ref().unwrap_err(),
            SchedError::NoViableTiling { .. }
        ));
    }

    #[test]
    fn seeded_search_matches_unseeded() {
        // The seed pass only installs an incumbent; strict cutoffs keep
        // winners byte-identical across schedulers, arches and thread
        // counts.
        for threads in [1, 4] {
            let mut seeded = SearchOptions::quick();
            seeded.threads = threads;
            seeded.seed.enabled = true;
            let mut plain = seeded.clone();
            plain.seed.enabled = false;
            for (l, ar) in [
                (layer(), arch()),
                (
                    ConvLayer::new("v", 64, 28, 28, 48).unwrap(),
                    ArchConfig::preset(ArchPreset::Arch5),
                ),
            ] {
                let s = search_layer(&l, &ar, &seeded).unwrap();
                let p = search_layer(&l, &ar, &plain).unwrap();
                assert_eq!(s.factors, p.factors);
                assert_eq!(s.dataflow, p.dataflow);
                assert_eq!(s.score, p.score);
                assert_eq!(s.schedule, p.schedule);
                assert!(s.is_exact() && p.is_exact());
                let ss = search_layer_static(&l, &ar, &seeded).unwrap();
                let ps = search_layer_static(&l, &ar, &plain).unwrap();
                assert_eq!(ss.factors, ps.factors);
                assert_eq!(ss.score, ps.score);
                assert_eq!(ss.schedule, ps.schedule);
            }
        }
    }

    #[test]
    fn seeded_search_runs_fewer_full_schedules() {
        let mut plain = SearchOptions::quick();
        plain.threads = 1;
        let mut seeded = plain.clone();
        seeded.seed.enabled = true;
        let l = ConvLayer::new("v", 64, 28, 28, 48).unwrap();
        let ar = ArchConfig::preset(ArchPreset::Arch5);
        let p = search_layer(&l, &ar, &plain).unwrap();
        let s = search_layer(&l, &ar, &seeded).unwrap();
        // Full scheduler runs = evaluated − bound-pruned − early-exits.
        let full = |r: &LayerSearchResult| {
            r.evaluated as u64 - r.stats.candidates_pruned - r.stats.early_exits
        };
        assert!(
            full(&s) <= full(&p),
            "seeding must never schedule more candidates: {} vs {}",
            full(&s),
            full(&p)
        );
        // A single layer can tie exactly (score ties always run to
        // completion in both modes); the *strict* network-level
        // reduction is asserted by `bench_json --seed` in check.sh.
        assert!(
            s.stats.candidates_pruned + s.stats.early_exits
                >= p.stats.candidates_pruned + p.stats.early_exits,
            "the seeded incumbent should cut at least as much: {:?} vs {:?}",
            s.stats,
            p.stats
        );
        assert!(s.stats.seed_nanos > 0);
        assert!(
            s.stats.seeded_cutoffs > 0,
            "the seed score alone should bound some candidates: {:?}",
            s.stats
        );
        assert_eq!(p.stats.seeded_cutoffs, 0);
        assert_eq!(p.stats.seed_nanos, 0);
    }

    #[test]
    fn inadmissible_injected_seed_is_rejected_up_front() {
        let mut opts = SearchOptions::quick();
        opts.threads = 1;
        opts.seed.enabled = true;
        opts.seed.inject = Some(0.0);
        let err = search_layer(&layer(), &arch(), &opts).unwrap_err();
        assert!(matches!(err, SchedError::InadmissibleSeed { .. }), "{err}");
    }

    #[test]
    fn seed_between_bound_and_optimum_is_rejected_after_the_fact() {
        // An injected score above every lower bound but below the true
        // optimum passes the up-front check yet cuts every candidate;
        // the reduction must still surface a typed error, not a bogus
        // NoViableTiling (or worse, a silent non-optimum).
        let mut opts = SearchOptions::quick();
        opts.threads = 1;
        let best = search_layer(&layer(), &arch(), &opts).unwrap().score;
        let model = SystolicModel::new(&arch());
        let min_bound = enumerate_tilings(&layer(), &arch(), &opts.tiling)
            .iter()
            .map(|f| flexer_solve::lower_bound(&layer(), &arch(), &model, f).score(opts.metric))
            .fold(f64::INFINITY, f64::min);
        assert!(min_bound < best, "test needs a gap to sit inside");
        opts.seed.enabled = true;
        opts.seed.inject = Some((min_bound + best) / 2.0);
        let err = search_layer(&layer(), &arch(), &opts).unwrap_err();
        assert!(matches!(err, SchedError::InadmissibleSeed { .. }), "{err}");
    }

    #[test]
    fn injecting_the_exact_optimum_is_winner_neutral() {
        // Strict cutoffs: a seed tying the optimum still lets the
        // optimum complete, so this is the tightest admissible seed.
        let mut opts = SearchOptions::quick();
        opts.threads = 1;
        let plain = search_layer(&layer(), &arch(), &opts).unwrap();
        opts.seed.enabled = true;
        opts.seed.inject = Some(plain.score);
        let seeded = search_layer(&layer(), &arch(), &opts).unwrap();
        assert_eq!(seeded.schedule, plain.schedule);
        assert_eq!(seeded.score, plain.score);
        assert!(seeded.stats.candidates_pruned + seeded.stats.early_exits > 0);
    }

    #[test]
    fn expired_deadline_returns_an_anytime_result() {
        for threads in [1, 4] {
            let mut opts = SearchOptions::quick();
            opts.threads = threads;
            let r = search_layer_deadline(&layer(), &arch(), &opts, Some(Instant::now())).unwrap();
            assert!(!r.is_exact(), "an expired deadline cannot be exhaustive");
            let gap = r.gap().unwrap();
            assert!(gap >= 1.0, "gap is a ratio over a lower bound: {gap}");
            assert!(gap.is_finite(), "bounds were available to prove a gap");
            assert!(r.schedule.latency() > 0);
            // The partial winner is still a real, verifiable schedule.
            let mut r = r;
            verify_layer_result(&layer(), &arch(), &opts, SchedulerKind::Ooo, &mut r).unwrap();
        }
    }

    #[test]
    fn expired_deadline_still_schedules_every_layer() {
        let layers = [layer(), ConvLayer::new("u", 16, 28, 28, 32).unwrap()];
        let opts = SearchOptions::quick();
        let batch = search_network_deadline(&layers, &arch(), &opts, Some(Instant::now())).unwrap();
        assert_eq!(batch.len(), layers.len());
        for r in &batch {
            assert!(r.schedule.latency() > 0);
        }
    }

    #[test]
    fn generous_deadline_stays_exact() {
        let mut opts = SearchOptions::quick();
        opts.threads = 1;
        let far = Instant::now() + std::time::Duration::from_secs(3600);
        let r = search_layer_deadline(&layer(), &arch(), &opts, Some(far)).unwrap();
        let plain = search_layer(&layer(), &arch(), &opts).unwrap();
        assert!(r.is_exact());
        assert_eq!(r.gap(), None);
        assert_eq!(r.schedule, plain.schedule);
        assert_eq!(r.score, plain.score);
    }

    #[test]
    fn static_expired_deadline_returns_an_anytime_result() {
        for threads in [1, 4] {
            let mut opts = SearchOptions::quick();
            opts.threads = threads;
            let r = search_layer_static_deadline(&layer(), &arch(), &opts, Some(Instant::now()))
                .unwrap();
            assert!(!r.is_exact(), "an expired deadline cannot be exhaustive");
            let gap = r.gap().unwrap();
            assert!(gap >= 1.0, "gap is a ratio over a lower bound: {gap}");
            assert!(gap.is_finite(), "bounds were available to prove a gap");
            assert!(r.schedule.latency() > 0);
            // The partial winner is still a real, verifiable schedule.
            let mut r = r;
            verify_layer_result(&layer(), &arch(), &opts, SchedulerKind::Static, &mut r).unwrap();
        }
    }

    #[test]
    fn static_generous_deadline_stays_exact() {
        let mut opts = SearchOptions::quick();
        opts.threads = 1;
        let far = Instant::now() + std::time::Duration::from_secs(3600);
        let r = search_layer_static_deadline(&layer(), &arch(), &opts, Some(far)).unwrap();
        let plain = search_layer_static(&layer(), &arch(), &opts).unwrap();
        assert!(r.is_exact());
        assert_eq!(r.gap(), None);
        assert_eq!(r.schedule, plain.schedule);
        assert_eq!(r.score, plain.score);
    }

    #[test]
    fn static_expired_deadline_still_schedules_every_layer() {
        let layers = [layer(), ConvLayer::new("u", 16, 28, 28, 32).unwrap()];
        let opts = SearchOptions::quick();
        let batch =
            search_network_static_deadline(&layers, &arch(), &opts, Some(Instant::now())).unwrap();
        assert_eq!(batch.len(), layers.len());
        for r in &batch {
            assert!(r.schedule.latency() > 0);
            assert!(!r.is_exact());
        }
    }

    #[test]
    fn resident_search_validates_and_cuts_dram_traffic() {
        use flexer_sim::TrafficClass;
        let mut opts = SearchOptions::quick();
        opts.threads = 1;
        opts.validate = true;
        let plain = search_layer(&layer(), &arch(), &opts).unwrap();
        opts.residency = Residency {
            input_resident: true,
            output_resident: true,
        };
        let resident = search_layer(&layer(), &arch(), &opts).unwrap();
        // Resident classes never touch DRAM; their bytes live in the
        // resident counters instead.
        let traffic = resident.schedule.traffic();
        assert_eq!(traffic.class_bytes(TrafficClass::Input), 0);
        assert_eq!(traffic.class_bytes(TrafficClass::Output), 0);
        assert!(resident.schedule.resident_in_bytes() > 0);
        assert!(resident.schedule.resident_out_bytes() > 0);
        assert!(
            resident.schedule.transfer_bytes() < plain.schedule.transfer_bytes(),
            "residency must strictly cut DRAM traffic"
        );
    }

    #[test]
    fn resident_static_search_validates_and_cuts_dram_traffic() {
        use flexer_sim::TrafficClass;
        let mut opts = SearchOptions::quick();
        opts.threads = 1;
        opts.validate = true;
        let plain = search_layer_static(&layer(), &arch(), &opts).unwrap();
        opts.residency = Residency {
            input_resident: true,
            output_resident: true,
        };
        let resident = search_layer_static(&layer(), &arch(), &opts).unwrap();
        let traffic = resident.schedule.traffic();
        assert_eq!(traffic.class_bytes(TrafficClass::Input), 0);
        assert_eq!(traffic.class_bytes(TrafficClass::Output), 0);
        assert!(
            resident.schedule.transfer_bytes() < plain.schedule.transfer_bytes(),
            "residency must strictly cut DRAM traffic"
        );
    }

    #[test]
    fn residency_is_part_of_the_memo_key() {
        let a = SearchOptions::quick();
        let mut b = SearchOptions::quick();
        b.residency.input_resident = true;
        let l = layer();
        let ar = arch();
        assert_ne!(
            a.memo_key(&l, &ar, SchedulerKind::Ooo),
            b.memo_key(&l, &ar, SchedulerKind::Ooo)
        );
    }

    #[test]
    fn seeded_resident_search_matches_unseeded() {
        // Seeding stays winner-neutral under residency: the seed pass
        // estimates with the same residency-aware byte math the exact
        // search scores with.
        let mut opts = SearchOptions::quick();
        opts.threads = 1;
        opts.residency = Residency {
            input_resident: true,
            output_resident: false,
        };
        let plain = search_layer(&layer(), &arch(), &opts).unwrap();
        opts.seed.enabled = true;
        let seeded = search_layer(&layer(), &arch(), &opts).unwrap();
        assert_eq!(seeded.schedule, plain.schedule);
        assert_eq!(seeded.score, plain.score);
    }

    #[test]
    fn seeded_and_deadline_search_seeds_before_cutting() {
        // Even with an already-expired deadline, the seed pass ran its
        // top-k first, so the anytime result is seed-quality rather
        // than first-candidate quality.
        let mut opts = SearchOptions::quick();
        opts.threads = 1;
        opts.seed.enabled = true;
        let r = search_layer_deadline(&layer(), &arch(), &opts, Some(Instant::now())).unwrap();
        assert!(r.schedule.latency() > 0);
        assert!(r.stats.seed_nanos > 0);
    }

    #[test]
    fn seed_is_not_part_of_the_memo_key() {
        let a = SearchOptions::quick();
        let mut b = SearchOptions::quick();
        b.seed.enabled = true;
        b.seed.top_k = 16;
        let l = layer();
        let ar = arch();
        assert_eq!(
            a.memo_key(&l, &ar, SchedulerKind::Ooo),
            b.memo_key(&l, &ar, SchedulerKind::Ooo)
        );
    }

    #[test]
    fn solver_backend_returns_a_bounded_schedule() {
        let mut opts = SearchOptions::quick();
        opts.threads = 1;
        let solved = solve_layer(&layer(), &arch(), &opts).unwrap();
        let exact = search_layer(&layer(), &arch(), &opts).unwrap();
        assert!(solved.evaluated <= opts.seed.top_k);
        assert!(
            solved.score >= exact.score,
            "the solver cannot beat the proven optimum"
        );
        assert!(solved.stats.seed_nanos > 0);
        match solved.outcome {
            SearchOutcome::Exact => {
                assert_eq!(solved.stats.seed_gap_ppm, 0);
                assert_eq!(solved.score, exact.score);
            }
            SearchOutcome::Anytime { gap } => {
                assert!(gap >= 1.0);
                assert!(gap.is_finite());
            }
        }
        // The solver's winner is a real schedule: verify it end to end.
        let mut solved = solved;
        verify_layer_result(&layer(), &arch(), &opts, SchedulerKind::Ooo, &mut solved).unwrap();
    }

    #[test]
    fn anytime_results_are_not_memoized() {
        let opts = SearchOptions::quick();
        let cache = MemoCache::new();
        let (results, _) = search_many_traced(
            SchedulerKind::Ooo,
            std::slice::from_ref(&layer()),
            &arch(),
            &opts,
            Some(&cache),
            Some(Instant::now()),
            Tracer::disabled(),
        );
        let r = results.into_iter().next().unwrap().unwrap();
        assert!(!r.is_exact());
        assert_eq!(
            cache.len(),
            0,
            "a non-exhaustive winner must not poison the memo cache"
        );
    }

    #[test]
    fn impossible_layer_reports_no_viable_tiling() {
        // A single 1x1 output with enormous channel depth: every tiling
        // of the channel dims still needs the full-width weight tile
        // rows; choose dims the enumerator cannot fit into 256 KiB.
        let huge = flexer_model::ConvLayerBuilder::new("huge", 4096, 1024, 1024, 4096)
            .build()
            .unwrap();
        let mut opts = SearchOptions::quick();
        opts.tiling.max_ops = 32; // too few ops allowed to shrink tiles enough
        let err = search_layer(&huge, &arch(), &opts).unwrap_err();
        assert!(matches!(err, SchedError::NoViableTiling { .. }), "{err}");
    }
}
