//! The Algorithm-1 search driver: exhaustive search over tilings and
//! dataflows.

use crate::combo::ComboOptions;
use crate::error::SchedError;
use crate::memo::MemoCache;
use crate::metric::Metric;
use crate::ooo::OooScheduler;
use crate::priority::PriorityPolicy;
use crate::static_sched::StaticScheduler;
use flexer_arch::{ArchConfig, SystolicModel};
use flexer_model::ConvLayer;
use flexer_sim::Schedule;
use flexer_spm::{FirstFitSpill, FlexerSpill, SmallestFirstSpill, SpillPolicy};
use flexer_tiling::{enumerate_tilings, Dataflow, Dfg, TilingFactors, TilingOptions};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Which spill-victim policy the scheduler uses (Table 2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpillPolicyChoice {
    /// The paper's Algorithm 2 (default).
    #[default]
    Flexer,
    /// Table 2 MemPolicy1: first fit.
    FirstFit,
    /// Table 2 MemPolicy2: smallest blocks first.
    SmallestFirst,
}

impl SpillPolicyChoice {
    /// The policy instance.
    #[must_use]
    pub fn policy(self) -> &'static dyn SpillPolicy {
        match self {
            SpillPolicyChoice::Flexer => &FlexerSpill,
            SpillPolicyChoice::FirstFit => &FirstFitSpill,
            SpillPolicyChoice::SmallestFirst => &SmallestFirstSpill,
        }
    }
}

/// Every knob of the Algorithm-1 search.
///
/// # Examples
///
/// ```
/// use flexer_sched::{Metric, SearchOptions};
///
/// let opts = SearchOptions {
///     metric: Metric::Transfer,
///     ..SearchOptions::quick()
/// };
/// assert_eq!(opts.metric, Metric::Transfer);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchOptions {
    /// Tiling enumeration limits.
    pub tiling: TilingOptions,
    /// Dataflows (loop orders) explored; defaults to all six.
    pub dataflows: Vec<Dataflow>,
    /// The schedule-ranking metric (Algorithm 1 line 5).
    pub metric: Metric,
    /// Operation-set priority policy (§4.3 / Table 2).
    pub priority: PriorityPolicy,
    /// Spill-victim policy (§4.1 / Table 2).
    pub spill: SpillPolicyChoice,
    /// Combination-generation budgets (§4.2).
    pub combo: ComboOptions,
    /// Worker threads for the per-tiling parallel search the paper
    /// suggests (§3); `0` uses the available parallelism, `1` is
    /// serial.
    pub threads: usize,
    /// Whether to keep the `(latency, transfer)` point of every
    /// explored `(tiling, dataflow)` pair — the Figure-1 scatter data.
    pub collect_points: bool,
}

impl Default for SearchOptions {
    fn default() -> Self {
        Self {
            tiling: TilingOptions::default(),
            dataflows: Dataflow::all().to_vec(),
            metric: Metric::default(),
            priority: PriorityPolicy::default(),
            spill: SpillPolicyChoice::default(),
            combo: ComboOptions::default(),
            threads: 0,
            collect_points: false,
        }
    }
}

impl SearchOptions {
    /// A reduced-budget configuration for tests and quick experiment
    /// runs: fewer tilings, smaller DFGs, tighter combination budgets.
    /// The search structure is unchanged, only its breadth.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            tiling: TilingOptions {
                max_ops: 256,
                max_tilings: 10,
                ..TilingOptions::default()
            },
            combo: ComboOptions {
                width_cap: 10,
                max_combos: 512,
                max_sets: 24,
                prune: true,
            },
            ..Self::default()
        }
    }

    /// Memoization key for a layer shape under these options.
    fn memo_key(&self, layer: &ConvLayer, arch: &ArchConfig, kind: SchedulerKind) -> String {
        format!(
            "{}x{}x{}->{}k{}x{}s{}p{}|{arch}|{kind:?}|{}|{}|{:?}|{:?}|{:?}|{:?}",
            layer.in_channels(),
            layer.in_height(),
            layer.in_width(),
            layer.out_channels(),
            layer.kernel_h(),
            layer.kernel_w(),
            layer.stride(),
            layer.padding(),
            self.metric,
            self.priority,
            self.spill,
            self.combo,
            self.tiling,
            self.dataflows,
        )
    }
}

/// The `(latency, transfer)` outcome of one `(tiling, dataflow)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulePoint {
    /// The tiling factors.
    pub factors: TilingFactors,
    /// The dataflow (loop order).
    pub dataflow: Dataflow,
    /// Schedule latency in cycles.
    pub latency: u64,
    /// Transferred bytes.
    pub transfer_bytes: u64,
    /// The metric score (lower is better).
    pub score: f64,
}

/// The result of one layer search.
#[derive(Debug, Clone)]
pub struct LayerSearchResult {
    /// The layer searched.
    pub layer: String,
    /// The winning schedule.
    pub schedule: Schedule,
    /// Its tiling factors.
    pub factors: TilingFactors,
    /// Its dataflow.
    pub dataflow: Dataflow,
    /// Its metric score.
    pub score: f64,
    /// `(tiling, dataflow)` pairs evaluated (1 on a memo hit).
    pub evaluated: usize,
    /// All explored points when
    /// [`SearchOptions::collect_points`] was set.
    pub points: Vec<SchedulePoint>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SchedulerKind {
    Ooo,
    Static,
}

/// Builds the DFG of one `(tiling, dataflow)` pair and runs the chosen
/// scheduler over it.
fn run_one(
    kind: SchedulerKind,
    layer: &ConvLayer,
    arch: &ArchConfig,
    model: &SystolicModel,
    factors: TilingFactors,
    dataflow: Dataflow,
    opts: &SearchOptions,
) -> Result<Schedule, SchedError> {
    let dfg = Dfg::build(layer, factors, dataflow, model, arch)?;
    match kind {
        SchedulerKind::Ooo => OooScheduler::new(&dfg, arch, model)
            .with_spill(opts.spill.policy())
            .with_priority(opts.priority)
            .with_combo(opts.combo)
            .schedule(),
        SchedulerKind::Static => StaticScheduler::new(&dfg, arch, model).schedule(),
    }
}

fn search(
    kind: SchedulerKind,
    layer: &ConvLayer,
    arch: &ArchConfig,
    opts: &SearchOptions,
    cache: Option<&MemoCache>,
) -> Result<LayerSearchResult, SchedError> {
    let model = SystolicModel::new(arch);

    // Memo hit: replay the recorded winner directly (§3's "memory
    // function"). Point collection forces a full search.
    let key = cache.map(|c| (c, opts.memo_key(layer, arch, kind)));
    if !opts.collect_points {
        if let Some((c, k)) = &key {
            if let Some((factors, dataflow)) = c.get(k) {
                let schedule = run_one(kind, layer, arch, &model, factors, dataflow, opts)?;
                let score = opts.metric.score(schedule.latency(), schedule.transfer_bytes());
                return Ok(LayerSearchResult {
                    layer: layer.name().to_owned(),
                    schedule,
                    factors,
                    dataflow,
                    score,
                    evaluated: 1,
                    points: Vec::new(),
                });
            }
        }
    }

    let tilings = enumerate_tilings(layer, arch, &opts.tiling);
    if tilings.is_empty() {
        return Err(SchedError::NoViableTiling {
            layer: layer.name().to_owned(),
        });
    }
    let work: Vec<(TilingFactors, Dataflow)> = tilings
        .iter()
        .flat_map(|&f| opts.dataflows.iter().map(move |&d| (f, d)))
        .collect();

    // Evaluate every (tiling, dataflow) pair, optionally across
    // threads (§3's suggested parallelization).
    let threads = match opts.threads {
        0 => std::thread::available_parallelism().map_or(1, usize::from),
        n => n,
    }
    .min(work.len())
    .max(1);

    let results: Vec<Option<Result<Schedule, SchedError>>> = if threads == 1 {
        work.iter()
            .map(|&(f, d)| Some(run_one(kind, layer, arch, &model, f, d, opts)))
            .collect()
    } else {
        let slots: Vec<Mutex<Option<Result<Schedule, SchedError>>>> =
            work.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        crossbeam::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= work.len() {
                        break;
                    }
                    let (f, d) = work[i];
                    let r = run_one(kind, layer, arch, &model, f, d, opts);
                    *slots[i].lock().expect("result slot poisoned") = Some(r);
                });
            }
        })
        .expect("search worker panicked");
        slots
            .into_iter()
            .map(|m| m.into_inner().expect("result slot poisoned"))
            .collect()
    };

    // Deterministic reduction in work order.
    let mut best: Option<(usize, Schedule, f64)> = None;
    let mut points = Vec::new();
    let mut first_err: Option<SchedError> = None;
    let mut evaluated = 0usize;
    for (i, slot) in results.into_iter().enumerate() {
        match slot.expect("every work item processed") {
            Ok(schedule) => {
                evaluated += 1;
                let score = opts.metric.score(schedule.latency(), schedule.transfer_bytes());
                if opts.collect_points {
                    points.push(SchedulePoint {
                        factors: work[i].0,
                        dataflow: work[i].1,
                        latency: schedule.latency(),
                        transfer_bytes: schedule.transfer_bytes(),
                        score,
                    });
                }
                let better = best.as_ref().is_none_or(|(_, _, s)| score < *s);
                if better {
                    best = Some((i, schedule, score));
                }
            }
            Err(e) => first_err = first_err.or(Some(e)),
        }
    }
    let Some((i, schedule, score)) = best else {
        return Err(first_err.unwrap_or(SchedError::NoViableTiling {
            layer: layer.name().to_owned(),
        }));
    };

    if let Some((c, k)) = key {
        c.insert(k, work[i].0, work[i].1);
    }
    Ok(LayerSearchResult {
        layer: layer.name().to_owned(),
        schedule,
        factors: work[i].0,
        dataflow: work[i].1,
        score,
        evaluated,
        points,
    })
}

/// Finds the best out-of-order schedule of `layer` on `arch` — the
/// paper's Algorithm 1.
///
/// # Errors
///
/// Returns [`SchedError::NoViableTiling`] when no tiling fits the
/// architecture, or the scheduling error of the only viable tilings.
pub fn search_layer(
    layer: &ConvLayer,
    arch: &ArchConfig,
    opts: &SearchOptions,
) -> Result<LayerSearchResult, SchedError> {
    search(SchedulerKind::Ooo, layer, arch, opts, None)
}

/// [`search_layer`] with a shared [`MemoCache`].
///
/// # Errors
///
/// As [`search_layer`].
pub fn search_layer_cached(
    layer: &ConvLayer,
    arch: &ArchConfig,
    opts: &SearchOptions,
    cache: &MemoCache,
) -> Result<LayerSearchResult, SchedError> {
    search(SchedulerKind::Ooo, layer, arch, opts, Some(cache))
}

/// Finds the best *static loop-order* schedule of `layer` on `arch` —
/// the paper's baseline (§5): exhaustive search over data-stationary
/// models (loop orders) and viable tiling sizes, executed in order.
///
/// # Errors
///
/// As [`search_layer`].
pub fn search_layer_static(
    layer: &ConvLayer,
    arch: &ArchConfig,
    opts: &SearchOptions,
) -> Result<LayerSearchResult, SchedError> {
    search(SchedulerKind::Static, layer, arch, opts, None)
}

/// [`search_layer_static`] with a shared [`MemoCache`].
///
/// # Errors
///
/// As [`search_layer`].
pub fn search_layer_static_cached(
    layer: &ConvLayer,
    arch: &ArchConfig,
    opts: &SearchOptions,
    cache: &MemoCache,
) -> Result<LayerSearchResult, SchedError> {
    search(SchedulerKind::Static, layer, arch, opts, Some(cache))
}

/// Explores every `(tiling, dataflow)` pair with both schedulers and
/// returns their `(latency, transfer)` scatter — the data behind the
/// paper's Figure 1.
///
/// Returns index-aligned `(ooo_points, static_points)`: entry `i` of
/// both vectors describes the same `(tiling, dataflow)` pair. Pairs
/// where either scheduler failed are omitted from both vectors.
///
/// # Errors
///
/// As [`search_layer`].
pub fn sweep_tilings(
    layer: &ConvLayer,
    arch: &ArchConfig,
    opts: &SearchOptions,
) -> Result<(Vec<SchedulePoint>, Vec<SchedulePoint>), SchedError> {
    let mut opts = opts.clone();
    opts.collect_points = true;
    let ooo = search(SchedulerKind::Ooo, layer, arch, &opts, None)?;
    let st = search(SchedulerKind::Static, layer, arch, &opts, None)?;
    // Inner-join on the (tiling, dataflow) key: either scheduler may
    // have skipped pairs it could not schedule.
    let key = |p: &SchedulePoint| (p.factors, p.dataflow);
    let static_by_key: std::collections::BTreeMap<_, SchedulePoint> =
        st.points.into_iter().map(|p| (key(&p), p)).collect();
    let mut ooo_points = Vec::new();
    let mut static_points = Vec::new();
    for p in ooo.points {
        if let Some(s) = static_by_key.get(&key(&p)) {
            ooo_points.push(p);
            static_points.push(*s);
        }
    }
    Ok((ooo_points, static_points))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexer_arch::ArchPreset;

    fn layer() -> ConvLayer {
        ConvLayer::new("t", 32, 14, 14, 32).unwrap()
    }

    fn arch() -> ArchConfig {
        ArchConfig::preset(ArchPreset::Arch1)
    }

    #[test]
    fn ooo_search_returns_best_of_points() {
        let mut opts = SearchOptions::quick();
        opts.collect_points = true;
        opts.threads = 1;
        let r = search_layer(&layer(), &arch(), &opts).unwrap();
        assert!(!r.points.is_empty());
        assert_eq!(r.evaluated, r.points.len());
        let min = r
            .points
            .iter()
            .map(|p| p.score)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(r.score, min);
    }

    #[test]
    fn parallel_and_serial_agree() {
        let mut serial_opts = SearchOptions::quick();
        serial_opts.threads = 1;
        let mut par_opts = SearchOptions::quick();
        par_opts.threads = 4;
        let a = search_layer(&layer(), &arch(), &serial_opts).unwrap();
        let b = search_layer(&layer(), &arch(), &par_opts).unwrap();
        assert_eq!(a.factors, b.factors);
        assert_eq!(a.dataflow, b.dataflow);
        assert_eq!(a.score, b.score);
        assert_eq!(a.schedule.latency(), b.schedule.latency());
    }

    #[test]
    fn static_search_works() {
        let opts = SearchOptions::quick();
        let r = search_layer_static(&layer(), &arch(), &opts).unwrap();
        assert!(r.schedule.latency() > 0);
        assert!(r.schedule.transfer_bytes() > 0);
    }

    #[test]
    fn memo_cache_replays_winner() {
        let opts = SearchOptions::quick();
        let cache = MemoCache::new();
        let full = search_layer_cached(&layer(), &arch(), &opts, &cache).unwrap();
        assert!(full.evaluated > 1);
        assert_eq!(cache.len(), 1);
        // Same shape, different name: memo hit.
        let renamed = layer().with_name("other");
        let hit = search_layer_cached(&renamed, &arch(), &opts, &cache).unwrap();
        assert_eq!(hit.evaluated, 1);
        assert_eq!(hit.factors, full.factors);
        assert_eq!(hit.dataflow, full.dataflow);
        assert_eq!(hit.schedule.latency(), full.schedule.latency());
        assert_eq!(hit.score, full.score);
    }

    #[test]
    fn memo_key_distinguishes_options() {
        let a = SearchOptions::quick();
        let mut b = SearchOptions::quick();
        b.metric = Metric::Transfer;
        let l = layer();
        let ar = arch();
        assert_ne!(
            a.memo_key(&l, &ar, SchedulerKind::Ooo),
            b.memo_key(&l, &ar, SchedulerKind::Ooo)
        );
        assert_ne!(
            a.memo_key(&l, &ar, SchedulerKind::Ooo),
            a.memo_key(&l, &ar, SchedulerKind::Static)
        );
    }

    #[test]
    fn sweep_produces_both_scatters() {
        let opts = SearchOptions::quick();
        let (ooo, st) = sweep_tilings(&layer(), &arch(), &opts).unwrap();
        assert!(!ooo.is_empty());
        assert_eq!(ooo.len(), st.len());
    }

    #[test]
    fn restricted_dataflows_are_honoured() {
        let mut opts = SearchOptions::quick();
        opts.dataflows = vec![Dataflow::Ksc];
        opts.collect_points = true;
        let r = search_layer_static(&layer(), &arch(), &opts).unwrap();
        assert!(r.points.iter().all(|p| p.dataflow == Dataflow::Ksc));
        assert_eq!(r.dataflow, Dataflow::Ksc);
    }

    #[test]
    fn spill_policy_choices_resolve() {
        assert_eq!(SpillPolicyChoice::Flexer.policy().name(), "flexer");
        assert_eq!(SpillPolicyChoice::FirstFit.policy().name(), "first-fit");
        assert_eq!(
            SpillPolicyChoice::SmallestFirst.policy().name(),
            "small-first"
        );
        assert_eq!(SpillPolicyChoice::default(), SpillPolicyChoice::Flexer);
    }

    #[test]
    fn collect_points_bypasses_memo_replay() {
        let mut opts = SearchOptions::quick();
        let cache = MemoCache::new();
        let _ = search_layer_cached(&layer(), &arch(), &opts, &cache).unwrap();
        assert_eq!(cache.len(), 1);
        opts.collect_points = true;
        let full = search_layer_cached(&layer(), &arch(), &opts, &cache).unwrap();
        assert!(full.evaluated > 1, "memo must not shortcut a point sweep");
        assert!(!full.points.is_empty());
    }

    #[test]
    fn ooo_and_static_memo_entries_do_not_collide() {
        let opts = SearchOptions::quick();
        let cache = MemoCache::new();
        let _ = search_layer_cached(&layer(), &arch(), &opts, &cache).unwrap();
        let _ = search_layer_static_cached(&layer(), &arch(), &opts, &cache).unwrap();
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn impossible_layer_reports_no_viable_tiling() {
        // A single 1x1 output with enormous channel depth: every tiling
        // of the channel dims still needs the full-width weight tile
        // rows; choose dims the enumerator cannot fit into 256 KiB.
        let huge = flexer_model::ConvLayerBuilder::new("huge", 4096, 1024, 1024, 4096)
            .build()
            .unwrap();
        let mut opts = SearchOptions::quick();
        opts.tiling.max_ops = 32; // too few ops allowed to shrink tiles enough
        let err = search_layer(&huge, &arch(), &opts).unwrap_err();
        assert!(matches!(err, SchedError::NoViableTiling { .. }), "{err}");
    }
}
