//! The static loop-order baseline scheduler.

use crate::error::SchedError;
use crate::program::{Command, Program};
use flexer_arch::{ArchConfig, PerfModel};
use flexer_sim::{MemOpKind, Schedule, ScheduleBuilder, TrafficClass};
use flexer_spm::AllocError;
use flexer_tiling::{Dfg, OpId, TileId, TileKind};
use std::collections::BTreeMap;

/// Returns the lowest address where `bytes` fit between `occupied`
/// blocks (sorted by address) within `capacity`.
fn first_fit(occupied: &[(u64, u64)], bytes: u64, capacity: u64) -> Option<u64> {
    let mut cursor = 0u64;
    for &(address, len) in occupied {
        if address - cursor >= bytes {
            return Some(cursor);
        }
        cursor = address + len;
    }
    (capacity - cursor >= bytes).then_some(cursor)
}

/// State of one resident tile in the fixed-region baseline memory.
#[derive(Debug, Clone, Copy)]
struct Resident {
    /// Cycle at which the on-chip copy is valid.
    ready_at: u64,
    /// Last cycle a scheduled op reads or writes the tile.
    busy_until: u64,
    /// Whether the copy differs from DRAM (unsaved partial sums).
    dirty: bool,
}

/// Executes a DFG strictly in its static loop order on `n` NPUs — the
/// per-(tiling, dataflow) building block of the paper's baseline, "the
/// best static loop-order schedule … found through exhaustive search
/// among all schedules with different data stationary models and
/// viable tiling sizes" (§5).
///
/// Two properties make it a *loop-order* schedule (§4.1, Figure 5 (b)):
///
/// * **In-order issue.** Each step issues the longest run of
///   *consecutive* operations (at most one per core) with no
///   dependency inside the run, like an in-order multi-issue machine —
///   the paper's "innermost loop is unrolled `n` times".
/// * **Fixed-region, replace-in-place memory.** Each data type lives
///   in a reserved region whose slots are overwritten by the next
///   iteration's tiles. Consequently a tile is reused exactly when
///   consecutive iterations touch it (the stationary type, plus
///   sharing within one set); everything else is reloaded, giving the
///   regular, uniform reload counts the paper observes for loop-order
///   schedules (Figure 10). Dirty partial sums are written back when
///   replaced.
///
/// The out-of-order scheduler's opportunistic buffer (keeping any tile
/// that may be reused later, wherever it fits) is exactly what this
/// baseline cannot do.
///
/// # Examples
///
/// ```
/// use flexer_arch::{ArchConfig, ArchPreset, SystolicModel};
/// use flexer_model::ConvLayer;
/// use flexer_sched::StaticScheduler;
/// use flexer_tiling::{Dataflow, Dfg, TilingFactors};
///
/// let arch = ArchConfig::preset(ArchPreset::Arch1);
/// let layer = ConvLayer::new("c", 32, 14, 14, 32)?;
/// let model = SystolicModel::new(&arch);
/// let factors = TilingFactors::normalized(&layer, 2, 2, 2, 2);
/// let dfg = Dfg::build(&layer, factors, Dataflow::Csk, &model, &arch)?;
///
/// let schedule = StaticScheduler::new(&dfg, &arch, &model).schedule()?;
/// assert_eq!(schedule.compute().len(), dfg.num_ops());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Copy)]
pub struct StaticScheduler<'a> {
    dfg: &'a Dfg,
    arch: &'a ArchConfig,
    perf: &'a dyn PerfModel,
}

impl std::fmt::Debug for StaticScheduler<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StaticScheduler")
            .field("dfg", &self.dfg.to_string())
            .finish_non_exhaustive()
    }
}

impl<'a> StaticScheduler<'a> {
    /// Creates a baseline scheduler.
    #[must_use]
    pub fn new(dfg: &'a Dfg, arch: &'a ArchConfig, perf: &'a dyn PerfModel) -> Self {
        Self { dfg, arch, perf }
    }

    /// Runs the scheduler to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::Alloc`] when a single operation's working
    /// set exceeds the on-chip buffer.
    pub fn schedule(&self) -> Result<Schedule, SchedError> {
        self.schedule_with_program().map(|(s, _)| s)
    }

    /// Runs the scheduler and also lowers the run into an executable
    /// buffer [`Program`] with concrete region addresses.
    ///
    /// Tiles are placed first-fit in the buffer; when the fixed-region
    /// layout fragments (tile sizes differ between iterations), live
    /// blocks are repacked with an atomic batch of
    /// [`Command::Move`]s — an addressing artifact the analytical
    /// schedule does not time, unlike the out-of-order scheduler's
    /// accounted compactions.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::Alloc`] when a single operation's working
    /// set exceeds the on-chip buffer.
    pub fn schedule_with_program(&self) -> Result<(Schedule, Program), SchedError> {
        let dfg = self.dfg;
        let cores = self.arch.cores() as usize;
        let capacity = self.arch.spm_bytes();
        let num_ops = dfg.num_ops();
        let mut builder = ScheduleBuilder::new(self.arch.cores());
        let mut resident: BTreeMap<TileId, Resident> = BTreeMap::new();
        // Concrete buffer addresses backing the fixed regions.
        let mut addr: BTreeMap<TileId, (u64, u64)> = BTreeMap::new();
        let mut commands: Vec<Command> = Vec::new();
        let mut op_end = vec![0u64; num_ops];
        let mut scheduled = vec![false; num_ops];
        let mut next = 0usize;

        while next < num_ops {
            // In-order set formation: the longest dependency-free run
            // of consecutive ops, one per core, whose combined working
            // set fits the buffer.
            let mut set: Vec<OpId> = Vec::with_capacity(cores);
            let mut needed: BTreeMap<TileId, u64> = BTreeMap::new();
            while set.len() < cores && next < num_ops {
                let id = OpId::new(next as u32);
                if dfg.pred(id).is_some_and(|p| !scheduled[p.index()]) {
                    break;
                }
                let mut extended = needed.clone();
                for t in dfg.op(id).operands() {
                    extended.entry(t).or_insert_with(|| dfg.tile_bytes(t));
                }
                if extended.values().sum::<u64>() > capacity {
                    break;
                }
                needed = extended;
                set.push(id);
                next += 1;
            }
            if set.is_empty() {
                // Even one op exceeds the buffer.
                let id = OpId::new(next as u32);
                let requested = dfg.op(id).operands().map(|t| dfg.tile_bytes(t)).sum();
                return Err(SchedError::Alloc(AllocError::InsufficientMemory {
                    requested,
                    free: capacity,
                }));
            }

            // Replace-in-place: every resident tile the next iteration
            // does not touch is overwritten; unsaved partial sums are
            // written back first.
            let evicted: Vec<(TileId, Resident)> = resident
                .iter()
                .filter(|(t, _)| !needed.contains_key(t))
                .map(|(t, r)| (*t, *r))
                .collect();
            for (tile, r) in evicted {
                resident.remove(&tile);
                let (address, bytes) = addr.remove(&tile).expect("resident tile has an address");
                if r.dirty {
                    commands.push(Command::Spill {
                        tile,
                        address,
                        bytes,
                    });
                    builder.record_mem_op_after(
                        MemOpKind::Spill,
                        TrafficClass::Psum,
                        tile,
                        bytes,
                        self.perf.dma_cycles(bytes),
                        r.busy_until,
                        None,
                    )?;
                } else {
                    commands.push(Command::Discard {
                        tile,
                        address,
                        bytes,
                    });
                }
            }

            // Loads for tiles entering the regions.
            for (&tile, &bytes) in &needed {
                if resident.contains_key(&tile) {
                    continue;
                }
                // Place the tile first-fit; when the region layout has
                // fragmented, repack the live blocks (atomic move
                // batch) and place at the end of the packed prefix.
                // The repack always succeeds: the live blocks are a
                // subset of `needed`, whose sum fits the buffer.
                let mut occupied: Vec<(u64, u64)> = addr.values().copied().collect();
                occupied.sort_unstable();
                let address = first_fit(&occupied, bytes, capacity).unwrap_or_else(|| {
                    let mut live: Vec<(TileId, u64, u64)> =
                        addr.iter().map(|(&t, &(a, b))| (t, a, b)).collect();
                    live.sort_unstable_by_key(|&(_, a, _)| a);
                    let mut cursor = 0u64;
                    for (t, a, b) in live {
                        if a != cursor {
                            commands.push(Command::Move {
                                tile: t,
                                bytes: b,
                                from: a,
                                to: cursor,
                            });
                            addr.insert(t, (cursor, b));
                        }
                        cursor += b;
                    }
                    cursor
                });
                addr.insert(tile, (address, bytes));
                // A fresh accumulator holds no data yet; spilled
                // partial sums must come back from DRAM.
                let class = match tile.kind() {
                    TileKind::Input => Some(TrafficClass::Input),
                    TileKind::Weight => Some(TrafficClass::Weight),
                    TileKind::Output => {
                        let consumer = set
                            .iter()
                            .find(|&&id| dfg.op(id).output() == tile)
                            .expect("output tile belongs to an op of the set");
                        dfg.op(*consumer).needs_psum().then_some(TrafficClass::Psum)
                    }
                };
                let ready_at = match class {
                    Some(class) => {
                        // A resident input tensor is gathered from the
                        // cross-layer SPM region: same DMA occupancy,
                        // no DRAM bytes. Psum reloads stay DRAM-bound.
                        let resident_gather =
                            dfg.residency().input_resident && tile.kind() == TileKind::Input;
                        commands.push(if resident_gather {
                            Command::GatherIn {
                                tile,
                                address,
                                bytes,
                            }
                        } else {
                            Command::Load {
                                tile,
                                address,
                                bytes,
                            }
                        });
                        let for_op = set
                            .iter()
                            .copied()
                            .find(|&id| dfg.op(id).operands().any(|t| t == tile));
                        let (_, end) = if resident_gather {
                            builder.record_resident_mem_op_after(
                                MemOpKind::Load,
                                class,
                                tile,
                                bytes,
                                self.perf.dma_cycles(bytes),
                                0,
                                for_op,
                            )?
                        } else {
                            builder.record_mem_op(
                                MemOpKind::Load,
                                class,
                                tile,
                                bytes,
                                self.perf.dma_cycles(bytes),
                                for_op,
                            )?
                        };
                        end
                    }
                    None => {
                        commands.push(Command::Reserve {
                            tile,
                            address,
                            bytes,
                        });
                        0
                    }
                };
                resident.insert(
                    tile,
                    Resident {
                        ready_at,
                        busy_until: ready_at,
                        dirty: false,
                    },
                );
            }

            // Sharing within the set (the stationary type, Figure 11).
            let mut degree: BTreeMap<TileId, u32> = BTreeMap::new();
            for &id in &set {
                for t in dfg.op(id).operands() {
                    *degree.entry(t).or_default() += 1;
                }
            }
            for (tile, sharers) in degree {
                if sharers >= 2 {
                    builder.record_shared_tile(tile.kind(), dfg.tile_bytes(tile), sharers);
                }
            }

            // Issue the compute ops on distinct cores.
            let mut free_cores: Vec<u32> = (0..self.arch.cores()).collect();
            free_cores.sort_by_key(|&c| (builder.timeline().core_free(c), c));
            for (&id, &core) in set.iter().zip(free_cores.iter()) {
                let op = dfg.op(id);
                let mut earliest = 0u64;
                for t in op.operands() {
                    earliest = earliest.max(resident[&t].ready_at);
                }
                if let Some(pred) = dfg.pred(id) {
                    earliest = earliest.max(op_end[pred.index()]);
                }
                let (_, end) = builder.record_compute(id, core, earliest, op.latency())?;
                commands.push(Command::Exec {
                    op: id,
                    core,
                    input: addr[&op.input()].0,
                    weight: addr[&op.weight()].0,
                    output: addr[&op.output()].0,
                    accumulate: op.needs_psum(),
                });
                op_end[id.index()] = end;
                scheduled[id.index()] = true;
                for t in op.operands() {
                    let r = resident.get_mut(&t).expect("operand resident");
                    r.busy_until = r.busy_until.max(end);
                }
                let out = resident.get_mut(&op.output()).expect("output resident");
                out.ready_at = end;
                out.dirty = true;
                if op.is_final() {
                    let bytes = dfg.tile_bytes(op.output());
                    if dfg.residency().output_resident {
                        builder.record_resident_mem_op_after(
                            MemOpKind::Store,
                            TrafficClass::Output,
                            op.output(),
                            bytes,
                            self.perf.dma_cycles(bytes),
                            end,
                            None,
                        )?;
                        commands.push(Command::ScatterOut {
                            tile: op.output(),
                            address: addr[&op.output()].0,
                            bytes,
                        });
                    } else {
                        builder.record_mem_op_after(
                            MemOpKind::Store,
                            TrafficClass::Output,
                            op.output(),
                            bytes,
                            self.perf.dma_cycles(bytes),
                            end,
                            None,
                        )?;
                        commands.push(Command::Store {
                            tile: op.output(),
                            address: addr[&op.output()].0,
                            bytes,
                        });
                    }
                    out.dirty = false;
                }
            }

            let used: u64 = needed.values().sum();
            builder.record_spm_utilization(used as f64 / capacity as f64);
        }
        let program = Program::new(capacity, self.arch.cores(), commands);
        Ok((builder.finish(), program))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexer_arch::{ArchConfigBuilder, ArchPreset, SystolicModel};
    use flexer_model::ConvLayer;
    use flexer_sim::validate_schedule;
    use flexer_tiling::{Dataflow, TilingFactors};

    fn build(
        layer: &ConvLayer,
        arch: &ArchConfig,
        k: u32,
        c: u32,
        h: u32,
        w: u32,
        df: Dataflow,
    ) -> Dfg {
        let model = SystolicModel::new(arch);
        let factors = TilingFactors::normalized(layer, k, c, h, w);
        Dfg::build(layer, factors, df, &model, arch).unwrap()
    }

    #[test]
    fn schedules_are_legal_for_every_dataflow() {
        let arch = ArchConfig::preset(ArchPreset::Arch1);
        let model = SystolicModel::new(&arch);
        let layer = ConvLayer::new("s", 32, 16, 16, 32).unwrap();
        for df in Dataflow::all() {
            let dfg = build(&layer, &arch, 2, 2, 2, 2, df);
            let sched = StaticScheduler::new(&dfg, &arch, &model)
                .schedule()
                .unwrap();
            validate_schedule(&dfg, &sched).unwrap_or_else(|e| panic!("{df}: {e}"));
        }
    }

    #[test]
    fn loop_order_reloads_are_uniform_per_type() {
        // The paper (§5): "the regular structure of the loop also
        // dictates that all tiles of a given type are reloaded the
        // same number of times".
        let arch = ArchConfig::preset(ArchPreset::Arch1);
        let model = SystolicModel::new(&arch);
        let layer = ConvLayer::new("u", 64, 16, 16, 64).unwrap();
        let dfg = build(&layer, &arch, 4, 4, 2, 2, Dataflow::Kcs);
        let sched = StaticScheduler::new(&dfg, &arch, &model)
            .schedule()
            .unwrap();
        for kind in [TileKind::Input, TileKind::Weight] {
            assert!(
                !sched.traffic().has_reload_variation(kind),
                "{kind} reload counts vary in a loop-order schedule"
            );
        }
    }

    #[test]
    fn stationary_type_is_not_reloaded() {
        let arch = ArchConfigBuilder::new(2, 1 << 20, 32).build().unwrap();
        let model = SystolicModel::new(&arch);
        let layer = ConvLayer::new("st", 32, 16, 16, 32).unwrap();
        // CSK is input-stationary: each IN tile stays while the k loop
        // sweeps; every IN tile is loaded exactly once.
        let dfg = build(&layer, &arch, 4, 1, 2, 2, Dataflow::Csk);
        let sched = StaticScheduler::new(&dfg, &arch, &model)
            .schedule()
            .unwrap();
        assert_eq!(sched.traffic().max_loads(TileKind::Input), 1);
    }

    #[test]
    fn non_stationary_types_are_reloaded() {
        let arch = ArchConfig::preset(ArchPreset::Arch1);
        let model = SystolicModel::new(&arch);
        let layer = ConvLayer::new("re", 64, 16, 16, 64).unwrap();
        // CSK sweeps all k per (c, s): weights reload for every s
        // after the first.
        let dfg = build(&layer, &arch, 4, 4, 2, 2, Dataflow::Csk);
        let sched = StaticScheduler::new(&dfg, &arch, &model)
            .schedule()
            .unwrap();
        assert!(sched.traffic().max_loads(TileKind::Weight) > 1);
    }

    #[test]
    fn output_stationary_order_avoids_psum_traffic() {
        let arch = ArchConfig::preset(ArchPreset::Arch1);
        let model = SystolicModel::new(&arch);
        let layer = ConvLayer::new("os", 64, 16, 16, 64).unwrap();
        // KSC: c innermost — partial sums accumulate on-chip and are
        // stored exactly once.
        let dfg = build(&layer, &arch, 4, 4, 2, 2, Dataflow::Ksc);
        let sched = StaticScheduler::new(&dfg, &arch, &model)
            .schedule()
            .unwrap();
        assert_eq!(sched.traffic().class_bytes(TrafficClass::Psum), 0);
        // But the psum chains serialize: utilization of the second
        // core collapses.
        assert!(sched.compute_utilization() < 0.75);
    }

    #[test]
    fn input_stationary_order_spills_psums() {
        let arch = ArchConfig::preset(ArchPreset::Arch1);
        let model = SystolicModel::new(&arch);
        let layer = ConvLayer::new("ps", 64, 16, 16, 64).unwrap();
        // CSK with several c tiles: each (k, s) accumulator is evicted
        // between c iterations -> psum write-backs and reloads.
        let dfg = build(&layer, &arch, 4, 4, 2, 2, Dataflow::Csk);
        let sched = StaticScheduler::new(&dfg, &arch, &model)
            .schedule()
            .unwrap();
        assert!(sched.traffic().class_bytes(TrafficClass::Psum) > 0);
    }

    #[test]
    fn oversized_working_set_errors() {
        let arch = ArchConfigBuilder::new(2, 1024, 32).build().unwrap();
        let model = SystolicModel::new(&arch);
        let layer = ConvLayer::new("big", 64, 16, 16, 64).unwrap();
        let dfg = build(&layer, &arch, 1, 1, 1, 1, Dataflow::Kcs);
        let err = StaticScheduler::new(&dfg, &arch, &model)
            .schedule()
            .unwrap_err();
        assert!(matches!(err, SchedError::Alloc(_)), "{err}");
    }

    #[test]
    fn deterministic() {
        let arch = ArchConfig::preset(ArchPreset::Arch1);
        let model = SystolicModel::new(&arch);
        let layer = ConvLayer::new("d", 32, 16, 16, 32).unwrap();
        let dfg = build(&layer, &arch, 2, 2, 2, 2, Dataflow::Skc);
        let a = StaticScheduler::new(&dfg, &arch, &model)
            .schedule()
            .unwrap();
        let b = StaticScheduler::new(&dfg, &arch, &model)
            .schedule()
            .unwrap();
        assert_eq!(a, b);
    }
}
