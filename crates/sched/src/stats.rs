//! Performance counters of a scheduling or search run.

use serde::{Deserialize, Serialize};

/// Counters describing how much work one scheduling (or layer-search)
/// run performed, and what the transactional candidate evaluation
/// saved over the old clone-per-candidate implementation.
///
/// Counters are additive: per-scheduler stats merge into per-layer
/// stats, which merge into per-network totals (see
/// [`SearchStats::merge`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Scheduling steps (iterations of Algorithm 1's issue loop).
    pub steps: u64,
    /// Candidate combinations examined by set generation (§4.2).
    pub sets_generated: u64,
    /// Combinations discarded as dataflow-class duplicates (§4.2).
    pub sets_pruned: u64,
    /// Candidate sets trial-planned against the scratchpad.
    pub sets_evaluated: u64,
    /// Journal bytes undone rolling candidate plans back.
    pub rollback_bytes: u64,
    /// Block-map bytes the clone-per-candidate evaluation would have
    /// copied for the same candidates.
    pub clone_bytes_avoided: u64,
    /// Tiles evicted by committed operation sets.
    pub evictions: u64,
    /// Committed sets that required on-chip compaction.
    pub compactions: u64,
    /// Wall-time (ns) spent generating candidate sets.
    pub gen_nanos: u64,
    /// Wall-time (ns) spent evaluating candidate sets.
    pub eval_nanos: u64,
    /// Wall-time (ns) spent committing selected sets.
    pub commit_nanos: u64,
    /// Winning schedules that passed differential verification
    /// (see [`crate::verify_schedule_program`]).
    pub schedules_verified: u64,
    /// Wall-time (ns) spent verifying winning schedules.
    pub verify_nanos: u64,
    /// Search candidates for which an admissible lower bound was
    /// computed (branch-and-bound layer).
    pub candidates_bounded: u64,
    /// Candidates skipped outright because their lower bound was
    /// strictly worse than the layer's incumbent score.
    pub candidates_pruned: u64,
    /// Scheduler runs aborted mid-flight when their running score
    /// strictly exceeded the incumbent.
    pub early_exits: u64,
    /// Wall-time (ns) spent computing lower bounds.
    pub bound_nanos: u64,
}

impl SearchStats {
    /// Accumulates `other` into `self`, field by field.
    pub fn merge(&mut self, other: &SearchStats) {
        self.steps += other.steps;
        self.sets_generated += other.sets_generated;
        self.sets_pruned += other.sets_pruned;
        self.sets_evaluated += other.sets_evaluated;
        self.rollback_bytes += other.rollback_bytes;
        self.clone_bytes_avoided += other.clone_bytes_avoided;
        self.evictions += other.evictions;
        self.compactions += other.compactions;
        self.gen_nanos += other.gen_nanos;
        self.eval_nanos += other.eval_nanos;
        self.commit_nanos += other.commit_nanos;
        self.schedules_verified += other.schedules_verified;
        self.verify_nanos += other.verify_nanos;
        self.candidates_bounded += other.candidates_bounded;
        self.candidates_pruned += other.candidates_pruned;
        self.early_exits += other.early_exits;
        self.bound_nanos += other.bound_nanos;
    }
}

impl std::fmt::Display for SearchStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "steps {} | sets gen {} pruned {} eval {} | rollback {} B \
             (clone avoided {} B) | evict {} compact {} | verified {} | \
             bound {} pruned {} early-exit {} | \
             gen {:.2} ms eval {:.2} ms commit {:.2} ms verify {:.2} ms \
             bound {:.2} ms",
            self.steps,
            self.sets_generated,
            self.sets_pruned,
            self.sets_evaluated,
            self.rollback_bytes,
            self.clone_bytes_avoided,
            self.evictions,
            self.compactions,
            self.schedules_verified,
            self.candidates_bounded,
            self.candidates_pruned,
            self.early_exits,
            self.gen_nanos as f64 / 1e6,
            self.eval_nanos as f64 / 1e6,
            self.commit_nanos as f64 / 1e6,
            self.verify_nanos as f64 / 1e6,
            self.bound_nanos as f64 / 1e6,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_fieldwise_addition() {
        let mut a = SearchStats {
            steps: 1,
            sets_generated: 2,
            sets_pruned: 3,
            sets_evaluated: 4,
            rollback_bytes: 5,
            clone_bytes_avoided: 6,
            evictions: 7,
            compactions: 8,
            gen_nanos: 9,
            eval_nanos: 10,
            commit_nanos: 11,
            schedules_verified: 12,
            verify_nanos: 13,
            candidates_bounded: 14,
            candidates_pruned: 15,
            early_exits: 16,
            bound_nanos: 17,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.steps, 2);
        assert_eq!(a.sets_generated, 4);
        assert_eq!(a.sets_pruned, 6);
        assert_eq!(a.sets_evaluated, 8);
        assert_eq!(a.rollback_bytes, 10);
        assert_eq!(a.clone_bytes_avoided, 12);
        assert_eq!(a.evictions, 14);
        assert_eq!(a.compactions, 16);
        assert_eq!(a.gen_nanos, 18);
        assert_eq!(a.eval_nanos, 20);
        assert_eq!(a.commit_nanos, 22);
        assert_eq!(a.schedules_verified, 24);
        assert_eq!(a.verify_nanos, 26);
        assert_eq!(a.candidates_bounded, 28);
        assert_eq!(a.candidates_pruned, 30);
        assert_eq!(a.early_exits, 32);
        assert_eq!(a.bound_nanos, 34);
    }

    #[test]
    fn display_mentions_every_counter_group() {
        let s = SearchStats::default().to_string();
        assert!(s.contains("steps"));
        assert!(s.contains("rollback"));
        assert!(s.contains("evict"));
        assert!(s.contains("eval"));
    }
}
