//! Performance counters of a scheduling or search run.

use flexer_trace::Lane;
use serde::{Deserialize, Serialize};

/// Counters describing how much work one scheduling (or layer-search)
/// run performed, and what the transactional candidate evaluation
/// saved over the old clone-per-candidate implementation.
///
/// Counters are additive: per-scheduler stats merge into per-layer
/// stats, which merge into per-network totals (see
/// [`SearchStats::merge`]).
///
/// [`SearchStats::fields`] is the single enumeration of the counters;
/// `merge`, the trace export and the drift tests are all built on it,
/// so a new field that is not wired everywhere fails to compile rather
/// than silently dropping out of one of them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Scheduling steps (iterations of Algorithm 1's issue loop).
    pub steps: u64,
    /// Candidate combinations examined by set generation (§4.2).
    pub sets_generated: u64,
    /// Combinations discarded as dataflow-class duplicates (§4.2).
    pub sets_pruned: u64,
    /// Candidate sets trial-planned against the scratchpad.
    pub sets_evaluated: u64,
    /// Journal bytes undone rolling candidate plans back.
    pub rollback_bytes: u64,
    /// Block-map bytes the clone-per-candidate evaluation would have
    /// copied for the same candidates.
    pub clone_bytes_avoided: u64,
    /// Tiles evicted by committed operation sets.
    pub evictions: u64,
    /// Committed sets that required on-chip compaction.
    pub compactions: u64,
    /// Wall-time (ns) spent generating candidate sets.
    pub gen_nanos: u64,
    /// Wall-time (ns) spent evaluating candidate sets.
    pub eval_nanos: u64,
    /// Wall-time (ns) spent committing selected sets.
    pub commit_nanos: u64,
    /// Winning schedules that passed differential verification
    /// (see [`crate::verify_schedule_program`]).
    pub schedules_verified: u64,
    /// Wall-time (ns) spent verifying winning schedules.
    pub verify_nanos: u64,
    /// Search candidates for which an admissible lower bound was
    /// computed (branch-and-bound layer).
    pub candidates_bounded: u64,
    /// Candidates skipped outright because their lower bound was
    /// strictly worse than the layer's incumbent score.
    pub candidates_pruned: u64,
    /// Scheduler runs aborted mid-flight when their running score
    /// strictly exceeded the incumbent.
    pub early_exits: u64,
    /// Wall-time (ns) spent computing lower bounds.
    pub bound_nanos: u64,
    /// Layers answered from the persistent schedule store without a
    /// search (`flexer-store` warm start).
    pub store_hits: u64,
    /// Layers that consulted the persistent store and found no entry.
    pub store_misses: u64,
    /// Store entries evicted by the size-bounded LRU pass.
    pub store_evictions: u64,
    /// Store entries rejected as torn/corrupt (checksum or decode
    /// failure) and treated as misses.
    pub store_corrupt: u64,
    /// Wall-time (ns) spent running the analytical solver to seed the
    /// incumbent before the exact search.
    pub seed_nanos: u64,
    /// Optimality gap of the solver's seed schedule against the best
    /// lower bound, in parts per million (summed over seeded layers;
    /// `0` means the seed was provably optimal).
    pub seed_gap_ppm: u64,
    /// Candidates skipped by a bound comparison that only cut because
    /// the solver's seed was already better — pruning the exact search
    /// would not have achieved cold.
    pub seeded_cutoffs: u64,
}

/// What a [`SearchStats`] counter measures — used to format it and to
/// decide whether it is deterministic across runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatKind {
    /// A count of events or items: deterministic for a fixed search.
    Count,
    /// A byte quantity: deterministic for a fixed search.
    Bytes,
    /// A wall-clock duration: varies run to run, excluded from
    /// deterministic trace exports.
    Nanos,
}

impl SearchStats {
    /// Every counter as `(name, value, kind)`, in declaration order.
    ///
    /// The exhaustive destructuring makes this the compiler-checked
    /// registry of the struct's fields: adding a field without listing
    /// it here is a compile error, and [`SearchStats::merge`] plus the
    /// drift tests derive their field sets from this list.
    #[must_use]
    pub fn fields(&self) -> [(&'static str, u64, StatKind); 24] {
        let Self {
            steps,
            sets_generated,
            sets_pruned,
            sets_evaluated,
            rollback_bytes,
            clone_bytes_avoided,
            evictions,
            compactions,
            gen_nanos,
            eval_nanos,
            commit_nanos,
            schedules_verified,
            verify_nanos,
            candidates_bounded,
            candidates_pruned,
            early_exits,
            bound_nanos,
            store_hits,
            store_misses,
            store_evictions,
            store_corrupt,
            seed_nanos,
            seed_gap_ppm,
            seeded_cutoffs,
        } = *self;
        [
            ("steps", steps, StatKind::Count),
            ("sets_generated", sets_generated, StatKind::Count),
            ("sets_pruned", sets_pruned, StatKind::Count),
            ("sets_evaluated", sets_evaluated, StatKind::Count),
            ("rollback_bytes", rollback_bytes, StatKind::Bytes),
            ("clone_bytes_avoided", clone_bytes_avoided, StatKind::Bytes),
            ("evictions", evictions, StatKind::Count),
            ("compactions", compactions, StatKind::Count),
            ("gen_nanos", gen_nanos, StatKind::Nanos),
            ("eval_nanos", eval_nanos, StatKind::Nanos),
            ("commit_nanos", commit_nanos, StatKind::Nanos),
            ("schedules_verified", schedules_verified, StatKind::Count),
            ("verify_nanos", verify_nanos, StatKind::Nanos),
            ("candidates_bounded", candidates_bounded, StatKind::Count),
            ("candidates_pruned", candidates_pruned, StatKind::Count),
            ("early_exits", early_exits, StatKind::Count),
            ("bound_nanos", bound_nanos, StatKind::Nanos),
            ("store_hits", store_hits, StatKind::Count),
            ("store_misses", store_misses, StatKind::Count),
            ("store_evictions", store_evictions, StatKind::Count),
            ("store_corrupt", store_corrupt, StatKind::Count),
            ("seed_nanos", seed_nanos, StatKind::Nanos),
            ("seed_gap_ppm", seed_gap_ppm, StatKind::Count),
            ("seeded_cutoffs", seeded_cutoffs, StatKind::Count),
        ]
    }

    /// The deterministic subset of [`SearchStats::fields`]: everything
    /// except wall-clock durations. This is what stats round-trip
    /// tests compare and what deterministic traces export.
    #[must_use]
    pub fn deterministic_fields(&self) -> Vec<(&'static str, u64)> {
        self.fields()
            .into_iter()
            .filter(|(_, _, kind)| *kind != StatKind::Nanos)
            .map(|(name, value, _)| (name, value))
            .collect()
    }

    /// Accumulates `other` into `self`, field by field. The exhaustive
    /// destructuring keeps it in lock-step with the struct definition.
    pub fn merge(&mut self, other: &SearchStats) {
        let SearchStats {
            steps,
            sets_generated,
            sets_pruned,
            sets_evaluated,
            rollback_bytes,
            clone_bytes_avoided,
            evictions,
            compactions,
            gen_nanos,
            eval_nanos,
            commit_nanos,
            schedules_verified,
            verify_nanos,
            candidates_bounded,
            candidates_pruned,
            early_exits,
            bound_nanos,
            store_hits,
            store_misses,
            store_evictions,
            store_corrupt,
            seed_nanos,
            seed_gap_ppm,
            seeded_cutoffs,
        } = *other;
        self.steps += steps;
        self.sets_generated += sets_generated;
        self.sets_pruned += sets_pruned;
        self.sets_evaluated += sets_evaluated;
        self.rollback_bytes += rollback_bytes;
        self.clone_bytes_avoided += clone_bytes_avoided;
        self.evictions += evictions;
        self.compactions += compactions;
        self.gen_nanos += gen_nanos;
        self.eval_nanos += eval_nanos;
        self.commit_nanos += commit_nanos;
        self.schedules_verified += schedules_verified;
        self.verify_nanos += verify_nanos;
        self.candidates_bounded += candidates_bounded;
        self.candidates_pruned += candidates_pruned;
        self.early_exits += early_exits;
        self.bound_nanos += bound_nanos;
        self.store_hits += store_hits;
        self.store_misses += store_misses;
        self.store_evictions += store_evictions;
        self.store_corrupt += store_corrupt;
        self.seed_nanos += seed_nanos;
        self.seed_gap_ppm += seed_gap_ppm;
        self.seeded_cutoffs += seeded_cutoffs;
    }

    /// Emits every counter into a trace lane as a gauge sample. Under
    /// a deterministic (logical-clock) lane, wall-time counters are
    /// skipped — they would break byte-stable traces.
    pub fn record_counters(&self, lane: &mut Lane) {
        if !lane.is_enabled() {
            return;
        }
        for (name, value, kind) in self.fields() {
            if kind == StatKind::Nanos && lane.deterministic() {
                continue;
            }
            lane.counter(name, value);
        }
    }
}

impl std::fmt::Display for SearchStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "steps {} | sets gen {} pruned {} eval {} | rollback {} B \
             (clone avoided {} B) | evict {} compact {} | verified {} | \
             bound {} pruned {} early-exit {} | \
             store hit {} miss {} evict {} corrupt {} | \
             seed gap {} ppm cutoffs {} | \
             gen {:.2} ms eval {:.2} ms commit {:.2} ms verify {:.2} ms \
             bound {:.2} ms seed {:.2} ms",
            self.steps,
            self.sets_generated,
            self.sets_pruned,
            self.sets_evaluated,
            self.rollback_bytes,
            self.clone_bytes_avoided,
            self.evictions,
            self.compactions,
            self.schedules_verified,
            self.candidates_bounded,
            self.candidates_pruned,
            self.early_exits,
            self.store_hits,
            self.store_misses,
            self.store_evictions,
            self.store_corrupt,
            self.seed_gap_ppm,
            self.seeded_cutoffs,
            self.gen_nanos as f64 / 1e6,
            self.eval_nanos as f64 / 1e6,
            self.commit_nanos as f64 / 1e6,
            self.verify_nanos as f64 / 1e6,
            self.bound_nanos as f64 / 1e6,
            self.seed_nanos as f64 / 1e6,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A stats value with every field distinct and nonzero, built from
    /// the field registry so it stays exhaustive by construction.
    fn sequential() -> SearchStats {
        let mut s = SearchStats {
            steps: 1,
            sets_generated: 2,
            sets_pruned: 3,
            sets_evaluated: 4,
            rollback_bytes: 5,
            clone_bytes_avoided: 6,
            evictions: 7,
            compactions: 8,
            gen_nanos: 9,
            eval_nanos: 10,
            commit_nanos: 11,
            schedules_verified: 12,
            verify_nanos: 13,
            candidates_bounded: 14,
            candidates_pruned: 15,
            early_exits: 16,
            bound_nanos: 17,
            store_hits: 18,
            store_misses: 19,
            store_evictions: 20,
            store_corrupt: 21,
            seed_nanos: 22,
            seed_gap_ppm: 23,
            seeded_cutoffs: 24,
        };
        // Guard the literal above against field additions.
        assert_eq!(s.fields().len(), 24);
        for (i, (name, value, _)) in s.fields().into_iter().enumerate() {
            assert_eq!(value, i as u64 + 1, "field {name} not sequential");
        }
        s.merge(&SearchStats::default());
        s
    }

    #[test]
    fn merge_is_fieldwise_addition() {
        let mut a = sequential();
        let b = a;
        a.merge(&b);
        for ((name, merged, _), (_, single, _)) in a.fields().into_iter().zip(b.fields()) {
            assert_eq!(merged, single * 2, "field {name} not additive");
        }
    }

    #[test]
    fn field_names_are_unique() {
        let fields = SearchStats::default().fields();
        for (i, (a, _, _)) in fields.iter().enumerate() {
            for (b, _, _) in &fields[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn deterministic_fields_exclude_wall_time() {
        let s = sequential();
        let det = s.deterministic_fields();
        assert_eq!(det.len(), 18);
        assert!(det.iter().all(|(name, _)| !name.ends_with("_nanos")));
        assert!(det.iter().any(|&(name, v)| name == "steps" && v == 1));
        assert!(det
            .iter()
            .any(|&(name, v)| name == "seed_gap_ppm" && v == 23));
        assert!(det
            .iter()
            .any(|&(name, v)| name == "seeded_cutoffs" && v == 24));
    }

    #[test]
    fn counters_respect_lane_determinism() {
        use flexer_trace::{ClockMode, TraceConfig, Tracer};
        let s = sequential();
        let tracer = Tracer::new(TraceConfig::default());
        let mut lane = tracer.lane(0, "stats");
        s.record_counters(&mut lane);
        assert_eq!(lane.len(), s.deterministic_fields().len());
        let tracer = Tracer::new(TraceConfig {
            clock: ClockMode::Wall,
            ..TraceConfig::default()
        });
        let mut lane = tracer.lane(0, "stats");
        s.record_counters(&mut lane);
        assert_eq!(lane.len(), s.fields().len());
        let mut off = flexer_trace::Lane::off();
        s.record_counters(&mut off);
        assert!(off.is_empty());
    }

    #[test]
    fn display_mentions_every_counter_group() {
        let s = SearchStats::default().to_string();
        assert!(s.contains("steps"));
        assert!(s.contains("rollback"));
        assert!(s.contains("evict"));
        assert!(s.contains("eval"));
        assert!(s.contains("seed gap"));
        assert!(s.contains("cutoffs"));
    }

    #[test]
    fn seed_counters_ride_the_field_registry() {
        let s = sequential();
        let names: Vec<&str> = s.fields().iter().map(|(n, _, _)| *n).collect();
        assert_eq!(
            &names[21..],
            &["seed_nanos", "seed_gap_ppm", "seeded_cutoffs"]
        );
        let mut doubled = s;
        doubled.merge(&s);
        assert_eq!(doubled.seed_nanos, 44);
        assert_eq!(doubled.seed_gap_ppm, 46);
        assert_eq!(doubled.seeded_cutoffs, 48);
        // seed_nanos is wall time: excluded from deterministic exports.
        assert!(s
            .deterministic_fields()
            .iter()
            .all(|(name, _)| *name != "seed_nanos"));
    }
}
