//! Differential verification of winning schedules.
//!
//! A scheduling run produces two artifacts: the analytical
//! [`Schedule`] the search optimizes, and the lowered [`Program`] a
//! sequencer would execute. [`verify_schedule_program`] chains every
//! independent check the workspace has over both:
//!
//! 1. [`flexer_sim::validate_schedule`] — structural legality of the
//!    timed schedule (op coverage, dependencies, resource
//!    exclusivity, operand loads, latency accounting);
//! 2. [`Program::check`] — region-tracker replay of the command
//!    stream (bounds, overlaps, residency, operand addresses);
//! 3. [`flexer_sim::interpret_program`] — the abstract SPM machine
//!    (data validity, dirty bits, spill/discard legality, dependency
//!    order, unsaved data);
//! 4. [`flexer_sim::differential_check`] — the interpreter's observed
//!    traffic, load counts, core placement and compaction volume
//!    against what the schedule claims.
//!
//! The search driver runs this on every winning schedule when
//! [`crate::SearchOptions::validate`] is set.

use crate::program::{Program, ProgramError};
use flexer_sim::{
    differential_check, interpret_program, validate_schedule, DifferentialError, InterpError,
    Schedule, ValidationError,
};
use flexer_tiling::Dfg;
use std::error::Error;
use std::fmt;

/// A verification failure of a winning schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The analytical schedule is structurally illegal.
    Schedule(ValidationError),
    /// The lowered program failed the region-tracker replay.
    Program(ProgramError),
    /// The lowered program failed on the abstract SPM machine.
    Machine(InterpError),
    /// The program and the schedule disagree about what was done.
    Differential(DifferentialError),
    /// Re-running the winning configuration reproduced a different
    /// schedule — the scheduler is not deterministic.
    ReplayDiverged,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Schedule(e) => write!(f, "schedule validation: {e}"),
            VerifyError::Program(e) => write!(f, "program check: {e}"),
            VerifyError::Machine(e) => write!(f, "abstract machine: {e}"),
            VerifyError::Differential(e) => write!(f, "schedule/program divergence: {e}"),
            VerifyError::ReplayDiverged => {
                write!(
                    f,
                    "re-running the winning configuration gave a different schedule"
                )
            }
        }
    }
}

impl Error for VerifyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            VerifyError::Schedule(e) => Some(e),
            VerifyError::Program(e) => Some(e),
            VerifyError::Machine(e) => Some(e),
            VerifyError::Differential(e) => Some(e),
            VerifyError::ReplayDiverged => None,
        }
    }
}

impl From<ValidationError> for VerifyError {
    fn from(e: ValidationError) -> Self {
        VerifyError::Schedule(e)
    }
}

impl From<ProgramError> for VerifyError {
    fn from(e: ProgramError) -> Self {
        VerifyError::Program(e)
    }
}

impl From<InterpError> for VerifyError {
    fn from(e: InterpError) -> Self {
        VerifyError::Machine(e)
    }
}

impl From<DifferentialError> for VerifyError {
    fn from(e: DifferentialError) -> Self {
        VerifyError::Differential(e)
    }
}

/// Runs the full verification chain over one (schedule, program)
/// pair.
///
/// `check_compaction` additionally requires the program's move volume
/// to equal the schedule's accounted compaction bytes; it is on for
/// the out-of-order scheduler (whose compactions are timed) and off
/// for the static baseline (whose repacking moves are an addressing
/// artifact the analytical schedule does not time).
///
/// # Errors
///
/// Returns the first [`VerifyError`] found.
pub fn verify_schedule_program(
    dfg: &Dfg,
    schedule: &Schedule,
    program: &Program,
    check_compaction: bool,
) -> Result<(), VerifyError> {
    validate_schedule(dfg, schedule)?;
    program.check(dfg)?;
    let stats = interpret_program(
        dfg,
        program.spm_bytes(),
        program.cores(),
        &program.lowered(),
    )?;
    differential_check(schedule, &stats, check_compaction)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ooo::OooScheduler;
    use crate::static_sched::StaticScheduler;
    use flexer_arch::{ArchConfig, ArchPreset, SystolicModel};
    use flexer_model::ConvLayer;
    use flexer_tiling::{Dataflow, TilingFactors};

    fn fixture(df: Dataflow) -> (Dfg, ArchConfig) {
        let arch = ArchConfig::preset(ArchPreset::Arch1);
        let layer = ConvLayer::new("v", 32, 16, 16, 32).unwrap();
        let model = SystolicModel::new(&arch);
        let factors = TilingFactors::normalized(&layer, 2, 2, 2, 2);
        let dfg = Dfg::build(&layer, factors, df, &model, &arch).unwrap();
        (dfg, arch)
    }

    #[test]
    fn ooo_winners_verify_end_to_end() {
        for df in Dataflow::all() {
            let (dfg, arch) = fixture(df);
            let model = SystolicModel::new(&arch);
            let (schedule, program) = OooScheduler::new(&dfg, &arch, &model)
                .schedule_with_program()
                .unwrap();
            verify_schedule_program(&dfg, &schedule, &program, true)
                .unwrap_or_else(|e| panic!("{df}: {e}"));
        }
    }

    #[test]
    fn static_baselines_verify_end_to_end() {
        for df in Dataflow::all() {
            let (dfg, arch) = fixture(df);
            let model = SystolicModel::new(&arch);
            let (schedule, program) = StaticScheduler::new(&dfg, &arch, &model)
                .schedule_with_program()
                .unwrap();
            verify_schedule_program(&dfg, &schedule, &program, false)
                .unwrap_or_else(|e| panic!("{df}: {e}"));
        }
    }

    #[test]
    fn verify_errors_render_their_stage() {
        let (dfg, arch) = fixture(Dataflow::Kcs);
        let model = SystolicModel::new(&arch);
        let (schedule, program) = OooScheduler::new(&dfg, &arch, &model)
            .schedule_with_program()
            .unwrap();
        // Interpret against a one-byte buffer: the program must be
        // rejected by the machine, and the error names its stage.
        let err = interpret_program(&dfg, 1, program.cores(), &program.lowered()).unwrap_err();
        let wrapped = VerifyError::from(err);
        assert!(
            wrapped.to_string().contains("abstract machine"),
            "{wrapped}"
        );
        let _ = schedule;
    }
}
