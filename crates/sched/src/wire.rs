//! Binary codec for search results, plus the canonical key bytes the
//! persistent schedule store fingerprints.
//!
//! Builds on [`flexer_sim::wire`]'s primitives. Two jobs:
//!
//! * [`canonical_key_bytes`] — a byte string covering exactly the
//!   fields of the in-memory [`MemoKey`](crate::MemoKey): the layer
//!   *shape* (not its name), the architecture, the scheduler kind and
//!   every winner-relevant search knob. `flexer-store` hashes these
//!   bytes into its content address, so two searches share a store
//!   entry iff they would share a memo entry. `validate`, `prune`,
//!   `trace` and `seed` are deliberately absent — they never change a
//!   winner.
//! * [`encode_layer_result`] / [`decode_layer_result`] — a complete
//!   [`LayerSearchResult`] round trip, bit-exact including `f64`
//!   scores, so a warm-started result is indistinguishable from the
//!   searched one.
//!
//! Any change to either encoding must be paired with a bump of the
//!   store's format version; the store crate's golden fingerprint test
//! exists to force that.

use crate::search::{
    LayerSearchResult, SchedulePoint, SchedulerKind, SearchOptions, SearchOutcome,
};
use crate::stats::SearchStats;
use flexer_arch::ArchConfig;
use flexer_model::{ConvLayer, ElementSize};
use flexer_sim::wire::{decode_schedule, encode_schedule, WireError, WireReader, WireWriter};
use flexer_tiling::{Dataflow, TilingFactors};

/// Encodes a [`Dataflow`] as a one-byte tag.
pub fn encode_dataflow(w: &mut WireWriter, d: Dataflow) {
    let tag = match d {
        Dataflow::Kcs => 0,
        Dataflow::Ksc => 1,
        Dataflow::Cks => 2,
        Dataflow::Csk => 3,
        Dataflow::Skc => 4,
        Dataflow::Sck => 5,
    };
    w.u8(tag);
}

/// Decodes a [`Dataflow`].
///
/// # Errors
///
/// [`WireError`] on malformed input.
pub fn decode_dataflow(r: &mut WireReader<'_>) -> Result<Dataflow, WireError> {
    match r.u8()? {
        0 => Ok(Dataflow::Kcs),
        1 => Ok(Dataflow::Ksc),
        2 => Ok(Dataflow::Cks),
        3 => Ok(Dataflow::Csk),
        4 => Ok(Dataflow::Skc),
        5 => Ok(Dataflow::Sck),
        other => Err(WireError::Invalid {
            what: "Dataflow tag",
            value: u64::from(other),
        }),
    }
}

/// Encodes [`TilingFactors`] as four raw tile counts.
pub fn encode_factors(w: &mut WireWriter, f: TilingFactors) {
    w.u32(f.k());
    w.u32(f.c());
    w.u32(f.h());
    w.u32(f.w());
}

/// Decodes [`TilingFactors`].
///
/// # Errors
///
/// [`WireError`] on malformed input.
pub fn decode_factors(r: &mut WireReader<'_>) -> Result<TilingFactors, WireError> {
    let (k, c, h, w) = (r.u32()?, r.u32()?, r.u32()?, r.u32()?);
    Ok(TilingFactors::from_raw(k, c, h, w))
}

/// Encodes a [`SearchStats`]. The exhaustive destructuring keeps the
/// codec in lock-step with the struct: a new field fails to compile
/// here (and in [`decode_stats`]) until it is wired in.
pub fn encode_stats(w: &mut WireWriter, s: &SearchStats) {
    let SearchStats {
        steps,
        sets_generated,
        sets_pruned,
        sets_evaluated,
        rollback_bytes,
        clone_bytes_avoided,
        evictions,
        compactions,
        gen_nanos,
        eval_nanos,
        commit_nanos,
        schedules_verified,
        verify_nanos,
        candidates_bounded,
        candidates_pruned,
        early_exits,
        bound_nanos,
        store_hits,
        store_misses,
        store_evictions,
        store_corrupt,
        seed_nanos,
        seed_gap_ppm,
        seeded_cutoffs,
    } = *s;
    for v in [
        steps,
        sets_generated,
        sets_pruned,
        sets_evaluated,
        rollback_bytes,
        clone_bytes_avoided,
        evictions,
        compactions,
        gen_nanos,
        eval_nanos,
        commit_nanos,
        schedules_verified,
        verify_nanos,
        candidates_bounded,
        candidates_pruned,
        early_exits,
        bound_nanos,
        store_hits,
        store_misses,
        store_evictions,
        store_corrupt,
        seed_nanos,
        seed_gap_ppm,
        seeded_cutoffs,
    ] {
        w.u64(v);
    }
}

/// Decodes a [`SearchStats`].
///
/// # Errors
///
/// [`WireError`] on malformed input.
pub fn decode_stats(r: &mut WireReader<'_>) -> Result<SearchStats, WireError> {
    Ok(SearchStats {
        steps: r.u64()?,
        sets_generated: r.u64()?,
        sets_pruned: r.u64()?,
        sets_evaluated: r.u64()?,
        rollback_bytes: r.u64()?,
        clone_bytes_avoided: r.u64()?,
        evictions: r.u64()?,
        compactions: r.u64()?,
        gen_nanos: r.u64()?,
        eval_nanos: r.u64()?,
        commit_nanos: r.u64()?,
        schedules_verified: r.u64()?,
        verify_nanos: r.u64()?,
        candidates_bounded: r.u64()?,
        candidates_pruned: r.u64()?,
        early_exits: r.u64()?,
        bound_nanos: r.u64()?,
        store_hits: r.u64()?,
        store_misses: r.u64()?,
        store_evictions: r.u64()?,
        store_corrupt: r.u64()?,
        seed_nanos: r.u64()?,
        seed_gap_ppm: r.u64()?,
        seeded_cutoffs: r.u64()?,
    })
}

fn encode_point(w: &mut WireWriter, p: &SchedulePoint) {
    encode_factors(w, p.factors);
    encode_dataflow(w, p.dataflow);
    w.u64(p.latency);
    w.u64(p.transfer_bytes);
    w.f64(p.score);
}

fn decode_point(r: &mut WireReader<'_>) -> Result<SchedulePoint, WireError> {
    Ok(SchedulePoint {
        factors: decode_factors(r)?,
        dataflow: decode_dataflow(r)?,
        latency: r.u64()?,
        transfer_bytes: r.u64()?,
        score: r.f64()?,
    })
}

/// Encodes a complete [`LayerSearchResult`] into a byte vector. The
/// encoding is canonical: equal results produce equal bytes.
#[must_use]
pub fn encode_layer_result(result: &LayerSearchResult) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.str(&result.layer);
    encode_schedule(&mut w, &result.schedule);
    encode_factors(&mut w, result.factors);
    encode_dataflow(&mut w, result.dataflow);
    w.f64(result.score);
    w.usize(result.evaluated);
    w.usize(result.points.len());
    for p in &result.points {
        encode_point(&mut w, p);
    }
    encode_stats(&mut w, &result.stats);
    match result.outcome {
        SearchOutcome::Exact => w.u8(0),
        SearchOutcome::Anytime { gap } => {
            w.u8(1);
            w.f64(gap);
        }
    }
    w.into_bytes()
}

/// Decodes a [`LayerSearchResult`] produced by [`encode_layer_result`],
/// rejecting trailing bytes.
///
/// # Errors
///
/// [`WireError`] on malformed input.
pub fn decode_layer_result(bytes: &[u8]) -> Result<LayerSearchResult, WireError> {
    let mut r = WireReader::new(bytes);
    let layer = r.str()?;
    let schedule = decode_schedule(&mut r)?;
    let factors = decode_factors(&mut r)?;
    let dataflow = decode_dataflow(&mut r)?;
    let score = r.f64()?;
    let evaluated = r.usize()?;
    let n = r.usize()?;
    let mut points = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        points.push(decode_point(&mut r)?);
    }
    let stats = decode_stats(&mut r)?;
    let outcome = match r.u8()? {
        0 => SearchOutcome::Exact,
        1 => SearchOutcome::Anytime { gap: r.f64()? },
        other => {
            return Err(WireError::Invalid {
                what: "SearchOutcome tag",
                value: u64::from(other),
            })
        }
    };
    r.finish()?;
    Ok(LayerSearchResult {
        layer,
        schedule,
        factors,
        dataflow,
        score,
        evaluated,
        points,
        stats,
        outcome,
    })
}

/// The canonical byte encoding of one search's identity: everything
/// the in-memory memo key covers, and nothing it excludes. The store
/// fingerprints these bytes (plus its own format version) into the
/// entry's content address.
#[must_use]
pub fn canonical_key_bytes(
    layer: &ConvLayer,
    arch: &ArchConfig,
    opts: &SearchOptions,
    kind: SchedulerKind,
) -> Vec<u8> {
    let mut w = WireWriter::new();
    // Layer *shape*, not name — same field order as `MemoKey::shape`.
    // The operator kind is normalized to (tag, groups): a matmul lowers
    // to exactly the geometry of the equivalent pointwise conv, so the
    // two deliberately alias to one store entry ((0, 1), like Dense);
    // grouped layers encode (1, G).
    let (kind_tag, kind_groups) = match layer.kind() {
        flexer_model::LayerKind::Dense | flexer_model::LayerKind::Matmul => (0, 1),
        flexer_model::LayerKind::Grouped { groups } => (1, groups),
    };
    for v in [
        layer.in_channels(),
        layer.in_height(),
        layer.in_width(),
        layer.out_channels(),
        layer.kernel_h(),
        layer.kernel_w(),
        layer.stride(),
        layer.padding(),
        kind_tag,
        kind_groups,
    ] {
        w.u32(v);
    }
    w.u32(arch.cores());
    w.u64(arch.spm_bytes());
    w.u64(arch.dma_bytes_per_cycle());
    w.u32(arch.pe_rows());
    w.u32(arch.pe_cols());
    w.u64(arch.dram_latency_cycles());
    // Heterogeneous core classes: two configs with equal effective
    // parameters but different class mixes must never alias.
    w.usize(arch.core_classes().len());
    for class in arch.core_classes() {
        w.u32(class.count);
        w.u32(class.pe_rows);
        w.u32(class.pe_cols);
        w.u64(class.spm_share_bytes);
    }
    w.u8(match arch.element_size() {
        ElementSize::Int8 => 0,
        ElementSize::Fp16 => 1,
        ElementSize::Fp32 => 2,
    });
    w.u8(match kind {
        SchedulerKind::Ooo => 0,
        SchedulerKind::Static => 1,
    });
    let (metric_tag, metric_bits) = opts.metric.fingerprint();
    w.u8(metric_tag);
    w.u64(metric_bits);
    w.u8(match opts.priority {
        crate::PriorityPolicy::FlexerDefault => 0,
        crate::PriorityPolicy::MinTransfer => 1,
        crate::PriorityPolicy::MinSpill => 2,
    });
    w.u8(match opts.spill {
        crate::SpillPolicyChoice::Flexer => 0,
        crate::SpillPolicyChoice::FirstFit => 1,
        crate::SpillPolicyChoice::SmallestFirst => 2,
    });
    w.usize(opts.combo.width_cap);
    w.usize(opts.combo.max_combos);
    w.usize(opts.combo.max_sets);
    w.bool(opts.combo.prune);
    w.u8(match opts.eval_mode {
        crate::EvalMode::Transactional => 0,
        crate::EvalMode::CloneBaseline => 1,
    });
    w.usize(opts.tiling.channel_candidates.len());
    for &c in &opts.tiling.channel_candidates {
        w.u32(c);
    }
    w.usize(opts.tiling.spatial_candidates.len());
    for &s in &opts.tiling.spatial_candidates {
        w.u32(s);
    }
    w.u64(opts.tiling.max_ops);
    w.usize(opts.tiling.max_tilings);
    w.usize(opts.dataflows.len());
    for &d in &opts.dataflows {
        encode_dataflow(&mut w, d);
    }
    // Residency changes the byte math of every score, so two searches
    // under different residency assignments must never alias.
    w.bool(opts.residency.input_resident);
    w.bool(opts.residency.output_resident);
    w.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search_layer;
    use flexer_arch::ArchPreset;

    fn layer() -> ConvLayer {
        ConvLayer::new("t", 32, 14, 14, 32).unwrap()
    }

    fn arch() -> ArchConfig {
        ArchConfig::preset(ArchPreset::Arch1)
    }

    #[test]
    fn dataflow_round_trips() {
        for d in Dataflow::all() {
            let mut w = WireWriter::new();
            encode_dataflow(&mut w, d);
            let bytes = w.into_bytes();
            let mut r = WireReader::new(&bytes);
            assert_eq!(decode_dataflow(&mut r).unwrap(), d);
        }
        let mut r = WireReader::new(&[6]);
        assert!(decode_dataflow(&mut r).is_err());
    }

    #[test]
    fn stats_round_trip_is_exhaustive() {
        // fields() values in declaration order reconstruct any stats
        // value; pair up with the codec to catch drift.
        let mut s = SearchStats::default();
        for (i, _) in SearchStats::default().fields().iter().enumerate() {
            // Touch every field with a distinct value via merge of a
            // synthetic per-field delta is overkill; encode/decode the
            // default plus a handful of set fields instead.
            let _ = i;
        }
        s.steps = 7;
        s.store_hits = 3;
        s.store_corrupt = 1;
        s.bound_nanos = 99;
        let mut w = WireWriter::new();
        encode_stats(&mut w, &s);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 8 * s.fields().len());
        let mut r = WireReader::new(&bytes);
        let back = decode_stats(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn layer_result_round_trips_bit_exact() {
        let mut opts = SearchOptions::quick();
        opts.threads = 1;
        opts.collect_points = true;
        let result = search_layer(&layer(), &arch(), &opts).unwrap();
        assert!(!result.points.is_empty());
        let bytes = encode_layer_result(&result);
        let back = decode_layer_result(&bytes).unwrap();
        assert_eq!(back.layer, result.layer);
        assert_eq!(back.schedule, result.schedule);
        assert_eq!(back.factors, result.factors);
        assert_eq!(back.dataflow, result.dataflow);
        assert_eq!(back.score.to_bits(), result.score.to_bits());
        assert_eq!(back.evaluated, result.evaluated);
        assert_eq!(back.points.len(), result.points.len());
        assert_eq!(back.stats, result.stats);
        // Canonical: re-encoding reproduces the same bytes.
        assert_eq!(encode_layer_result(&back), bytes);
    }

    #[test]
    fn truncated_result_is_a_typed_error() {
        let mut opts = SearchOptions::quick();
        opts.threads = 1;
        let result = search_layer(&layer(), &arch(), &opts).unwrap();
        let bytes = encode_layer_result(&result);
        assert!(decode_layer_result(&bytes[..bytes.len() / 2]).is_err());
        let mut extended = bytes;
        extended.push(0);
        assert!(matches!(
            decode_layer_result(&extended),
            Err(WireError::TrailingBytes { .. })
        ));
    }

    #[test]
    fn key_bytes_track_memo_relevant_fields_only() {
        let l = layer();
        let ar = arch();
        let base = SearchOptions::quick();
        let base_bytes = canonical_key_bytes(&l, &ar, &base, SchedulerKind::Ooo);

        // Winner-relevant knobs change the bytes.
        let mut metric = base.clone();
        metric.metric = crate::Metric::Transfer;
        assert_ne!(
            canonical_key_bytes(&l, &ar, &metric, SchedulerKind::Ooo),
            base_bytes
        );
        assert_ne!(
            canonical_key_bytes(&l, &ar, &base, SchedulerKind::Static),
            base_bytes
        );
        let renamed = l.clone().with_name("alias");
        assert_eq!(
            canonical_key_bytes(&renamed, &ar, &base, SchedulerKind::Ooo),
            base_bytes,
            "the key tracks the shape, not the name"
        );

        // Residency changes the winner's byte math: distinct keys.
        let mut resident = base.clone();
        resident.residency.input_resident = true;
        assert_ne!(
            canonical_key_bytes(&l, &ar, &resident, SchedulerKind::Ooo),
            base_bytes
        );
        resident.residency = flexer_tiling::Residency {
            input_resident: false,
            output_resident: true,
        };
        assert_ne!(
            canonical_key_bytes(&l, &ar, &resident, SchedulerKind::Ooo),
            base_bytes
        );

        // validate / prune / trace / threads / seed are
        // winner-neutral.
        let mut neutral = base.clone();
        neutral.validate = true;
        neutral.prune = false;
        neutral.threads = 7;
        neutral.collect_points = false;
        neutral.seed.enabled = true;
        neutral.seed.top_k = 9;
        assert_eq!(
            canonical_key_bytes(&l, &ar, &neutral, SchedulerKind::Ooo),
            base_bytes
        );
    }
}
