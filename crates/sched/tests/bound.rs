//! Branch-and-bound exactness tests.
//!
//! Two families:
//!
//! 1. **Admissibility** (property-based): for random layers, every
//!    `(tiling, dataflow)` point the search explores must dominate its
//!    [`lower_bound`] — bound latency ≤ schedule latency, bound
//!    transfer ≤ transferred bytes — for the OoO scheduler *and* the
//!    static baseline. Admissibility is the entire soundness argument
//!    of the pruned search (DESIGN.md §10): a single violation could
//!    prune a winner.
//! 2. **Winner equality** (golden): on the four evaluation networks,
//!    both presets, both schedulers, the pruned search returns the
//!    same tiling, dataflow and score as the exhaustive one, with
//!    every winner differentially verified (`validate = true`).

use flexer_arch::{ArchConfig, ArchPreset, SystolicModel};
use flexer_model::{networks, scale_spatial, ConvLayer};
use flexer_sched::{
    lower_bound, search_layer, search_layer_static, search_network, search_network_static,
    SearchOptions,
};
use proptest::prelude::*;

/// Quick options that keep every explored point.
fn collecting_opts() -> SearchOptions {
    let mut opts = SearchOptions::quick();
    opts.threads = 1;
    opts.collect_points = true;
    opts
}

fn assert_points_dominate_bounds(layer: &ConvLayer, arch: &ArchConfig, ooo: bool) {
    let perf = SystolicModel::new(arch);
    let opts = collecting_opts();
    let result = if ooo {
        search_layer(layer, arch, &opts)
    } else {
        search_layer_static(layer, arch, &opts)
    }
    .expect("search succeeds on generated layer");
    assert!(!result.points.is_empty());
    for p in &result.points {
        let b = lower_bound(layer, arch, &perf, &p.factors);
        assert!(
            b.latency <= p.latency,
            "latency bound {} exceeds schedule latency {} ({:?}, {})",
            b.latency,
            p.latency,
            p.factors,
            p.dataflow,
        );
        assert!(
            b.transfer_bytes <= p.transfer_bytes,
            "transfer bound {} exceeds transferred bytes {} ({:?}, {})",
            b.transfer_bytes,
            p.transfer_bytes,
            p.factors,
            p.dataflow,
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn bounds_are_admissible_for_every_explored_point(
        in_c in prop::sample::select(vec![8u32, 16, 24, 32]),
        out_c in prop::sample::select(vec![8u32, 16, 32, 48]),
        h in 7u32..=20,
        w in 7u32..=20,
        preset in prop::sample::select(vec![ArchPreset::Arch1, ArchPreset::Arch5]),
        ooo in any::<bool>(),
    ) {
        let layer = ConvLayer::new("prop", in_c, h, w, out_c).unwrap();
        let arch = ArchConfig::preset(preset);
        assert_points_dominate_bounds(&layer, &arch, ooo);
    }
}

#[test]
fn pruned_winners_match_exhaustive_on_the_evaluation_networks() {
    // Spatially scaled-down networks keep the test fast; the search
    // structure (tilings × dataflows per layer) is unchanged.
    let mut pruned_opts = SearchOptions::quick();
    pruned_opts.threads = 1;
    pruned_opts.validate = true;
    assert!(pruned_opts.prune, "pruning is on by default");
    let mut full_opts = pruned_opts.clone();
    full_opts.prune = false;

    for net in networks::all() {
        let net = scale_spatial(&net, 4);
        for preset in [ArchPreset::Arch1, ArchPreset::Arch5] {
            let arch = ArchConfig::preset(preset);
            for ooo in [true, false] {
                let (pruned, full) = if ooo {
                    (
                        search_network(net.layers(), &arch, &pruned_opts).unwrap(),
                        search_network(net.layers(), &arch, &full_opts).unwrap(),
                    )
                } else {
                    (
                        search_network_static(net.layers(), &arch, &pruned_opts).unwrap(),
                        search_network_static(net.layers(), &arch, &full_opts).unwrap(),
                    )
                };
                assert_eq!(pruned.len(), full.len());
                let mut pruned_any = false;
                for (p, f) in pruned.iter().zip(&full) {
                    let ctx = format!("{}/{preset}/ooo={ooo}/{}", net.name(), p.layer);
                    assert_eq!(p.factors, f.factors, "{ctx}: tiling differs");
                    assert_eq!(p.dataflow, f.dataflow, "{ctx}: dataflow differs");
                    assert_eq!(p.score, f.score, "{ctx}: score differs");
                    assert_eq!(p.schedule, f.schedule, "{ctx}: schedule differs");
                    assert!(p.stats.schedules_verified > 0, "{ctx}: winner not verified");
                    pruned_any |= p.stats.candidates_pruned > 0 || p.stats.early_exits > 0;
                }
                assert!(
                    pruned_any,
                    "{}/{preset}/ooo={ooo}: pruning never fired",
                    net.name()
                );
            }
        }
    }
}
