//! Differential fuzzing of the schedulers against the SPM abstract
//! machine, plus mutation tests proving the verifier actually rejects
//! broken programs.
//!
//! Every `(layer, tiling, dataflow, scheduler)` sample must produce a
//! (schedule, program) pair that survives the full verification chain:
//! schedule validation, program region replay, abstract-machine
//! interpretation, and the differential cross-check of traffic, load
//! counts, core placement and compaction. The mutation tests then
//! corrupt known-good command streams one command at a time and assert
//! the machine rejects each corruption with the right typed error.

use flexer_arch::{ArchConfig, ArchConfigBuilder, ArchPreset, SystolicModel};
use flexer_model::ConvLayer;
use flexer_sched::{verify_schedule_program, OooScheduler, Program, StaticScheduler};
use flexer_sim::{interpret_program, InterpError, SpmCommand};
use flexer_tiling::{Dataflow, Dfg, TilingFactors};
use proptest::prelude::*;

fn dataflow_strategy() -> impl Strategy<Value = Dataflow> {
    prop_oneof![
        Just(Dataflow::Kcs),
        Just(Dataflow::Ksc),
        Just(Dataflow::Csk),
        Just(Dataflow::Cks),
        Just(Dataflow::Skc),
        Just(Dataflow::Sck),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any schedule either scheduler produces, on any architecture it
    /// can schedule at all, executes faithfully on the abstract
    /// machine and agrees with its own analytical accounting.
    #[test]
    fn winners_always_survive_differential_verification(
        in_ch in prop_oneof![Just(8u32), Just(16), Just(32)],
        out_ch in prop_oneof![Just(8u32), Just(16), Just(32)],
        hw in prop_oneof![Just(8u32), Just(14), Just(16)],
        k in 1u32..4, c in 1u32..4, h in 1u32..3, w in 1u32..3,
        df in dataflow_strategy(),
        cores in 1u32..=4,
        spm_kib in prop_oneof![Just(24u64), Just(64), Just(256)],
        ooo in any::<bool>(),
    ) {
        let arch = ArchConfigBuilder::new(cores, spm_kib * 1024, 16)
            .build()
            .unwrap();
        let model = SystolicModel::new(&arch);
        let layer = ConvLayer::new("fz", in_ch, hw, hw, out_ch).unwrap();
        let factors = TilingFactors::normalized(&layer, k, c, h, w);
        let Ok(dfg) = Dfg::build(&layer, factors, df, &model, &arch) else {
            // Tiling rejected (e.g. too many ops): nothing to verify.
            return Ok(());
        };
        let result = if ooo {
            OooScheduler::new(&dfg, &arch, &model).schedule_with_program()
        } else {
            StaticScheduler::new(&dfg, &arch, &model).schedule_with_program()
        };
        let Ok((schedule, program)) = result else {
            // Working set exceeds the buffer: a legal refusal.
            return Ok(());
        };
        verify_schedule_program(&dfg, &schedule, &program, ooo)
            .unwrap_or_else(|e| panic!("{df} cores={cores} spm={spm_kib}KiB ooo={ooo}: {e}"));
    }
}

/// A known-good (dfg, program) pair to mutate.
fn legal_pair() -> (Dfg, Program) {
    let arch = ArchConfig::preset(ArchPreset::Arch1);
    let model = SystolicModel::new(&arch);
    let layer = ConvLayer::new("m", 32, 16, 16, 32).unwrap();
    let factors = TilingFactors::normalized(&layer, 2, 2, 2, 2);
    let dfg = Dfg::build(&layer, factors, Dataflow::Kcs, &model, &arch).unwrap();
    let (_, program) = OooScheduler::new(&dfg, &arch, &model)
        .schedule_with_program()
        .unwrap();
    (dfg, program)
}

fn interpret_mutated(
    dfg: &Dfg,
    program: &Program,
    mutate: impl FnOnce(&mut Vec<SpmCommand>),
) -> Result<flexer_sim::InterpStats, InterpError> {
    let mut commands = program.lowered();
    mutate(&mut commands);
    interpret_program(dfg, program.spm_bytes(), program.cores(), &commands)
}

#[test]
fn unmutated_program_is_accepted() {
    let (dfg, program) = legal_pair();
    interpret_mutated(&dfg, &program, |_| {}).unwrap();
}

#[test]
fn mutation_dropped_load_is_rejected() {
    let (dfg, program) = legal_pair();
    let err = interpret_mutated(&dfg, &program, |cmds| {
        let i = cmds
            .iter()
            .position(|c| matches!(c, SpmCommand::Load { .. }))
            .expect("program loads something");
        cmds.remove(i);
    })
    .unwrap_err();
    assert!(
        matches!(
            err,
            InterpError::NotResident { .. }
                | InterpError::UninitRead { .. }
                | InterpError::AddressMismatch { .. }
        ),
        "{err}"
    );
}

#[test]
fn mutation_overlapping_allocation_is_rejected() {
    let (dfg, program) = legal_pair();
    let err = interpret_mutated(&dfg, &program, |cmds| {
        // Re-point the second placement at the first one's address.
        let mut placements = cmds.iter_mut().filter_map(|c| match c {
            SpmCommand::Load { address, .. } | SpmCommand::Reserve { address, .. } => Some(address),
            _ => None,
        });
        let first = *placements.next().expect("a first placement");
        let second = placements.next().expect("a second placement");
        *second = first;
    })
    .unwrap_err();
    assert!(matches!(err, InterpError::Overlap { .. }), "{err}");
}

#[test]
fn mutation_missing_final_store_is_rejected() {
    let (dfg, program) = legal_pair();
    let err = interpret_mutated(&dfg, &program, |cmds| {
        let i = cmds
            .iter()
            .rposition(|c| matches!(c, SpmCommand::Store { .. }))
            .expect("program stores results");
        cmds.remove(i);
    })
    .unwrap_err();
    assert!(matches!(err, InterpError::UnsavedData { .. }), "{err}");
}

#[test]
fn mutation_bad_core_is_rejected() {
    let (dfg, program) = legal_pair();
    let bad = program.cores();
    let err = interpret_mutated(&dfg, &program, |cmds| {
        for c in cmds.iter_mut() {
            if let SpmCommand::Exec { core, .. } = c {
                *core = bad;
                break;
            }
        }
    })
    .unwrap_err();
    assert!(matches!(err, InterpError::BadCore { .. }), "{err}");
}

#[test]
fn mutation_duplicated_load_is_rejected() {
    let (dfg, program) = legal_pair();
    let err = interpret_mutated(&dfg, &program, |cmds| {
        let i = cmds
            .iter()
            .position(|c| matches!(c, SpmCommand::Load { .. }))
            .expect("program loads something");
        let dup = cmds[i];
        cmds.insert(i, dup);
    })
    .unwrap_err();
    assert!(matches!(err, InterpError::AlreadyResident { .. }), "{err}");
}

#[test]
fn mutation_reordered_dependency_is_rejected() {
    let (dfg, program) = legal_pair();
    // Swap the first two Execs of one accumulation chain: the second
    // op of a chain must not run before its predecessor.
    let commands = program.lowered();
    let execs: Vec<usize> = commands
        .iter()
        .enumerate()
        .filter_map(|(i, c)| matches!(c, SpmCommand::Exec { .. }).then_some(i))
        .collect();
    let mut found = None;
    'outer: for (ai, &a) in execs.iter().enumerate() {
        let SpmCommand::Exec { op: op_a, .. } = commands[a] else {
            unreachable!()
        };
        for &b in &execs[ai + 1..] {
            let SpmCommand::Exec { op: op_b, .. } = commands[b] else {
                unreachable!()
            };
            if dfg.pred(op_b) == Some(op_a) {
                found = Some((a, b));
                break 'outer;
            }
        }
    }
    let (a, b) = found.expect("some accumulation chain spans two execs");
    let err = interpret_mutated(&dfg, &program, |cmds| cmds.swap(a, b)).unwrap_err();
    assert!(
        matches!(
            err,
            InterpError::PredecessorNotExecuted { .. }
                | InterpError::AccumulateMismatch { .. }
                | InterpError::NotResident { .. }
                | InterpError::AddressMismatch { .. }
                | InterpError::UninitRead { .. }
        ),
        "{err}"
    );
}
