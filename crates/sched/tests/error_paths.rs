//! Mutation-style coverage of the scheduler's error paths through the
//! public API: each test drives a real search or scheduler run into a
//! specific [`SchedError`] variant and asserts the exact variant, so a
//! regression that swaps, swallows or re-wraps an error fails loudly
//! instead of surviving behind a generic `is_err()`.

use flexer_arch::{ArchConfig, ArchConfigBuilder, ArchPreset, SystolicModel};
use flexer_model::{ConvLayer, ConvLayerBuilder};
use flexer_sched::{
    search_layer, search_network, search_network_layerwise, Cutoff, Incumbent, Metric,
    OooScheduler, SchedError, SearchOptions,
};
use flexer_sim::TimelineError;
use flexer_tiling::{Dataflow, Dfg, TilingFactors};
use std::error::Error;

fn arch1() -> ArchConfig {
    ArchConfig::preset(ArchPreset::Arch1)
}

fn unschedulable() -> ConvLayer {
    // A 4096-channel, 1024x1024 layer that no tiling of at most 32 ops
    // can shrink into a 256 KiB SPM.
    ConvLayerBuilder::new("huge", 4096, 1024, 1024, 4096)
        .build()
        .unwrap()
}

fn tight_opts() -> SearchOptions {
    let mut opts = SearchOptions::quick();
    opts.tiling.max_ops = 32;
    opts
}

#[test]
fn impossible_incumbent_prunes_the_scheduler_run() {
    // An incumbent of 0.0 means every real schedule's running score
    // strictly exceeds it from the first committed set: the armed
    // cutoff must abort the run with `Pruned`, not a generic failure.
    let layer = ConvLayer::new("t", 32, 14, 14, 32).unwrap();
    let arch = arch1();
    let model = SystolicModel::new(&arch);
    let factors = TilingFactors::normalized(&layer, 2, 2, 2, 2);
    let dfg = Dfg::build(&layer, factors, Dataflow::Kcs, &model, &arch).unwrap();
    let incumbent = Incumbent::new();
    incumbent.observe(0.0);
    let err = OooScheduler::new(&dfg, &arch, &model)
        .with_cutoff(Cutoff::new(&incumbent, Metric::LatencyTimesTransfer))
        .schedule()
        .unwrap_err();
    assert_eq!(err, SchedError::Pruned);
    assert!(err.source().is_none(), "Pruned wraps no inner error");
}

#[test]
fn unarmed_cutoff_never_fires() {
    // The same run without an incumbent observation completes: proves
    // the previous test's `Pruned` came from the cutoff, not the DFG.
    let layer = ConvLayer::new("t", 32, 14, 14, 32).unwrap();
    let arch = arch1();
    let model = SystolicModel::new(&arch);
    let factors = TilingFactors::normalized(&layer, 2, 2, 2, 2);
    let dfg = Dfg::build(&layer, factors, Dataflow::Kcs, &model, &arch).unwrap();
    let incumbent = Incumbent::new();
    let schedule = OooScheduler::new(&dfg, &arch, &model)
        .with_cutoff(Cutoff::new(&incumbent, Metric::LatencyTimesTransfer))
        .schedule()
        .unwrap();
    assert!(schedule.latency() > 0);
}

#[test]
fn duplicate_of_a_failed_leader_wraps_the_leaders_error() {
    let leader = unschedulable();
    let twin = leader.with_name("huge-twin");
    let results = search_network_layerwise(&[leader, twin], &arch1(), &tight_opts());
    assert_eq!(results.len(), 2);
    assert!(
        matches!(
            results[0].as_ref().unwrap_err(),
            SchedError::NoViableTiling { layer } if layer == "huge"
        ),
        "leader fails on its own: {:?}",
        results[0]
    );
    match results[1].as_ref().unwrap_err() {
        SchedError::DuplicateOf { leader, error } => {
            assert_eq!(leader, "huge", "wrapper names the leader layer");
            assert!(
                matches!(&**error, SchedError::NoViableTiling { layer } if layer == "huge"),
                "the replayed error is the leader's own: {error}"
            );
        }
        e => panic!("expected DuplicateOf, got {e}"),
    }
    let err = results[1].as_ref().unwrap_err();
    assert!(err.to_string().contains("huge"), "{err}");
    assert!(err.source().is_some(), "source chain reaches the leader");
}

#[test]
fn collapsed_network_error_is_the_leaders_not_the_duplicates() {
    // The first-error-in-layer-order collapse always surfaces the
    // leader's own failure, never the DuplicateOf wrapper — the
    // layerwise API above is the only way to observe the wrapper.
    let leader = unschedulable();
    let twin = leader.with_name("huge-twin");
    let err = search_network(&[leader, twin], &arch1(), &tight_opts()).unwrap_err();
    assert!(
        matches!(&err, SchedError::NoViableTiling { layer } if layer == "huge"),
        "{err}"
    );
}

#[test]
fn adversarial_dram_latency_overflows_the_timeline() {
    // With a DRAM latency of u64::MAX / 2 the second DMA of any
    // schedule pushes the cycle count past u64::MAX: the checked
    // timeline arithmetic must surface `Timeline(CycleOverflow)`.
    let arch = ArchConfigBuilder::new(2, 256 * 1024, 16)
        .dram_latency(u64::MAX / 2)
        .build()
        .unwrap();
    let layer = ConvLayer::new("t", 16, 14, 14, 16).unwrap();
    let mut opts = SearchOptions::quick();
    opts.threads = 1;
    // Reach the scheduler itself, not the bound pre-pass.
    opts.prune = false;
    let err = search_layer(&layer, &arch, &opts).unwrap_err();
    assert!(
        matches!(
            err,
            SchedError::Timeline(TimelineError::CycleOverflow { .. })
        ),
        "{err}"
    );
    assert!(err.source().is_some(), "source chain reaches the timeline");
}
