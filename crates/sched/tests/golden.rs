//! Golden equivalence tests: the transactional SPM planning path must
//! be a pure performance optimization. Under [`SearchOptions::quick`]
//! the full Algorithm-1 search — OoO and static — produces
//! byte-identical winners whether candidate sets are trial-planned
//! with checkpoint/rollback on the live scratchpad (the default) or on
//! a clone per candidate (the pre-optimization baseline).

use flexer_arch::{ArchConfig, ArchPreset};
use flexer_model::ConvLayer;
use flexer_sched::{
    search_layer, search_layer_static, search_network, EvalMode, LayerSearchResult, SearchOptions,
};

fn layers() -> Vec<ConvLayer> {
    vec![
        ConvLayer::new("small", 16, 14, 14, 32).unwrap(),
        ConvLayer::new("square", 32, 14, 14, 32).unwrap(),
        ConvLayer::new("wide", 64, 7, 7, 96).unwrap(),
    ]
}

fn modes() -> [SearchOptions; 2] {
    let tx = SearchOptions::quick();
    let mut clone = SearchOptions::quick();
    clone.eval_mode = EvalMode::CloneBaseline;
    [tx, clone]
}

fn assert_same_winner(a: &LayerSearchResult, b: &LayerSearchResult) {
    assert_eq!(a.schedule, b.schedule, "schedules must be byte-identical");
    assert_eq!(a.factors, b.factors);
    assert_eq!(a.dataflow, b.dataflow);
    assert_eq!(a.score, b.score);
    assert_eq!(a.evaluated, b.evaluated);
}

#[test]
fn ooo_search_is_identical_across_eval_modes() {
    let arch = ArchConfig::preset(ArchPreset::Arch1);
    let [tx, clone] = modes();
    for layer in layers() {
        let a = search_layer(&layer, &arch, &tx).unwrap();
        let b = search_layer(&layer, &arch, &clone).unwrap();
        assert_same_winner(&a, &b);
        // Only the cost accounting differs between the modes.
        assert!(a.stats.rollback_bytes > 0);
        assert_eq!(b.stats.rollback_bytes, 0);
        assert_eq!(a.stats.sets_evaluated, b.stats.sets_evaluated);
    }
}

#[test]
fn static_search_is_identical_across_eval_modes() {
    // The static baseline never trial-plans candidate sets; the eval
    // mode must not perturb it in any way.
    let arch = ArchConfig::preset(ArchPreset::Arch1);
    let [tx, clone] = modes();
    for layer in layers() {
        let a = search_layer_static(&layer, &arch, &tx).unwrap();
        let b = search_layer_static(&layer, &arch, &clone).unwrap();
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.factors, b.factors);
        assert_eq!(a.dataflow, b.dataflow);
        assert_eq!(a.score, b.score);
    }
}

#[test]
fn network_queue_is_identical_across_eval_modes_and_archs() {
    // The shared work queue must preserve the equivalence end to end,
    // on both a 2-core and a 4-core configuration.
    let [tx, clone] = modes();
    for preset in [ArchPreset::Arch1, ArchPreset::Arch5] {
        let arch = ArchConfig::preset(preset);
        let net = layers();
        let a = search_network(&net, &arch, &tx).unwrap();
        let b = search_network(&net, &arch, &clone).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_same_winner(x, y);
        }
    }
}
