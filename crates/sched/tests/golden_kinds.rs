//! Golden winner-equality tests for the new operator kinds and the
//! heterogeneous architecture: matmul, depthwise and grouped layers
//! must search deterministically on every configuration, under both
//! schedulers, seeded and unseeded — and a matmul's winner must be
//! byte-identical to the winner of the pointwise conv it lowers to,
//! which is what makes the store-key aliasing of the two sound.

use flexer_arch::{ArchConfig, ArchPreset};
use flexer_model::{ConvLayer, ConvLayerBuilder};
use flexer_sched::{search_layer, search_layer_static, LayerSearchResult, SearchOptions};

fn kinds() -> Vec<ConvLayer> {
    vec![
        ConvLayer::matmul("mm", 196, 32, 48).unwrap(),
        ConvLayer::depthwise("dw", 32, 14, 14, 1, 1).unwrap(),
        ConvLayerBuilder::new("g4", 32, 14, 14, 64)
            .kernel(3, 3)
            .padding(1)
            .groups(4)
            .build()
            .unwrap(),
    ]
}

fn archs() -> Vec<ArchConfig> {
    vec![
        ArchConfig::preset(ArchPreset::Arch1),
        ArchConfig::preset(ArchPreset::Arch5),
        ArchConfig::hetero1(),
    ]
}

fn assert_same_winner(a: &LayerSearchResult, b: &LayerSearchResult) {
    assert_eq!(a.schedule, b.schedule, "schedules must be byte-identical");
    assert_eq!(a.factors, b.factors);
    assert_eq!(a.dataflow, b.dataflow);
    assert_eq!(a.score, b.score);
    assert_eq!(a.evaluated, b.evaluated);
}

#[test]
fn new_kinds_search_deterministically_on_every_arch() {
    let mut opts = SearchOptions::quick();
    opts.validate = true; // differential verification on every winner
    for arch in archs() {
        for layer in kinds() {
            let a = search_layer(&layer, &arch, &opts).unwrap();
            let b = search_layer(&layer, &arch, &opts).unwrap();
            assert_same_winner(&a, &b);
            assert!(a.schedule.latency() > 0, "{}", layer.name());
            let sa = search_layer_static(&layer, &arch, &opts).unwrap();
            let sb = search_layer_static(&layer, &arch, &opts).unwrap();
            assert_same_winner(&sa, &sb);
            // The OoO winner never loses to the static baseline.
            assert!(a.score <= sa.score, "{}", layer.name());
        }
    }
}

#[test]
fn seeding_never_changes_the_winner_on_new_kinds() {
    let unseeded = SearchOptions::quick();
    let mut seeded = SearchOptions::quick();
    seeded.seed.enabled = true;
    for arch in archs() {
        for layer in kinds() {
            let a = search_layer(&layer, &arch, &unseeded).unwrap();
            let b = search_layer(&layer, &arch, &seeded).unwrap();
            assert_same_winner(&a, &b);
        }
    }
}

#[test]
fn matmul_winner_is_byte_identical_to_its_pointwise_lowering() {
    // ConvLayer::matmul(m, k, n) lowers to a 1x1 conv with k input
    // channels over an m x 1 spatial extent producing n channels. The
    // two share a memo/store key, so their searched winners must be
    // byte-identical — the aliasing proof.
    let mm = ConvLayer::matmul("mm", 196, 32, 48).unwrap();
    let pw = ConvLayerBuilder::new("pw", 32, 196, 1, 48).build().unwrap();
    let opts = SearchOptions::quick();
    for arch in archs() {
        let a = search_layer(&mm, &arch, &opts).unwrap();
        let b = search_layer(&pw, &arch, &opts).unwrap();
        assert_same_winner(&a, &b);
        let sa = search_layer_static(&mm, &arch, &opts).unwrap();
        let sb = search_layer_static(&pw, &arch, &opts).unwrap();
        assert_same_winner(&sa, &sb);
    }
}

#[test]
fn hetero_arch_produces_a_distinct_deterministic_winner() {
    // The heterogeneous config has conservative effective parameters
    // (weakest-core PE array); its winners must differ from a config
    // with the strongest core's array, and replay byte-identically.
    let layer = ConvLayer::new("c", 32, 14, 14, 32).unwrap();
    let hetero = ArchConfig::hetero1();
    let opts = SearchOptions::quick();
    let a = search_layer(&layer, &hetero, &opts).unwrap();
    let b = search_layer(&layer, &hetero, &opts).unwrap();
    assert_same_winner(&a, &b);
    // Same core count and SPM but a uniform 32x32 PE array: the
    // per-op latencies change, so the score must differ.
    let strong = flexer_arch::ArchConfigBuilder::new(
        hetero.cores(),
        hetero.spm_bytes(),
        hetero.dma_bytes_per_cycle(),
    )
    .pe_array(32, 32)
    .build()
    .unwrap();
    let s = search_layer(&layer, &strong, &opts).unwrap();
    assert!(
        s.score < a.score,
        "an all-strong-core config must beat the hetero mix ({} !< {})",
        s.score,
        a.score
    );
}
