//! Drift tests for [`SearchStats`]: the merge of N per-layer searches
//! must equal one N-layer batch search, field for field. A counter
//! that a future change forgets to merge — or that the batch path
//! flushes differently — fails here instead of silently reporting
//! wrong search-effort numbers.

use flexer_arch::{ArchConfig, ArchPreset};
use flexer_model::ConvLayer;
use flexer_sched::{search_layer, search_network, SearchOptions, SearchStats, StatKind};

fn layers() -> [ConvLayer; 3] {
    // Three distinct shapes: no in-batch dedup, so the batch search
    // does exactly the work of the three solo searches.
    [
        ConvLayer::new("a", 16, 14, 14, 32).unwrap(),
        ConvLayer::new("b", 32, 14, 14, 32).unwrap(),
        ConvLayer::new("c", 32, 7, 7, 64).unwrap(),
    ]
}

fn opts() -> SearchOptions {
    let mut opts = SearchOptions::quick();
    opts.threads = 1;
    opts
}

#[test]
fn batch_stats_equal_merged_solo_stats() {
    let arch = ArchConfig::preset(ArchPreset::Arch1);
    let batch = search_network(&layers(), &arch, &opts()).unwrap();
    let mut batch_total = SearchStats::default();
    for r in &batch {
        batch_total.merge(&r.stats);
    }
    let mut solo_total = SearchStats::default();
    for l in &layers() {
        solo_total.merge(&search_layer(l, &arch, &opts()).unwrap().stats);
    }
    // Wall-clock fields (bound/verify nanos) legitimately differ
    // between runs; every deterministic counter must match exactly.
    assert_eq!(
        batch_total.deterministic_fields(),
        solo_total.deterministic_fields()
    );
}

#[test]
fn validated_batch_stats_equal_merged_solo_stats() {
    let arch = ArchConfig::preset(ArchPreset::Arch1);
    let mut opts = opts();
    opts.validate = true;
    let batch = search_network(&layers(), &arch, &opts).unwrap();
    let mut batch_total = SearchStats::default();
    for r in &batch {
        batch_total.merge(&r.stats);
    }
    let mut solo_total = SearchStats::default();
    for l in &layers() {
        solo_total.merge(&search_layer(l, &arch, &opts).unwrap().stats);
    }
    assert_eq!(
        batch_total.deterministic_fields(),
        solo_total.deterministic_fields()
    );
    assert_eq!(batch_total.schedules_verified, 3);
}

#[test]
fn merge_covers_every_field() {
    // Build a stats value where field i holds i + 1, merge it into
    // itself, and check every field doubled — via the exhaustive
    // `fields()` registry, so adding a field without extending
    // `merge` fails here.
    let probe = SearchStats {
        steps: 1,
        ..SearchStats::default()
    };
    let mut doubled = probe;
    doubled.merge(&probe);
    for ((name, a, _), (_, b, _)) in probe.fields().iter().zip(doubled.fields().iter()) {
        assert_eq!(*b, a * 2, "field {name} not doubled by merge");
    }
    // And with real search output, not a hand-built probe:
    let arch = ArchConfig::preset(ArchPreset::Arch1);
    let real = search_layer(&layers()[1], &arch, &opts()).unwrap().stats;
    let mut twice = real;
    twice.merge(&real);
    for ((name, a, _), (_, b, _)) in real.fields().iter().zip(twice.fields().iter()) {
        assert_eq!(*b, a * 2, "field {name} not doubled by merge");
    }
}

#[test]
fn display_round_trips_every_count_field() {
    // Display must mention the value of every Count-kind field so the
    // report line cannot silently drop a counter.
    let arch = ArchConfig::preset(ArchPreset::Arch1);
    let stats = search_layer(&layers()[0], &arch, &opts()).unwrap().stats;
    let line = stats.to_string();
    for (name, value, kind) in stats.fields() {
        if kind == StatKind::Count && value > 0 {
            assert!(
                line.contains(&value.to_string()),
                "field {name}={value} missing from display: {line}"
            );
        }
    }
}
