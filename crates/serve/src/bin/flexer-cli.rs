//! `flexer-cli`: the command-line client for `flexer-serve`.
//!
//! Builds one protocol request from the arguments, prints the server's
//! response line verbatim, and exits 0 only when the response says
//! `"ok": true` — which makes it directly usable as a CI assertion.

use flexer_serve::client::Client;
use flexer_serve::protocol::Obj;
use flexer_trace::json::{parse, Json};
use std::process::ExitCode;

const USAGE: &str = "\
flexer-cli — client for the flexer-serve scheduling service

USAGE: flexer-cli --addr HOST:PORT <COMMAND> [OPTIONS]

COMMANDS:
  health                        liveness probe
  stats                         server and store counters
  schedule <network>            out-of-order schedule
  compare <network>             OoO vs. static-baseline comparison
  verify <network>              comparison under differential verification
  shutdown                      graceful drain: finish in-flight work,
                                flush the store, stop the server
  raw <json>                    send one raw request line

<network> is a preset (vgg16, resnet50, squeezenet, yolov2) — use
`raw` with inline \"layers\" for custom shapes.

OPTIONS (schedule/compare/verify):
  --arch arch1..arch8           architecture preset (default arch1)
  --options quick|default       search options preset (default quick)
  --deadline-ms N               per-request deadline
  --mode exact|anytime          deadline semantics (schedule): exact fails
                                on expiry, anytime returns the best-so-far
                                with a proven optimality gap
  --trace                       return the recorded span tree (schedule)
  --id STR                      correlation id echoed in the response

EXIT STATUS: 0 response ok and complete, 1 connection/protocol failure,
2 usage or typed server error, 3 response ok but partial (an anytime
deadline cut the search; per-layer \"gap\" says how far off at worst).";

fn build_request(cmd: &str, mut rest: std::env::Args) -> Result<String, String> {
    let op = match cmd {
        "health" | "stats" | "shutdown" => cmd,
        "schedule" | "compare" | "verify" => cmd,
        "raw" => {
            return rest
                .next()
                .ok_or_else(|| "raw needs one JSON argument".into());
        }
        other => return Err(format!("unknown command {other:?} (see --help)")),
    };
    let mut o = Obj::new();
    o.str("op", op);
    if matches!(op, "schedule" | "compare" | "verify") {
        let network = rest
            .next()
            .ok_or_else(|| format!("{op} needs a network name"))?;
        o.str("network", &network);
    }
    while let Some(flag) = rest.next() {
        let mut value = |what: &str| {
            rest.next()
                .ok_or_else(|| format!("{what} needs a value (see --help)"))
        };
        match flag.as_str() {
            "--arch" => {
                o.str("arch", &value("--arch")?);
            }
            "--options" => {
                o.str("options", &value("--options")?);
            }
            "--deadline-ms" => {
                let ms: u64 = value("--deadline-ms")?
                    .parse()
                    .map_err(|e| format!("--deadline-ms: {e}"))?;
                o.u64("deadline_ms", ms);
            }
            "--mode" => {
                o.str("mode", &value("--mode")?);
            }
            "--trace" => {
                o.bool("trace", true);
            }
            "--id" => {
                o.str("id", &value("--id")?);
            }
            other => return Err(format!("unknown flag {other:?} (see --help)")),
        }
    }
    Ok(o.finish())
}

fn main() -> ExitCode {
    let mut args = std::env::args();
    let _ = args.next();
    let mut addr = None;
    let cmd = loop {
        match args.next().as_deref() {
            Some("--addr") => addr = args.next(),
            Some("-h" | "--help") => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            Some(cmd) => break cmd.to_string(),
            None => {
                eprintln!("flexer-cli: missing command (see --help)");
                return ExitCode::from(2);
            }
        }
    };
    let Some(addr) = addr else {
        eprintln!("flexer-cli: --addr HOST:PORT is required");
        return ExitCode::from(2);
    };
    let line = match build_request(&cmd, args) {
        Ok(line) => line,
        Err(msg) => {
            eprintln!("flexer-cli: {msg}");
            return ExitCode::from(2);
        }
    };
    let response = match Client::connect(addr.as_str()).and_then(|mut c| c.roundtrip(&line)) {
        Ok(response) => response,
        Err(e) => {
            eprintln!("flexer-cli: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{response}");
    match parse(&response) {
        Ok(j) if j.get("ok").and_then(Json::as_bool) == Some(true) => {
            if j.get("partial").and_then(Json::as_bool) == Some(true) {
                eprintln!(
                    "flexer-cli: partial result — the anytime deadline cut the \
                     search; see per-layer \"gap\" for the proven bound"
                );
                ExitCode::from(3)
            } else {
                ExitCode::SUCCESS
            }
        }
        Ok(_) => ExitCode::from(2),
        Err(_) => ExitCode::FAILURE,
    }
}
