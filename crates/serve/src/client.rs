//! A minimal blocking client for the newline-delimited JSON protocol,
//! shared by `flexer-cli` and the integration tests.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One open client connection. Requests may be pipelined: the server
/// answers strictly in order, one line per request.
#[derive(Debug)]
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates resolution and connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        })?;
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
        Self::from_stream(stream)
    }

    /// Wraps an already connected stream.
    ///
    /// # Errors
    ///
    /// Propagates the `try_clone` failure.
    pub fn from_stream(stream: TcpStream) -> io::Result<Self> {
        let writer = stream.try_clone()?;
        Ok(Self {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Sends one request line and reads the matching response line.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; an empty read (server closed the
    /// connection) is [`io::ErrorKind::UnexpectedEof`].
    pub fn roundtrip(&mut self, line: &str) -> io::Result<String> {
        self.send(line)?;
        self.recv()
    }

    /// Sends one request line without waiting.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn send(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Reads the next response line.
    ///
    /// # Errors
    ///
    /// Propagates read failures; EOF is
    /// [`io::ErrorKind::UnexpectedEof`].
    pub fn recv(&mut self) -> io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim_end().to_string())
    }

    /// Applies a read timeout to subsequent [`Client::recv`] calls.
    ///
    /// # Errors
    ///
    /// Propagates the socket-option failure.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }
}

/// One-shot convenience: connect, send `line`, return the response.
///
/// # Errors
///
/// As [`Client::connect`] and [`Client::roundtrip`].
pub fn roundtrip(addr: impl ToSocketAddrs, line: &str) -> io::Result<String> {
    Client::connect(addr)?.roundtrip(line)
}
