//! Request execution: drivers, deadlines, and response bodies.
//!
//! The engine owns a lazily populated cache of [`Flexer`] drivers, one
//! per `(arch, options, verify)` combination a request can name. All
//! drivers share one persistent store directory when the server is
//! started with one — entries are content-addressed, so the drivers
//! never collide — and one driver's memo cache warms every later
//! request with the same configuration.

use crate::protocol::{hex_encode, ok_response, ErrorKind, Mode, Obj, Op, OptionsName, Request};
use flexer::prelude::*;
use flexer_arch::ArchPreset;
use flexer_sched::SchedError;
use flexer_store::{Ingest, ScheduleStore};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A typed request failure: the wire code plus a human-readable
/// message.
pub type Failure = (ErrorKind, String);

/// A per-request deadline, checked between units of work (layers).
///
/// The search for one layer is not interruptible — a deadline that
/// expires mid-layer is reported once that layer completes — so the
/// enforcement granularity is one layer.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// A deadline `ms` milliseconds from now; `None` falls back to
    /// `default_ms`, where `0` means unbounded.
    ///
    /// The full semantics (pinned by tests here and in
    /// `crate::protocol`):
    ///
    /// - `Some(0)` is *already expired* — exact-mode requests fail with
    ///   the typed `deadline` error, anytime-mode requests return every
    ///   layer's seeded best-so-far.
    /// - `None` with `default_ms == 0` is unbounded.
    /// - Absurdly large values (≥ [`Self::UNBOUNDED_THRESHOLD_MS`],
    ///   up to and including `u64::MAX`) saturate to unbounded instead
    ///   of risking a clock overflow — an `Instant + Duration` panic
    ///   in a worker thread would kill that worker and silently shrink
    ///   the pool.
    #[must_use]
    pub fn from_ms(ms: Option<u64>, default_ms: u64) -> Self {
        // An explicit 0 means "already expired"; only an absent
        // deadline with default 0 is unbounded.
        let at = match ms {
            Some(ms) => Self::saturating_expiry(ms),
            None if default_ms == 0 => None,
            None => Self::saturating_expiry(default_ms),
        };
        Self { at }
    }

    /// Deadlines at least this far out are treated as unbounded
    /// (~100 years). The threshold makes the saturation
    /// platform-independent: whether `Instant + Duration` overflows
    /// for a given huge value differs by OS clock representation, and
    /// a deadline a century out is unbounded for every practical
    /// purpose anyway.
    const UNBOUNDED_THRESHOLD_MS: u64 = 100 * 365 * 24 * 60 * 60 * 1000;

    /// `now + ms`, or `None` (unbounded) for values past
    /// [`Self::UNBOUNDED_THRESHOLD_MS`] or beyond what the monotonic
    /// clock can represent.
    fn saturating_expiry(ms: u64) -> Option<Instant> {
        if ms >= Self::UNBOUNDED_THRESHOLD_MS {
            return None;
        }
        Instant::now().checked_add(Duration::from_millis(ms))
    }

    /// An unbounded deadline.
    #[must_use]
    pub fn unbounded() -> Self {
        Self { at: None }
    }

    /// The raw expiry instant, `None` when unbounded — what the
    /// anytime search threads through to its per-candidate cut checks.
    #[must_use]
    pub fn at(&self) -> Option<Instant> {
        self.at
    }

    /// Fails with [`ErrorKind::Deadline`] once the deadline has
    /// passed.
    ///
    /// # Errors
    ///
    /// The typed `deadline` failure.
    pub fn check(&self) -> Result<(), Failure> {
        match self.at {
            Some(at) if Instant::now() >= at => Err((
                ErrorKind::Deadline,
                "deadline exceeded before the request completed".into(),
            )),
            _ => Ok(()),
        }
    }
}

/// One driver per distinct request configuration. `verify` selects a
/// twin with [`SearchOptions::validate`] forced on, so verified and
/// unverified requests never share memoized winners of different
/// provenance.
type DriverKey = (ArchPreset, OptionsName, bool);

/// Aggregate counters over every residency-planned network the engine
/// has scheduled (requests with `"residency": true`). A snapshot of
/// the engine's internal atomics, reported by the `stats` op.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ResidencySummary {
    /// Networks scheduled through the residency planner.
    pub networks: u64,
    /// Producer→consumer edges kept resident in SPM, summed over
    /// those networks.
    pub resident_edges: u64,
    /// Edges the planner considered but spilled back to DRAM under
    /// SPM pressure.
    pub spilled_edges: u64,
    /// DRAM bytes avoided versus the residency-off plans of the same
    /// requests.
    pub dma_bytes_saved: u64,
}

/// The engine-internal atomic twins of [`ResidencySummary`]. Relaxed
/// ordering throughout: the counters are monotonic totals with no
/// cross-field invariant a reader could observe torn.
#[derive(Debug, Default)]
struct ResidencyCounters {
    networks: AtomicU64,
    resident_edges: AtomicU64,
    spilled_edges: AtomicU64,
    dma_bytes_saved: AtomicU64,
}

/// Executes scheduling requests.
#[derive(Debug)]
pub struct Engine {
    drivers: Mutex<HashMap<DriverKey, Arc<Flexer>>>,
    store_dir: Option<PathBuf>,
    store_capacity: Option<u64>,
    residency: ResidencyCounters,
    /// Dedicated store handle for the replication ops
    /// (`store_manifest`/`store_pull`/`store_push`), opened lazily on
    /// first use. Replication traffic deliberately bypasses the driver
    /// stores so it never skews their hit/miss serving counters.
    replication: Mutex<Option<Arc<ScheduleStore>>>,
}

impl Engine {
    /// An engine without persistence: every driver is memory-only.
    #[must_use]
    pub fn new() -> Self {
        Self {
            drivers: Mutex::new(HashMap::new()),
            store_dir: None,
            store_capacity: None,
            residency: ResidencyCounters::default(),
            replication: Mutex::new(None),
        }
    }

    /// An engine whose drivers all warm-start from (and persist to)
    /// the schedule store rooted at `dir`. `capacity_bytes` bounds the
    /// store's size when given (`0` disables eviction).
    #[must_use]
    pub fn with_store(dir: PathBuf, capacity_bytes: Option<u64>) -> Self {
        Self {
            drivers: Mutex::new(HashMap::new()),
            store_dir: Some(dir),
            store_capacity: capacity_bytes,
            residency: ResidencyCounters::default(),
            replication: Mutex::new(None),
        }
    }

    fn options_for(name: OptionsName, verify: bool) -> SearchOptions {
        let mut opts = match name {
            OptionsName::Quick => SearchOptions::quick(),
            OptionsName::Default => SearchOptions::default(),
        };
        if verify {
            opts.validate = true;
        }
        opts
    }

    /// The (cached) driver for one request configuration.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Internal`] when the store directory cannot be
    /// opened.
    fn driver(&self, key: DriverKey) -> Result<Arc<Flexer>, Failure> {
        let mut drivers = self.drivers.lock().expect("driver cache poisoned");
        if let Some(d) = drivers.get(&key) {
            return Ok(Arc::clone(d));
        }
        let (arch, options, verify) = key;
        let mut driver =
            Flexer::new(ArchConfig::preset(arch)).with_options(Self::options_for(options, verify));
        if let Some(dir) = &self.store_dir {
            driver = match self.store_capacity {
                Some(cap) => driver.with_store_capacity(dir, cap),
                None => driver.with_store(dir),
            }
            .map_err(|e| {
                (
                    ErrorKind::Internal,
                    format!("cannot open schedule store at {}: {e}", dir.display()),
                )
            })?;
        }
        let driver = Arc::new(driver);
        drivers.insert(key, Arc::clone(&driver));
        Ok(driver)
    }

    /// Number of distinct driver configurations instantiated so far.
    #[must_use]
    pub fn driver_count(&self) -> usize {
        self.drivers.lock().expect("driver cache poisoned").len()
    }

    /// Store counters and entry count summed over every driver's store
    /// handle, or `None` when the engine is memory-only.
    #[must_use]
    pub fn store_summary(&self) -> Option<StoreCounters> {
        self.store_dir.as_ref()?;
        let drivers = self.drivers.lock().expect("driver cache poisoned");
        let mut total = StoreCounters::default();
        for driver in drivers.values() {
            if let Some(store) = driver.store() {
                let c = store.counters();
                total.hits += c.hits;
                total.misses += c.misses;
                total.evictions += c.evictions;
                total.corrupt += c.corrupt;
            }
        }
        drop(drivers);
        // The replication handle never hits or misses, but its
        // eviction and corrupt-rejection counts are store traffic the
        // stats op must not hide.
        if let Some(store) = self.replication.lock().expect("replication store").as_ref() {
            let c = store.counters();
            total.evictions += c.evictions;
            total.corrupt += c.corrupt;
        }
        Some(total)
    }

    /// Number of entries currently in the shared store directory.
    #[must_use]
    pub fn store_entries(&self) -> Option<usize> {
        let drivers = self.drivers.lock().expect("driver cache poisoned");
        drivers
            .values()
            .find_map(|d| d.store().and_then(|s| s.len().ok()))
            .or_else(|| {
                self.replication
                    .lock()
                    .expect("replication store")
                    .as_ref()
                    .and_then(|s| s.len().ok())
            })
            .or(self.store_dir.as_ref().map(|_| 0))
    }

    /// Snapshot of the aggregate residency counters — what the
    /// `stats` op reports in its `"residency"` sub-object. All-zero
    /// until a `schedule` request opts in with `"residency": true`.
    #[must_use]
    pub fn residency_summary(&self) -> ResidencySummary {
        ResidencySummary {
            networks: self.residency.networks.load(Ordering::Relaxed),
            resident_edges: self.residency.resident_edges.load(Ordering::Relaxed),
            spilled_edges: self.residency.spilled_edges.load(Ordering::Relaxed),
            dma_bytes_saved: self.residency.dma_bytes_saved.load(Ordering::Relaxed),
        }
    }

    /// Flushes every driver's store directory (directory-level
    /// `fsync`), making all persisted schedules durable. Called on
    /// graceful shutdown.
    pub fn flush_stores(&self) {
        let drivers = self.drivers.lock().expect("driver cache poisoned");
        for driver in drivers.values() {
            if let Some(store) = driver.store() {
                let _ = store.flush();
            }
        }
        drop(drivers);
        if let Some(store) = self.replication.lock().expect("replication store").as_ref() {
            let _ = store.flush();
        }
    }

    /// The (lazily opened) store handle the replication ops use.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::BadRequest`] on a server without a persistent
    /// store, [`ErrorKind::Internal`] when the directory cannot be
    /// opened.
    fn replication_store(&self) -> Result<Arc<ScheduleStore>, Failure> {
        let dir = self.store_dir.as_ref().ok_or_else(|| {
            (
                ErrorKind::BadRequest,
                "this server has no persistent store (started without --store)".to_string(),
            )
        })?;
        let mut guard = self.replication.lock().expect("replication store");
        if let Some(store) = guard.as_ref() {
            return Ok(Arc::clone(store));
        }
        let store = match self.store_capacity {
            Some(cap) => ScheduleStore::with_capacity(dir, cap),
            None => ScheduleStore::open(dir),
        }
        .map_err(|e| {
            (
                ErrorKind::Internal,
                format!("cannot open schedule store at {}: {e}", dir.display()),
            )
        })?;
        let store = Arc::new(store);
        *guard = Some(Arc::clone(&store));
        Ok(store)
    }

    /// Executes one replication request ([`Op::StoreManifest`],
    /// [`Op::StorePull`] or [`Op::StorePush`]) and returns the
    /// serialized success line.
    ///
    /// # Errors
    ///
    /// A typed [`Failure`]: `bad_request` on a store-less server or
    /// `internal` on store I/O errors. Damaged pushed entries are not
    /// an error — they are rejected per entry and reported in the
    /// response's `rejected` count, so one bad replica cannot stall an
    /// anti-entropy pass.
    ///
    /// # Panics
    ///
    /// Panics if called for a non-replication op —
    /// [`crate::protocol::parse_request`] routes only `store_*` ops
    /// here.
    pub fn run_store(&self, req: &Request) -> Result<String, Failure> {
        let store = self.replication_store()?;
        let internal = |e: std::io::Error| (ErrorKind::Internal, format!("store I/O failed: {e}"));
        let mut o = ok_response(req.op, req.id.as_deref());
        match req.op {
            Op::StoreManifest => {
                let entries = store.manifest().map_err(internal)?;
                let mut rows = String::from("[");
                for (i, e) in entries.iter().enumerate() {
                    if i > 0 {
                        rows.push(',');
                    }
                    rows.push_str(&format!(
                        r#"{{"fingerprint":"{}","len":{},"checksum":{}}}"#,
                        e.fingerprint.hex(),
                        e.len,
                        e.checksum
                    ));
                }
                rows.push(']');
                o.raw("entries", &rows).u64("count", entries.len() as u64);
            }
            Op::StorePull => {
                let mut rows = String::from("[");
                let mut missing = String::from("[");
                let mut found = 0u64;
                for fp in &req.fingerprints {
                    match store.export(*fp).map_err(internal)? {
                        Some(bytes) => {
                            if found > 0 {
                                rows.push(',');
                            }
                            found += 1;
                            rows.push_str(&format!(
                                r#"{{"fingerprint":"{}","bytes":"{}"}}"#,
                                fp.hex(),
                                hex_encode(&bytes)
                            ));
                        }
                        None => {
                            if missing.len() > 1 {
                                missing.push(',');
                            }
                            missing.push_str(&format!(r#""{}""#, fp.hex()));
                        }
                    }
                }
                rows.push(']');
                missing.push(']');
                o.raw("entries", &rows).raw("missing", &missing);
            }
            Op::StorePush => {
                let (mut stored, mut existing, mut rejected) = (0u64, 0u64, 0u64);
                for (fp, bytes) in &req.entries {
                    match store.ingest(*fp, bytes).map_err(internal)? {
                        Ingest::Stored => stored += 1,
                        Ingest::Exists => existing += 1,
                        Ingest::Rejected(_) => rejected += 1,
                    }
                }
                o.u64("stored", stored)
                    .u64("existing", existing)
                    .u64("rejected", rejected);
            }
            _ => unreachable!("engine only runs store ops here"),
        }
        Ok(o.finish())
    }

    /// Executes one scheduling request ([`Op::Schedule`],
    /// [`Op::Compare`] or [`Op::Verify`]) and returns the serialized
    /// success line.
    ///
    /// # Errors
    ///
    /// A typed [`Failure`]: `deadline`, `sched` or `internal`.
    ///
    /// # Panics
    ///
    /// Panics if called for a non-scheduling op or a request without a
    /// network — [`crate::protocol::parse_request`] never produces
    /// either.
    pub fn run(&self, req: &Request, deadline: &Deadline) -> Result<String, Failure> {
        let net = req
            .network
            .as_ref()
            .expect("scheduling request without a network");
        match req.op {
            Op::Schedule => self.run_schedule(req, net, deadline),
            Op::Compare => self.run_compare(req, net, deadline, false),
            Op::Verify => self.run_compare(req, net, deadline, true),
            _ => unreachable!("engine only runs scheduling ops"),
        }
    }

    fn sched_failure(e: &SchedError) -> Failure {
        (ErrorKind::Sched, e.to_string())
    }

    /// Schedules every layer through `driver`, checking the deadline
    /// between layers.
    fn layers_with_deadline(
        driver: &Flexer,
        net: &Network,
        deadline: &Deadline,
        baseline: bool,
    ) -> Result<NetworkResult, Failure> {
        let mut rows = Vec::with_capacity(net.layers().len());
        for layer in net.layers() {
            deadline.check()?;
            let result = if baseline {
                driver.baseline_layer(layer)
            } else {
                driver.schedule_layer(layer)
            };
            rows.push(result.map_err(|e| Self::sched_failure(&e))?);
        }
        Ok(NetworkResult::new(net.name(), rows))
    }

    fn push_totals(o: &mut Obj, req: &Request, result: &NetworkResult) {
        o.str("network", result.network())
            .str("arch", &req.arch.to_string())
            .str("options", req.options.code())
            .u64("latency", result.total_latency())
            .u64("transfer_bytes", result.total_transfer_bytes())
            .u64("evaluated", result.total_evaluated() as u64);
        let stats = result.total_stats();
        o.u64("store_hits", stats.store_hits)
            .u64("store_misses", stats.store_misses);
    }

    fn layer_rows(result: &NetworkResult) -> String {
        let mut rows = String::from("[");
        for (i, l) in result.layers().iter().enumerate() {
            if i > 0 {
                rows.push(',');
            }
            let mut row = Obj::new();
            row.str("name", &l.layer)
                .u64("latency", l.schedule.latency())
                .u64("transfer_bytes", l.schedule.transfer_bytes())
                .u64("evaluated", l.evaluated as u64);
            if let Some(gap) = l.gap() {
                row.bool("partial", true).f64("gap", gap);
            }
            if l.stats.store_hits > 0 {
                row.str("store", "hit");
            } else if l.stats.store_misses > 0 {
                row.str("store", "miss");
            }
            rows.push_str(&row.finish());
        }
        rows.push(']');
        rows
    }

    fn run_schedule(
        &self,
        req: &Request,
        net: &Network,
        deadline: &Deadline,
    ) -> Result<String, Failure> {
        let driver = self.driver((req.arch, req.options, false))?;
        if req.mode == Mode::Anytime {
            return Self::run_schedule_anytime(req, net, deadline, &driver);
        }
        if req.residency {
            return self.run_schedule_resident(req, net, deadline, &driver);
        }
        deadline.check()?;
        let mut o = ok_response(Op::Schedule, req.id.as_deref());
        let result = if req.trace {
            // Traced requests run the whole-network traced search: it
            // bypasses the persistent store on purpose (the point is
            // to watch the real search) and is not layer-interruptible.
            let traced = driver.trace_network(net);
            let tree = traced.span_tree();
            let result = traced.result.map_err(|e| Self::sched_failure(&e))?;
            deadline.check()?;
            o.str("span_tree", &tree);
            result
        } else {
            Self::layers_with_deadline(&driver, net, deadline, false)?
        };
        Self::push_totals(&mut o, req, &result);
        o.raw("layers", &Self::layer_rows(&result));
        Ok(o.finish())
    }

    /// The residency variant of [`Engine::run_schedule`]: runs the
    /// whole-network inter-layer SPM residency planner instead of the
    /// per-layer loop. The planner is not layer-interruptible, so the
    /// deadline is checked before and after the pass. The response's
    /// totals count DRAM traffic only (resident edges moved their
    /// bytes out of DRAM — that is the point) and carry a
    /// `"residency"` sub-object with the per-network counters; the
    /// same counters feed the engine-wide `stats` aggregates.
    fn run_schedule_resident(
        &self,
        req: &Request,
        net: &Network,
        deadline: &Deadline,
        driver: &Flexer,
    ) -> Result<String, Failure> {
        deadline.check()?;
        let resident = driver
            .schedule_network_resident(net)
            .map_err(|e| Self::sched_failure(&e))?;
        deadline.check()?;
        let plan = &resident.plan;
        self.residency.networks.fetch_add(1, Ordering::Relaxed);
        self.residency
            .resident_edges
            .fetch_add(plan.resident_edges() as u64, Ordering::Relaxed);
        self.residency
            .spilled_edges
            .fetch_add(plan.spilled_edges() as u64, Ordering::Relaxed);
        self.residency
            .dma_bytes_saved
            .fetch_add(resident.dma_bytes_saved(), Ordering::Relaxed);
        let mut o = ok_response(Op::Schedule, req.id.as_deref());
        Self::push_totals(&mut o, req, &resident.result);
        let mut r = Obj::new();
        r.u64("resident_edges", plan.resident_edges() as u64)
            .u64("spilled_edges", plan.spilled_edges() as u64)
            .u64("dma_bytes_saved", resident.dma_bytes_saved())
            .u64(
                "baseline_transfer_bytes",
                resident.baseline.total_transfer_bytes(),
            );
        o.raw("residency", &r.finish());
        o.raw("layers", &Self::layer_rows(&resident.result));
        Ok(o.finish())
    }

    /// The anytime variant of [`Engine::run_schedule`]: never fails on
    /// an expired deadline. Every layer searches under the request's
    /// deadline and keeps its best-so-far schedule when cut; cut
    /// layers carry `"partial": true` and their proven optimality
    /// `"gap"`, and the response carries a top-level `"partial"` flag
    /// when any layer was cut.
    ///
    /// Anytime results bypass the persistent store and the memo cache
    /// in both directions — only proven optima are durable.
    fn run_schedule_anytime(
        req: &Request,
        net: &Network,
        deadline: &Deadline,
        driver: &Flexer,
    ) -> Result<String, Failure> {
        let mut rows = Vec::with_capacity(net.layers().len());
        for layer in net.layers() {
            let result = driver
                .schedule_layer_anytime(layer, deadline.at())
                .map_err(|e| Self::sched_failure(&e))?;
            rows.push(result);
        }
        let result = NetworkResult::new(net.name(), rows);
        let partial = result.layers().iter().any(|l| !l.is_exact());
        // `partial` is an existential over the layer rows, so it can
        // only be true when at least one row exists — a `partial:true`
        // response always names which layers were cut. (The protocol
        // additionally rejects empty layer lists at parse time.)
        debug_assert!(
            !partial || !result.layers().is_empty(),
            "partial:true requires a non-empty layer set"
        );
        let mut o = ok_response(Op::Schedule, req.id.as_deref());
        o.str("mode", req.mode.code()).bool("partial", partial);
        Self::push_totals(&mut o, req, &result);
        o.raw("layers", &Self::layer_rows(&result));
        Ok(o.finish())
    }

    fn run_compare(
        &self,
        req: &Request,
        net: &Network,
        deadline: &Deadline,
        verify: bool,
    ) -> Result<String, Failure> {
        let driver = self.driver((req.arch, req.options, verify))?;
        deadline.check()?;
        let flexer = Self::layers_with_deadline(&driver, net, deadline, false)?;
        let baseline = Self::layers_with_deadline(&driver, net, deadline, true)?;
        let cmp = NetworkComparison::new(flexer, baseline);
        let op = if verify { Op::Verify } else { Op::Compare };
        let mut o = ok_response(op, req.id.as_deref());
        Self::push_totals(&mut o, req, cmp.flexer());
        o.u64("baseline_latency", cmp.baseline().total_latency())
            .u64(
                "baseline_transfer_bytes",
                cmp.baseline().total_transfer_bytes(),
            )
            .f64("speedup", cmp.speedup())
            .f64("transfer_reduction", cmp.transfer_reduction());
        if verify {
            o.bool(
                "verified",
                cmp.flexer().verified() && cmp.baseline().verified(),
            );
        }
        o.raw("layers", &Self::layer_rows(cmp.flexer()));
        Ok(o.finish())
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::parse_request;

    fn schedule_req(extra: &str) -> Request {
        parse_request(&format!(
            r#"{{"op":"schedule","layers":[{{"in_channels":16,"height":14,"width":14,"out_channels":16}}]{extra}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn schedule_request_round_trips() {
        let engine = Engine::new();
        let line = engine
            .run(&schedule_req(""), &Deadline::unbounded())
            .unwrap();
        let j = flexer_trace::json::parse(&line).unwrap();
        assert_eq!(
            j.get("ok").and_then(flexer_trace::json::Json::as_bool),
            Some(true)
        );
        assert!(
            j.get("latency")
                .and_then(flexer_trace::json::Json::as_num)
                .unwrap()
                > 0.0
        );
        assert_eq!(
            j.get("layers")
                .and_then(flexer_trace::json::Json::as_array)
                .unwrap()
                .len(),
            1
        );
        assert_eq!(engine.driver_count(), 1);
    }

    #[test]
    fn expired_deadline_is_a_typed_failure() {
        let engine = Engine::new();
        let deadline = Deadline::from_ms(Some(0), 0);
        let err = engine.run(&schedule_req(""), &deadline).unwrap_err();
        assert_eq!(err.0, ErrorKind::Deadline);
    }

    #[test]
    fn huge_deadline_saturates_to_unbounded_instead_of_panicking() {
        // Pre-fix, `Instant + Duration::from_millis(u64::MAX)`
        // panicked, killing the worker thread mid-request.
        let engine = Engine::new();
        for ms in [u64::MAX, u64::MAX / 2, 1 << 62] {
            let deadline = Deadline::from_ms(Some(ms), 0);
            assert!(deadline.check().is_ok(), "deadline_ms={ms}");
            let line = engine.run(&schedule_req(""), &deadline).unwrap();
            let j = flexer_trace::json::parse(&line).unwrap();
            assert_eq!(
                j.get("ok").and_then(flexer_trace::json::Json::as_bool),
                Some(true),
                "deadline_ms={ms}"
            );
        }
    }

    #[test]
    fn zero_deadline_is_already_expired_and_absent_uses_default() {
        // deadline_ms:0 — expired immediately, not "use the default".
        assert!(Deadline::from_ms(Some(0), 60_000).check().is_err());
        // Absent with a zero default — unbounded.
        let unbounded = Deadline::from_ms(None, 0);
        assert!(unbounded.at().is_none());
        assert!(unbounded.check().is_ok());
        // Absent with a nonzero default — bounded by the default.
        assert!(Deadline::from_ms(None, 60_000).at().is_some());
        // A huge *default* saturates to unbounded too.
        assert!(Deadline::from_ms(None, u64::MAX).at().is_none());
    }

    #[test]
    fn anytime_schedule_survives_an_expired_deadline() {
        let engine = Engine::new();
        let deadline = Deadline::from_ms(Some(0), 0);
        let line = engine
            .run(&schedule_req(r#","mode":"anytime""#), &deadline)
            .unwrap();
        let j = flexer_trace::json::parse(&line).unwrap();
        let get = |k: &str| j.get(k).cloned();
        assert_eq!(
            get("ok")
                .as_ref()
                .and_then(flexer_trace::json::Json::as_bool),
            Some(true)
        );
        assert_eq!(
            get("partial")
                .as_ref()
                .and_then(flexer_trace::json::Json::as_bool),
            Some(true)
        );
        assert!(
            get("latency")
                .as_ref()
                .and_then(flexer_trace::json::Json::as_num)
                .unwrap()
                > 0.0,
            "a cut layer still carries a real schedule"
        );
        let layers = get("layers").unwrap();
        let rows = layers.as_array().unwrap();
        assert_eq!(rows.len(), 1);
        let gap = rows[0]
            .get("gap")
            .and_then(flexer_trace::json::Json::as_num)
            .expect("cut layer reports its gap");
        assert!(gap >= 1.0, "gap {gap}");
        assert_eq!(
            rows[0]
                .get("partial")
                .and_then(flexer_trace::json::Json::as_bool),
            Some(true)
        );
    }

    #[test]
    fn anytime_schedule_with_slack_stays_exact() {
        let engine = Engine::new();
        let deadline = Deadline::from_ms(Some(3_600_000), 0);
        let line = engine
            .run(&schedule_req(r#","mode":"anytime""#), &deadline)
            .unwrap();
        let j = flexer_trace::json::parse(&line).unwrap();
        assert_eq!(
            j.get("partial").and_then(flexer_trace::json::Json::as_bool),
            Some(false)
        );
        let layers = j.get("layers").cloned().unwrap();
        let rows = layers.as_array().unwrap();
        assert!(
            rows[0].get("gap").is_none(),
            "exact layers carry no gap member"
        );
    }

    #[test]
    fn traced_schedule_returns_a_span_tree() {
        let engine = Engine::new();
        let line = engine
            .run(&schedule_req(r#","trace":true"#), &Deadline::unbounded())
            .unwrap();
        let j = flexer_trace::json::parse(&line).unwrap();
        let tree = j
            .get("span_tree")
            .and_then(flexer_trace::json::Json::as_str)
            .unwrap();
        assert!(tree.contains("search"), "{tree}");
    }

    #[test]
    fn residency_schedule_reports_counters_and_feeds_the_summary() {
        let engine = Engine::new();
        assert_eq!(engine.residency_summary(), ResidencySummary::default());
        // A chain whose matching inter-layer shapes give the planner
        // edges to keep resident (same chain the core driver tests
        // prove goes resident).
        let chain = r#","layers":[
            {"name":"c1","in_channels":16,"height":14,"width":14,"out_channels":32},
            {"name":"c2","in_channels":32,"height":14,"width":14,"out_channels":32},
            {"name":"c3","in_channels":32,"height":14,"width":14,"out_channels":32}]"#;
        let req =
            parse_request(&format!(r#"{{"op":"schedule","residency":true{chain}}}"#)).unwrap();
        let line = engine.run(&req, &Deadline::unbounded()).unwrap();
        let j = flexer_trace::json::parse(&line).unwrap();
        assert_eq!(
            j.get("ok").and_then(flexer_trace::json::Json::as_bool),
            Some(true)
        );
        let res = j.get("residency").expect("residency sub-object");
        let num = |k: &str| {
            res.get(k)
                .and_then(flexer_trace::json::Json::as_num)
                .unwrap_or_else(|| panic!("residency.{k} missing")) as u64
        };
        assert!(num("resident_edges") >= 1, "no resident edges: {line}");
        assert!(num("dma_bytes_saved") > 0, "no bytes saved: {line}");
        let transfer = j
            .get("transfer_bytes")
            .and_then(flexer_trace::json::Json::as_num)
            .unwrap() as u64;
        assert_eq!(
            transfer + num("dma_bytes_saved"),
            num("baseline_transfer_bytes"),
            "saved bytes must reconcile with the baseline: {line}"
        );
        // The same counters land in the engine-wide aggregate.
        let summary = engine.residency_summary();
        assert_eq!(summary.networks, 1);
        assert_eq!(summary.resident_edges, num("resident_edges"));
        assert_eq!(summary.spilled_edges, num("spilled_edges"));
        assert_eq!(summary.dma_bytes_saved, num("dma_bytes_saved"));
        // A plain schedule leaves the residency aggregates untouched
        // and carries no residency member.
        let plain = engine
            .run(&schedule_req(""), &Deadline::unbounded())
            .unwrap();
        let pj = flexer_trace::json::parse(&plain).unwrap();
        assert!(pj.get("residency").is_none());
        assert_eq!(engine.residency_summary().networks, 1);
    }

    #[test]
    fn verify_reports_verification() {
        let engine = Engine::new();
        let mut req = schedule_req("");
        req.op = Op::Verify;
        let line = engine.run(&req, &Deadline::unbounded()).unwrap();
        let j = flexer_trace::json::parse(&line).unwrap();
        assert_eq!(
            j.get("verified")
                .and_then(flexer_trace::json::Json::as_bool),
            Some(true)
        );
        assert!(j
            .get("speedup")
            .and_then(flexer_trace::json::Json::as_num)
            .is_some());
        // Verified and unverified drivers are distinct cache entries.
        req.op = Op::Compare;
        let _ = engine.run(&req, &Deadline::unbounded()).unwrap();
        assert_eq!(engine.driver_count(), 2);
    }
}
