//! `flexer-serve`: a concurrent scheduling service over the Flexer
//! pipeline.
//!
//! The crate turns the batch search into a long-running daemon:
//!
//! - **Protocol** ([`protocol`]): newline-delimited JSON over TCP, one
//!   request line in, one response line out, with *typed* error codes
//!   (`parse`, `bad_request`, `overloaded`, `deadline`, `sched`,
//!   `shutting_down`, `internal`).
//! - **Engine** ([`engine`]): a cache of [`flexer::Flexer`] drivers,
//!   one per `(arch, options, verify)` configuration, all sharing one
//!   persistent [`flexer_store::ScheduleStore`] so every schedule ever
//!   computed warms every future request — across requests, drivers
//!   *and* process restarts.
//! - **Server** ([`server`]): a bounded worker pool over a bounded
//!   accept queue; saturation sheds load with a typed `overloaded`
//!   reply instead of stalling, deadlines are enforced between layers,
//!   and shutdown drains in-flight work before flushing the store.
//! - **Client** ([`client`]): the minimal blocking client the
//!   `flexer-cli` binary and the integration tests share.
//!
//! Everything is `std`-only: no third-party runtime, no async — worker
//! threads and blocking sockets are plenty for search-bound requests
//! whose unit of work is milliseconds to seconds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod engine;
pub mod protocol;
pub mod server;

pub use client::Client;
pub use engine::{Deadline, Engine, ResidencySummary};
pub use protocol::{
    hex_decode, hex_encode, mask_provenance, parse_request, ErrorKind, Mode, Obj, Op, OptionsName,
    Request, MAX_LINE_BYTES,
};
pub use server::{request_shutdown, Server, ServerConfig};
