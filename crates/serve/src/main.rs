//! The `flexer-serve` daemon: binds, prints the bound address, serves
//! until a graceful shutdown is requested.

use flexer_serve::{request_shutdown, Server, ServerConfig};
use std::io::{Read, Write};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
flexer-serve — concurrent scheduling service (newline-delimited JSON over TCP)

USAGE: flexer-serve [OPTIONS]

OPTIONS:
  --addr HOST:PORT       bind address (default 127.0.0.1:0 = any free port)
  --port-file PATH       write the bound port to PATH once listening
  --store DIR            persistent schedule store directory (warm starts)
  --store-capacity N     store eviction capacity in bytes (0 = unbounded)
  --workers N            worker threads (default 4)
  --queue N              accept-queue depth before shedding (default 16)
  --deadline-ms N        default per-request deadline (default 0 = none)
  --node-name NAME       fleet-member name echoed in health/stats
                         responses (scheduling responses stay
                         byte-identical across the fleet)
  --stdin-shutdown       drain gracefully when stdin reaches EOF (the
                         no-signals stand-in for SIGTERM: run the daemon
                         with a pipe on stdin and close it to stop)
  -h, --help             this text

Stop it with: flexer-cli --addr HOST:PORT shutdown";

struct Args {
    config: ServerConfig,
    port_file: Option<PathBuf>,
    stdin_shutdown: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut config = ServerConfig::default();
    let mut port_file = None;
    let mut stdin_shutdown = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .ok_or_else(|| format!("{what} needs a value (see --help)"))
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--port-file" => port_file = Some(PathBuf::from(value("--port-file")?)),
            "--store" => config.store_dir = Some(PathBuf::from(value("--store")?)),
            "--store-capacity" => {
                config.store_capacity = Some(
                    value("--store-capacity")?
                        .parse()
                        .map_err(|e| format!("--store-capacity: {e}"))?,
                );
            }
            "--workers" => {
                config.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--queue" => {
                config.queue = value("--queue")?
                    .parse()
                    .map_err(|e| format!("--queue: {e}"))?;
            }
            "--deadline-ms" => {
                config.default_deadline_ms = value("--deadline-ms")?
                    .parse()
                    .map_err(|e| format!("--deadline-ms: {e}"))?;
            }
            "--node-name" => config.node_name = Some(value("--node-name")?),
            "--stdin-shutdown" => stdin_shutdown = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (see --help)")),
        }
    }
    Ok(Args {
        config,
        port_file,
        stdin_shutdown,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("flexer-serve: {msg}");
            return ExitCode::from(2);
        }
    };
    let server = match Server::bind(args.config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("flexer-serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = server.local_addr();
    println!("flexer-serve listening on {addr}");
    let _ = std::io::stdout().flush();
    if let Some(path) = &args.port_file {
        if let Err(e) = std::fs::write(path, format!("{}\n", addr.port())) {
            eprintln!(
                "flexer-serve: cannot write port file {}: {e}",
                path.display()
            );
            return ExitCode::FAILURE;
        }
    }
    if args.stdin_shutdown {
        std::thread::Builder::new()
            .name("flexer-serve-stdin".into())
            .spawn(move || {
                // Block until the parent closes our stdin, then drain.
                let mut sink = [0u8; 4096];
                let mut stdin = std::io::stdin();
                while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
                let _ = request_shutdown(addr);
            })
            .expect("spawn stdin watcher");
    }
    match server.run() {
        Ok(()) => {
            println!("flexer-serve drained and stopped");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("flexer-serve: accept loop failed: {e}");
            ExitCode::FAILURE
        }
    }
}
