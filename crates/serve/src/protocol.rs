//! The wire protocol: newline-delimited JSON, one request per line,
//! exactly one response line per request.
//!
//! Every request is a JSON object with an `"op"` member; every
//! response is a JSON object whose `"ok"` member says whether the
//! request succeeded. Failures carry a *typed* `"error"` code (see
//! [`ErrorKind::code`]) so clients can branch without parsing prose,
//! plus a human-readable `"message"`.
//!
//! | op | request members | success members |
//! |---|---|---|
//! | `health` | — | — |
//! | `stats` | — | `requests`, `errors`, `overloaded`, `drivers`, `store{...}`, `residency{...}` |
//! | `schedule` | network, `trace?`, `residency?` | totals, per-layer rows, `span_tree?`, `residency{...}?` |
//! | `compare` | network | `speedup`, `transfer_reduction`, totals |
//! | `verify` | network | as `compare`, plus `verified` |
//! | `store_manifest` | — | `entries` `[{fingerprint,len,checksum},…]`, `count` |
//! | `store_pull` | `fingerprints` | `entries` `[{fingerprint,bytes},…]`, `missing` |
//! | `store_push` | `entries` | `stored`, `existing`, `rejected` |
//! | `shutdown` | — | — (the server drains and exits) |
//!
//! A network is either `"network": "<preset>"` (any name
//! [`flexer_model::networks::by_name`] knows) or an inline
//! `"layers": [{"name"?, "in_channels", "height", "width",
//! "out_channels"}, ...]`. Optional members on every scheduling op:
//! `"arch"` (`"arch1"`..`"arch8"`, default `arch1`), `"options"`
//! (`"quick"` | `"default"`, default `quick`), `"deadline_ms"`, and
//! `"id"` (echoed back verbatim).
//!
//! `schedule` additionally accepts `"mode"` (`"exact"` | `"anytime"`,
//! default `exact`). In exact mode an expired deadline is the typed
//! `deadline` error; in anytime mode the search is cut at the deadline
//! and the best schedules found so far are returned with `"partial":
//! true` and a per-layer proven optimality `"gap"` instead of failing.
//! Anytime mode is exclusive to `schedule` (the static baseline the
//! other ops run has no anytime search) and incompatible with `trace`.
//!
//! `schedule` also accepts `"residency": true`, which runs the
//! network-level inter-layer SPM residency planner
//! (`Flexer::schedule_network_resident`): producer outputs that the
//! planner keeps resident in SPM skip their DRAM round-trip, so the
//! response's `transfer_bytes` counts DRAM traffic only and the
//! response carries a `"residency"` sub-object with `resident_edges`,
//! `spilled_edges` and `dma_bytes_saved` (bytes relative to the
//! residency-off plan of the same request). Residency is exclusive to
//! `schedule` and incompatible with `mode:"anytime"` and `trace` —
//! the planner is a whole-network pass over proven-optimal per-layer
//! winners.
//!
//! The `stats` response aggregates the same three counters across
//! every residency-planned network the server has scheduled, plus the
//! number of such networks, in its own `"residency"` sub-object:
//! `{"networks", "resident_edges", "spilled_edges",
//! "dma_bytes_saved"}`. The object is always present; all-zero means
//! no request has opted in yet.
//!
//! # Replication ops
//!
//! The three `store_*` ops are the fleet replication surface (DESIGN.md
//! §17). They require the server to have a persistent store and take no
//! network. `store_manifest` snapshots the healthy entries (quarantined
//! and in-flight files are never advertised). `store_pull` returns the
//! checksummed wire bytes of the requested entries as lowercase hex —
//! unknown or locally-corrupt fingerprints land in `missing`, never as
//! damaged bytes. `store_push` ingests entries exported from a peer:
//! every entry re-validates through the same header/checksum/decode
//! pipeline a disk read uses, so damage is rejected (counted in the
//! response's `rejected` and the store's corrupt counter) instead of
//! replicated. All three are idempotent and safe to retry.
//!
//! # Deadline semantics
//!
//! `"deadline_ms"` is any non-negative integer; the edge cases are
//! pinned, not accidental:
//!
//! - `"deadline_ms": 0` means **already expired** — it does *not* mean
//!   "use the server default" or "unbounded". Exact mode answers the
//!   typed `deadline` error; anytime mode answers `"partial": true`
//!   with every layer's seeded best-so-far schedule and gap.
//! - Omitting `"deadline_ms"` uses the server's default deadline
//!   (`--deadline-ms`), where a default of `0` means unbounded.
//! - Absurdly large values — a century or more out, up to and
//!   including `u64::MAX` — saturate to **unbounded**: the request
//!   simply never times out. They are accepted, not an error, and
//!   never a worker-killing clock overflow.
//! - A `"partial": true` anytime response always carries a non-empty
//!   `"layers"` array: partiality is a property of specific cut
//!   layers, and a request with no layers is rejected at parse time.

use flexer_model::{networks, ConvLayer, Network};
use flexer_store::Fingerprint;
use flexer_trace::json::{parse, Json};
use std::fmt;
use std::str::FromStr;

use flexer_arch::ArchPreset;

/// Hard cap on one request line; longer lines are a typed parse error
/// (and the connection is closed, since the remainder of the oversized
/// line cannot be resynchronized).
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// The operation a request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Liveness probe; does no work.
    Health,
    /// Server-wide counters.
    Stats,
    /// Out-of-order schedule for a network.
    Schedule,
    /// OoO vs. static-baseline comparison.
    Compare,
    /// Comparison under forced differential verification.
    Verify,
    /// Snapshot of the store's healthy entries (fingerprint + header
    /// material) for anti-entropy diffing.
    StoreManifest,
    /// Export the checksummed wire bytes of the requested entries.
    StorePull,
    /// Ingest entry bytes exported from a peer (re-validated locally).
    StorePush,
    /// Graceful shutdown: drain in-flight requests, flush the store.
    Shutdown,
}

impl Op {
    /// The wire name.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            Op::Health => "health",
            Op::Stats => "stats",
            Op::Schedule => "schedule",
            Op::Compare => "compare",
            Op::Verify => "verify",
            Op::StoreManifest => "store_manifest",
            Op::StorePull => "store_pull",
            Op::StorePush => "store_push",
            Op::Shutdown => "shutdown",
        }
    }
}

/// The search-option preset a request selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OptionsName {
    /// [`flexer_sched::SearchOptions::quick`].
    Quick,
    /// [`flexer_sched::SearchOptions::default`].
    Default,
}

impl OptionsName {
    /// The wire name.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            OptionsName::Quick => "quick",
            OptionsName::Default => "default",
        }
    }
}

/// How a `schedule` request treats its deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// An expired deadline is the typed `deadline` error; results are
    /// always proven optima.
    #[default]
    Exact,
    /// The search is cut at the deadline and the best schedules found
    /// so far are returned with `"partial": true` and a per-layer
    /// proven optimality gap.
    Anytime,
}

impl Mode {
    /// The wire name.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            Mode::Exact => "exact",
            Mode::Anytime => "anytime",
        }
    }
}

/// Typed failure codes — the machine-readable half of every error
/// response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The line was not valid JSON (or was oversized).
    Parse,
    /// Valid JSON, but not a valid request.
    BadRequest,
    /// The server's pending-connection queue is full.
    Overloaded,
    /// The request's deadline passed before a result was ready.
    Deadline,
    /// The search itself failed (no viable tiling, illegal schedule…).
    Sched,
    /// The server is draining for shutdown.
    ShuttingDown,
    /// An unexpected server-side failure (e.g. store I/O).
    Internal,
}

impl ErrorKind {
    /// The wire code carried in the `"error"` member.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            ErrorKind::Parse => "parse",
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::Deadline => "deadline",
            ErrorKind::Sched => "sched",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::Internal => "internal",
        }
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// A parsed, validated request.
#[derive(Debug, Clone)]
pub struct Request {
    /// What to do.
    pub op: Op,
    /// Client correlation id, echoed back verbatim when present.
    pub id: Option<String>,
    /// Target architecture preset.
    pub arch: ArchPreset,
    /// Search-option preset.
    pub options: OptionsName,
    /// The network to schedule (required by scheduling ops only).
    pub network: Option<Network>,
    /// Per-request deadline in milliseconds. `Some(0)` is already
    /// expired; `None` falls back to the server default.
    pub deadline_ms: Option<u64>,
    /// Deadline semantics for `schedule`: fail (`exact`, default) or
    /// return the best-so-far with a proven gap (`anytime`).
    pub mode: Mode,
    /// Capture a deterministic trace of the search. Traced requests
    /// bypass the persistent store: the point is to watch the real
    /// search run.
    pub trace: bool,
    /// Run the inter-layer SPM residency planner for `schedule`:
    /// producer→consumer edges the planner accepts keep the tensor
    /// resident in SPM instead of round-tripping through DRAM.
    pub residency: bool,
    /// The entry addresses a `store_pull` asks for.
    pub fingerprints: Vec<Fingerprint>,
    /// The `(address, entry-file bytes)` pairs a `store_push` carries.
    pub entries: Vec<(Fingerprint, Vec<u8>)>,
}

fn as_u64(j: &Json, what: &str) -> Result<u64, String> {
    let n = j
        .as_num()
        .ok_or_else(|| format!("{what} must be a number"))?;
    if n.is_finite() && n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 {
        Ok(n as u64)
    } else {
        Err(format!("{what} must be a non-negative integer"))
    }
}

fn as_u32(j: &Json, what: &str) -> Result<u32, String> {
    u32::try_from(as_u64(j, what)?).map_err(|_| format!("{what} out of range"))
}

fn parse_layers(items: &[Json]) -> Result<Vec<ConvLayer>, String> {
    if items.is_empty() {
        return Err("layers must be non-empty".into());
    }
    let mut layers = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let field = |key: &str| -> Result<u32, String> {
            let j = item
                .get(key)
                .ok_or_else(|| format!("layers[{i}] missing {key:?}"))?;
            as_u32(j, &format!("layers[{i}].{key}"))
        };
        let name = match item.get("name") {
            Some(j) => j
                .as_str()
                .ok_or_else(|| format!("layers[{i}].name must be a string"))?
                .to_string(),
            None => format!("l{i}"),
        };
        let layer = ConvLayer::new(
            &name,
            field("in_channels")?,
            field("height")?,
            field("width")?,
            field("out_channels")?,
        )
        .map_err(|e| format!("layers[{i}]: {e}"))?;
        layers.push(layer);
    }
    Ok(layers)
}

fn parse_network(obj: &Json) -> Result<Option<Network>, String> {
    let name = match obj.get("network") {
        Some(j) => Some(
            j.as_str()
                .ok_or_else(|| "network must be a string".to_string())?,
        ),
        None => None,
    };
    if let Some(j) = obj.get("layers") {
        let items = j
            .as_array()
            .ok_or_else(|| "layers must be an array".to_string())?;
        let layers = parse_layers(items)?;
        return Network::new(name.unwrap_or("net"), layers)
            .map(Some)
            .map_err(|e| e.to_string());
    }
    match name {
        Some(name) => networks::by_name(name)
            .map(Some)
            .ok_or_else(|| format!("unknown network preset {name:?} (and no inline layers)")),
        None => Ok(None),
    }
}

/// Encodes bytes as lowercase hex — the wire form of store-entry
/// payloads in `store_pull`/`store_push` messages.
#[must_use]
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Decodes a lowercase-hex string back into bytes. Returns `None` for
/// odd lengths, uppercase, or non-hex characters — wire input is
/// validated strictly.
#[must_use]
pub fn hex_decode(s: &str) -> Option<Vec<u8>> {
    fn nibble(b: u8) -> Option<u8> {
        match b {
            b'0'..=b'9' => Some(b - b'0'),
            b'a'..=b'f' => Some(b - b'a' + 10),
            _ => None,
        }
    }
    let raw = s.as_bytes();
    if !raw.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(raw.len() / 2);
    for pair in raw.chunks_exact(2) {
        out.push((nibble(pair[0])? << 4) | nibble(pair[1])?);
    }
    Some(out)
}

fn parse_fingerprint(j: &Json, what: &str) -> Result<Fingerprint, String> {
    let s = j
        .as_str()
        .ok_or_else(|| format!("{what} must be a string"))?;
    Fingerprint::from_hex(s).ok_or_else(|| format!("{what} must be 32 lowercase hex digits"))
}

/// Parses one request line.
///
/// # Errors
///
/// [`ErrorKind::Parse`] for malformed JSON or an oversized line,
/// [`ErrorKind::BadRequest`] for well-formed JSON that is not a valid
/// request — both with a human-readable message.
pub fn parse_request(line: &str) -> Result<Request, (ErrorKind, String)> {
    if line.len() > MAX_LINE_BYTES {
        return Err((
            ErrorKind::Parse,
            format!("request line exceeds {MAX_LINE_BYTES} bytes"),
        ));
    }
    let obj = parse(line.trim()).map_err(|e| {
        (
            ErrorKind::Parse,
            format!("{} at byte {}", e.message, e.offset),
        )
    })?;
    let bad = |msg: String| (ErrorKind::BadRequest, msg);
    if obj.as_object().is_none() {
        return Err(bad("request must be a JSON object".into()));
    }
    let op = match obj.get("op").and_then(Json::as_str) {
        Some("health") => Op::Health,
        Some("stats") => Op::Stats,
        Some("schedule") => Op::Schedule,
        Some("compare") => Op::Compare,
        Some("verify") => Op::Verify,
        Some("store_manifest") => Op::StoreManifest,
        Some("store_pull") => Op::StorePull,
        Some("store_push") => Op::StorePush,
        Some("shutdown") => Op::Shutdown,
        Some(other) => return Err(bad(format!("unknown op {other:?}"))),
        None => return Err(bad("missing op".into())),
    };
    let id = match obj.get("id") {
        Some(j) => Some(
            j.as_str()
                .ok_or_else(|| bad("id must be a string".into()))?
                .to_string(),
        ),
        None => None,
    };
    let arch = match obj.get("arch") {
        Some(j) => {
            let s = j
                .as_str()
                .ok_or_else(|| bad("arch must be a string".into()))?;
            ArchPreset::from_str(s).map_err(|e| bad(e.to_string()))?
        }
        None => ArchPreset::Arch1,
    };
    let options = match obj.get("options").map(|j| (j, j.as_str())) {
        Some((_, Some("quick"))) => OptionsName::Quick,
        Some((_, Some("default"))) => OptionsName::Default,
        Some((_, Some(other))) => {
            return Err(bad(format!(
                "unknown options {other:?} (expected \"quick\" or \"default\")"
            )))
        }
        Some((_, None)) => return Err(bad("options must be a string".into())),
        None => OptionsName::Quick,
    };
    let deadline_ms = match obj.get("deadline_ms") {
        Some(j) => Some(as_u64(j, "deadline_ms").map_err(bad)?),
        None => None,
    };
    let trace = match obj.get("trace") {
        Some(Json::Bool(b)) => *b,
        Some(_) => return Err(bad("trace must be a boolean".into())),
        None => false,
    };
    let mode = match obj.get("mode").map(|j| (j, j.as_str())) {
        Some((_, Some("exact"))) => Mode::Exact,
        Some((_, Some("anytime"))) => Mode::Anytime,
        Some((_, Some(other))) => {
            return Err(bad(format!(
                "unknown mode {other:?} (expected \"exact\" or \"anytime\")"
            )))
        }
        Some((_, None)) => return Err(bad("mode must be a string".into())),
        None => Mode::Exact,
    };
    if mode == Mode::Anytime && op != Op::Schedule {
        return Err(bad(format!(
            "anytime mode is only valid for op \"schedule\", not {:?}",
            op.code()
        )));
    }
    if mode == Mode::Anytime && trace {
        return Err(bad("anytime mode and trace are mutually exclusive".into()));
    }
    let residency = match obj.get("residency") {
        Some(Json::Bool(b)) => *b,
        Some(_) => return Err(bad("residency must be a boolean".into())),
        None => false,
    };
    if residency && op != Op::Schedule {
        return Err(bad(format!(
            "residency is only valid for op \"schedule\", not {:?}",
            op.code()
        )));
    }
    if residency && mode == Mode::Anytime {
        return Err(bad(
            "residency and anytime mode are mutually exclusive".into()
        ));
    }
    if residency && trace {
        return Err(bad("residency and trace are mutually exclusive".into()));
    }
    let fingerprints = match obj.get("fingerprints") {
        Some(j) => {
            if op != Op::StorePull {
                return Err(bad(format!(
                    "fingerprints is only valid for op \"store_pull\", not {:?}",
                    op.code()
                )));
            }
            let items = j
                .as_array()
                .ok_or_else(|| bad("fingerprints must be an array".into()))?;
            let mut fps = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                fps.push(parse_fingerprint(item, &format!("fingerprints[{i}]")).map_err(bad)?);
            }
            fps
        }
        None => Vec::new(),
    };
    if op == Op::StorePull && fingerprints.is_empty() {
        return Err(bad(
            "op \"store_pull\" needs a non-empty \"fingerprints\" array".into(),
        ));
    }
    let entries = match obj.get("entries") {
        Some(j) => {
            if op != Op::StorePush {
                return Err(bad(format!(
                    "entries is only valid for op \"store_push\", not {:?}",
                    op.code()
                )));
            }
            let items = j
                .as_array()
                .ok_or_else(|| bad("entries must be an array".into()))?;
            let mut out = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                let fp = item
                    .get("fingerprint")
                    .ok_or_else(|| bad(format!("entries[{i}] missing \"fingerprint\"")))?;
                let fp =
                    parse_fingerprint(fp, &format!("entries[{i}].fingerprint")).map_err(bad)?;
                let bytes = item
                    .get("bytes")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad(format!("entries[{i}].bytes must be a string")))?;
                let bytes = hex_decode(bytes)
                    .ok_or_else(|| bad(format!("entries[{i}].bytes must be lowercase hex")))?;
                out.push((fp, bytes));
            }
            out
        }
        None => Vec::new(),
    };
    if op == Op::StorePush && entries.is_empty() {
        return Err(bad(
            "op \"store_push\" needs a non-empty \"entries\" array".into()
        ));
    }
    let network = parse_network(&obj).map_err(bad)?;
    if matches!(op, Op::Schedule | Op::Compare | Op::Verify) && network.is_none() {
        return Err(bad(format!(
            "op {:?} needs a \"network\" preset name or inline \"layers\"",
            op.code()
        )));
    }
    Ok(Request {
        op,
        id,
        arch,
        options,
        network,
        deadline_ms,
        mode,
        trace,
        residency,
        fingerprints,
        entries,
    })
}

/// Masks the store-provenance markers in a serialized scheduling
/// response: per-layer `"store":"hit"/"miss"` tags are dropped and
/// every `store_hits`/`store_misses` counter is zeroed.
///
/// Two responses for the same request must be byte-identical *after*
/// this mask no matter which node of a fleet served them or how warm
/// its store was — that invariant is what the chaos harness, the fleet
/// smoke and the bench gates assert, so the masking lives here next to
/// the protocol it censors.
#[must_use]
pub fn mask_provenance(line: &str) -> String {
    let mut s = line
        .replace(r#","store":"hit""#, "")
        .replace(r#","store":"miss""#, "");
    for key in ["\"store_hits\":", "\"store_misses\":"] {
        let mut from = 0;
        while let Some(i) = s[from..].find(key) {
            let start = from + i + key.len();
            let digits = s[start..]
                .find(|c: char| !c.is_ascii_digit())
                .map_or(s.len(), |d| start + d);
            s.replace_range(start..digits, "0");
            from = start + 1;
        }
    }
    s
}

/// Escapes `s` for embedding inside a JSON string literal.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// An incremental JSON-object writer: append members, then
/// [`Obj::finish`] into the serialized line. All protocol responses
/// are built with this, keeping escaping in one place.
#[derive(Debug)]
pub struct Obj {
    buf: String,
}

impl Obj {
    /// Starts an empty object.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buf: String::from("{"),
        }
    }

    fn key(&mut self, key: &str) {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(&escape(key));
        self.buf.push_str("\":");
    }

    /// Appends a string member.
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        self.buf.push('"');
        self.buf.push_str(&escape(value));
        self.buf.push('"');
        self
    }

    /// Appends an unsigned integer member.
    pub fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Appends a float member (`null` when not finite, which JSON
    /// cannot represent).
    pub fn f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        if value.is_finite() {
            self.buf.push_str(&format!("{value}"));
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Appends a boolean member.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Appends a pre-serialized JSON value verbatim.
    pub fn raw(&mut self, key: &str, json: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(json);
        self
    }

    /// Closes the object and returns the serialized text (no trailing
    /// newline).
    #[must_use]
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for Obj {
    fn default() -> Self {
        Self::new()
    }
}

/// Builds a success-response object pre-populated with `ok`, the op
/// code and the echoed id.
#[must_use]
pub fn ok_response(op: Op, id: Option<&str>) -> Obj {
    let mut o = Obj::new();
    o.bool("ok", true).str("op", op.code());
    if let Some(id) = id {
        o.str("id", id);
    }
    o
}

/// One serialized error-response line (without trailing newline).
#[must_use]
pub fn error_line(kind: ErrorKind, id: Option<&str>, message: &str) -> String {
    let mut o = Obj::new();
    o.bool("ok", false).str("error", kind.code());
    if let Some(id) = id {
        o.str("id", id);
    }
    o.str("message", message);
    o.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_ops_parse() {
        for (line, op) in [
            (r#"{"op":"health"}"#, Op::Health),
            (r#"{"op":"stats"}"#, Op::Stats),
            (r#"{"op":"shutdown"}"#, Op::Shutdown),
        ] {
            let req = parse_request(line).unwrap();
            assert_eq!(req.op, op);
            assert_eq!(req.arch, ArchPreset::Arch1);
            assert_eq!(req.options, OptionsName::Quick);
            assert!(req.network.is_none());
        }
    }

    #[test]
    fn deadline_edge_values_parse_as_documented() {
        let req = |deadline: &str| {
            parse_request(&format!(
                r#"{{"op":"schedule","layers":[{{"in_channels":16,"height":14,"width":14,"out_channels":16}}],"deadline_ms":{deadline}}}"#
            ))
        };
        // 0 is a legal, already-expired deadline — not an error and
        // not "server default".
        assert_eq!(req("0").unwrap().deadline_ms, Some(0));
        // Absurdly large values up to u64::MAX parse; saturating them
        // to unbounded is the engine's job, not a parse rejection.
        assert_eq!(
            req("18446744073709551615").unwrap().deadline_ms,
            Some(u64::MAX)
        );
        assert_eq!(
            req("4611686018427387904").unwrap().deadline_ms,
            Some(1 << 62)
        );
        // Absent means "server default".
        let line = r#"{"op":"schedule","layers":[{"in_channels":16,"height":14,"width":14,"out_channels":16}]}"#;
        assert_eq!(parse_request(line).unwrap().deadline_ms, None);
        // Negative and fractional values stay typed bad_request.
        for bad in ["-1", "0.5", "\"soon\""] {
            let (kind, _) = req(bad).unwrap_err();
            assert_eq!(kind, ErrorKind::BadRequest, "deadline_ms={bad}");
        }
    }

    #[test]
    fn empty_layer_lists_are_rejected_for_every_mode() {
        // `partial:true` with an empty layer set is impossible partly
        // because the request can never get that far.
        for mode in ["exact", "anytime"] {
            let line =
                format!(r#"{{"op":"schedule","layers":[],"mode":"{mode}","deadline_ms":0}}"#);
            let (kind, msg) = parse_request(&line).unwrap_err();
            assert_eq!(kind, ErrorKind::BadRequest, "mode={mode}");
            assert!(msg.contains("non-empty"), "{msg}");
        }
    }

    #[test]
    fn schedule_with_inline_layers_parses() {
        let line = r#"{"op":"schedule","id":"r1","arch":"arch5","options":"default",
            "network":"tiny","deadline_ms":250,"trace":true,
            "layers":[{"name":"c1","in_channels":16,"height":14,"width":14,"out_channels":32}]}"#;
        let req = parse_request(line).unwrap();
        assert_eq!(req.op, Op::Schedule);
        assert_eq!(req.id.as_deref(), Some("r1"));
        assert_eq!(req.arch, ArchPreset::Arch5);
        assert_eq!(req.options, OptionsName::Default);
        assert_eq!(req.deadline_ms, Some(250));
        assert!(req.trace);
        let net = req.network.unwrap();
        assert_eq!(net.name(), "tiny");
        assert_eq!(net.layers().len(), 1);
        assert_eq!(net.layers()[0].name(), "c1");
    }

    #[test]
    fn preset_networks_resolve_by_name() {
        let req = parse_request(r#"{"op":"schedule","network":"squeezenet"}"#).unwrap();
        assert!(req.network.unwrap().layers().len() > 1);
        let err = parse_request(r#"{"op":"schedule","network":"nope"}"#).unwrap_err();
        assert_eq!(err.0, ErrorKind::BadRequest);
    }

    #[test]
    fn malformed_and_invalid_requests_get_typed_errors() {
        assert_eq!(parse_request("not json").unwrap_err().0, ErrorKind::Parse);
        assert_eq!(parse_request("[1,2]").unwrap_err().0, ErrorKind::BadRequest);
        assert_eq!(
            parse_request(r#"{"op":"explode"}"#).unwrap_err().0,
            ErrorKind::BadRequest
        );
        assert_eq!(
            parse_request(r#"{"op":"schedule"}"#).unwrap_err().0,
            ErrorKind::BadRequest,
            "scheduling without a network is rejected"
        );
        assert_eq!(
            parse_request(r#"{"op":"schedule","layers":[]}"#)
                .unwrap_err()
                .0,
            ErrorKind::BadRequest
        );
        let long = format!(
            "{{\"op\":\"health\",\"id\":\"{}\"}}",
            "x".repeat(MAX_LINE_BYTES)
        );
        assert_eq!(parse_request(&long).unwrap_err().0, ErrorKind::Parse);
    }

    #[test]
    fn anytime_mode_parses_on_schedule_only() {
        let req = parse_request(r#"{"op":"schedule","network":"squeezenet"}"#).unwrap();
        assert_eq!(req.mode, Mode::Exact, "mode defaults to exact");
        let req =
            parse_request(r#"{"op":"schedule","network":"squeezenet","mode":"anytime"}"#).unwrap();
        assert_eq!(req.mode, Mode::Anytime);
        let req =
            parse_request(r#"{"op":"schedule","network":"squeezenet","mode":"exact"}"#).unwrap();
        assert_eq!(req.mode, Mode::Exact);
        for line in [
            r#"{"op":"schedule","network":"squeezenet","mode":"sometime"}"#,
            r#"{"op":"schedule","network":"squeezenet","mode":7}"#,
            r#"{"op":"compare","network":"squeezenet","mode":"anytime"}"#,
            r#"{"op":"verify","network":"squeezenet","mode":"anytime"}"#,
            r#"{"op":"schedule","network":"squeezenet","mode":"anytime","trace":true}"#,
        ] {
            assert_eq!(
                parse_request(line).unwrap_err().0,
                ErrorKind::BadRequest,
                "{line}"
            );
        }
    }

    #[test]
    fn residency_parses_on_schedule_only() {
        let req = parse_request(r#"{"op":"schedule","network":"squeezenet"}"#).unwrap();
        assert!(!req.residency, "residency defaults to off");
        let req =
            parse_request(r#"{"op":"schedule","network":"squeezenet","residency":true}"#).unwrap();
        assert!(req.residency);
        let req =
            parse_request(r#"{"op":"schedule","network":"squeezenet","residency":false}"#).unwrap();
        assert!(!req.residency);
        for line in [
            r#"{"op":"schedule","network":"squeezenet","residency":"yes"}"#,
            r#"{"op":"compare","network":"squeezenet","residency":true}"#,
            r#"{"op":"verify","network":"squeezenet","residency":true}"#,
            r#"{"op":"schedule","network":"squeezenet","residency":true,"mode":"anytime"}"#,
            r#"{"op":"schedule","network":"squeezenet","residency":true,"trace":true}"#,
        ] {
            assert_eq!(
                parse_request(line).unwrap_err().0,
                ErrorKind::BadRequest,
                "{line}"
            );
        }
    }

    #[test]
    fn hex_codec_round_trips_and_rejects_garbage() {
        let bytes: Vec<u8> = (0..=255u8).collect();
        let hex = hex_encode(&bytes);
        assert_eq!(hex_decode(&hex).as_deref(), Some(bytes.as_slice()));
        assert_eq!(hex_decode(""), Some(Vec::new()));
        assert_eq!(hex_decode("abc"), None, "odd length");
        assert_eq!(hex_decode("AB"), None, "uppercase");
        assert_eq!(hex_decode("zz"), None, "non-hex");
    }

    #[test]
    fn store_ops_parse_and_validate() {
        let fp = Fingerprint::from_hex("000102030405060708090a0b0c0d0e0f").unwrap();
        let req = parse_request(r#"{"op":"store_manifest"}"#).unwrap();
        assert_eq!(req.op, Op::StoreManifest);
        assert!(req.fingerprints.is_empty() && req.entries.is_empty());

        let line = format!(r#"{{"op":"store_pull","fingerprints":["{}"]}}"#, fp.hex());
        let req = parse_request(&line).unwrap();
        assert_eq!(req.op, Op::StorePull);
        assert_eq!(req.fingerprints, vec![fp]);

        let line = format!(
            r#"{{"op":"store_push","entries":[{{"fingerprint":"{}","bytes":"deadbeef"}}]}}"#,
            fp.hex()
        );
        let req = parse_request(&line).unwrap();
        assert_eq!(req.op, Op::StorePush);
        assert_eq!(req.entries, vec![(fp, vec![0xde, 0xad, 0xbe, 0xef])]);

        for line in [
            // Missing / empty required members.
            r#"{"op":"store_pull"}"#,
            r#"{"op":"store_pull","fingerprints":[]}"#,
            r#"{"op":"store_push"}"#,
            r#"{"op":"store_push","entries":[]}"#,
            // Malformed addresses and payloads.
            r#"{"op":"store_pull","fingerprints":["xyz"]}"#,
            r#"{"op":"store_pull","fingerprints":[7]}"#,
            r#"{"op":"store_push","entries":[{"bytes":"ab"}]}"#,
            r#"{"op":"store_push","entries":[{"fingerprint":"000102030405060708090a0b0c0d0e0f","bytes":"xyz"}]}"#,
            // Replication members are exclusive to their ops.
            r#"{"op":"health","fingerprints":["000102030405060708090a0b0c0d0e0f"]}"#,
            r#"{"op":"schedule","network":"squeezenet","entries":[{"fingerprint":"000102030405060708090a0b0c0d0e0f","bytes":"ab"}]}"#,
        ] {
            assert_eq!(
                parse_request(line).unwrap_err().0,
                ErrorKind::BadRequest,
                "{line}"
            );
        }
    }

    #[test]
    fn responses_are_valid_json() {
        let mut o = ok_response(Op::Health, Some("a\"b"));
        o.u64("n", 7).f64("x", 1.5).f64("nan", f64::NAN);
        let line = o.finish();
        let parsed = flexer_trace::json::parse(&line).unwrap();
        assert_eq!(parsed.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(parsed.get("id").and_then(Json::as_str), Some("a\"b"));
        assert_eq!(parsed.get("nan"), Some(&Json::Null));

        let err = error_line(ErrorKind::Overloaded, None, "queue full\n");
        let parsed = flexer_trace::json::parse(&err).unwrap();
        assert_eq!(parsed.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            parsed.get("error").and_then(Json::as_str),
            Some("overloaded")
        );
    }
}
