//! The TCP server: a bounded worker pool over a bounded accept queue.
//!
//! # Backpressure
//!
//! Connections the workers have not yet picked up wait in a bounded
//! queue. When the queue is full the accept loop *sheds load*: it
//! writes one typed `overloaded` error line to the new connection and
//! closes it, so a saturated server answers in microseconds instead of
//! stalling every client behind the slowest search.
//!
//! # Shutdown
//!
//! A `shutdown` request (or stdin EOF in the binary, the no-signals
//! stand-in for SIGTERM) flips the drain flag. In-flight requests run
//! to completion and their responses are delivered; queued connections
//! that no worker has started are answered with a typed
//! `shutting_down` error; the accept loop stops; the persistent store
//! is flushed; then [`Server::run`] returns.

use crate::engine::{Deadline, Engine};
use crate::protocol::{error_line, ok_response, parse_request, ErrorKind, Obj, Op, MAX_LINE_BYTES};
use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// How the server is sized and where it listens.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks a free port.
    pub addr: String,
    /// Worker threads — the number of connections served concurrently.
    pub workers: usize,
    /// Accepted connections waiting for a worker before new ones are
    /// shed with `overloaded`.
    pub queue: usize,
    /// Deadline applied to requests that don't carry their own, in
    /// milliseconds; `0` means unbounded.
    pub default_deadline_ms: u64,
    /// Persistent schedule-store directory shared by every driver.
    pub store_dir: Option<PathBuf>,
    /// Store eviction capacity in bytes (`None` = store default,
    /// `Some(0)` = unbounded).
    pub store_capacity: Option<u64>,
    /// Optional fleet-member name, echoed in `health` and `stats`
    /// responses as `"node"` so clients can tell which member of a
    /// fleet answered. Scheduling responses deliberately omit it:
    /// their bytes must stay identical no matter which replica serves
    /// them.
    pub node_name: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue: 16,
            default_deadline_ms: 0,
            store_dir: None,
            store_capacity: None,
            node_name: None,
        }
    }
}

/// Interval at which an idle worker re-checks the drain flag while
/// blocked reading a connection.
const READ_POLL: Duration = Duration::from_millis(50);

#[derive(Debug)]
struct Shared {
    engine: Engine,
    config: ServerConfig,
    queue: Mutex<VecDeque<TcpStream>>,
    work_ready: Condvar,
    shutting_down: AtomicBool,
    local_addr: SocketAddr,
    requests: AtomicU64,
    errors: AtomicU64,
    overloaded: AtomicU64,
}

/// A bound, not-yet-running scheduling server. [`Server::run`]
/// consumes it and blocks until graceful shutdown.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and prepares the engine.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(config: ServerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let engine = match &config.store_dir {
            Some(dir) => Engine::with_store(dir.clone(), config.store_capacity),
            None => Engine::new(),
        };
        Ok(Self {
            listener,
            shared: Arc::new(Shared {
                engine,
                config,
                queue: Mutex::new(VecDeque::new()),
                work_ready: Condvar::new(),
                shutting_down: AtomicBool::new(false),
                local_addr,
                requests: AtomicU64::new(0),
                errors: AtomicU64::new(0),
                overloaded: AtomicU64::new(0),
            }),
        })
    }

    /// The bound address (with the real port when `addr` asked for
    /// port `0`).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Serves until graceful shutdown: spawns the worker pool, runs
    /// the accept loop on the calling thread, and on drain joins every
    /// worker and flushes the persistent store.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O errors other than per-connection
    /// failures (which are shed silently).
    pub fn run(self) -> io::Result<()> {
        let workers: Vec<_> = (0..self.shared.config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&self.shared);
                std::thread::Builder::new()
                    .name(format!("flexer-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();

        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(accepted) => accepted,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    // Wake the pool before reporting, so a dying accept
                    // loop cannot strand blocked workers.
                    self.shared.shutting_down.store(true, Ordering::SeqCst);
                    self.shared.work_ready.notify_all();
                    for w in workers {
                        let _ = w.join();
                    }
                    return Err(e);
                }
            };
            if self.shared.shutting_down.load(Ordering::SeqCst) {
                shed(stream, ErrorKind::ShuttingDown, "server is draining");
                break;
            }
            let mut queue = self.shared.queue.lock().expect("accept queue poisoned");
            if queue.len() >= self.shared.config.queue.max(1) {
                drop(queue);
                self.shared.overloaded.fetch_add(1, Ordering::Relaxed);
                shed(
                    stream,
                    ErrorKind::Overloaded,
                    "all workers busy and the accept queue is full; retry later",
                );
                continue;
            }
            queue.push_back(stream);
            drop(queue);
            self.shared.work_ready.notify_one();
        }

        self.shared.work_ready.notify_all();
        for w in workers {
            let _ = w.join();
        }
        // Queued connections no worker started: answer, don't strand.
        let mut queue = self.shared.queue.lock().expect("accept queue poisoned");
        while let Some(stream) = queue.pop_front() {
            shed(stream, ErrorKind::ShuttingDown, "server is draining");
        }
        drop(queue);
        self.shared.engine.flush_stores();
        Ok(())
    }
}

/// Writes one typed error line to a connection being turned away.
fn shed(mut stream: TcpStream, kind: ErrorKind, message: &str) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let mut line = error_line(kind, None, message);
    line.push('\n');
    let _ = stream.write_all(line.as_bytes());
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock().expect("accept queue poisoned");
            loop {
                if let Some(stream) = queue.pop_front() {
                    break Some(stream);
                }
                if shared.shutting_down.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shared
                    .work_ready
                    .wait(queue)
                    .expect("accept queue poisoned");
            }
        };
        match stream {
            Some(stream) => handle_connection(shared, stream),
            None => return,
        }
    }
}

/// One bounded line read: at most [`MAX_LINE_BYTES`] bytes are
/// buffered before the line is declared oversized, whether or not a
/// newline ever arrives.
enum LineRead {
    /// A complete line (without the trailing newline).
    Line(String),
    /// The peer closed the connection between requests.
    Eof,
    /// The line exceeded [`MAX_LINE_BYTES`]; the connection cannot be
    /// resynchronized.
    TooLong,
    /// The drain flag was raised while waiting for input.
    Draining,
    /// The connection failed.
    Io,
}

fn read_bounded_line(reader: &mut BufReader<TcpStream>, shared: &Shared) -> LineRead {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = match reader.fill_buf() {
            Ok([]) => {
                return if line.is_empty() {
                    LineRead::Eof
                } else {
                    // A final unterminated line: serve it; the EOF
                    // surfaces on the next read.
                    match String::from_utf8(std::mem::take(&mut line)) {
                        Ok(s) => LineRead::Line(s),
                        Err(_) => LineRead::Io,
                    }
                };
            }
            Ok(buf) => buf,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return LineRead::Draining;
                }
                continue;
            }
            Err(_) => return LineRead::Io,
        };
        if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            line.extend_from_slice(&buf[..pos]);
            reader.consume(pos + 1);
            return match String::from_utf8(line) {
                Ok(s) => LineRead::Line(s),
                Err(_) => LineRead::Io,
            };
        }
        let taken = buf.len();
        line.extend_from_slice(buf);
        reader.consume(taken);
        if line.len() > MAX_LINE_BYTES {
            return LineRead::TooLong;
        }
        // Re-check the drain flag on the data path too. Pre-fix it was
        // only checked on read *timeouts*, so a byte-dribbling client
        // whose data kept arriving (never a newline) pinned a worker
        // until the line cap — hours at one byte per poll — and
        // graceful shutdown stalled behind it.
        if shared.shutting_down.load(Ordering::SeqCst) {
            return LineRead::Draining;
        }
    }
}

/// The most bytes [`drain_briefly`] will swallow before giving up on a
/// tidy close. Anything larger is a flood, and floods get a reset.
const DRAIN_MAX_BYTES: usize = 64 * 1024;

/// The longest [`drain_briefly`] will wait on a peer that has stopped
/// sending.
const DRAIN_MAX_TIME: Duration = Duration::from_millis(500);

/// Discards pending input until EOF, bounded by **both**
/// [`DRAIN_MAX_BYTES`] and [`DRAIN_MAX_TIME`]. The byte bound is the
/// load-bearing one: draining exists only to move our already-written
/// error reply ahead of the connection reset, and a peer still
/// flooding past 64 KiB is not reading replies — while pre-fix an
/// unbounded-bytes drain let a fast writer pump hundreds of megabytes
/// through a worker during its whole 500 ms window. A raised drain
/// flag also ends the drain: shutdown never waits on a misbehaving
/// peer's leftovers.
fn drain_briefly(reader: &mut BufReader<TcpStream>, shared: &Shared) {
    let deadline = std::time::Instant::now() + DRAIN_MAX_TIME;
    let mut drained = 0usize;
    while std::time::Instant::now() < deadline
        && drained < DRAIN_MAX_BYTES
        && !shared.shutting_down.load(Ordering::SeqCst)
    {
        match reader.fill_buf() {
            Ok([]) => return,
            Ok(buf) => {
                let n = buf.len();
                drained += n;
                reader.consume(n);
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                continue;
            }
            Err(_) => return,
        }
    }
}

fn write_line(stream: &mut TcpStream, mut line: String) -> io::Result<()> {
    line.push('\n');
    stream.write_all(line.as_bytes())?;
    stream.flush()
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    loop {
        if shared.shutting_down.load(Ordering::SeqCst) {
            // Between requests: nothing in flight on this connection.
            let _ = write_line(
                &mut writer,
                error_line(ErrorKind::ShuttingDown, None, "server is draining"),
            );
            return;
        }
        let line = match read_bounded_line(&mut reader, shared) {
            LineRead::Line(line) => line,
            LineRead::Eof | LineRead::Io => return,
            LineRead::Draining => {
                let _ = write_line(
                    &mut writer,
                    error_line(ErrorKind::ShuttingDown, None, "server is draining"),
                );
                return;
            }
            LineRead::TooLong => {
                shared.errors.fetch_add(1, Ordering::Relaxed);
                let _ = write_line(
                    &mut writer,
                    error_line(
                        ErrorKind::Parse,
                        None,
                        &format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                    ),
                );
                // Cannot resynchronize mid-line; swallow what the peer
                // already sent so closing with unread input does not
                // reset the connection under our reply.
                drain_briefly(&mut reader, shared);
                return;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        shared.requests.fetch_add(1, Ordering::Relaxed);
        // A panic in request execution must not unwind through the
        // worker loop: a dead worker silently shrinks the pool until
        // the server hangs. Catch it and answer with a typed
        // `internal` error instead; the engine's shared state is lock-
        // per-call, so a panicked request cannot leave it mid-update
        // (a poisoned lock would surface as a panic on the next
        // request, which this same guard converts to `internal`).
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| process_line(shared, &line)));
        let (response, shutdown) = outcome.unwrap_or_else(|_| {
            shared.errors.fetch_add(1, Ordering::Relaxed);
            (
                error_line(
                    ErrorKind::Internal,
                    None,
                    "request execution panicked; see server logs",
                ),
                false,
            )
        });
        if write_line(&mut writer, response).is_err() {
            return;
        }
        if shutdown {
            initiate_shutdown(shared);
            return;
        }
    }
}

/// Runs one request line to a serialized response. The bool asks the
/// connection handler to initiate a server-wide drain.
fn process_line(shared: &Shared, line: &str) -> (String, bool) {
    let req = match parse_request(line) {
        Ok(req) => req,
        Err((kind, msg)) => {
            shared.errors.fetch_add(1, Ordering::Relaxed);
            return (error_line(kind, None, &msg), false);
        }
    };
    let id = req.id.clone();
    match req.op {
        Op::Health => {
            let mut o = ok_response(Op::Health, id.as_deref());
            if let Some(node) = &shared.config.node_name {
                o.str("node", node);
            }
            (o.finish(), false)
        }
        Op::Shutdown => (ok_response(Op::Shutdown, id.as_deref()).finish(), true),
        Op::Stats => (stats_response(shared, id.as_deref()), false),
        Op::StoreManifest | Op::StorePull | Op::StorePush => match shared.engine.run_store(&req) {
            Ok(line) => (line, false),
            Err((kind, msg)) => {
                shared.errors.fetch_add(1, Ordering::Relaxed);
                (error_line(kind, id.as_deref(), &msg), false)
            }
        },
        Op::Schedule | Op::Compare | Op::Verify => {
            let deadline = Deadline::from_ms(req.deadline_ms, shared.config.default_deadline_ms);
            match shared.engine.run(&req, &deadline) {
                Ok(line) => (line, false),
                Err((kind, msg)) => {
                    shared.errors.fetch_add(1, Ordering::Relaxed);
                    (error_line(kind, id.as_deref(), &msg), false)
                }
            }
        }
    }
}

fn stats_response(shared: &Shared, id: Option<&str>) -> String {
    let mut o = ok_response(Op::Stats, id);
    if let Some(node) = &shared.config.node_name {
        o.str("node", node);
    }
    o.u64("requests", shared.requests.load(Ordering::Relaxed))
        .u64("errors", shared.errors.load(Ordering::Relaxed))
        .u64("overloaded", shared.overloaded.load(Ordering::Relaxed))
        .u64("workers", shared.config.workers.max(1) as u64)
        .u64("drivers", shared.engine.driver_count() as u64);
    if let Some(store) = shared.engine.store_summary() {
        let mut s = Obj::new();
        s.u64("hits", store.hits)
            .u64("misses", store.misses)
            .u64("evictions", store.evictions)
            .u64("corrupt", store.corrupt)
            .u64("entries", shared.engine.store_entries().unwrap_or(0) as u64);
        o.raw("store", &s.finish());
    }
    let residency = shared.engine.residency_summary();
    let mut r = Obj::new();
    r.u64("networks", residency.networks)
        .u64("resident_edges", residency.resident_edges)
        .u64("spilled_edges", residency.spilled_edges)
        .u64("dma_bytes_saved", residency.dma_bytes_saved);
    o.raw("residency", &r.finish());
    o.finish()
}

/// Flips the drain flag and wakes everything that might be blocked on
/// it: the worker pool (condvar) and the accept loop (a loopback
/// connection, since `accept` cannot be timed out portably).
fn initiate_shutdown(shared: &Shared) {
    shared.shutting_down.store(true, Ordering::SeqCst);
    shared.work_ready.notify_all();
    let _ = TcpStream::connect_timeout(&shared.local_addr, Duration::from_secs(1));
}

/// Connects to a running server and triggers its graceful drain — the
/// programmatic twin of sending `{"op":"shutdown"}` over the wire.
/// Used by the binary's stdin-EOF watcher.
///
/// # Errors
///
/// Propagates connection and write failures.
pub fn request_shutdown(addr: SocketAddr) -> io::Result<()> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
    stream.write_all(b"{\"op\":\"shutdown\"}\n")?;
    let mut sink = [0u8; 256];
    let _ = stream.read(&mut sink);
    Ok(())
}
