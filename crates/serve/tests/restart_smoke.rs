//! Kill-and-restart smoke for the real daemon binary: a `flexer-serve`
//! process is hard-killed mid-request, restarted on the same store
//! directory, and must answer the pre-kill requests byte-identically
//! (modulo the store-provenance markers that legitimately flip from
//! `miss` to `hit`) — the serve-layer extension of
//! `tests/store_warmstart.rs`.

use flexer_serve::client::{roundtrip, Client};
use flexer_trace::json::{parse, Json};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

static DIR_ID: AtomicU32 = AtomicU32::new(0);

/// A scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "fxs-restart-{tag}-{}-{}",
            std::process::id(),
            DIR_ID.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        Self(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A daemon child process killed on drop, so a failing test never
/// leaks a live server.
struct Daemon {
    child: Child,
    addr: SocketAddr,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns the real `flexer-serve` binary on a free port with the given
/// store directory and waits until it is accepting requests.
fn spawn_daemon(store: &Path, scratch: &Path, gen: u32) -> Daemon {
    let port_file = scratch.join(format!("port-{gen}"));
    let child = Command::new(env!("CARGO_BIN_EXE_flexer-serve"))
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--port-file")
        .arg(&port_file)
        .arg("--store")
        .arg(store)
        .arg("--workers")
        .arg("2")
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn flexer-serve");

    let deadline = Instant::now() + Duration::from_secs(30);
    let port: u16 = loop {
        if let Ok(text) = std::fs::read_to_string(&port_file) {
            if let Ok(port) = text.trim().parse() {
                break port;
            }
        }
        assert!(Instant::now() < deadline, "daemon never wrote its port");
        std::thread::sleep(Duration::from_millis(20));
    };
    let addr: SocketAddr = format!("127.0.0.1:{port}").parse().unwrap();

    // The port file appears when the listener is bound; one health
    // round-trip proves the worker pool is up too.
    let reply = roundtrip(addr, r#"{"op":"health"}"#).expect("health after boot");
    assert!(reply.contains(r#""ok":true"#), "{reply}");
    Daemon { child, addr }
}

/// The response with store-provenance stripped: per-layer
/// `"store":"hit"|"miss"` markers removed and the `store_hits` /
/// `store_misses` totals zeroed. Everything else — every latency,
/// transfer count, evaluation count, layer name — must be
/// byte-identical between a cold and a warm answer.
fn masked(line: &str) -> String {
    let mut s = line
        .replace(r#","store":"hit""#, "")
        .replace(r#","store":"miss""#, "");
    for key in ["\"store_hits\":", "\"store_misses\":"] {
        if let Some(i) = s.find(key) {
            let start = i + key.len();
            let digits = s[start..]
                .find(|c: char| !c.is_ascii_digit())
                .map_or(s.len(), |d| start + d);
            s.replace_range(start..digits, "0");
        }
    }
    s
}

const REQUESTS: [&str; 3] = [
    r#"{"op":"schedule","id":"r1","layers":[{"name":"a","in_channels":16,"height":14,"width":14,"out_channels":16}]}"#,
    r#"{"op":"schedule","id":"r2","layers":[{"name":"b","in_channels":32,"height":14,"width":14,"out_channels":32}]}"#,
    r#"{"op":"schedule","id":"r3","arch":"arch2","layers":[{"name":"c","in_channels":16,"height":7,"width":7,"out_channels":32}]}"#,
];

#[test]
fn killed_daemon_restarts_warm_and_answers_byte_identically() {
    let scratch = Scratch::new("warm");
    let store = scratch.0.join("store");

    // Generation 1: cold answers, persisted as they complete.
    let daemon = spawn_daemon(&store, &scratch.0, 1);
    let mut c = Client::connect(daemon.addr).unwrap();
    let cold: Vec<String> = REQUESTS
        .iter()
        .map(|r| {
            let line = c.roundtrip(r).unwrap();
            assert!(line.contains(r#""ok":true"#), "{line}");
            line
        })
        .collect();
    for line in &cold {
        let j = parse(line).unwrap();
        assert!(
            j.get("store_misses").and_then(Json::as_num).unwrap() >= 1.0,
            "cold runs must miss: {line}"
        );
    }

    // Hard-kill mid-request: a long schedule is in flight when the
    // process dies. Nothing about this may corrupt the store the next
    // generation warm-starts from (entries land via atomic
    // tmp+fsync+rename; a torn tmp is reaped on reopen).
    let mut busy = Client::connect(daemon.addr).unwrap();
    busy.send(r#"{"op":"schedule","network":"squeezenet","id":"doomed"}"#)
        .unwrap();
    std::thread::sleep(Duration::from_millis(150));
    drop(daemon); // kill(), no drain

    // Whatever the half-dead socket yields, it must not be a completed
    // reply to "doomed" — only connection errors, EOF, or garbage.
    let _ = busy.set_read_timeout(Some(Duration::from_secs(5)));
    if let Ok(leftover) = busy.recv() {
        assert!(
            !(leftover.contains(r#""id":"doomed""#) && leftover.contains(r#""ok":true"#)),
            "a killed daemon cannot have completed the in-flight request: {leftover}"
        );
    }

    // Generation 2: same store directory, fresh process.
    let daemon = spawn_daemon(&store, &scratch.0, 2);
    let mut c = Client::connect(daemon.addr).unwrap();
    for (req, cold_line) in REQUESTS.iter().zip(&cold) {
        let warm_line = c.roundtrip(req).unwrap();
        let j = parse(&warm_line).unwrap();
        assert!(
            j.get("store_hits").and_then(Json::as_num).unwrap() >= 1.0,
            "warm runs must hit the persisted store: {warm_line}"
        );
        assert_eq!(
            masked(cold_line),
            masked(&warm_line),
            "warm answer differs from pre-kill answer"
        );
    }

    // The warm store really was read from disk: stats agree.
    let j = parse(&c.roundtrip(r#"{"op":"stats"}"#).unwrap()).unwrap();
    let store_stats = j.get("store").expect("store block");
    assert!(store_stats.get("hits").and_then(Json::as_num).unwrap() >= 3.0);
    assert!(store_stats.get("entries").and_then(Json::as_num).unwrap() >= 3.0);

    // Generation 2 dies gracefully, flushing the store.
    drop(c);
    let reply = roundtrip(daemon.addr, r#"{"op":"shutdown"}"#).unwrap();
    assert!(reply.contains(r#""ok":true"#), "{reply}");
    let mut daemon = daemon;
    let status = daemon.child.wait().expect("daemon exit");
    assert!(status.success(), "graceful exit after restart: {status}");
}
