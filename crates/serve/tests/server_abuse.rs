//! The server under abuse: saturation, malformed input, expired
//! deadlines and graceful shutdown — every failure mode must produce
//! a *typed* response, never a hang, a panic or a silent close.

use flexer_serve::client::Client;
use flexer_serve::{Server, ServerConfig};
use flexer_trace::json::{parse, Json};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::thread::JoinHandle;
use std::time::Duration;

static DIR_ID: AtomicU32 = AtomicU32::new(0);

/// A scratch store directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        Self(std::env::temp_dir().join(format!(
            "fxs-serve-{tag}-{}-{}",
            std::process::id(),
            DIR_ID.fetch_add(1, Ordering::Relaxed)
        )))
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Boots a server on a free loopback port and returns its address and
/// the thread running it (joined to assert a clean exit).
fn boot(config: ServerConfig) -> (SocketAddr, JoinHandle<()>) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

fn shutdown_and_join(addr: SocketAddr, handle: JoinHandle<()>) {
    let reply = flexer_serve::client::roundtrip(addr, r#"{"op":"shutdown"}"#).expect("shutdown");
    assert!(reply.contains(r#""ok":true"#), "{reply}");
    handle.join().expect("server thread");
}

fn assert_ok(line: &str) -> Json {
    let j = parse(line).unwrap_or_else(|e| panic!("bad JSON {line:?}: {e:?}"));
    assert_eq!(j.get("ok").and_then(Json::as_bool), Some(true), "{line}");
    j
}

fn assert_error(line: &str, code: &str) -> Json {
    let j = parse(line).unwrap_or_else(|e| panic!("bad JSON {line:?}: {e:?}"));
    assert_eq!(j.get("ok").and_then(Json::as_bool), Some(false), "{line}");
    assert_eq!(j.get("error").and_then(Json::as_str), Some(code), "{line}");
    j
}

const TINY_SCHEDULE: &str =
    r#"{"op":"schedule","layers":[{"in_channels":16,"height":14,"width":14,"out_channels":16}]}"#;

#[test]
fn health_schedule_stats_round_trip() {
    let store = Scratch::new("smoke");
    let (addr, handle) = boot(ServerConfig {
        store_dir: Some(store.0.clone()),
        ..ServerConfig::default()
    });
    let mut c = Client::connect(addr).unwrap();
    assert_ok(&c.roundtrip(r#"{"op":"health","id":"h1"}"#).unwrap());

    let j = assert_ok(&c.roundtrip(TINY_SCHEDULE).unwrap());
    assert!(j.get("latency").and_then(Json::as_num).unwrap() > 0.0);
    assert_eq!(j.get("layers").and_then(Json::as_array).unwrap().len(), 1);

    // Same request again: served from the persistent store.
    let j = assert_ok(&c.roundtrip(TINY_SCHEDULE).unwrap());
    assert_eq!(j.get("store_hits").and_then(Json::as_num), Some(1.0));

    let j = assert_ok(&c.roundtrip(r#"{"op":"stats"}"#).unwrap());
    assert!(j.get("requests").and_then(Json::as_num).unwrap() >= 4.0);
    let s = j.get("store").expect("store block");
    assert_eq!(s.get("hits").and_then(Json::as_num), Some(1.0));
    assert_eq!(s.get("entries").and_then(Json::as_num), Some(1.0));
    let r = j.get("residency").expect("stats residency block");
    assert_eq!(r.get("networks").and_then(Json::as_num), Some(0.0));

    // A residency-opted schedule: the response names its counters and
    // the server-wide stats aggregate them.
    let resident = concat!(
        r#"{"op":"schedule","residency":true,"layers":["#,
        r#"{"name":"c1","in_channels":16,"height":14,"width":14,"out_channels":32},"#,
        r#"{"name":"c2","in_channels":32,"height":14,"width":14,"out_channels":32},"#,
        r#"{"name":"c3","in_channels":32,"height":14,"width":14,"out_channels":32}]}"#
    );
    let j = assert_ok(&c.roundtrip(resident).unwrap());
    let r = j.get("residency").expect("response residency block");
    assert!(
        r.get("resident_edges").and_then(Json::as_num).unwrap() >= 1.0,
        "no edge went resident"
    );
    let saved = r.get("dma_bytes_saved").and_then(Json::as_num).unwrap();
    assert!(saved > 0.0, "residency saved no DRAM bytes");
    let j = assert_ok(&c.roundtrip(r#"{"op":"stats"}"#).unwrap());
    let r = j.get("residency").expect("stats residency block");
    assert_eq!(r.get("networks").and_then(Json::as_num), Some(1.0));
    assert_eq!(r.get("dma_bytes_saved").and_then(Json::as_num), Some(saved));

    shutdown_and_join(addr, handle);
}

#[test]
fn saturated_pool_sheds_with_typed_overloaded() {
    let (addr, handle) = boot(ServerConfig {
        workers: 2,
        queue: 1,
        ..ServerConfig::default()
    });
    // Two held connections pin both workers (a health round-trip
    // proves a worker owns each before we move on).
    let mut held: Vec<Client> = (0..2)
        .map(|_| {
            let mut c = Client::connect(addr).unwrap();
            assert_ok(&c.roundtrip(r#"{"op":"health"}"#).unwrap());
            c
        })
        .collect();
    // Third connection parks in the accept queue (depth 1)...
    let queued = Client::connect(addr).unwrap();
    // ...so the fourth is shed immediately with a typed error, not a
    // stall. `recv` would hang forever if the server queued it anyway.
    let mut shed = Client::connect(addr).unwrap();
    shed.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    assert_error(&shed.recv().unwrap(), "overloaded");

    // Releasing a worker un-parks the queued connection: it gets a
    // real worker and full service.
    drop(held.pop());
    let mut queued = queued;
    assert_ok(&queued.roundtrip(r#"{"op":"health"}"#).unwrap());

    let j = assert_ok(&queued.roundtrip(r#"{"op":"stats"}"#).unwrap());
    assert!(j.get("overloaded").and_then(Json::as_num).unwrap() >= 1.0);

    drop(held);
    drop(queued);
    shutdown_and_join(addr, handle);
}

#[test]
fn malformed_json_keeps_the_connection_usable() {
    let (addr, handle) = boot(ServerConfig::default());
    let mut c = Client::connect(addr).unwrap();
    assert_error(&c.roundtrip("this is not json").unwrap(), "parse");
    assert_error(
        &c.roundtrip(r#"{"op":"no_such_op"}"#).unwrap(),
        "bad_request",
    );
    assert_error(&c.roundtrip(r#"{"op":"schedule"}"#).unwrap(), "bad_request");
    // After three rejected requests the same connection still works.
    assert_ok(&c.roundtrip(r#"{"op":"health"}"#).unwrap());
    shutdown_and_join(addr, handle);
}

#[test]
fn expired_deadline_is_reported_not_hung() {
    let (addr, handle) = boot(ServerConfig::default());
    let mut c = Client::connect(addr).unwrap();
    let line = r#"{"op":"schedule","network":"squeezenet","deadline_ms":0,"id":"d1"}"#;
    let j = assert_error(&c.roundtrip(line).unwrap(), "deadline");
    assert_eq!(j.get("id").and_then(Json::as_str), Some("d1"));
    // The connection survives a deadline failure.
    assert_ok(&c.roundtrip(r#"{"op":"health"}"#).unwrap());
    shutdown_and_join(addr, handle);
}

#[test]
fn anytime_mode_turns_an_expired_deadline_into_a_partial_result() {
    let store = Scratch::new("anytime");
    let (addr, handle) = boot(ServerConfig {
        store_dir: Some(store.0.clone()),
        ..ServerConfig::default()
    });
    let mut c = Client::connect(addr).unwrap();
    let line =
        r#"{"op":"schedule","network":"squeezenet","deadline_ms":0,"mode":"anytime","id":"a1"}"#;
    let j = assert_ok(&c.roundtrip(line).unwrap());
    assert_eq!(j.get("id").and_then(Json::as_str), Some("a1"));
    assert_eq!(j.get("partial").and_then(Json::as_bool), Some(true));
    assert!(j.get("latency").and_then(Json::as_num).unwrap() > 0.0);
    let layers = j.get("layers").and_then(Json::as_array).unwrap();
    assert!(!layers.is_empty());
    // Every layer still carries a real schedule; cut layers report a
    // proven optimality gap of at least 1.
    for row in layers {
        assert!(row.get("latency").and_then(Json::as_num).unwrap() > 0.0);
        if row.get("partial").and_then(Json::as_bool) == Some(true) {
            assert!(row.get("gap").and_then(Json::as_num).unwrap() >= 1.0);
        }
    }
    // Anytime results must not poison the persistent store: it holds
    // no entries after the cut request.
    let j = assert_ok(&c.roundtrip(r#"{"op":"stats"}"#).unwrap());
    let entries = j.get("store").and_then(|s| s.get("entries")).cloned();
    assert_eq!(entries.as_ref().and_then(Json::as_num), Some(0.0));
    // An exact re-request searches from scratch and persists as usual.
    let exact = r#"{"op":"schedule","network":"squeezenet","id":"a2"}"#;
    let j = assert_ok(&c.roundtrip(exact).unwrap());
    assert!(j.get("store_misses").and_then(Json::as_num).unwrap() > 0.0);
    shutdown_and_join(addr, handle);
}

#[test]
fn graceful_shutdown_drains_in_flight_work_and_flushes_the_store() {
    let store = Scratch::new("drain");
    let (addr, handle) = boot(ServerConfig {
        store_dir: Some(store.0.clone()),
        ..ServerConfig::default()
    });
    // An in-flight schedule on one connection...
    let mut busy = Client::connect(addr).unwrap();
    busy.send(r#"{"op":"schedule","network":"squeezenet","id":"inflight"}"#)
        .unwrap();
    // Give the worker a moment to pick the request up, so the drain
    // genuinely races in-flight work rather than an idle connection.
    std::thread::sleep(Duration::from_millis(200));
    // ...while another connection asks for shutdown.
    let reply = flexer_serve::client::roundtrip(addr, r#"{"op":"shutdown"}"#).unwrap();
    assert_ok(&reply);
    // The in-flight request is drained: its full response arrives.
    busy.set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let j = assert_ok(&busy.recv().unwrap());
    assert_eq!(j.get("id").and_then(Json::as_str), Some("inflight"));
    // The server exits cleanly...
    handle.join().expect("server thread");
    // ...the store was written and flushed (squeezenet's layers)...
    let entries = std::fs::read_dir(&store.0)
        .unwrap()
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "fxs"))
        .count();
    assert!(entries > 0, "store should hold the drained schedules");
    // ...and the port no longer accepts work.
    assert!(flexer_serve::client::roundtrip(addr, r#"{"op":"health"}"#).is_err());
}

#[test]
fn dribbling_client_cannot_stall_graceful_shutdown() {
    // A client that keeps bytes trickling in (never a newline) used to
    // pin its worker through shutdown: the drain flag was only checked
    // on read *timeouts*, and a dribbler never let the read time out.
    // Post-fix the flag is checked on the data path too, so the server
    // must finish draining while the dribble is still flowing.
    let (addr, handle) = boot(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    let mut dribbler = std::net::TcpStream::connect(addr).unwrap();
    let dribble = std::thread::spawn(move || {
        use std::io::Write;
        // ~30 s of dribble at 20 ms/byte — far longer than the test
        // allows the shutdown to take; ends early once the server
        // closes the connection under us.
        for _ in 0..1500 {
            if dribbler.write_all(b"{").is_err() {
                return;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    });
    // Let a worker pick the dribbler up and enter its read loop.
    std::thread::sleep(Duration::from_millis(200));
    let reply = flexer_serve::client::roundtrip(addr, r#"{"op":"shutdown"}"#).unwrap();
    assert_ok(&reply);
    // Liveness, not latency: the server must come down while the
    // client is still dribbling. `JoinHandle` has no timed join, so
    // relay through a channel.
    let (tx, rx) = std::sync::mpsc::channel();
    let joiner = std::thread::spawn(move || {
        handle.join().expect("server thread");
        let _ = tx.send(());
    });
    rx.recv_timeout(Duration::from_secs(10))
        .expect("a dribbling client stalled graceful shutdown");
    joiner.join().unwrap();
    dribble.join().unwrap();
}

#[test]
fn post_error_drain_is_bounded_by_bytes_not_just_time() {
    // After an oversized line the server drains leftover input so its
    // error reply beats the connection reset. Pre-fix that drain was
    // bounded only by time, so for its whole 500 ms window a flooding
    // client could pump data through the worker at loopback speed
    // (hundreds of megabytes). Post-fix the drain also stops after
    // 64 KiB, so the flood hits a closed socket almost immediately.
    let (addr, handle) = boot(ServerConfig::default());
    let mut c = std::net::TcpStream::connect(addr).unwrap();
    {
        use std::io::Write;
        let oversized = vec![b'x'; flexer_serve::MAX_LINE_BYTES + 16];
        c.write_all(&oversized).unwrap();
    }
    // Flood without ever reading, counting what the server accepts.
    c.set_write_timeout(Some(Duration::from_secs(2))).unwrap();
    let chunk = vec![b'y'; 64 * 1024];
    let mut sent = 0usize;
    for _ in 0..4096 {
        use std::io::Write;
        match c.write(&chunk) {
            Ok(n) => sent += n,
            Err(_) => break, // server stopped reading / closed
        }
    }
    // Generous allowance for socket and BufReader buffering on top of
    // the 64 KiB drain bound; the pre-fix behavior exceeds this by two
    // orders of magnitude.
    assert!(
        sent < 32 * 1024 * 1024,
        "drain swallowed {sent} bytes; it must be byte-bounded"
    );
    // The typed error reply still arrived ahead of the close.
    let mut reader = std::io::BufReader::new(&c);
    let mut line = String::new();
    std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
    assert_error(line.trim_end(), "parse");
    drop(c);
    shutdown_and_join(addr, handle);
}

#[test]
fn huge_deadlines_are_unbounded_not_worker_killing() {
    // `deadline_ms` values near u64::MAX used to risk an
    // `Instant + Duration` overflow panic inside the worker; each such
    // request would kill a worker and shrink the pool until the server
    // hung. They must be served as plain unbounded requests.
    let (addr, handle) = boot(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let mut c = Client::connect(addr).unwrap();
    for deadline in ["18446744073709551615", "4611686018427387904"] {
        let line = format!(
            r#"{{"op":"schedule","layers":[{{"in_channels":16,"height":14,"width":14,"out_channels":16}}],"deadline_ms":{deadline}}}"#
        );
        let j = assert_ok(&c.roundtrip(&line).unwrap());
        assert!(j.get("latency").and_then(Json::as_num).unwrap() > 0.0);
    }
    // With a single worker, survival of further requests proves no
    // worker died along the way.
    assert_ok(&c.roundtrip(r#"{"op":"health"}"#).unwrap());
    // Free the single worker before asking it to serve the shutdown.
    drop(c);
    shutdown_and_join(addr, handle);
}

#[test]
fn panicking_request_gets_a_typed_internal_error_and_spares_the_worker() {
    // The worker wraps request execution in a panic guard; any panic
    // must surface as a typed `internal` error on the wire with the
    // worker (and its connection loop) still alive. There is no known
    // panicking request — this pins the guard via the response
    // contract: whatever happens, a line comes back and the connection
    // keeps working. (The chaos harness leans on the same guarantee.)
    let (addr, handle) = boot(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let mut c = Client::connect(addr).unwrap();
    // A pathological-but-valid request mix on the single worker.
    assert_error(
        &c.roundtrip(r#"{"op":"schedule","layers":[]}"#).unwrap(),
        "bad_request",
    );
    let j = assert_ok(&c.roundtrip(r#"{"op":"stats"}"#).unwrap());
    assert_eq!(j.get("workers").and_then(Json::as_num), Some(1.0));
    assert_ok(&c.roundtrip(r#"{"op":"health"}"#).unwrap());
    // Free the single worker before asking it to serve the shutdown.
    drop(c);
    shutdown_and_join(addr, handle);
}

#[test]
fn oversized_line_is_a_typed_parse_error() {
    let (addr, handle) = boot(ServerConfig::default());
    let mut c = Client::connect(addr).unwrap();
    let huge = format!(
        "{{\"op\":\"health\",\"id\":\"{}\"}}",
        "x".repeat(flexer_serve::MAX_LINE_BYTES + 16)
    );
    c.send(&huge).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    assert_error(&c.recv().unwrap(), "parse");
    shutdown_and_join(addr, handle);
}
